"""Shim for environments without the `wheel` package (offline PEP-517
editable installs need bdist_wheel); `pip install -e . --no-build-isolation
--no-use-pep517` works through this file."""
from setuptools import setup

setup()
