"""Distributed partitioning with xTeraPart on a simulated cluster.

The paper's Section VI-C scenario: a graph that does not fit a single
node's memory is partitioned across a cluster; per-node memory is the
binding constraint.  This example partitions a growing family of random
hyperbolic graphs on 8 simulated ranks with a fixed per-rank budget and
shows where dKaMinPar (uncompressed shards) runs out of memory while
xTeraPart (compressed shards) keeps going -- Figure 8's feasibility story.

Run:  python examples/distributed_partitioning.py
"""

from repro.dist import dpartition
from repro.dist.dpartitioner import DistConfig
from repro.graph import generators

RANKS = 8
K = 16
BUDGET = 220_000  # bytes per rank (scaled stand-in for 256 GiB per node)

print(f"{RANKS} ranks, per-rank budget {BUDGET // 1024} KiB, k={K}\n")
print(
    f"{'n':>8}{'m':>10}  {'dKaMinPar peak/rank':>22}"
    f"{'xTeraPart peak/rank':>22}  verdict"
)

for n in (2_000, 4_000, 8_000, 16_000):
    graph = generators.rhg(n, avg_degree=12, gamma=3.0, seed=3)
    cfg = DistConfig(seed=1, rank_memory_budget=BUDGET)
    dk = dpartition(graph, K, RANKS, compressed=False, config=cfg)
    xt = dpartition(graph, K, RANKS, compressed=True, config=cfg)
    verdict = []
    verdict.append("dKaMinPar OOM" if dk.oom else "dKaMinPar ok")
    verdict.append("xTeraPart OOM" if xt.oom else "xTeraPart ok")
    print(
        f"{graph.n:>8,}{graph.m:>10,}  "
        f"{dk.max_rank_peak_bytes / 1024:>18.0f} KiB"
        f"{xt.max_rank_peak_bytes / 1024:>18.0f} KiB  "
        + ", ".join(verdict)
    )

# the largest run, in detail
print("\nlargest xTeraPart run:")
print(f"  cut: {xt.cut:,} edges ({xt.cut_fraction:.2%})")
print(f"  balanced: {xt.balanced} (imbalance {xt.imbalance:.3f})")
print(f"  per-rank peaks: {[p // 1024 for p in xt.rank_peak_bytes]} KiB")
print(
    f"  communication: {xt.comm.bytes_sent / 1024:.0f} KiB over "
    f"{xt.comm.supersteps} supersteps"
)
