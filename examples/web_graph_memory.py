"""Partitioning a web-scale graph under a memory budget.

The scenario from the paper's introduction: a web crawl too large for the
machine once auxiliary data structures pile up.  This example walks the
optimization ladder of Figure 1 -- baseline KaMinPar, two-phase label
propagation, graph compression, one-pass contraction -- on a web-graph
stand-in and shows where each gigabyte (here: kilobyte) goes, using the
per-phase memory report.

Run:  python examples/web_graph_memory.py
"""

import repro
from repro.core import config as C
from repro.graph import generators
from repro.graph.compressed import compress_graph
from repro.memory import MemoryTracker, render_phase_breakdown

K = 64
P = 96  # the paper's core count; drives per-thread structure counts

graph = generators.weblike(12_000, avg_degree=24, seed=7)
print(f"web graph: n={graph.n:,}  m={graph.m:,}  max degree={graph.max_degree:,}")

cg = compress_graph(graph)
print(
    f"compression: {graph.nbytes / 1024:.0f} KiB CSR -> "
    f"{cg.nbytes / 1024:.0f} KiB ({cg.stats.ratio:.1f}x, "
    f"{cg.stats.num_intervals:,} intervals)\n"
)

ladder = [
    ("KaMinPar (baseline)", "kaminpar"),
    ("+ two-phase label propagation", "kaminpar+2lp"),
    ("+ graph compression", "kaminpar+2lp+compress"),
    ("TeraPart (+ one-pass contraction)", "terapart"),
]

print(f"{'configuration':<36}{'peak memory':>14}{'cut':>10}{'balanced':>10}")
baseline_peak = None
for label, preset in ladder:
    result = repro.partition(graph, K, C.preset(preset, seed=1, p=P))
    if baseline_peak is None:
        baseline_peak = result.peak_bytes
    rel = result.peak_bytes / baseline_peak
    print(
        f"{label:<36}{result.peak_bytes / 1024:>10.0f} KiB"
        f"{result.cut:>10,}{str(result.balanced):>10}  ({rel:.2f}x)"
    )

# where does the remaining memory go? per-phase breakdown (Figure 2 style)
print("\nper-phase peaks for the final TeraPart run:")
tracker = MemoryTracker()
repro.partition(graph, K, C.terapart(seed=1, p=P), tracker=tracker)
print(render_phase_breakdown(tracker, max_depth=2))
