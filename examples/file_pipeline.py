"""End-to-end file pipeline: disk -> compressed memory -> partition -> disk.

The production path for a graph that is too large to hold uncompressed:
write it once in the binary on-disk format, then *stream* it straight into
the compressed in-memory representation (single-pass I/O, Section III-B)
without ever materialising the raw CSR, partition it, and write the block
assignment next to it.

Also demonstrates METIS text-format interop and comparing partitioners on
your own graph.

Run:  python examples/file_pipeline.py
"""

import tempfile
from pathlib import Path

import numpy as np

import repro
from repro.baselines import mtmetis_partition
from repro.core import config as C
from repro.graph import generators
from repro.graph.io import read_metis, stream_compressed, write_binary, write_metis

workdir = Path(tempfile.mkdtemp(prefix="terapart-"))
print(f"working in {workdir}\n")

# --- 1. produce a graph on disk (here: generated; normally: your data) ---
graph = generators.weblike(8_000, avg_degree=20, seed=11)
binary_path = workdir / "crawl.bin"
write_binary(graph, binary_path)
print(
    f"wrote {binary_path.name}: {binary_path.stat().st_size / 1024:.0f} KiB "
    f"(n={graph.n:,}, m={graph.m:,})"
)

# --- 2. stream it into compressed memory: the raw CSR never exists here ---
cg = stream_compressed(binary_path, packet_edges=1 << 14)
print(
    f"streamed + compressed: {cg.nbytes / 1024:.0f} KiB resident "
    f"({cg.stats.ratio:.1f}x smaller than the on-disk CSR)"
)

# --- 3. partition the compressed graph directly ---
result = repro.partition(cg, k=32, config=C.terapart(seed=1))
print(
    f"partitioned: cut={result.cut:,} ({result.cut_fraction:.2%}), "
    f"balanced={result.balanced}"
)

# --- 4. persist the partition ---
out_path = workdir / "crawl.part32"
np.savetxt(out_path, result.partition, fmt="%d")
print(f"wrote {out_path.name}\n")

# --- 5. METIS text interop + a baseline comparison on the same graph ---
metis_path = workdir / "crawl.metis"
write_metis(graph, metis_path)
reread = read_metis(metis_path)
assert reread.n == graph.n and reread.m == graph.m

mt = mtmetis_partition(reread, 32, seed=1)
print("TeraPart vs Mt-Metis-style baseline on this graph:")
print(f"  terapart: cut={result.cut:,}  balanced={result.balanced}")
print(
    f"  mt-metis: cut={mt.cut:,}  balanced={mt.balanced} "
    f"(imbalance {mt.imbalance:.3f})"
)
