"""Comparing partitioners on quality metrics beyond the edge cut.

Runs TeraPart (LP and FM refinement), the deep-multilevel variant, and the
streaming/single-level baselines on one graph and reports the full metric
set: edge cut, communication volume, boundary size, balance, and block
connectivity -- the numbers a distributed-systems user would look at before
choosing a partitioner.

Run:  python examples/quality_study.py
"""

import repro
from repro.baselines import heistream_partition, xtrapulp_partition
from repro.core import config as C
from repro.core.metrics import compute_metrics
from repro.core.partition import PartitionedGraph
from repro.graph import generators

K = 16
graph = generators.rhg(6_000, avg_degree=12, gamma=2.9, seed=17)
print(f"graph: rhg n={graph.n:,} m={graph.m:,} max degree={graph.max_degree}\n")

candidates = {}
candidates["terapart-lp"] = repro.partition(graph, K, C.terapart(seed=1)).pgraph
candidates["terapart-fm"] = repro.partition(graph, K, C.terapart_fm(seed=1)).pgraph
candidates["terapart-deep"] = repro.partition(
    graph, K, C.preset("terapart-deep", seed=1)
).pgraph
candidates["xtrapulp"] = PartitionedGraph(
    graph, K, xtrapulp_partition(graph, K, seed=1).partition
)
candidates["heistream"] = PartitionedGraph(
    graph, K, heistream_partition(graph, K, seed=1, buffer_size=512).partition
)

header = (
    f"{'algorithm':<15}{'cut':>8}{'cut %':>8}{'comm vol':>10}"
    f"{'boundary':>10}{'imbal':>8}{'conn':>7}"
)
print(header)
print("-" * len(header))
for name, pg in candidates.items():
    m = compute_metrics(pg)
    print(
        f"{name:<15}{m.cut_weight:>8,}{m.cut_fraction:>8.1%}"
        f"{m.communication_volume:>10,}{m.boundary_vertices:>10,}"
        f"{m.imbalance:>8.3f}{m.connected_blocks:>5}/{m.k}"
    )

print(
    "\nReading guide: multilevel methods (terapart-*) should dominate the"
    "\nsingle-pass baselines on cut and communication volume; FM should"
    "\nedge out LP; everything TeraPart produces stays balanced."
)
