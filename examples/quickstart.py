"""Quickstart: partition a graph in five lines.

Generates a random geometric graph (the paper's ``rgg2D`` family), splits
it into 16 balanced blocks with the TeraPart configuration, and prints the
quality/memory numbers a user cares about.

Run:  python examples/quickstart.py
"""

import repro
from repro.core import config as C
from repro.graph import generators

# 1. get a graph: any CSRGraph works -- from a generator, an edge list
#    (repro.graph.builder.from_edges) or a file (repro.graph.io)
graph = generators.rgg2d(10_000, avg_degree=8, seed=42)

# 2. partition into k balanced blocks (eps = 3% like the paper)
result = repro.partition(graph, k=16, config=C.terapart(seed=1))

# 3. use the result
print(f"graph:        n={graph.n:,}, m={graph.m:,}")
print(f"edge cut:     {result.cut:,} edges ({result.cut_fraction:.2%} of total)")
print(f"imbalance:    {result.imbalance:.3f} (balanced: {result.balanced})")
print(f"peak memory:  {result.peak_bytes / 1024:.0f} KiB (ledger)")
print(f"levels:       {result.num_levels} coarsening levels")
print(f"block of v0:  {result.partition[0]}")

# the partition array maps every vertex to its block
assert len(result.partition) == graph.n
assert result.balanced
