"""The long-lived partitioning service.

Architecture (DESIGN.md §11)::

    clients ──► request queue ──► admission batcher ──► LRU cache
                                        │                  │ miss
                                        ▼                  ▼
                                 in-flight futures   warm-start decision
                                 (same-key coalesce)   │           │
                                                   refinement    full
                                                   only (warm)  multilevel

* **Admission batching**: concurrent requests for the same
  ``(graph fingerprint, k, ε, config_digest)`` key attach to one
  in-flight future; exactly one partitioner run serves them all.
* **Caching**: finished partitions, compressed input graphs, and
  warm-start seeds share one byte-budgeted LRU
  (:class:`~repro.serve.cache.ByteLRUCache`) whose bytes are registered
  with the :class:`MemoryTracker` ledger.
* **Incremental repartitioning**: deltas mutate the finest-level graph
  only; the next request warm-starts from the previous assignment and
  re-runs refinement (:func:`repro.core.partitioner.refine_partition`),
  falling back to a full multilevel run once the cumulative drift since
  the last full run exceeds ``ServeConfig.drift_threshold``.

The service is a plain asyncio object (``PartitionService``) plus a
thread-backed synchronous wrapper (``ServiceHandle``) for tests and
benchmarks; the HTTP front end in :mod:`repro.serve.http` is a thin
shell over the same object.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.config import PartitionerConfig, ServeConfig, config_digest, terapart
from repro.core.partitioner import partition as _default_partition
from repro.core.partitioner import refine_partition as _default_refine
from repro.graph.compressed import compress_graph
from repro.graph.fingerprint import graph_fingerprint
from repro.memory.tracker import MemoryTracker
from repro.serve.cache import ByteLRUCache
from repro.serve.deltas import GraphDelta, apply_delta
from repro.serve.metrics import ServiceMetrics


class ServiceError(Exception):
    """Structured, wire-serializable service failure.

    ``code`` is machine-readable (``unknown-graph``, ``bad-request``,
    ``partitioner-error``, ``shutdown``); ``detail`` carries request
    context.  A request failing with a ServiceError never poisons the
    queue: the worker resolves that request's future and moves on.
    """

    def __init__(self, code: str, message: str, detail: dict | None = None):
        super().__init__(message)
        self.code = code
        self.detail = dict(detail or {})

    def to_dict(self) -> dict:
        return {"error": str(self), "code": self.code, "detail": self.detail}


@dataclass(frozen=True)
class RequestKey:
    """Identity under which requests coalesce and results cache."""

    fingerprint: str
    k: int
    epsilon: float
    config_digest: str


@dataclass
class ServeResult:
    """What one partition request returns (cached or computed)."""

    partition: np.ndarray
    cut: int
    imbalance: float
    balanced: bool
    wall_seconds: float  # compute time of the run that produced this
    mode: str  # "full" | "warm" | "cached"
    graph: str
    k: int
    epsilon: float
    config_digest: str
    drift: float
    num_levels: int

    @property
    def nbytes(self) -> int:
        return int(self.partition.nbytes) + 256

    def to_dict(self, *, include_partition: bool = False) -> dict:
        d = {
            "cut": int(self.cut),
            "imbalance": float(self.imbalance),
            "balanced": bool(self.balanced),
            "wall_seconds": float(self.wall_seconds),
            "mode": self.mode,
            "graph": self.graph,
            "k": int(self.k),
            "epsilon": float(self.epsilon),
            "config_digest": self.config_digest,
            "drift": float(self.drift),
            "num_levels": int(self.num_levels),
        }
        if include_partition:
            d["partition"] = self.partition.tolist()
        return d


@dataclass
class _WarmSeed:
    """Previous assignment + the drift bookkeeping anchored at the last
    *full* run (warm runs refresh the partition but not the anchor: the
    quality guarantee degrades with distance from the last full
    multilevel run, not from the last refinement)."""

    partition: np.ndarray
    changed_at_full: int  # entry.total_changed when the full run happened
    m_at_full: int  # directed edge count then (drift denominator)

    @property
    def nbytes(self) -> int:
        return int(self.partition.nbytes) + 32


@dataclass
class _GraphEntry:
    name: str
    graph: object  # finest-level CSR
    fingerprint: str
    total_changed: int = 0  # cumulative changed edges over all deltas
    deltas_applied: int = 0


@dataclass
class _Job:
    key: RequestKey
    entry_name: str
    graph: object  # snapshot at enqueue time (CSR graphs are immutable)
    fingerprint: str
    k: int
    config: PartitionerConfig
    total_changed: int
    force_full: bool
    future: asyncio.Future = field(repr=False, default=None)


_SHUTDOWN = object()


class PartitionService:
    """Asyncio service front end; create via :meth:`create`."""

    def __init__(
        self,
        config: PartitionerConfig | None = None,
        serve_config: ServeConfig | None = None,
        *,
        tracker: MemoryTracker | None = None,
        partition_fn=None,
        refine_fn=None,
    ) -> None:
        self.config = config or terapart()
        self.serve_config = serve_config or ServeConfig()
        self.tracker = tracker if tracker is not None else MemoryTracker()
        self.metrics = ServiceMetrics(
            latency_reservoir=self.serve_config.latency_reservoir
        )
        self.cache = ByteLRUCache(
            self.serve_config.cache_budget_bytes, tracker=self.tracker
        )
        self._partition_fn = partition_fn or _default_partition
        self._refine_fn = refine_fn or _default_refine
        self._entries: dict[str, _GraphEntry] = {}
        self._queue: asyncio.Queue = asyncio.Queue()
        self._inflight: dict[RequestKey, asyncio.Future] = {}
        self._workers: list[asyncio.Task] = []
        # one executor thread: partitioner runs are serialized, and the
        # event loop stays responsive to attach batched requests mid-run
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve"
        )
        self._started = time.perf_counter()
        self._closed = False

    # ------------------------------------------------------------------ #
    @classmethod
    async def create(cls, *args, **kwargs) -> "PartitionService":
        """Construct inside a running loop and start the worker task."""
        svc = cls(*args, **kwargs)
        svc.start()
        return svc

    def start(self) -> None:
        if not self._workers:
            self._workers.append(asyncio.ensure_future(self._worker()))

    async def aclose(self) -> None:
        self._closed = True
        await self._queue.put(_SHUTDOWN)
        for w in self._workers:
            try:
                await w
            except asyncio.CancelledError:
                pass
        self._workers.clear()
        self._executor.shutdown(wait=True)
        for fut in self._inflight.values():
            if not fut.done():
                fut.set_exception(
                    ServiceError("shutdown", "service shut down mid-request")
                )
        self._inflight.clear()

    # ------------------------------------------------------------------ #
    # graph registry + deltas
    # ------------------------------------------------------------------ #
    async def register_graph(self, name: str, graph) -> str:
        """Register a finest-level CSR graph; returns its fingerprint."""
        if not hasattr(graph, "indptr"):
            raise ServiceError(
                "bad-request",
                "register_graph needs a CSR graph (the service owns "
                "compression; deltas apply to the CSR finest level)",
                {"graph": name},
            )
        fp = graph_fingerprint(graph)
        self._entries[name] = _GraphEntry(name=name, graph=graph, fingerprint=fp)
        self.metrics.bump("serve.graphs_registered")
        return fp

    def graph_names(self) -> list[str]:
        return sorted(self._entries)

    def _entry(self, name: str) -> _GraphEntry:
        entry = self._entries.get(name)
        if entry is None:
            raise ServiceError(
                "unknown-graph",
                f"no graph registered under {name!r}",
                {"graph": name, "known": sorted(self._entries)},
            )
        return entry

    async def apply_delta(self, name: str, delta: GraphDelta) -> dict:
        """Mutate the finest level; returns drift bookkeeping."""
        entry = self._entry(name)
        try:
            new_graph, changed = apply_delta(entry.graph, delta)
        except ValueError as e:
            raise ServiceError("bad-request", str(e), {"graph": name}) from e
        entry.graph = new_graph
        entry.fingerprint = graph_fingerprint(new_graph)
        entry.total_changed += changed
        entry.deltas_applied += 1
        self.metrics.bump("serve.delta_batches")
        self.metrics.bump("serve.delta_edges_changed", changed)
        return {
            "graph": name,
            "fingerprint": entry.fingerprint,
            "changed_edges": changed,
            "total_changed": entry.total_changed,
            "n": new_graph.n,
            "m": new_graph.m,
        }

    # ------------------------------------------------------------------ #
    # the request path
    # ------------------------------------------------------------------ #
    def _request_key(
        self, entry: _GraphEntry, k: int, cfg: PartitionerConfig
    ) -> RequestKey:
        return RequestKey(
            fingerprint=entry.fingerprint,
            k=int(k),
            epsilon=round(float(cfg.epsilon), 9),
            config_digest=config_digest(cfg),
        )

    async def partition(
        self,
        name: str,
        k: int,
        *,
        epsilon: float | None = None,
        config: PartitionerConfig | None = None,
        force_full: bool = False,
    ) -> ServeResult:
        """Serve one partition request (cache → batch → warm/full run)."""
        t0 = time.perf_counter()
        self.metrics.bump("serve.requests")
        try:
            if self._closed:
                raise ServiceError("shutdown", "service is closed")
            if k < 1:
                raise ServiceError("bad-request", f"k must be >= 1, got {k}")
            entry = self._entry(name)
            cfg = config or self.config
            if epsilon is not None:
                cfg = cfg.with_(epsilon=float(epsilon))
            key = self._request_key(entry, k, cfg)

            cached = self.cache.get(("part", key))
            if cached is not None:
                self.metrics.bump("serve.cache_hits")
                return replace(cached, mode="cached")
            self.metrics.bump("serve.cache_misses")

            fut = self._inflight.get(key)
            if fut is None:
                fut = asyncio.get_running_loop().create_future()
                # retrieve exceptions even if every client was cancelled,
                # so an abandoned failed run never logs a warning
                fut.add_done_callback(
                    lambda f: f.exception() if not f.cancelled() else None
                )
                self._inflight[key] = fut
                job = _Job(
                    key=key,
                    entry_name=name,
                    graph=entry.graph,
                    fingerprint=entry.fingerprint,
                    k=int(k),
                    config=cfg,
                    total_changed=entry.total_changed,
                    force_full=force_full,
                    future=fut,
                )
                await self._queue.put(job)
            else:
                self.metrics.bump("serve.batched")
            return await asyncio.shield(fut)
        except ServiceError:
            self.metrics.bump("serve.errors")
            raise
        except asyncio.CancelledError:
            self.metrics.bump("serve.cancelled")
            raise
        finally:
            self.metrics.observe_latency(time.perf_counter() - t0)

    # ------------------------------------------------------------------ #
    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job = await self._queue.get()
            if job is _SHUTDOWN:
                self._queue.task_done()
                return
            if self.serve_config.batch_window_seconds > 0:
                # widen the admission window: same-key requests arriving
                # in the next slice attach to this run instead of missing
                await asyncio.sleep(self.serve_config.batch_window_seconds)
            fut = self._inflight.get(job.key)
            try:
                result = await loop.run_in_executor(
                    self._executor, self._execute, job
                )
                self.cache.put(("part", job.key), result, result.nbytes)
                if fut is not None and not fut.done():
                    fut.set_result(result)
            except Exception as e:  # noqa: BLE001 - converted to structured
                if isinstance(e, ServiceError):
                    err = e
                else:
                    err = ServiceError(
                        "partitioner-error",
                        f"{type(e).__name__}: {e}",
                        {
                            "graph": job.entry_name,
                            "k": job.k,
                            "config_digest": job.key.config_digest,
                        },
                    )
                self.metrics.bump("serve.run_errors")
                if fut is not None and not fut.done():
                    fut.set_exception(err)
            finally:
                self._inflight.pop(job.key, None)
                self._sync_cache_gauges()
                self._queue.task_done()

    # ------------------------------------------------------------------ #
    # execution (runs on the executor thread)
    # ------------------------------------------------------------------ #
    def _execute(self, job: _Job) -> ServeResult:
        scfg = self.serve_config
        seed_key = ("seed", job.entry_name, job.key.k, job.key.epsilon,
                    job.key.config_digest)
        seed: _WarmSeed | None = self.cache.peek(seed_key)
        drift = 0.0
        if seed is not None:
            drift = (job.total_changed - seed.changed_at_full) / max(
                seed.m_at_full, 1
            )
        warm_ok = (
            scfg.warm_start
            and not job.force_full
            and seed is not None
            and len(seed.partition) <= job.graph.n
        )
        if warm_ok and drift > scfg.drift_threshold:
            self.metrics.bump("serve.fallback_drift")
            warm_ok = False

        if warm_ok:
            part0 = seed.partition
            if len(part0) < job.graph.n:
                # vertices appended since the seed: start them in the
                # lightest seed block; rebalance/refinement takes it from
                # there
                counts = np.bincount(part0, minlength=job.k)
                fill = int(np.argmin(counts))
                part0 = np.concatenate(
                    [
                        part0,
                        np.full(
                            job.graph.n - len(part0), fill, dtype=np.int32
                        ),
                    ]
                )
            result = self._refine_fn(
                job.graph,
                job.k,
                part0,
                job.config,
                extra_lp_rounds=scfg.warm_extra_lp_rounds,
                tracker=self.tracker,
            )
            mode = "warm"
            self.metrics.bump("serve.warm_runs")
            self.cache.put(
                seed_key,
                _WarmSeed(
                    partition=result.partition.copy(),
                    changed_at_full=seed.changed_at_full,
                    m_at_full=seed.m_at_full,
                ),
                seed.nbytes,
            )
        else:
            graph_for_run = job.graph
            if job.config.compress_input:
                ckey = ("graph", job.fingerprint)
                cg = self.cache.get(ckey)
                if cg is None:
                    cg = compress_graph(
                        job.graph, bulk=job.config.use_bulk_kernels
                    )
                    self.cache.put(ckey, cg, cg.nbytes)
                graph_for_run = cg
            result = self._partition_fn(
                graph_for_run, job.k, job.config, tracker=self.tracker
            )
            mode = "full"
            drift = 0.0
            self.metrics.bump("serve.full_runs")
            self.cache.put(
                seed_key,
                _WarmSeed(
                    partition=result.partition.copy(),
                    changed_at_full=job.total_changed,
                    m_at_full=max(job.graph.num_directed_edges, 1),
                ),
                int(result.partition.nbytes) + 32,
            )
        self.metrics.bump("serve.run_seconds", result.wall_seconds)
        return ServeResult(
            partition=result.partition,
            cut=int(result.cut),
            imbalance=float(result.imbalance),
            balanced=bool(result.balanced),
            wall_seconds=float(result.wall_seconds),
            mode=mode,
            graph=job.entry_name,
            k=job.key.k,
            epsilon=job.key.epsilon,
            config_digest=job.key.config_digest,
            drift=float(drift),
            num_levels=int(result.num_levels),
        )

    # ------------------------------------------------------------------ #
    # telemetry
    # ------------------------------------------------------------------ #
    def _sync_cache_gauges(self) -> None:
        """Mirror cache stats into counters (gauges set, not bumped)."""
        st = self.cache.stats
        m = self.metrics
        with m._lock:
            m._counters["serve.evictions"] = st.evictions
            m._counters["serve.cache_resident_bytes"] = st.resident_bytes
            m._counters["serve.cache_entries"] = st.entries

    def metrics_snapshot(self) -> dict:
        self._sync_cache_gauges()
        return self.metrics.snapshot(
            elapsed_seconds=time.perf_counter() - self._started
        )

    def metrics_registry(self, *, meta: dict | None = None):
        self._sync_cache_gauges()
        return self.metrics.to_registry(
            meta={
                "config": self.config.name,
                "graphs": self.graph_names(),
                **(meta or {}),
            },
            elapsed_seconds=time.perf_counter() - self._started,
        )


# --------------------------------------------------------------------- #
# synchronous wrapper
# --------------------------------------------------------------------- #
class ServiceHandle:
    """In-process synchronous facade over :class:`PartitionService`.

    Runs the service's event loop on a daemon thread; every method
    round-trips through ``run_coroutine_threadsafe``, so tests and
    benchmarks drive the *real* async path (queue, batcher, cache)
    without writing async code.  Usable as a context manager.
    """

    def __init__(
        self,
        config: PartitionerConfig | None = None,
        serve_config: ServeConfig | None = None,
        **service_kwargs,
    ) -> None:
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        self.service: PartitionService = self._call(
            PartitionService.create(config, serve_config, **service_kwargs)
        )

    def _call(self, coro, timeout: float | None = 300.0):
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(
            timeout
        )

    # -- the sync API --------------------------------------------------- #
    def register_graph(self, name: str, graph) -> str:
        return self._call(self.service.register_graph(name, graph))

    def partition(self, name: str, k: int, **kwargs) -> ServeResult:
        return self._call(self.service.partition(name, k, **kwargs))

    def partition_many(
        self, requests: list[tuple[str, int]], **kwargs
    ) -> list[ServeResult]:
        """Issue many requests *concurrently* (exercises the batcher)."""

        async def _gather():
            return await asyncio.gather(
                *(
                    self.service.partition(name, k, **kwargs)
                    for name, k in requests
                )
            )

        return self._call(_gather())

    def apply_delta(self, name: str, delta: GraphDelta) -> dict:
        return self._call(self.service.apply_delta(name, delta))

    def metrics_snapshot(self) -> dict:
        return self.service.metrics_snapshot()

    def metrics_registry(self, **kwargs):
        return self.service.metrics_registry(**kwargs)

    def close(self) -> None:
        if self._loop.is_closed():
            return
        try:
            self._call(self.service.aclose())
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10)
            self._loop.close()

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
