"""Service telemetry: counters + latency quantiles, obs-registry shaped.

The long-lived service cannot use :meth:`MetricsRegistry.from_run` (that
collapses *one* finished run); instead it accumulates counters across
requests and folds them into the same :class:`MetricsRegistry` artifact,
so dashboards, the run DB, and ``repro bench compare`` consume service
telemetry and partitioner telemetry through one schema.

Counter taxonomy (``serve.*``, joining the DESIGN.md §7 vocabulary):

* ``serve.requests`` / ``serve.errors`` / ``serve.cancelled``
* ``serve.batched``        — requests coalesced onto an in-flight run
* ``serve.cache_hits`` / ``serve.cache_misses`` (partition cache)
* ``serve.full_runs`` / ``serve.warm_runs``    — execution mode split
* ``serve.fallback_drift`` — warm starts refused because drift crossed
  the threshold
* ``serve.delta_batches`` / ``serve.delta_edges_changed``
* ``serve.evictions``      — LRU evictions across all entry kinds
"""

from __future__ import annotations

import threading

import numpy as np

from repro.obs.metrics import MetricsRegistry


class LatencyReservoir:
    """Bounded sample of request latencies with exact-on-sample quantiles.

    Below ``capacity`` samples this is exact; past it, reservoir sampling
    keeps a uniform subsample (deterministic via a seeded generator), so
    a service running for days neither grows without bound nor loses the
    tail entirely.
    """

    def __init__(self, capacity: int = 4096, seed: int = 0) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._samples: list[float] = []
        self._seen = 0
        self._rng = np.random.default_rng(seed)

    def add(self, seconds: float) -> None:
        self._seen += 1
        if len(self._samples) < self.capacity:
            self._samples.append(float(seconds))
            return
        j = int(self._rng.integers(0, self._seen))
        if j < self.capacity:
            self._samples[j] = float(seconds)

    def quantile(self, q: float) -> float:
        if not self._samples:
            return 0.0
        return float(np.quantile(np.asarray(self._samples), q))

    @property
    def count(self) -> int:
        return self._seen


class ServiceMetrics:
    """Thread-safe counter/latency accumulator for one service instance."""

    def __init__(self, *, latency_reservoir: int = 4096) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self.latency = LatencyReservoir(latency_reservoir)
        self._started = None  # monotonic start, set by the service

    def bump(self, name: str, value: float = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def observe_latency(self, seconds: float) -> None:
        with self._lock:
            self.latency.add(seconds)

    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0)

    def counters(self) -> dict[str, float]:
        with self._lock:
            return dict(self._counters)

    # ------------------------------------------------------------------ #
    def snapshot(self, *, elapsed_seconds: float | None = None) -> dict:
        """Flat gauge dict: what ``GET /metrics`` and the bench report."""
        with self._lock:
            c = dict(self._counters)
            p50 = self.latency.quantile(0.50)
            p99 = self.latency.quantile(0.99)
            n = self.latency.count
        hits = c.get("serve.cache_hits", 0)
        misses = c.get("serve.cache_misses", 0)
        snap = {
            **{k: (int(v) if float(v).is_integer() else v) for k, v in c.items()},
            "serve.p50_seconds": p50,
            "serve.p99_seconds": p99,
            "serve.latency_samples": n,
            "serve.cache_hit_rate": hits / (hits + misses)
            if hits + misses
            else 0.0,
        }
        if elapsed_seconds is not None and elapsed_seconds > 0:
            snap["serve.requests_per_second"] = (
                c.get("serve.requests", 0) / elapsed_seconds
            )
        return snap

    def to_registry(
        self, *, meta: dict | None = None, elapsed_seconds: float | None = None
    ) -> MetricsRegistry:
        """Fold the snapshot into the obs-layer registry schema."""
        return MetricsRegistry.from_counters(
            self.snapshot(elapsed_seconds=elapsed_seconds),
            meta={"source": "serve", **(meta or {})},
        )
