"""Serving layer: the long-lived partitioning service (``repro serve``).

The million-user scenario of ROADMAP item 1: hold compressed graphs
resident, answer partition requests under live traffic, absorb graph
churn with incremental (warm-start) repartitioning.  See DESIGN.md §11.

Public surface:

* :class:`PartitionService` — the asyncio service object,
* :class:`ServiceHandle`   — synchronous in-process facade (tests/bench),
* :class:`ServiceError`    — structured request failure,
* :class:`ServeResult`     — one request's answer,
* :class:`GraphDelta` / :func:`apply_delta` — finest-level mutations,
* :class:`ByteLRUCache`    — the tracked byte-budgeted LRU,
* :func:`make_trace` / :func:`replay` — workload traces for bench/CI,
* :mod:`repro.serve.http`  — the stdlib HTTP front end.
"""

from repro.serve.cache import ByteLRUCache, CacheStats
from repro.serve.deltas import GraphDelta, apply_delta, random_delta
from repro.serve.metrics import LatencyReservoir, ServiceMetrics
from repro.serve.service import (
    PartitionService,
    RequestKey,
    ServeResult,
    ServiceError,
    ServiceHandle,
)
from repro.serve.trace import TraceEvent, TraceReport, make_trace, replay

__all__ = [
    "ByteLRUCache",
    "CacheStats",
    "GraphDelta",
    "LatencyReservoir",
    "PartitionService",
    "RequestKey",
    "ServeResult",
    "ServiceError",
    "ServiceHandle",
    "ServiceMetrics",
    "TraceEvent",
    "TraceReport",
    "apply_delta",
    "make_trace",
    "random_delta",
    "replay",
]
