"""Workload traces: deterministic request/delta sequences + a replayer.

A trace is a list of :class:`TraceEvent`; :func:`make_trace` generates
the canonical serving workload the benchmark and the CI smoke job
replay — a cold *concurrent* burst (one full run, the rest batched onto
its in-flight future), repeats that hit the cache, then
``delta_batches`` rounds of (mutate, re-request) which exercise the
warm-start path.

:func:`replay` drives a :class:`~repro.serve.service.ServiceHandle`
through the trace and folds the service's own metrics snapshot plus
per-mode latency statistics into a flat report dict — the exact ``run``
section of a ``service``-kind run-DB record.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.serve.deltas import GraphDelta, random_delta


@dataclass(frozen=True)
class TraceEvent:
    """One step of a replayed workload."""

    kind: str  # "request" | "delta"
    graph: str
    k: int = 0
    concurrency: int = 1  # simultaneous clients for a request event
    delta: GraphDelta | None = None


@dataclass
class TraceReport:
    """What one replay measured (all values JSON-safe scalars)."""

    events: int = 0
    requests: int = 0
    wall_seconds: float = 0.0
    metrics: dict = field(default_factory=dict)
    # per-mode compute times (seconds of the runs that produced results)
    full_walls: list = field(default_factory=list)
    warm_walls: list = field(default_factory=list)
    cuts: dict = field(default_factory=dict)  # mode -> last cut seen

    def to_run_dict(self) -> dict:
        """Flatten into run-DB ``run`` section metrics."""
        m = dict(self.metrics)
        full = float(np.mean(self.full_walls)) if self.full_walls else 0.0
        warm = float(np.mean(self.warm_walls)) if self.warm_walls else 0.0
        out = {
            "events": self.events,
            "requests": self.requests,
            "wall_seconds": self.wall_seconds,
            "requests_per_second": (
                self.requests / self.wall_seconds if self.wall_seconds else 0.0
            ),
            "p50_seconds": m.get("serve.p50_seconds", 0.0),
            "p99_seconds": m.get("serve.p99_seconds", 0.0),
            "cache_hit_rate": m.get("serve.cache_hit_rate", 0.0),
            "cache_hits": m.get("serve.cache_hits", 0),
            "batched": m.get("serve.batched", 0),
            "full_runs": m.get("serve.full_runs", 0),
            "warm_runs": m.get("serve.warm_runs", 0),
            "fallback_drift": m.get("serve.fallback_drift", 0),
            "evictions": m.get("serve.evictions", 0),
            "cache_resident_bytes": m.get("serve.cache_resident_bytes", 0),
            "full_wall_seconds": full,
            "warm_wall_seconds": warm,
            # lower-is-better gate metric: warm compute time relative to a
            # full repartition (the >= 3x speedup claim is this < 1/3)
            "warm_over_full": (warm / full) if full > 0 else 0.0,
        }
        return out


def make_trace(
    graph_name: str,
    graph,
    k: int,
    *,
    seed: int = 0,
    repeat_burst: int = 4,
    delta_batches: int = 4,
    delta_edges: int = 0,
    concurrency: int = 4,
) -> list[TraceEvent]:
    """The canonical serving workload (see module docstring).

    ``delta_edges`` defaults to ~0.5% of the graph's undirected edges per
    batch — small enough that warm starts stay well under any sane drift
    threshold, large enough that the partition genuinely shifts.
    """
    rng = np.random.default_rng(seed)
    if delta_edges <= 0:
        delta_edges = max(4, graph.m // 200)
    # the cold request arrives as a concurrent burst: one client triggers
    # the full run, the rest coalesce onto its in-flight future (the
    # admission batcher's counter is live from event one)
    events: list[TraceEvent] = [
        TraceEvent("request", graph_name, k=k, concurrency=concurrency),
    ]
    for _ in range(max(0, repeat_burst)):
        events.append(TraceEvent("request", graph_name, k=k, concurrency=1))
    for _ in range(delta_batches):
        delta = random_delta(
            graph, rng, n_add=delta_edges, n_remove=delta_edges
        )
        events.append(TraceEvent("delta", graph_name, delta=delta))
        events.append(TraceEvent("request", graph_name, k=k, concurrency=1))
        events.append(TraceEvent("request", graph_name, k=k, concurrency=1))
    return events


def replay(handle, trace: list[TraceEvent]) -> TraceReport:
    """Drive a :class:`ServiceHandle` through a trace, measuring as we go.

    Mutating events keep the trace honest: each delta is applied to the
    service's *current* graph (the trace's deltas were generated against
    the initial graph, which is fine — unresolvable removals are no-ops
    by delta semantics).
    """
    report = TraceReport()
    t0 = time.perf_counter()
    for ev in trace:
        report.events += 1
        if ev.kind == "delta":
            handle.apply_delta(ev.graph, ev.delta)
            continue
        if ev.kind != "request":
            raise ValueError(f"unknown trace event kind {ev.kind!r}")
        if ev.concurrency <= 1:
            results = [handle.partition(ev.graph, ev.k)]
        else:
            results = handle.partition_many(
                [(ev.graph, ev.k)] * ev.concurrency
            )
        report.requests += len(results)
        for r in results:
            report.cuts[r.mode] = int(r.cut)
            if r.mode == "full":
                report.full_walls.append(float(r.wall_seconds))
            elif r.mode == "warm":
                report.warm_walls.append(float(r.wall_seconds))
    report.wall_seconds = time.perf_counter() - t0
    report.metrics = handle.metrics_snapshot()
    return report
