"""Graph deltas: the mutation unit of incremental repartitioning.

A :class:`GraphDelta` is a batch of edge insertions/removals plus
optional vertex-weight updates and vertex additions.  The service
applies deltas to the *finest* level only (the multilevel hierarchy is
never patched — a warm start re-runs refinement on the new finest graph
from the previous assignment), and accumulates the number of actually
changed edges into the drift counter that decides warm start vs full
repartition.

Semantics, chosen so a delta can never produce an invalid graph:

* self-loops in ``add_edges`` are rejected;
* adding an existing edge *replaces* its weight (an idempotent update);
* removing an absent edge is a no-op (and does not count as drift);
* vertex-weight updates replace the weight (must stay positive);
* ``add_vertices`` appends isolated vertices of unit weight.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.builder import from_edges
from repro.graph.csr import CSRGraph


def _as_edge_array(edges) -> np.ndarray:
    arr = np.asarray(edges, dtype=np.int64)
    if arr.size == 0:
        return arr.reshape(0, 2)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"edges must have shape (e, 2), got {arr.shape}")
    return arr


@dataclass(frozen=True)
class GraphDelta:
    """One batch of mutations against a CSR graph."""

    add_edges: np.ndarray = field(
        default_factory=lambda: np.empty((0, 2), dtype=np.int64)
    )
    add_weights: np.ndarray | None = None
    remove_edges: np.ndarray = field(
        default_factory=lambda: np.empty((0, 2), dtype=np.int64)
    )
    vertex_weights: np.ndarray | None = None  # (v, new_weight) pairs
    add_vertices: int = 0

    def __post_init__(self):
        object.__setattr__(self, "add_edges", _as_edge_array(self.add_edges))
        object.__setattr__(
            self, "remove_edges", _as_edge_array(self.remove_edges)
        )
        if self.add_weights is not None:
            w = np.asarray(self.add_weights, dtype=np.int64)
            if len(w) != len(self.add_edges):
                raise ValueError("add_weights must align with add_edges")
            if w.size and w.min() <= 0:
                raise ValueError("edge weights must be positive")
            object.__setattr__(self, "add_weights", w)
        if self.vertex_weights is not None:
            vw = np.asarray(self.vertex_weights, dtype=np.int64)
            if vw.size == 0:
                vw = vw.reshape(0, 2)
            if vw.ndim != 2 or vw.shape[1] != 2:
                raise ValueError("vertex_weights must have shape (v, 2)")
            if vw.size and vw[:, 1].min() <= 0:
                raise ValueError("vertex weights must be positive")
            object.__setattr__(self, "vertex_weights", vw)
        if np.any(self.add_edges[:, 0] == self.add_edges[:, 1]):
            raise ValueError("delta adds a self-loop")
        if self.add_vertices < 0:
            raise ValueError("add_vertices must be >= 0")

    @property
    def num_requested(self) -> int:
        """Upper bound on the number of structural changes requested."""
        nvw = 0 if self.vertex_weights is None else len(self.vertex_weights)
        return len(self.add_edges) + len(self.remove_edges) + nvw

    def to_dict(self) -> dict:
        """JSON round-trip form (the HTTP front end's wire format)."""
        d: dict = {
            "add": self.add_edges.tolist(),
            "remove": self.remove_edges.tolist(),
            "add_vertices": self.add_vertices,
        }
        if self.add_weights is not None:
            d["add_weights"] = self.add_weights.tolist()
        if self.vertex_weights is not None:
            d["vertex_weights"] = self.vertex_weights.tolist()
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "GraphDelta":
        return cls(
            add_edges=np.asarray(d.get("add", []), dtype=np.int64),
            add_weights=(
                np.asarray(d["add_weights"], dtype=np.int64)
                if d.get("add_weights") is not None
                else None
            ),
            remove_edges=np.asarray(d.get("remove", []), dtype=np.int64),
            vertex_weights=(
                np.asarray(d["vertex_weights"], dtype=np.int64)
                if d.get("vertex_weights") is not None
                else None
            ),
            add_vertices=int(d.get("add_vertices", 0)),
        )


def _canonical_keys(edges: np.ndarray, n: int) -> np.ndarray:
    lo = np.minimum(edges[:, 0], edges[:, 1])
    hi = np.maximum(edges[:, 0], edges[:, 1])
    return lo * n + hi


def apply_delta(graph: CSRGraph, delta: GraphDelta) -> tuple[CSRGraph, int]:
    """Apply ``delta`` to a CSR graph; returns ``(new_graph, changed)``.

    ``changed`` counts the *actual* structural changes — edges really
    removed, edges added or re-weighted, vertex weights really changed —
    which is what feeds the service's cumulative drift counter.
    """
    n = graph.n + delta.add_vertices
    maxv = max(
        int(delta.add_edges.max(initial=-1)),
        int(delta.remove_edges.max(initial=-1)),
    )
    if maxv >= n:
        raise ValueError(
            f"delta references vertex {maxv} but the graph has n={n}"
        )

    # existing undirected edges, canonical (lo, hi) with weights
    src = np.repeat(np.arange(graph.n, dtype=np.int64), graph.degrees)
    mask = src < graph.adjncy
    eu = src[mask]
    ev = graph.adjncy[mask]
    ew = np.asarray(graph.adjwgt)[mask]
    keys = eu * n + ev
    changed = 0

    if len(delta.remove_edges):
        rkeys = np.unique(_canonical_keys(delta.remove_edges, n))
        hit = np.isin(keys, rkeys)
        changed += int(hit.sum())
        keep = ~hit
        eu, ev, ew, keys = eu[keep], ev[keep], ew[keep], keys[keep]

    if len(delta.add_edges):
        akeys = _canonical_keys(delta.add_edges, n)
        aw = (
            delta.add_weights
            if delta.add_weights is not None
            else np.ones(len(akeys), dtype=np.int64)
        )
        # dedupe within the batch: the last occurrence of a pair wins
        _, last = np.unique(akeys[::-1], return_index=True)
        sel = len(akeys) - 1 - last
        akeys, aw = akeys[sel], aw[sel]
        # replace weights of edges that already exist
        order = np.argsort(keys)
        pos = np.searchsorted(keys[order], akeys)
        pos_ok = pos < len(keys)
        exists = np.zeros(len(akeys), dtype=bool)
        exists[pos_ok] = keys[order][pos[pos_ok]] == akeys[pos_ok]
        if exists.any():
            tgt = order[pos[exists]]
            changed += int((ew[tgt] != aw[exists]).sum())
            ew = ew.copy()
            ew[tgt] = aw[exists]
        fresh = ~exists
        if fresh.any():
            changed += int(fresh.sum())
            eu = np.concatenate([eu, akeys[fresh] // n])
            ev = np.concatenate([ev, akeys[fresh] % n])
            ew = np.concatenate([ew, aw[fresh]])

    # vertex weights
    vwgt = None
    if graph.has_vertex_weights:
        vwgt = np.asarray(graph.vwgt).copy()
        if delta.add_vertices:
            vwgt = np.concatenate(
                [vwgt, np.ones(delta.add_vertices, dtype=np.int64)]
            )
    if delta.vertex_weights is not None and len(delta.vertex_weights):
        vs = delta.vertex_weights[:, 0]
        ws = delta.vertex_weights[:, 1]
        if int(vs.max(initial=-1)) >= n or int(vs.min(initial=0)) < 0:
            raise ValueError("vertex_weights references out-of-range vertex")
        if vwgt is None:
            vwgt = np.ones(n, dtype=np.int64)
        changed += int((vwgt[vs] != ws).sum())
        vwgt[vs] = ws
        if not np.any(vwgt != 1):
            vwgt = None  # degenerated back to unit weights

    edges = np.stack([eu, ev], axis=1)
    if ew.size and not np.any(ew != 1):
        ew = None  # keep unit-weight graphs unit-weight (8-byte view)
    new_graph = from_edges(n, edges, ew, vwgt=vwgt, symmetrize=True)
    return new_graph, changed


def random_delta(
    graph: CSRGraph,
    rng: np.random.Generator,
    *,
    n_add: int = 0,
    n_remove: int = 0,
    weighted: bool = False,
) -> GraphDelta:
    """A reproducible random delta: used by the trace generator and tests.

    Removals sample existing edges; additions sample uniform non-loop
    pairs (which may or may not already exist — realistic churn contains
    both).
    """
    remove = np.empty((0, 2), dtype=np.int64)
    if n_remove and graph.m:
        src = np.repeat(np.arange(graph.n, dtype=np.int64), graph.degrees)
        mask = src < graph.adjncy
        eu, ev = src[mask], graph.adjncy[mask]
        idx = rng.choice(len(eu), size=min(n_remove, len(eu)), replace=False)
        remove = np.stack([eu[idx], ev[idx]], axis=1)
    add = np.empty((0, 2), dtype=np.int64)
    weights = None
    if n_add and graph.n >= 2:
        u = rng.integers(0, graph.n, size=n_add, dtype=np.int64)
        v = rng.integers(0, graph.n - 1, size=n_add, dtype=np.int64)
        v = np.where(v >= u, v + 1, v)  # never a self-loop
        add = np.stack([u, v], axis=1)
        if weighted:
            weights = rng.integers(1, 8, size=n_add, dtype=np.int64)
    return GraphDelta(add_edges=add, add_weights=weights, remove_edges=remove)
