"""Byte-budgeted LRU cache for the partitioning service.

Holds heterogeneous entries — compressed graphs, finished partitions,
warm-start seeds — each charged at its real byte size.  Eviction is
strict LRU over the shared budget, so one giant graph can push out many
small partitions and vice versa; the service's correctness never depends
on residency (a miss merely costs a recompute).

Every resident byte is registered with the :class:`MemoryTracker` ledger
under the ``serve-cache`` category, so the obs memory waterfall of a
serving process shows cache residency next to the partitioner's own
working set, and a leak (bytes left registered after eviction or
:meth:`clear`) is caught by the same ``assert_empty`` discipline the
core uses.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.memory.tracker import MemoryTracker


@dataclass
class CacheStats:
    """Monotone counters; ``resident_bytes``/``entries`` are gauges."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    rejected: int = 0  # entries larger than the whole budget
    resident_bytes: int = 0
    entries: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "rejected": self.rejected,
            "resident_bytes": self.resident_bytes,
            "entries": self.entries,
            "hit_rate": self.hit_rate,
        }


class _Entry:
    __slots__ = ("value", "nbytes", "aid")

    def __init__(self, value, nbytes: int, aid: int):
        self.value = value
        self.nbytes = nbytes
        self.aid = aid


class ByteLRUCache:
    """LRU mapping of hashable keys to values with explicit byte sizes."""

    def __init__(
        self,
        budget_bytes: int,
        *,
        tracker: MemoryTracker | None = None,
        category: str = "serve-cache",
    ) -> None:
        if budget_bytes < 0:
            raise ValueError("budget_bytes must be >= 0")
        self.budget_bytes = int(budget_bytes)
        self._tracker = tracker if tracker is not None else MemoryTracker()
        self._category = category
        self._entries: OrderedDict[object, _Entry] = OrderedDict()
        self.stats = CacheStats()
        # the service touches the cache from the event-loop thread and the
        # partitioner executor thread; every public op holds this lock
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    def get(self, key):
        """Return the cached value or ``None``; a hit refreshes recency."""
        with self._lock:
            e = self._entries.get(key)
            if e is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return e.value

    def peek(self, key):
        """Like :meth:`get` but touches neither recency nor hit counters."""
        with self._lock:
            e = self._entries.get(key)
            return None if e is None else e.value

    def __contains__(self, key) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self):
        with self._lock:
            return list(self._entries.keys())

    # ------------------------------------------------------------------ #
    def put(self, key, value, nbytes: int) -> bool:
        """Insert (or replace) an entry; returns False if it can never fit."""
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        with self._lock:
            if nbytes > self.budget_bytes:
                # an entry bigger than the whole cache: drop on the floor
                # rather than flushing everything for a value that still
                # cannot be kept
                self.stats.rejected += 1
                return False
            if key in self._entries:
                self._drop(key, evicted=False)
            self._evict_down_to(self.budget_bytes - nbytes)
            aid = self._tracker.alloc(
                f"serve-cache:{key}", nbytes, self._category
            )
            self._entries[key] = _Entry(value, nbytes, aid)
            self.stats.insertions += 1
            self.stats.resident_bytes += nbytes
            self.stats.entries += 1
            return True

    def invalidate(self, key) -> bool:
        """Drop one entry if present (not counted as an eviction)."""
        with self._lock:
            if key not in self._entries:
                return False
            self._drop(key, evicted=False)
            return True

    def invalidate_where(self, predicate) -> int:
        """Drop every entry whose key satisfies ``predicate``."""
        with self._lock:
            doomed = [k for k in self._entries if predicate(k)]
            for k in doomed:
                self._drop(k, evicted=False)
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            for k in list(self._entries):
                self._drop(k, evicted=False)

    # ------------------------------------------------------------------ #
    def _drop(self, key, *, evicted: bool) -> None:
        e = self._entries.pop(key)
        self._tracker.free(e.aid)
        self.stats.resident_bytes -= e.nbytes
        self.stats.entries -= 1
        if evicted:
            self.stats.evictions += 1

    def _evict_down_to(self, limit: int) -> None:
        while self._entries and self.stats.resident_bytes > limit:
            oldest = next(iter(self._entries))
            self._drop(oldest, evicted=True)

    @property
    def resident_bytes(self) -> int:
        return self.stats.resident_bytes
