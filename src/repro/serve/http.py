"""Minimal HTTP/1.1 front end over :class:`PartitionService`.

Stdlib-only (asyncio streams): the container bakes no web framework, and
the protocol surface is four routes of JSON:

* ``GET  /healthz``            -- liveness + registered graphs
* ``GET  /metrics``            -- the service metrics snapshot
* ``POST /partition``          -- ``{"graph": name, "k": int,
  "epsilon"?: float, "include_partition"?: bool, "force_full"?: bool}``
* ``POST /delta``              -- ``{"graph": name, "add": [[u,v],...],
  "remove": [[u,v],...], "add_weights"?: [...],
  "vertex_weights"?: [[v,w],...], "add_vertices"?: int}``

Errors come back as ``{"error", "code", "detail"}`` with 4xx/5xx status
— the :class:`ServiceError` wire form.  One connection handles one
request (``Connection: close``): serving partitions is compute-bound,
so keep-alive buys nothing and complicates shutdown.
"""

from __future__ import annotations

import asyncio
import json

from repro.serve.deltas import GraphDelta
from repro.serve.service import PartitionService, ServiceError

_MAX_BODY = 64 * 1024 * 1024  # deltas can be large; a DoS guard regardless

_STATUS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


def _response(status: int, payload: dict) -> bytes:
    body = (json.dumps(payload) + "\n").encode()
    head = (
        f"HTTP/1.1 {status} {_STATUS.get(status, 'OK')}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n\r\n"
    ).encode()
    return head + body


_ERROR_STATUS = {
    "unknown-graph": 404,
    "bad-request": 400,
    "shutdown": 500,
    "partitioner-error": 500,
}


class HttpFrontend:
    """Bind a :class:`PartitionService` to a TCP port."""

    def __init__(self, service: PartitionService) -> None:
        self.service = service
        self._server: asyncio.AbstractServer | None = None

    async def start(self, host: str = "127.0.0.1", port: int = 8642):
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        return self._server.sockets[0].getsockname()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def port(self) -> int | None:
        if self._server is None or not self._server.sockets:
            return None
        return self._server.sockets[0].getsockname()[1]

    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload = await self._handle_request(reader)
        except ServiceError as e:
            status, payload = _ERROR_STATUS.get(e.code, 500), e.to_dict()
        except Exception as e:  # noqa: BLE001 - last-resort 500
            status, payload = 500, {
                "error": f"{type(e).__name__}: {e}",
                "code": "internal",
                "detail": {},
            }
        try:
            writer.write(_response(status, payload))
            await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_request(self, reader) -> tuple[int, dict]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise ServiceError("bad-request", "empty request")
        parts = request_line.split()
        if len(parts) < 2:
            raise ServiceError("bad-request", f"malformed: {request_line!r}")
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            if line.lower().startswith("content-length:"):
                content_length = int(line.split(":", 1)[1])
        if content_length > _MAX_BODY:
            return 413, {
                "error": "body too large",
                "code": "bad-request",
                "detail": {"max_bytes": _MAX_BODY},
            }
        body = {}
        if content_length:
            raw = await reader.readexactly(content_length)
            try:
                body = json.loads(raw)
            except json.JSONDecodeError as e:
                raise ServiceError(
                    "bad-request", f"invalid JSON body: {e}"
                ) from e

        if method == "GET" and path == "/healthz":
            return 200, {"ok": True, "graphs": self.service.graph_names()}
        if method == "GET" and path == "/metrics":
            return 200, self.service.metrics_snapshot()
        if method == "POST" and path == "/partition":
            return await self._partition(body)
        if method == "POST" and path == "/delta":
            return await self._delta(body)
        if path in ("/partition", "/delta", "/metrics", "/healthz"):
            return 405, {
                "error": f"{method} not allowed on {path}",
                "code": "bad-request",
                "detail": {},
            }
        return 404, {
            "error": f"no route {path}",
            "code": "bad-request",
            "detail": {},
        }

    async def _partition(self, body: dict) -> tuple[int, dict]:
        if "graph" not in body or "k" not in body:
            raise ServiceError(
                "bad-request", "POST /partition needs 'graph' and 'k'"
            )
        result = await self.service.partition(
            str(body["graph"]),
            int(body["k"]),
            epsilon=(
                float(body["epsilon"]) if body.get("epsilon") is not None
                else None
            ),
            force_full=bool(body.get("force_full", False)),
        )
        return 200, result.to_dict(
            include_partition=bool(body.get("include_partition", False))
        )

    async def _delta(self, body: dict) -> tuple[int, dict]:
        if "graph" not in body:
            raise ServiceError("bad-request", "POST /delta needs 'graph'")
        try:
            delta = GraphDelta.from_dict(body)
        except ValueError as e:
            raise ServiceError("bad-request", str(e)) from e
        info = await self.service.apply_delta(str(body["graph"]), delta)
        return 200, info


async def serve_forever(
    service: PartitionService,
    *,
    host: str = "127.0.0.1",
    port: int = 8642,
    ready_callback=None,
) -> None:
    """Run the HTTP front end until cancelled (the ``repro serve`` loop)."""
    frontend = HttpFrontend(service)
    addr = await frontend.start(host, port)
    if ready_callback is not None:
        ready_callback(addr)
    try:
        await asyncio.Event().wait()  # until cancelled
    finally:
        await frontend.aclose()
        await service.aclose()
