"""Allocation ledger with phase-scoped peak tracking.

The tracker mirrors how the paper measures memory (Figures 1, 2, 4, 6, 7):
peak resident bytes, broken down by algorithm phase and by data-structure
category.  Components call :meth:`MemoryTracker.alloc` when they create a
data structure and :meth:`MemoryTracker.free` when they drop it; numpy-backed
structures typically pass ``array.nbytes``.

Overcommitted allocations (one-pass contraction's coarse edge array, the
compressed edge array during single-pass I/O) reserve a *virtual* size but
are charged only for the bytes actually touched, plus one 4 KiB page --
exactly the semantics of the paper's ``mmap``-overcommit trick [18].
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

PAGE_SIZE = 4096


class MemoryBudgetExceeded(MemoryError):
    """Raised when an allocation would push the ledger past its budget.

    Models running out of physical memory on a machine of a given size --
    the paper's OOM results (KaMinPar on hyperlink, the full gain table on
    kmer_V1r at k=1000, ParMETIS/XtraPuLP in Fig. 8) are reproduced by
    giving the tracker the scaled machine size as a budget.
    """

    def __init__(self, requested: int, current: int, budget: int, name: str):
        super().__init__(
            f"allocating {requested} bytes for {name!r} exceeds budget "
            f"{budget} (current {current})"
        )
        self.requested = requested
        self.current = current
        self.budget = budget


@dataclass
class Allocation:
    """A live allocation registered with the tracker.

    ``virtual_bytes`` is the reserved (overcommitted) size; ``touched_bytes``
    is what counts against the ledger.  For ordinary allocations the two are
    equal.
    """

    aid: int
    name: str
    category: str
    virtual_bytes: int
    touched_bytes: int
    overcommitted: bool = False

    @property
    def charged_bytes(self) -> int:
        if self.overcommitted:
            return min(self.virtual_bytes, self.touched_bytes + PAGE_SIZE)
        return self.touched_bytes


@dataclass
class PhaseStats:
    """Peak and current bytes observed while a phase was on top of the stack."""

    name: str
    peak_bytes: int = 0
    peak_breakdown: dict[str, int] = field(default_factory=dict)
    enter_count: int = 0


class MemoryTracker:
    """Ledger of live allocations with per-phase peaks.

    Phases form a stack (``with tracker.phase("coarsening"):``); a sample is
    attributed to every phase currently on the stack, so nested phases such
    as ``partition/coarsening/clustering/level0`` aggregate naturally.
    """

    def __init__(self, budget: int | None = None) -> None:
        self._ids = itertools.count(1)
        self._live: dict[int, Allocation] = {}
        self._current_bytes = 0
        self._peak_bytes = 0
        self._peak_breakdown: dict[str, int] = {}
        self._phase_stack: list[str] = []
        self._phases: dict[str, PhaseStats] = {}
        self.budget = budget

    # ------------------------------------------------------------------ #
    # allocation API
    # ------------------------------------------------------------------ #
    def alloc(
        self,
        name: str,
        nbytes: int,
        category: str = "aux",
        *,
        overcommit: bool = False,
        touched: int | None = None,
    ) -> int:
        """Register an allocation and return its handle.

        ``overcommit=True`` reserves ``nbytes`` virtually but charges only
        ``touched`` bytes (default 0) plus one page.
        """
        if nbytes < 0:
            raise ValueError(f"negative allocation size: {nbytes}")
        aid = next(self._ids)
        if overcommit:
            a = Allocation(aid, name, category, nbytes, touched or 0, True)
        else:
            if touched is not None and touched != nbytes:
                raise ValueError("touched only applies to overcommitted allocations")
            a = Allocation(aid, name, category, nbytes, nbytes, False)
        self._check_budget(a.charged_bytes, name)
        self._live[aid] = a
        self._current_bytes += a.charged_bytes
        self._sample()
        return aid

    def _check_budget(self, delta: int, name: str) -> None:
        if self.budget is not None and self._current_bytes + delta > self.budget:
            raise MemoryBudgetExceeded(
                delta, self._current_bytes, self.budget, name
            )

    def touch(self, aid: int, touched_bytes: int) -> None:
        """Raise the touched-byte count of an overcommitted allocation.

        Touches are monotone: shrinking is a no-op, mirroring the fact that
        the OS never un-touches a page.
        """
        a = self._live[aid]
        if not a.overcommitted:
            raise ValueError(f"allocation {a.name!r} is not overcommitted")
        if touched_bytes > a.virtual_bytes:
            raise ValueError(
                f"touched {touched_bytes} exceeds reservation {a.virtual_bytes} "
                f"for {a.name!r}"
            )
        if touched_bytes <= a.touched_bytes:
            return
        before = a.charged_bytes
        old_touched = a.touched_bytes
        a.touched_bytes = touched_bytes
        delta = a.charged_bytes - before
        try:
            self._check_budget(delta, a.name)
        except MemoryBudgetExceeded:
            a.touched_bytes = old_touched
            raise
        self._current_bytes += delta
        self._sample()

    def resize(self, aid: int, nbytes: int) -> None:
        """Resize an ordinary allocation (e.g. a growing numpy array)."""
        a = self._live[aid]
        if a.overcommitted:
            raise ValueError("use touch() for overcommitted allocations")
        self._check_budget(nbytes - a.touched_bytes, a.name)
        self._current_bytes += nbytes - a.touched_bytes
        a.virtual_bytes = a.touched_bytes = nbytes
        self._sample()

    def free(self, aid: int) -> None:
        a = self._live.pop(aid)
        self._current_bytes -= a.charged_bytes

    # ------------------------------------------------------------------ #
    # phases
    # ------------------------------------------------------------------ #
    def phase(self, name: str) -> "_PhaseContext":
        return _PhaseContext(self, name)

    def _enter_phase(self, name: str) -> None:
        path = "/".join(self._phase_stack + [name])
        self._phase_stack.append(name)
        stats = self._phases.setdefault(path, PhaseStats(path))
        stats.enter_count += 1
        self._sample()

    def _exit_phase(self) -> None:
        self._phase_stack.pop()

    @property
    def current_phase(self) -> str:
        return "/".join(self._phase_stack)

    # ------------------------------------------------------------------ #
    # sampling & queries
    # ------------------------------------------------------------------ #
    def _sample(self) -> None:
        cur = self._current_bytes
        if cur > self._peak_bytes:
            self._peak_bytes = cur
            self._peak_breakdown = self.breakdown()
        for depth in range(len(self._phase_stack)):
            path = "/".join(self._phase_stack[: depth + 1])
            stats = self._phases[path]
            if cur > stats.peak_bytes:
                stats.peak_bytes = cur
                stats.peak_breakdown = self.breakdown()

    def breakdown(self) -> dict[str, int]:
        """Live bytes per category."""
        out: dict[str, int] = {}
        for a in self._live.values():
            out[a.category] = out.get(a.category, 0) + a.charged_bytes
        return out

    @property
    def current_bytes(self) -> int:
        return self._current_bytes

    @property
    def peak_bytes(self) -> int:
        return self._peak_bytes

    @property
    def peak_breakdown(self) -> dict[str, int]:
        return dict(self._peak_breakdown)

    def phase_peak(self, path: str) -> int:
        return self._phases[path].peak_bytes if path in self._phases else 0

    def phases(self) -> dict[str, PhaseStats]:
        return dict(self._phases)

    def live_allocations(self) -> list[Allocation]:
        return list(self._live.values())

    def assert_empty(self, *, ignore_categories: tuple[str, ...] = ()) -> None:
        """Raise if allocations are still live (leak detection in tests)."""
        leaks = [
            a for a in self._live.values() if a.category not in ignore_categories
        ]
        if leaks:
            names = ", ".join(f"{a.name}({a.charged_bytes}B)" for a in leaks[:10])
            raise AssertionError(f"{len(leaks)} live allocations remain: {names}")


class _PhaseContext:
    def __init__(self, tracker: MemoryTracker, name: str) -> None:
        self._tracker = tracker
        self._name = name

    def __enter__(self) -> MemoryTracker:
        self._tracker._enter_phase(self._name)
        return self._tracker

    def __exit__(self, *exc: object) -> None:
        self._tracker._exit_phase()


class NullTracker(MemoryTracker):
    """Tracker that accepts the full API but records nothing.

    Useful for benchmarks where ledger upkeep itself would dominate runtime.
    """

    def alloc(self, name, nbytes, category="aux", *, overcommit=False, touched=None):  # type: ignore[override]
        return 0

    def touch(self, aid, touched_bytes):  # type: ignore[override]
        pass

    def resize(self, aid, nbytes):  # type: ignore[override]
        pass

    def free(self, aid):  # type: ignore[override]
        pass
