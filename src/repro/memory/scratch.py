"""Tracked scratch allocation: ledger-visible transient numpy buffers.

The hot decode paths (:mod:`repro.graph.varint`, :mod:`repro.graph.access`)
allocate short-lived scratch arrays sized by the *input* (``count`` decoded
values, gathered neighborhood lengths).  Those bytes are real memory the
paper's accounting would see, but they historically bypassed the
:class:`~repro.memory.tracker.MemoryTracker` ledger -- exactly the class of
leak the ``repro lint`` untracked-allocation pass exists to catch.

This module closes the gap without threading a tracker through every codec
signature: a process-wide *scratch ledger* can be installed (mirroring
``graph.access.install_tracer``), and the ``tracked_*`` constructors charge
each buffer to it under the ``"scratch"`` category.  The charge lives as
long as the array does -- a ``weakref.finalize`` frees the ledger entry when
the buffer is collected -- so concurrent scratch shows up in phase peaks
with correct lifetimes.

With no ledger installed (the default, and the production fast path) every
wrapper is a plain numpy call behind one module-global ``None`` check, so
performance-sensitive callers pay nothing.  Runs opt in through
``config.obs.track_scratch`` (wired in the partitioner driver) or by
calling :func:`install_ledger` directly.
"""

from __future__ import annotations

import weakref

import numpy as np

_ledger = None  # MemoryTracker | None


def install_ledger(tracker) -> None:
    """Charge subsequent tracked scratch allocations to ``tracker``."""
    global _ledger
    _ledger = tracker


def uninstall_ledger() -> None:
    global _ledger
    _ledger = None


def _charge(arr: np.ndarray, name: str) -> np.ndarray:
    led = _ledger
    if led is not None and arr.nbytes:
        aid = led.alloc(name, arr.nbytes, "scratch")
        # tie the ledger entry to the buffer's lifetime: the entry is freed
        # when the array is garbage-collected, however long callers hold it
        weakref.finalize(arr, led.free, aid)
    return arr


def tracked_empty(shape, dtype=np.int64, *, name: str = "scratch") -> np.ndarray:
    """``np.empty`` that registers the buffer with the scratch ledger."""
    return _charge(np.empty(shape, dtype=dtype), name)


def tracked_zeros(shape, dtype=np.int64, *, name: str = "scratch") -> np.ndarray:
    """``np.zeros`` that registers the buffer with the scratch ledger."""
    return _charge(np.zeros(shape, dtype=dtype), name)


def tracked_ones(shape, dtype=np.int64, *, name: str = "scratch") -> np.ndarray:
    """``np.ones`` that registers the buffer with the scratch ledger."""
    return _charge(np.ones(shape, dtype=dtype), name)


def tracked_full(
    shape, fill_value, dtype=np.int64, *, name: str = "scratch"
) -> np.ndarray:
    """``np.full`` that registers the buffer with the scratch ledger."""
    return _charge(np.full(shape, fill_value, dtype=dtype), name)
