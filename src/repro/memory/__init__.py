"""Memory accounting substrate.

The paper's headline claims are *memory* claims: per-thread rating maps cost
``O(n*p)`` bytes, the sparse gain table costs ``O(m)`` instead of ``O(n*k)``,
graph compression shrinks the input 3-26x, and the combination reduces peak
RSS 16-fold on web graphs.  Measuring Python-process RSS would drown those
signals in interpreter noise, so this package provides an *allocation
ledger*: every data structure in the system registers its exact byte
footprint (numpy ``nbytes``, codec byte lengths, modelled per-thread
buffers), and :class:`MemoryTracker` records running totals, global peaks and
per-phase peaks.  Virtual-memory overcommitment (used by one-pass contraction
and single-pass compression) is modelled by charging only *touched* bytes.

See DESIGN.md section 2 for why this substitution preserves the paper's
measurements.
"""

from repro.memory.tracker import (
    Allocation,
    MemoryBudgetExceeded,
    MemoryTracker,
    PhaseStats,
)
from repro.memory.report import MemoryReport, render_phase_breakdown
from repro.memory.scratch import (
    install_ledger,
    tracked_empty,
    tracked_full,
    tracked_ones,
    tracked_zeros,
    uninstall_ledger,
)

__all__ = [
    "Allocation",
    "MemoryBudgetExceeded",
    "MemoryTracker",
    "PhaseStats",
    "MemoryReport",
    "render_phase_breakdown",
    "install_ledger",
    "tracked_empty",
    "tracked_full",
    "tracked_ones",
    "tracked_zeros",
    "uninstall_ledger",
]
