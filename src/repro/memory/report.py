"""Rendering of memory ledgers into the breakdowns shown in the paper.

:func:`render_phase_breakdown` reproduces the layout of Figure 2 (memory per
phase, per level, split by data-structure category) as an ASCII table;
:class:`MemoryReport` aggregates tracker state for benchmark harnesses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.tracker import MemoryTracker


def _fmt_bytes(n: int) -> str:
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024 or unit == "TiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{n} B"
        n /= 1024  # type: ignore[assignment]
    raise AssertionError("unreachable")


@dataclass
class MemoryReport:
    """Summary of a tracker after a partitioning run."""

    peak_bytes: int
    peak_breakdown: dict[str, int]
    phase_peaks: dict[str, int]

    @classmethod
    def from_tracker(cls, tracker: MemoryTracker) -> "MemoryReport":
        return cls(
            peak_bytes=tracker.peak_bytes,
            peak_breakdown=tracker.peak_breakdown,
            phase_peaks={p: s.peak_bytes for p, s in tracker.phases().items()},
        )

    def dominant_category(self) -> str:
        if not self.peak_breakdown:
            return "none"
        return max(self.peak_breakdown.items(), key=lambda kv: kv[1])[0]


def render_phase_breakdown(tracker: MemoryTracker, *, max_depth: int = 3) -> str:
    """Render per-phase peak memory as an indented ASCII tree (Figure 2)."""
    lines = [f"peak memory: {_fmt_bytes(tracker.peak_bytes)}"]
    for path in sorted(tracker.phases()):
        depth = path.count("/")
        if depth >= max_depth:
            continue
        stats = tracker.phases()[path]
        indent = "  " * depth
        name = path.rsplit("/", 1)[-1]
        top = sorted(stats.peak_breakdown.items(), key=lambda kv: -kv[1])[:3]
        cats = ", ".join(f"{c}={_fmt_bytes(b)}" for c, b in top)
        lines.append(f"{indent}{name}: peak {_fmt_bytes(stats.peak_bytes)} ({cats})")
    return "\n".join(lines)
