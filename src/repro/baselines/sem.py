"""Semi-external multilevel partitioning (Akhremtsev et al. [35]).

Semi-external algorithms keep only O(n) auxiliary arrays in memory; the
edge list lives on disk and is *streamed* once per pass.  The algorithm:

1. several streamed label-propagation passes produce a clustering,
2. the contracted graph (small enough to fit) is partitioned in memory
   with the full multilevel algorithm,
3. the partition is projected back and improved with streamed
   size-constrained LP passes (FM is out of reach in this model -- the
   paper notes sophisticated heuristics "seem difficult").

Table IV's pattern follows from the structure: memory close to TeraPart's
compressed footprint (O(n) + coarse graph), running time an order of
magnitude higher (every pass re-streams all edges from storage and the
refinement is weaker per pass), and slightly worse cuts (fewer hierarchy
levels, no FM on the fine levels).

The simulation charges only the O(n) arrays plus a stream buffer to the
ledger and counts streamed bytes; each pass really iterates the full edge
set.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

import repro
from repro.core import config as C
from repro.core.partition import PartitionedGraph, max_block_weight
from repro.graph.access import chunk_adjacency, segment_reduce_ratings
from repro.memory.tracker import MemoryTracker


@dataclass
class SemResult:
    partition: np.ndarray
    cut: int
    imbalance: float
    balanced: bool
    wall_seconds: float
    peak_bytes: int
    streamed_bytes: int
    passes: int
    modeled_seconds: float = 0.0


STREAM_CHUNK = 1024


def _streamed_lp_pass(
    graph, labels, label_weights, vwgt, cap, rng, tracker, stream_bytes
):
    """One pass over the streamed edge list updating labels in place."""
    n = graph.n
    order = rng.permutation(n).astype(np.int64)
    moved = 0
    for start in range(0, n, STREAM_CHUNK):
        cidx = order[start : start + STREAM_CHUNK]
        owner, nbrs, wgts = chunk_adjacency(graph, cidx)
        stream_bytes[0] += 16 * len(owner)
        if len(owner) == 0:
            continue
        po, pl, pr = segment_reduce_ratings(owner, labels[nbrs], wgts, n)
        us = cidx[po]
        cur = labels[us]
        is_cur = pl == cur
        rank = 2 * pr + is_cur
        ordc = np.lexsort((rank, po))
        last = np.empty(len(ordc), dtype=bool)
        last[-1] = True
        last[:-1] = po[ordc][1:] != po[ordc][:-1]
        best = ordc[last]
        for o, l in zip(po[best].tolist(), pl[best].tolist()):
            u = int(cidx[o])
            if labels[u] == l:
                continue
            w = int(vwgt[u])
            if label_weights[l] + w > cap:
                continue
            label_weights[labels[u]] -= w
            label_weights[l] += w
            labels[u] = l
            moved += 1
    return moved


def sem_partition(
    graph,
    k: int,
    *,
    epsilon: float = 0.03,
    seed: int = 0,
    clustering_passes: int = 5,
    refinement_passes: int = 3,
    tracker: MemoryTracker | None = None,
) -> SemResult:
    """Semi-external multilevel partitioning."""
    tracker = tracker or MemoryTracker()
    rng = np.random.default_rng(seed)
    t0 = time.perf_counter()
    n = graph.n
    vwgt = np.asarray(graph.vwgt)
    stream_bytes = [0]
    passes = 0

    # O(n) in-memory state: labels, label weights, stream buffer
    aids = [
        tracker.alloc("labels", 8 * n, "labels"),
        tracker.alloc("label-weights", 8 * n, "labels"),
        tracker.alloc(
            "stream-buffer",
            16 * STREAM_CHUNK * max(1, int(np.ceil(graph.degrees.mean()))),
            "buffer",
        ),
    ]

    labels = np.arange(n, dtype=np.int64)
    label_weights = vwgt.astype(np.int64).copy()
    cap = max(1, graph.total_vertex_weight // max(32 * k, 1))
    for _ in range(clustering_passes):
        passes += 1
        if not _streamed_lp_pass(
            graph, labels, label_weights, vwgt, cap, rng, tracker, stream_bytes
        ):
            break

    # contract (streamed aggregation; coarse graph fits in memory)
    leaders = np.unique(labels)
    n_coarse = len(leaders)
    remap = np.full(n, -1, dtype=np.int64)
    remap[leaders] = np.arange(n_coarse, dtype=np.int64)
    f2c = remap[labels]
    from repro.core.coarsening.contraction import aggregate_coarse_edges

    cu, cv, w = aggregate_coarse_edges(graph, f2c, n_coarse)
    stream_bytes[0] += 16 * graph.num_directed_edges
    passes += 1
    degrees = np.bincount(cu, minlength=n_coarse).astype(np.int64)
    indptr = np.zeros(n_coarse + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    from repro.graph.csr import CSRGraph

    cvw = np.zeros(n_coarse, dtype=np.int64)
    np.add.at(cvw, f2c, vwgt)
    unit = bool(len(w) == 0 or np.all(w == 1))
    coarse = CSRGraph(
        indptr, cv, None if unit else w, cvw, sorted_neighborhoods=True
    )
    coarse_aid = tracker.alloc("coarse-graph", coarse.nbytes, "graph")

    # in-memory multilevel on the coarse graph
    inner = repro.partition(
        coarse, k, C.terapart(seed=seed, compress_input=False), tracker=tracker
    )
    part = inner.partition[f2c].astype(np.int32)
    tracker.free(coarse_aid)

    # streamed LP refinement on the full graph
    lmax = max_block_weight(graph.total_vertex_weight, k, epsilon)
    block_weights = np.zeros(k, dtype=np.int64)
    np.add.at(block_weights, part, vwgt)
    for _ in range(refinement_passes):
        passes += 1
        moved = 0
        order = rng.permutation(n).astype(np.int64)
        for start in range(0, n, STREAM_CHUNK):
            cidx = order[start : start + STREAM_CHUNK]
            owner, nbrs, wgts = chunk_adjacency(graph, cidx)
            stream_bytes[0] += 16 * len(owner)
            if len(owner) == 0:
                continue
            po, pb, pr = segment_reduce_ratings(
                owner, part[nbrs].astype(np.int64), wgts, k
            )
            us = cidx[po]
            cur = part[us].astype(np.int64)
            cur_aff = np.zeros(len(cidx), dtype=np.int64)
            is_cur = pb == cur
            cur_aff[po[is_cur]] = pr[is_cur]
            gain = pr - cur_aff[po]
            ok = ~is_cur & (gain > 0)
            if not np.any(ok):
                continue
            po2, pb2, g2 = po[ok], pb[ok], gain[ok]
            ordc = np.lexsort((g2, po2))
            last = np.empty(len(ordc), dtype=bool)
            last[-1] = True
            last[:-1] = po2[ordc][1:] != po2[ordc][:-1]
            for o, b in zip(po2[ordc[last]].tolist(), pb2[ordc[last]].tolist()):
                u = int(cidx[o])
                w_ = int(vwgt[u])
                if block_weights[b] + w_ > lmax:
                    continue
                block_weights[part[u]] -= w_
                block_weights[b] += w_
                part[u] = b
                moved += 1
        if moved == 0:
            break

    for a in aids:
        tracker.free(a)
    pg = PartitionedGraph(graph, k, part)
    # modeled time: every pass re-streams the edge list from SSD
    # (~2 GB/s) plus sequential-ish compute on the streamed edges; this is
    # the mechanism behind Table IV's order-of-magnitude slowdown.
    ssd_bandwidth = 2e9
    compute_rate = 30e6  # edges/s on the 16-core comparison machine
    modeled = stream_bytes[0] / ssd_bandwidth + (
        stream_bytes[0] / 16
    ) / compute_rate
    return SemResult(
        partition=part,
        cut=pg.cut_weight(),
        imbalance=pg.imbalance(),
        balanced=pg.is_balanced(epsilon),
        wall_seconds=time.perf_counter() - t0,
        peak_bytes=tracker.peak_bytes,
        streamed_bytes=stream_bytes[0],
        passes=passes,
        modeled_seconds=modeled,
    )
