"""XtraPuLP-style single-level k-way label propagation partitioner [7], [33].

XtraPuLP scales to trillion-edge graphs across thousands of nodes precisely
*because* it skips the multilevel framework: it initializes k blocks and
runs constrained label propagation directly on the input graph, alternating
balance-focused and cut-focused phases.  The cost is solution quality -- the
paper measures 5.56x-68.44x higher cuts than xTeraPart (Table III), with the
gap largest on power-law (rhg) graphs, and balance violations on rgg.

This reimplementation follows the PuLP scheme: random block initialization,
degree-weighted LP with a multiplicative balance penalty, a fixed number of
outer iterations.  Memory is O(n + k) beyond the graph, which is why it
never OOMs where multilevel systems do.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.partition import PartitionedGraph, max_block_weight
from repro.graph.access import chunk_adjacency, segment_reduce_ratings
from repro.memory.tracker import MemoryTracker


@dataclass
class XtraPulpResult:
    partition: np.ndarray
    cut: int
    imbalance: float
    balanced: bool
    wall_seconds: float
    peak_bytes: int


def xtrapulp_partition(
    graph,
    k: int,
    *,
    epsilon: float = 0.03,
    seed: int = 0,
    outer_iterations: int = 3,
    lp_iterations: int = 5,
    tracker: MemoryTracker | None = None,
) -> XtraPulpResult:
    """Single-level constrained label propagation partitioning."""
    tracker = tracker or MemoryTracker()
    rng = np.random.default_rng(seed)
    t0 = time.perf_counter()
    n = graph.n
    vwgt = np.asarray(graph.vwgt)
    total = graph.total_vertex_weight
    lmax = max_block_weight(total, k, epsilon)

    aids = [
        tracker.alloc("input-graph", graph.nbytes, "graph"),
        tracker.alloc("labels", 4 * n, "labels"),
        tracker.alloc("block-weights", 8 * k, "labels"),
    ]

    # random block initialization (PuLP-style)
    part = rng.integers(0, k, size=n).astype(np.int32)
    block_weights = np.zeros(k, dtype=np.int64)
    np.add.at(block_weights, part, vwgt)

    chunk = 4096
    for outer in range(outer_iterations):
        # alternate a balance-leaning and a cut-leaning phase
        for it in range(lp_iterations):
            balance_phase = it % 2 == 0 and outer == 0
            order = rng.permutation(n).astype(np.int64)
            moved = 0
            for start in range(0, n, chunk):
                cidx = order[start : start + chunk]
                owner, nbrs, wgts = chunk_adjacency(graph, cidx)
                if len(owner) == 0:
                    continue
                po, pb, pr = segment_reduce_ratings(
                    owner, part[nbrs].astype(np.int64), wgts, k
                )
                us = cidx[po]
                # multiplicative balance penalty on overloaded targets
                load = block_weights[pb] / max(1.0, total / k)
                penalty = np.maximum(0.1, 2.0 - load) if balance_phase else np.minimum(
                    1.0, np.maximum(0.05, (lmax - block_weights[pb]) / max(lmax, 1))
                )
                score = pr * penalty
                cur = part[us].astype(np.int64)
                is_cur = pb == cur
                score = score + is_cur * 1e-9
                ordc = np.lexsort((score, po))
                last = np.empty(len(ordc), dtype=bool)
                last[-1] = True
                last[:-1] = po[ordc][1:] != po[ordc][:-1]
                best = ordc[last]
                for o, b in zip(po[best].tolist(), pb[best].tolist()):
                    u = int(cidx[o])
                    if part[u] == b:
                        continue
                    w = int(vwgt[u])
                    if block_weights[b] + w > lmax * 1.1:
                        continue
                    block_weights[part[u]] -= w
                    block_weights[b] += w
                    part[u] = b
                    moved += 1
            if moved == 0:
                break

    for a in aids:
        tracker.free(a)
    pg = PartitionedGraph(graph, k, part)
    return XtraPulpResult(
        partition=part,
        cut=pg.cut_weight(),
        imbalance=pg.imbalance(),
        balanced=pg.is_balanced(epsilon),
        wall_seconds=time.perf_counter() - t0,
        peak_bytes=tracker.peak_bytes,
    )
