"""HeiStream-style buffered streaming partitioner [34].

Streaming partitioners read the graph once, vertex by vertex, and assign
blocks on the fly with O(n + k) state -- no multilevel hierarchy, no second
pass.  HeiStream improves on purely greedy one-pass rules by *buffering* a
batch of vertices, building a model graph over the batch plus k block
super-vertices, and partitioning the batch jointly before streaming on.

Quality is fundamentally limited by the single pass: the paper measures
3.1x (rgg2D) to 14.8x (rhg) more cut edges than TeraPart at k = 30 000
(Section VII) -- power-law graphs suffer most because early assignments of
hub neighborhoods cannot be revisited.

Per batch we use a Fennel-style objective: assign vertex v to
``argmax_b w(v -> b) - alpha * (load_b / capacity)^gamma`` with a hard cap,
then run a few joint improvement sweeps inside the buffer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.partition import PartitionedGraph, max_block_weight
from repro.memory.tracker import MemoryTracker


@dataclass
class HeiStreamResult:
    partition: np.ndarray
    cut: int
    imbalance: float
    balanced: bool
    wall_seconds: float
    peak_bytes: int
    num_batches: int


def heistream_partition(
    graph,
    k: int,
    *,
    epsilon: float = 0.03,
    seed: int = 0,
    buffer_size: int = 4096,
    sweeps: int = 2,
    tracker: MemoryTracker | None = None,
) -> HeiStreamResult:
    """One buffered streaming pass over the graph."""
    tracker = tracker or MemoryTracker()
    rng = np.random.default_rng(seed)
    t0 = time.perf_counter()
    n = graph.n
    vwgt = np.asarray(graph.vwgt)
    total = graph.total_vertex_weight
    lmax = max_block_weight(total, k, epsilon)

    # streaming state: labels + block weights + one buffer; the graph itself
    # is *streamed* (only the current batch's neighborhoods are resident)
    batch_bytes = 16 * buffer_size * max(1, int(graph.degrees.mean() + 1)) if n else 0
    aids = [
        tracker.alloc("labels", 4 * n, "labels"),
        tracker.alloc("block-weights", 8 * k, "labels"),
        tracker.alloc("stream-buffer", batch_bytes, "buffer"),
    ]

    part = np.full(n, -1, dtype=np.int32)
    block_weights = np.zeros(k, dtype=np.int64)
    alpha = np.sqrt(k) * graph.num_directed_edges / max(1, n**1.5)
    gamma = 1.5
    capacity = max(1.0, total / k)

    num_batches = 0
    for start in range(0, n, buffer_size):
        batch = np.arange(start, min(start + buffer_size, n), dtype=np.int64)
        num_batches += 1
        for sweep in range(sweeps + 1):
            order = batch if sweep == 0 else batch[rng.permutation(len(batch))]
            for u in order.tolist():
                nbrs, wgts = graph.neighbors_and_weights(u)
                nbrs = np.asarray(nbrs)
                wgts = np.asarray(wgts)
                assigned = part[nbrs] >= 0
                w = int(vwgt[u])
                if np.any(assigned):
                    blocks = part[nbrs[assigned]].astype(np.int64)
                    aff = np.zeros(k, dtype=np.float64)
                    np.add.at(aff, blocks, wgts[assigned].astype(np.float64))
                else:
                    aff = np.zeros(k, dtype=np.float64)
                penalty = alpha * gamma * (block_weights / capacity) ** (gamma - 1)
                score = aff - penalty
                feasible = block_weights + w <= lmax
                if not np.any(feasible):
                    target = int(np.argmin(block_weights))
                else:
                    score = np.where(feasible, score, -np.inf)
                    target = int(np.argmax(score))
                prev = int(part[u])
                if prev == target:
                    continue
                if prev >= 0:
                    block_weights[prev] -= w
                part[u] = target
                block_weights[target] += w

    for a in aids:
        tracker.free(a)
    pg = PartitionedGraph(graph, k, part.astype(np.int32))
    return HeiStreamResult(
        partition=pg.partition,
        cut=pg.cut_weight(),
        imbalance=pg.imbalance(),
        balanced=pg.is_balanced(epsilon),
        wall_seconds=time.perf_counter() - t0,
        peak_bytes=tracker.peak_bytes,
        num_batches=num_batches,
    )
