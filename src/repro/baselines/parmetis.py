"""ParMETIS-style distributed multilevel partitioner [32].

Quality is competitive with xTeraPart (Table III shows cuts within ~15%)
because it is a genuine multilevel algorithm; the difference is memory: the
matching-based coarsening hierarchy, uncompressed shards, buffered
contraction, and replication during initial partitioning push per-rank
usage roughly an order of magnitude above xTeraPart, so it runs out of
memory at graphs 64x smaller (Fig. 8 left/middle; OOM markers in
Table III).

Implemented as the distributed driver with uncompressed shards plus the
matching-era memory profile charged to every rank: per-level match/cmap
arrays and buffered coarse-edge arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dist.comm import SimComm
from repro.dist.dpartitioner import DistConfig, DistPartitionResult, dpartition


@dataclass
class _AuxCharge:
    """Per-rank extra allocations active for the duration of the run."""

    aids: list[tuple[int, int]]


def parmetis_partition(
    graph,
    k: int,
    ranks: int = 8,
    *,
    epsilon: float = 0.03,
    seed: int = 0,
    rank_memory_budget: int | None = None,
) -> DistPartitionResult:
    """Distributed matching-based multilevel partitioning (simulated).

    The result's ``oom`` flag reports per-rank budget violations, matching
    the paper's OOM entries.
    """
    comm = SimComm(ranks)
    n_local = -(-graph.n // ranks)
    m2_local = -(-graph.num_directed_edges // ranks)
    charges = []
    for r in range(ranks):
        # matching vector + coarsening map per hierarchy level (~log n
        # levels with shrink <= 2; charge a conservative 8 levels) and the
        # buffered coarse edge arrays of the current contraction
        aux = 8 * (8 * 2 * n_local) + 32 * m2_local
        charges.append(comm.trackers[r].alloc(f"parmetis-aux-{r}", aux, "matching"))
    cfg = DistConfig(
        seed=seed,
        epsilon=epsilon,
        rank_memory_budget=rank_memory_budget,
        lp_rounds=2,
        refine_rounds=2,
    )
    result = dpartition(graph, k, comm, compressed=False, config=cfg)
    for r, aid in enumerate(charges):
        comm.trackers[r].free(aid)
    # recompute peaks including the aux charges
    peaks = comm.rank_peaks()
    result.rank_peak_bytes = peaks
    result.max_rank_peak_bytes = max(peaks)
    result.oom = (
        rank_memory_budget is not None and max(peaks) > rank_memory_budget
    )
    return result
