"""Mt-Metis-style shared-memory multilevel partitioner [5], [17].

Differences from KaMinPar/TeraPart that matter for the paper's comparison:

* **Sorted heavy-edge matching (SHEM)** coarsening: a matching contracts at
  most pairs, so the hierarchy shrinks by <= 2x per level -> roughly twice
  the levels of LP clustering, with every level's graph retained plus
  per-level matching/coarsening maps.  This is the structural reason
  Mt-Metis uses 2-4x more memory than KaMinPar (Fig. 4 middle).
* **Relaxed balance**: refinement is hill-climbing on the cut with only a
  soft balance penalty and no repair step, reproducing the imbalanced
  partitions the paper observes on 320/504 instances.
* Reads graphs in *text format* (the paper excludes I/O partly for this
  reason); we model that by an optional text-parse time estimate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.initial.recursive import initial_partition
from repro.core.partition import PartitionedGraph, max_block_weight
from repro.graph.access import full_adjacency
from repro.graph.csr import CSRGraph
from repro.memory.tracker import MemoryTracker


@dataclass
class MtMetisResult:
    partition: np.ndarray
    cut: int
    imbalance: float
    balanced: bool
    wall_seconds: float
    peak_bytes: int
    num_levels: int
    failed: bool = False
    failure_reason: str = ""
    modeled_seconds: float = 0.0
    work_edges: float = 0.0


def shem_matching(graph, rng: np.random.Generator) -> np.ndarray:
    """Sorted heavy-edge matching: visit vertices by increasing degree,
    match each unmatched vertex with its heaviest unmatched neighbor."""
    n = graph.n
    match = np.arange(n, dtype=np.int64)
    matched = np.zeros(n, dtype=bool)
    order = np.argsort(graph.degrees + rng.random(n) * 0.5, kind="stable")
    for u in order.tolist():
        if matched[u]:
            continue
        nbrs, wgts = graph.neighbors_and_weights(u)
        nbrs = np.asarray(nbrs)
        wgts = np.asarray(wgts)
        free = ~matched[nbrs]
        if not np.any(free):
            continue
        cand_n = nbrs[free]
        cand_w = wgts[free]
        v = int(cand_n[np.argmax(cand_w)])
        matched[u] = matched[v] = True
        leader = min(u, v)
        match[u] = match[v] = leader
    return match


def _contract_matching(graph, match: np.ndarray, tracker: MemoryTracker):
    """Contract a matching into the next level (buffered, Metis-style)."""
    leaders = np.unique(match)
    n_coarse = len(leaders)
    remap = np.full(graph.n, -1, dtype=np.int64)
    remap[leaders] = np.arange(n_coarse, dtype=np.int64)
    f2c = remap[match]
    src, dst, w = full_adjacency(graph)
    cu, cv = f2c[src], f2c[dst]
    keep = cu != cv
    cu, cv, w = cu[keep], cv[keep], np.asarray(w)[keep]
    if len(cu):
        key = cu * np.int64(n_coarse) + cv
        order = np.argsort(key, kind="stable")
        key_s, w_s = key[order], w[order]
        b = np.empty(len(key_s), dtype=bool)
        b[0] = True
        b[1:] = key_s[1:] != key_s[:-1]
        starts = np.flatnonzero(b)
        w = np.add.reduceat(w_s, starts)
        key_u = key_s[starts]
        cu, cv = key_u // n_coarse, key_u % n_coarse
    vwgt = np.zeros(n_coarse, dtype=np.int64)
    np.add.at(vwgt, f2c, np.asarray(graph.vwgt))
    degrees = np.bincount(cu, minlength=n_coarse).astype(np.int64)
    indptr = np.zeros(n_coarse + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    unit = bool(len(w) == 0 or np.all(np.asarray(w) == 1))
    coarse = CSRGraph(
        indptr, cv, None if unit else w, vwgt, sorted_neighborhoods=True
    )
    return coarse, f2c


def _greedy_refine(pgraph: PartitionedGraph, soft_limit: int, rounds: int) -> None:
    """Hill climbing on the cut with only a *soft* balance limit."""
    g = pgraph.graph
    part = pgraph.partition
    for _ in range(rounds):
        moved = 0
        for u in pgraph.boundary_vertices().tolist():
            nbrs, wgts = g.neighbors_and_weights(u)
            blocks = part[np.asarray(nbrs)]
            uniq, inv = np.unique(blocks, return_inverse=True)
            aff = np.zeros(len(uniq), dtype=np.int64)
            np.add.at(aff, inv, np.asarray(wgts))
            cur = int(part[u])
            cur_aff = int(aff[np.searchsorted(uniq, cur)]) if cur in uniq else 0
            best_gain, best_b = 0, cur
            w = int(g.vwgt[u])
            for b, a in zip(uniq.tolist(), aff.tolist()):
                if b == cur:
                    continue
                if pgraph.block_weights[b] + w > soft_limit:
                    continue
                gain = int(a) - cur_aff
                if gain > best_gain:
                    best_gain, best_b = gain, b
            if best_b != cur:
                pgraph.move(u, best_b)
                moved += 1
        if moved == 0:
            break


def mtmetis_partition(
    graph,
    k: int,
    *,
    epsilon: float = 0.03,
    seed: int = 0,
    p: int = 8,
    memory_budget: int | None = None,
    tracker: MemoryTracker | None = None,
) -> MtMetisResult:
    """Partition with the Mt-Metis-style algorithm.

    ``memory_budget`` models the machine size: exceeding it mid-run aborts
    with ``failed=True`` (the paper: Mt-Metis produced no result on the
    three largest Set A graphs).
    """
    tracker = tracker or MemoryTracker()
    rng = np.random.default_rng(seed)
    t0 = time.perf_counter()

    def check_budget() -> bool:
        return memory_budget is not None and tracker.peak_bytes > memory_budget

    # input graph + per-thread matching scratch
    aids = [tracker.alloc("input-graph", graph.nbytes, "graph")]
    aids.append(tracker.alloc("matching-scratch", 16 * graph.n + p * 4096, "matching"))

    levels = []
    work_edges = 0.0
    current = graph
    limit = max(40 * k, 80)
    while current.n > limit and len(levels) < 64:
        # matching scans the level twice (sort + match), contraction once
        work_edges += 3.0 * current.num_directed_edges
        match = shem_matching(current, rng)
        shrink = current.n / max(len(np.unique(match)), 1)
        if shrink < 1.1:
            break
        coarse, f2c = _contract_matching(current, match, tracker)
        # Metis keeps the full hierarchy, the matching map per level, and
        # buffered coarse edges during construction
        aids.append(tracker.alloc(f"cmap-{len(levels)}", 8 * current.n, "matching"))
        aids.append(
            tracker.alloc(
                f"coarse-buffers-{len(levels)}",
                32 * coarse.num_directed_edges,
                "contraction",
            )
        )
        aids.append(tracker.alloc(f"level-{len(levels)}", coarse.nbytes, "graph"))
        levels.append((coarse, f2c))
        current = coarse
        if check_budget():
            for a in aids:
                tracker.free(a)
            return MtMetisResult(
                partition=np.zeros(graph.n, dtype=np.int32),
                cut=0,
                imbalance=0.0,
                balanced=False,
                wall_seconds=time.perf_counter() - t0,
                peak_bytes=tracker.peak_bytes,
                num_levels=len(levels),
                failed=True,
                failure_reason="out of memory",
            )

    part = initial_partition(
        current, k, epsilon, rng, attempts=4, fm_rounds=1
    )
    pgraph = PartitionedGraph(current, k, part)
    lmax = max_block_weight(graph.total_vertex_weight, k, epsilon)
    # soft limit: Metis' ubfactor-style allowance, frequently exceeded in
    # practice for large k since there is no repair step
    soft_limit = int(lmax * (1.0 + 2.0 * epsilon)) + 1

    # refinement gain scratch: Metis-style per-vertex ed/id arrays + k-way
    # boundary structures
    refine_aid = tracker.alloc(
        "refine-scratch", 24 * graph.n + 8 * p * k, "refinement"
    )
    for coarse, _ in levels:
        work_edges += 4.0 * coarse.num_directed_edges  # per-level refinement
    work_edges += 4.0 * graph.num_directed_edges
    for li in range(len(levels) - 1, -1, -1):
        _greedy_refine(pgraph, soft_limit, rounds=2)
        _, f2c = levels[li]
        finer = levels[li - 1][0] if li > 0 else graph
        part = pgraph.partition[f2c].astype(np.int32)
        pgraph = PartitionedGraph(finer, k, part)
    _greedy_refine(pgraph, soft_limit, rounds=2)
    tracker.free(refine_aid)
    for a in aids:
        tracker.free(a)

    cut = pgraph.cut_weight()
    imb = pgraph.imbalance()
    # modeled time: same machine model as TeraPart but with the matching
    # pipeline's lower parallel efficiency (SHEM and hill-climbing
    # refinement serialize on conflicts; the paper measures mt-metis 3.9x
    # slower than KaMinPar on 96 cores)
    from repro.parallel.cost_model import CostModel
    from repro.parallel.runtime import WorkStats

    parallel_efficiency = 0.30
    stats = {
        "pipeline": WorkStats(
            "pipeline",
            work=work_edges / parallel_efficiency,
            bytes_moved=16.0 * work_edges / parallel_efficiency,
        ),
        "initial": WorkStats(
            "initial",
            work=float(current.num_directed_edges)
            * max(1.0, np.log2(max(k, 2)))
            * 4.0,
            max_parallelism=float(k),
        ),
    }
    modeled = CostModel().total_time(stats, p)
    return MtMetisResult(
        partition=pgraph.partition,
        cut=cut,
        imbalance=imb,
        balanced=pgraph.is_balanced(epsilon),
        wall_seconds=time.perf_counter() - t0,
        peak_bytes=tracker.peak_bytes,
        num_levels=len(levels),
        modeled_seconds=modeled,
        work_edges=work_edges,
    )
