"""Comparison partitioners reimplemented from their published algorithms.

The paper compares TeraPart against five systems whose binaries/testbeds we
cannot ship (DESIGN.md section 2).  Each baseline here implements the
*algorithm class* of the original, which is what drives the paper's
comparative claims:

* :mod:`mtmetis` -- shared-memory multilevel with heavy-edge matching
  (shrink factor <= 2 per level -> more levels, more memory), relaxed
  balance enforcement (Mt-Metis produced imbalanced partitions on 320/504
  instances in the paper).
* :mod:`parmetis` -- distributed matching-based multilevel with
  uncompressed shards and buffered contraction (OOMs far earlier than
  xTeraPart, Fig. 8 / Table III).
* :mod:`xtrapulp` -- single-level (non-multilevel) k-way label propagation;
  scales but cuts 5.6x-68x more edges (Table III).
* :mod:`heistream` -- buffered streaming partitioning with a Fennel-style
  objective; one pass, tiny memory, 3.1x-14.8x worse cuts (Section VII).
* :mod:`sem` -- semi-external multilevel (Akhremtsev et al. [35]): O(n)
  in-memory arrays, graph streamed from "disk" in passes; an order of
  magnitude slower (Table IV).
"""

from repro.baselines.mtmetis import MtMetisResult, mtmetis_partition
from repro.baselines.xtrapulp import xtrapulp_partition
from repro.baselines.parmetis import parmetis_partition
from repro.baselines.heistream import heistream_partition
from repro.baselines.sem import sem_partition

__all__ = [
    "MtMetisResult",
    "mtmetis_partition",
    "xtrapulp_partition",
    "parmetis_partition",
    "heistream_partition",
    "sem_partition",
]
