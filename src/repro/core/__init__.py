"""TeraPart core: the multilevel partitioner with the paper's optimizations.

Public entry point is :func:`repro.core.partitioner.partition` (re-exported
at package root as :func:`repro.partition`), driven by a
:class:`PartitionerConfig`.  Config presets reproduce the algorithm variants
measured in the paper:

* ``kaminpar()``          -- the baseline: classic label propagation with
  per-thread rating maps, buffered contraction, no compression.
* ``kaminpar_2lp()``      -- + two-phase label propagation (Fig. 4 step i)
* ``kaminpar_2lp_c()``    -- + graph compression        (Fig. 4 step ii)
* ``terapart()``          -- + one-pass contraction     (Fig. 4 step iii)
* ``terapart_fm()``       -- TeraPart + FM refinement with sparse gain table
* ``terapart_fm_full()``  -- FM with the standard O(nk) gain table
* ``terapart_fm_none()``  -- FM recomputing gains from scratch
"""

from repro.core.config import CoarseningConfig, FMConfig, GainTableKind, PartitionerConfig
from repro.core.metrics import PartitionMetrics, compute_metrics
from repro.core.partition import PartitionedGraph
from repro.core.partitioner import PartitionResult, partition, refine_partition
from repro.core.portfolio import PortfolioResult, partition_portfolio

__all__ = [
    "CoarseningConfig",
    "FMConfig",
    "GainTableKind",
    "PartitionerConfig",
    "PartitionMetrics",
    "compute_metrics",
    "PartitionedGraph",
    "PartitionResult",
    "PortfolioResult",
    "partition",
    "partition_portfolio",
    "refine_partition",
]
