"""Multi-seed portfolio runs (the paper's methodology: 5 seeds/instance).

Partitioning is randomized; production users run several seeds and keep
the best balanced result, and the paper's evaluation averages metrics over
5 repetitions.  :func:`partition_portfolio` does both: it runs ``seeds``
independent partitions and returns the best plus the per-seed records for
aggregation.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

import repro.core.partitioner as _driver
from repro.core.config import PartitionerConfig, terapart


@dataclass
class PortfolioResult:
    """Best-of-seeds outcome plus the raw per-seed results."""

    best: "_driver.PartitionResult"
    results: list = field(default_factory=list)

    @property
    def best_cut(self) -> int:
        return self.best.cut

    @property
    def mean_cut(self) -> float:
        return float(np.mean([r.cut for r in self.results]))

    @property
    def cut_std(self) -> float:
        return float(np.std([r.cut for r in self.results]))

    @property
    def mean_peak_bytes(self) -> float:
        return float(np.mean([r.peak_bytes for r in self.results]))

    def seed_of_best(self) -> int:
        return self.results.index(self.best)


def partition_portfolio(
    graph,
    k: int,
    config: PartitionerConfig | None = None,
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
) -> PortfolioResult:
    """Partition with every seed; keep the best balanced result.

    Selection order: balanced results beat unbalanced ones; ties break on
    the cut.  (An unbalanced "better cut" is not a better partition -- the
    paper makes the same point about Mt-Metis.)
    """
    if not seeds:
        raise ValueError("need at least one seed")
    config = config or terapart()
    results = [
        _driver.partition(graph, k, config.with_(seed=int(s))) for s in seeds
    ]
    best = min(results, key=lambda r: (not r.balanced, r.cut))
    return PortfolioResult(best=best, results=results)
