"""Rebalancer: repairs balance violations after projection/refinement.

Greedy: repeatedly take the lightest-loss boundary vertex of an overloaded
block and move it to the feasible adjacent (or, failing that, lightest)
block.  Mirrors (d)KaMinPar's rebalancing step that repairs violations
introduced by batched parallel moves.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.partition import PartitionedGraph
from repro.memory.scratch import tracked_zeros


def rebalance(pgraph: PartitionedGraph, max_block_weight, *, tracer=None) -> int:
    """Move vertices until every block fits; returns number of moves.

    ``max_block_weight`` may be a scalar or a per-block array.  ``tracer``
    (obs layer) receives the move count and overloaded-block count.
    """
    g = pgraph.graph
    vwgt = np.asarray(g.vwgt)
    part = pgraph.partition
    moves = 0
    max_block_weight = np.broadcast_to(
        np.asarray(max_block_weight, dtype=np.int64), (pgraph.k,)
    )

    overloaded = [
        b for b in range(pgraph.k) if pgraph.block_weights[b] > max_block_weight[b]
    ]
    if not overloaded:
        return 0
    if tracer is not None and tracer.enabled:
        tracer.add("balancer.overloaded_blocks", len(overloaded))

    for b in overloaded:
        # candidates: vertices of b, by loss (= cut increase when leaving)
        members = np.flatnonzero(part == b)
        heap: list[tuple[int, int, int, int]] = []
        counter = 0
        for u in members.tolist():
            nbrs, wgts = g.neighbors_and_weights(u)
            nbrs = np.asarray(nbrs)
            wgts = np.asarray(wgts)
            if len(nbrs):
                blocks = part[nbrs]
                uniq, inv = np.unique(blocks, return_inverse=True)
                aff = tracked_zeros(len(uniq), np.int64, name="rebalance-affinity")
                np.add.at(aff, inv, wgts)
                own = int(aff[np.searchsorted(uniq, b)]) if b in uniq else 0
                ext = [
                    (int(a), int(t)) for t, a in zip(uniq.tolist(), aff.tolist()) if t != b
                ]
                best_aff, best_t = max(ext) if ext else (0, -1)
            else:
                own, best_aff, best_t = 0, 0, -1
            loss = own - best_aff
            heapq.heappush(heap, (loss, counter, u, best_t))
            counter += 1

        while pgraph.block_weights[b] > max_block_weight[b] and heap:
            _, _, u, target = heapq.heappop(heap)
            if part[u] != b:
                continue
            w = int(vwgt[u])
            if (
                target >= 0
                and pgraph.block_weights[target] + w <= max_block_weight[target]
            ):
                pgraph.move(u, target)
                moves += 1
                continue
            # fall back to the block with the most headroom
            headroom = max_block_weight - pgraph.block_weights
            lightest = int(np.argmax(headroom))
            if (
                lightest != b
                and pgraph.block_weights[lightest] + w <= max_block_weight[lightest]
            ):
                pgraph.move(u, lightest)
                moves += 1
    if tracer is not None and tracer.enabled:
        tracer.add("balancer.moves", moves)
    return moves
