"""Size-constrained label propagation refinement [14].

KaMinPar's default refinement: starting from the projected partition, each
vertex may move to the adjacent block with the highest positive gain,
subject to the balance constraint ``w(V_i) <= L_max``.  Memory is
proportional to ``k`` rather than ``n`` (the paper notes it is negligible),
so no ledger charges beyond block weights are needed.

Vectorized per chunk like LP clustering; moves commit sequentially with a
re-check of the target block's weight.
"""

from __future__ import annotations

import numpy as np

from repro.core.context import PartitionContext
from repro.core.kernels import (
    bulk_size_constrained_commit,
    move_gains,
    segment_best_last,
)
from repro.core.partition import PartitionedGraph
from repro.graph.access import chunk_adjacency, segment_reduce_ratings
from repro.verify.declarations import recorder_for


def lp_refine(
    pgraph: PartitionedGraph,
    ctx: PartitionContext,
    max_block_weight,
    rounds: int | None = None,
) -> int:
    """Run LP refinement rounds; returns the total number of moves.

    ``max_block_weight`` may be a scalar or a per-block array (the latter is
    used by deep multilevel, where block budgets differ mid-uncoarsening).
    """
    max_block_weight = np.broadcast_to(
        np.asarray(max_block_weight, dtype=np.int64), (pgraph.k,)
    )
    g = pgraph.graph
    n = g.n
    k = pgraph.k
    part = pgraph.partition
    vwgt = np.asarray(g.vwgt)
    runtime = ctx.runtime
    rounds = ctx.config.lp_refinement_rounds if rounds is None else rounds
    total_moves = 0
    # shared accesses declared in repro.verify.declarations ("lp-refinement")
    rec = recorder_for(ctx.detector, "lp-refinement")

    for _round in range(rounds):
        order = ctx.rng.permutation(n).astype(np.int64)
        moves = 0
        sched = runtime.schedule(order)
        with runtime.region(f"lp-refinement-round{_round}"):
            moves = _refine_round(
                pgraph, ctx, g, sched, part, vwgt, max_block_weight, rec
            )
        total_moves += moves
        ctx.tracer.add("refine.lp_rounds", 1)
        if moves == 0:
            break
    ctx.tracer.add("refine.lp_moves", total_moves)
    return total_moves


def _refine_round(
    pgraph, ctx, g, sched, part, vwgt, max_block_weight, rec
) -> int:
    """One LP refinement sweep over ``sched``; returns the move count."""
    runtime = ctx.runtime
    k = pgraph.k
    moves = 0
    use_bulk = ctx.config.use_bulk_kernels
    for _tid, chunk in runtime.execute(sched, phase="lp-refinement"):
        owner, nbrs, wgts = chunk_adjacency(g, chunk)
        if len(owner) == 0:
            continue
        if rec.active:
            rec.read("partition", nbrs)
        po, pb, pr = segment_reduce_ratings(
            owner, part[nbrs].astype(np.int64), wgts, k
        )
        us = chunk[po]
        # gain of moving owner to block pb = pr - affinity(current block)
        cur_of_owner = part[chunk].astype(np.int64)
        gain, is_current = move_gains(po, pb, pr, cur_of_owner, len(chunk))
        fits = pgraph.block_weights[pb] + vwgt[us] <= max_block_weight[pb]
        ok = fits & ~is_current & (gain > 0)
        if not np.any(ok):
            runtime.record(
                "lp-refinement",
                work=float(len(owner)),
                bytes_moved=float(16 * len(owner)),
            )
            continue
        po2, pb2, g2 = po[ok], pb[ok], gain[ok]
        best = segment_best_last(po2, g2)
        runtime.record(
            "lp-refinement",
            work=float(len(owner)),
            bytes_moved=float(16 * len(owner)),
        )
        if use_bulk:
            # bulk commit against the real block-weight array; the kernel
            # replays contended blocks in order, so acceptance matches the
            # scalar loop bit for bit
            mv_us = chunk[po2[best]]
            mv_tgt = pb2[best]
            prevs = part[mv_us].astype(np.int64)
            acc = bulk_size_constrained_commit(
                mv_tgt,
                prevs,
                vwgt[mv_us],
                pgraph.block_weights,
                max_block_weight,
            )
            acc_us = mv_us[acc]
            assert pgraph.k <= np.iinfo(np.int32).max
            part[acc_us] = mv_tgt[acc].astype(np.int32)
            moves += len(acc_us)
            if rec.active and len(acc_us):
                rec.atomic("partition", acc_us)
                rec.atomic(
                    "block-weights", np.concatenate([prevs[acc], mv_tgt[acc]])
                )
        else:
            moved: list[int] = []
            touched_blocks: list[int] = []
            for o, b in zip(po2[best].tolist(), pb2[best].tolist()):
                u = int(chunk[o])
                w = int(vwgt[u])
                if pgraph.block_weights[b] + w > max_block_weight[b]:
                    continue
                if rec.active:
                    moved.append(u)
                    touched_blocks.append(int(part[u]))
                    touched_blocks.append(b)
                pgraph.move(u, int(b))
                moves += 1
            if rec.active and moved:
                rec.atomic("partition", moved)
                rec.atomic("block-weights", touched_blocks)
    return moves
