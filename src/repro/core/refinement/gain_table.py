"""Gain tables for FM refinement (Section V).

A gain table caches, per vertex ``u`` and block ``V_i``, the *affinity*
``w(u, V_i) = sum of weights of edges from u into V_i``.  The gain of moving
``u`` to ``V_i`` is then ``w(u, V_i) - w(u, Pi(u))``.  Three strategies,
matching Figure 7:

* :class:`NoGainTable` -- recompute affinities from scratch on every query
  (2.7x slower on average in the paper; order-of-magnitude on 67 instances).
* :class:`FullGainTable` -- the standard dense ``n x k`` table, ``O(nk)``
  memory.
* :class:`SparseGainTable` -- the paper's ``O(m)`` table: vertices with
  ``deg(v) >= k`` keep a dense ``k``-entry row; low-degree vertices use tiny
  fixed-capacity linear-probing hash tables of ``Theta(deg(v))`` slots, with
  *variable entry width* (8/16/32/64 bits) chosen as the smallest
  ``w > log2(U)`` where ``U`` is the vertex's total incident edge weight.
  Deletions (affinity dropping to zero) backward-shift elements to close the
  probe gap, so each table is guarded by a (simulated) spinlock.

All tables share one interface: ``affinity``, ``adjacent_blocks``,
``apply_move`` and ``nbytes``.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels.gains import (
    batch_hash_insert,
    batch_hash_probe,
    entry_width_bits_bulk,
)
from repro.memory.scratch import tracked_zeros


def entry_width_bits(total_incident_weight: int) -> int:
    """Smallest w in {8, 16, 32, 64} with ``w > log2(U)``."""
    for w in (8, 16, 32, 64):
        if total_incident_weight < (1 << w):
            return w
    return 64


def _next_pow2(x: int) -> int:
    return 1 << max(0, (x - 1).bit_length())


class NoGainTable:
    """Gain "cache" that recomputes everything from scratch."""

    kind = "none"

    def __init__(self, pgraph, tracker=None) -> None:
        self._pgraph = pgraph
        self.recompute_edges = 0  # scratch-scan work, feeds the cost model
        self._aid = None

    @property
    def nbytes(self) -> int:
        return 0

    def affinity(self, u: int, block: int) -> int:
        g = self._pgraph.graph
        nbrs, wgts = g.neighbors_and_weights(u)
        self.recompute_edges += len(nbrs)
        mask = self._pgraph.partition[np.asarray(nbrs)] == block
        return int(np.asarray(wgts)[mask].sum())

    def adjacent_blocks(self, u: int) -> np.ndarray:
        g = self._pgraph.graph
        nbrs = np.asarray(g.neighbors(u))
        self.recompute_edges += len(nbrs)
        return np.unique(self._pgraph.partition[nbrs])

    def gains(self, u: int) -> tuple[np.ndarray, np.ndarray]:
        """(blocks, gains) for all adjacent blocks of ``u``."""
        g = self._pgraph.graph
        nbrs, wgts = g.neighbors_and_weights(u)
        self.recompute_edges += len(nbrs)
        blocks = self._pgraph.partition[np.asarray(nbrs)]
        uniq, inv = np.unique(blocks, return_inverse=True)
        aff = tracked_zeros(len(uniq), np.int64, name="gain-recompute-aff")
        np.add.at(aff, inv, np.asarray(wgts))
        cur = int(self._pgraph.partition[u])
        cur_aff = int(aff[np.searchsorted(uniq, cur)]) if cur in uniq else 0
        return uniq, aff - cur_aff

    def gains_many(
        self, us: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched :meth:`gains`: ``(owner, blocks, gains)`` pair lists.

        ``owner`` indexes into ``us``; blocks are ascending within each
        owner, exactly the per-vertex :meth:`gains` output concatenated.
        """
        from repro.graph.access import chunk_adjacency, segment_reduce_ratings

        us = np.asarray(us, dtype=np.int64)
        e = np.empty(0, dtype=np.int64)
        if len(us) == 0:
            return e, e, e
        g = self._pgraph.graph
        owner, nbrs, wgts = chunk_adjacency(g, us)
        self.recompute_edges += int(len(nbrs))
        if len(owner) == 0:
            return e, e, e
        part = self._pgraph.partition
        o, b, v = segment_reduce_ratings(
            owner, part[nbrs].astype(np.int64), wgts, self._pgraph.k
        )
        return o, b, v - _current_affinities(part, us, o, b, v)

    def apply_move(self, u: int, src: int, dst: int) -> None:
        pass  # nothing cached

    def free(self, tracker=None) -> None:
        pass


def _current_affinities(part, us, o, b, v) -> np.ndarray:
    """Per-pair affinity of each owner's *current* block (0 when the owner
    has no neighbor in its own block)."""
    cur = part[us].astype(np.int64)
    iscur = b == cur[o]
    cur_aff = tracked_zeros(len(us), np.int64, name="gains-many-cur-aff")
    cur_aff[o[iscur]] = v[iscur]
    return cur_aff[o]


class FullGainTable:
    """Dense ``n x k`` affinity table (the standard implementation)."""

    kind = "full"

    def __init__(self, pgraph, tracker=None) -> None:
        self._pgraph = pgraph
        n, k = pgraph.graph.n, pgraph.k
        self._table = np.zeros((n, k), dtype=np.int64)
        self._build()
        self._aid = (
            tracker.alloc("gain-table-full", self._table.nbytes, "gain-table")
            if tracker is not None
            else None
        )
        self._tracker = tracker

    def _build(self) -> None:
        g = self._pgraph.graph
        part = self._pgraph.partition
        if hasattr(g, "adjncy"):
            src = np.repeat(np.arange(g.n, dtype=np.int64), g.degrees)
            np.add.at(self._table, (src, part[g.adjncy]), np.asarray(g.adjwgt))
        else:
            for u in range(g.n):
                nbrs, wgts = g.neighbors_and_weights(u)
                np.add.at(
                    self._table[u], part[np.asarray(nbrs)], np.asarray(wgts)
                )

    @property
    def nbytes(self) -> int:
        return self._table.nbytes

    def affinity(self, u: int, block: int) -> int:
        return int(self._table[u, block])

    def adjacent_blocks(self, u: int) -> np.ndarray:
        return np.flatnonzero(self._table[u])

    def gains(self, u: int) -> tuple[np.ndarray, np.ndarray]:
        blocks = np.flatnonzero(self._table[u])
        cur = int(self._pgraph.partition[u])
        return blocks, self._table[u, blocks] - self._table[u, cur]

    def gains_many(
        self, us: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched :meth:`gains` over the dense rows of ``us``."""
        us = np.asarray(us, dtype=np.int64)
        if len(us) == 0:
            e = np.empty(0, dtype=np.int64)
            return e, e, e
        rows = self._table[us]
        o, b = np.nonzero(rows)
        o = o.astype(np.int64)
        b = b.astype(np.int64)
        v = rows[o, b]
        cur = self._pgraph.partition[us].astype(np.int64)
        return o, b, v - rows[o, cur[o]]

    def apply_move(self, u: int, src: int, dst: int) -> None:
        """Update neighbor affinities after ``u`` moved ``src -> dst``."""
        g = self._pgraph.graph
        nbrs, wgts = g.neighbors_and_weights(u)
        nbrs = np.asarray(nbrs)
        wgts = np.asarray(wgts)
        np.subtract.at(self._table, (nbrs, src), wgts)
        np.add.at(self._table, (nbrs, dst), wgts)

    def free(self, tracker=None) -> None:
        t = tracker or self._tracker
        if t is not None and self._aid is not None:
            t.free(self._aid)
            self._aid = None


class SparseGainTable:
    """The paper's ``O(m)``-memory gain table.

    Low-degree vertices (``deg < k``) get a linear-probing hash table with
    ``capacity = next_pow2(2 * deg)`` slots; high-degree vertices a dense
    ``k``-entry row.  All slots live in two contiguous arrays (keys/values)
    addressed through a per-vertex offset -- mirroring the paper's single
    contiguous allocation with per-vertex pointers and per-vertex entry
    width.  ``nbytes`` reports the *modelled* footprint with variable-width
    entries; the backing numpy arrays are int64/int32 for simplicity.
    """

    kind = "sparse"

    EMPTY = -1

    def __init__(self, pgraph, tracker=None, *, bulk: bool = True) -> None:
        self._pgraph = pgraph
        self._bulk = bulk
        g = pgraph.graph
        n, k = g.n, pgraph.k
        degrees = np.asarray(g.degrees)
        self._dense = degrees >= k
        caps = np.where(
            self._dense,
            k,
            np.maximum(2, 2 ** np.ceil(np.log2(2 * np.maximum(degrees, 1))).astype(np.int64)),
        ).astype(np.int64)
        self._offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(caps, out=self._offsets[1:])
        total = int(self._offsets[-1])
        self._caps = caps
        self._keys = np.full(total, self.EMPTY, dtype=np.int32)
        self._vals = np.zeros(total, dtype=np.int64)
        # variable entry widths from total incident weight
        if hasattr(g, "adjncy") and g.n:
            inc = np.zeros(n, dtype=np.int64)
            src = np.repeat(np.arange(n, dtype=np.int64), degrees)
            np.add.at(inc, src, np.asarray(g.adjwgt))
        else:
            inc = np.array(
                [g.incident_weight(u) for u in range(n)], dtype=np.int64
            )
        if bulk:
            self._width_bits = entry_width_bits_bulk(inc)
        else:
            self._width_bits = np.array(
                [entry_width_bits(int(w)) for w in inc.tolist()],
                dtype=np.int64,
            )
        self.lock_acquisitions = 0
        self._build()
        self._aid = (
            tracker.alloc("gain-table-sparse", self.nbytes, "gain-table")
            if tracker is not None
            else None
        )
        self._tracker = tracker

    # -- construction -------------------------------------------------- #
    def _build(self) -> None:
        g = self._pgraph.graph
        part = self._pgraph.partition
        k = self._pgraph.k
        # aggregate all (vertex, block) affinities in one vectorized pass,
        # then insert each non-zero entry (the per-entry loop is unavoidable
        # for the hash tables, but it now runs once per *pair*, not per edge)
        from repro.graph.access import full_adjacency, segment_reduce_ratings

        src, dst, wgt = full_adjacency(g)
        if len(src) == 0:
            return
        po, pb, pa = segment_reduce_ratings(
            src, part[dst].astype(np.int64), np.asarray(wgt), k
        )
        if not self._bulk:
            for u, b, a in zip(po.tolist(), pb.tolist(), pa.tolist()):
                self._insert_add(int(u), int(b), int(a))
            return
        # bulk build: dense rows scatter directly; hash rows insert via the
        # rank-wave kernel, which replays the scalar per-row probe sequence
        # exactly (pairs arrive grouped by vertex, blocks ascending)
        dense_pair = self._dense[po]
        if np.any(dense_pair):
            d = np.flatnonzero(dense_pair)
            self._vals[self._offsets[po[d]] + pb[d]] = pa[d]
        h = np.flatnonzero(~dense_pair)
        if len(h):
            # mirror the scalar path: one lock acquisition per hash insert;
            # aggregated affinities are > 0 (edge weights are positive), so
            # every pair lands as a fresh key
            self.lock_acquisitions += len(h)
            rows = po[h]
            batch_hash_insert(
                self._keys,
                self._vals,
                self._offsets[rows],
                self._caps[rows],
                pb[h],
                pa[h],
                empty=self.EMPTY,
            )

    # -- slot arithmetic ------------------------------------------------ #
    def _range(self, u: int) -> tuple[int, int]:
        return int(self._offsets[u]), int(self._offsets[u + 1])

    def _probe(self, u: int, block: int) -> int:
        """Slot index of ``block`` in u's table, or -(insert_pos+1)."""
        lo, hi = self._range(u)
        cap = hi - lo
        i = (block * 0x9E3779B1 & 0xFFFFFFFF) % cap
        for _ in range(cap):
            slot = lo + i
            k = self._keys[slot]
            if k == block:
                return slot
            if k == self.EMPTY:
                return -(slot + 1)
            i = (i + 1) % cap
        raise RuntimeError(f"gain table for vertex {u} is full (degree bound violated?)")

    def _insert_add(self, u: int, block: int, delta: int) -> None:
        if self._dense[u]:
            lo, _ = self._range(u)
            self._vals[lo + block] += delta
            return
        self.lock_acquisitions += 1
        slot = self._probe(u, block)
        if slot >= 0:
            self._vals[slot] += delta
            if self._vals[slot] == 0:
                self._delete_slot(u, slot)
            elif self._vals[slot] < 0:
                raise AssertionError(
                    f"negative affinity at vertex {u}, block {block}"
                )
        else:
            if delta == 0:
                return
            pos = -slot - 1
            self._keys[pos] = block
            self._vals[pos] = delta

    def _delete_slot(self, u: int, slot: int) -> None:
        """Backward-shift deletion: move up elements to close the gap [20]."""
        lo, hi = self._range(u)
        cap = hi - lo
        i = slot - lo
        self._keys[slot] = self.EMPTY
        self._vals[slot] = 0
        j = (i + 1) % cap
        while self._keys[lo + j] != self.EMPTY:
            k = int(self._keys[lo + j])
            home = (k * 0x9E3779B1 & 0xFFFFFFFF) % cap
            # can k move into the hole at i? yes iff home is cyclically
            # outside (i, j]
            if (j - home) % cap >= (j - i) % cap:
                self._keys[lo + i] = k
                self._vals[lo + i] = self._vals[lo + j]
                self._keys[lo + j] = self.EMPTY
                self._vals[lo + j] = 0
                i = j
            j = (j + 1) % cap
            if j == (slot - lo):
                break

    # -- interface ------------------------------------------------------ #
    @property
    def nbytes(self) -> int:
        """Modelled footprint: per-slot variable-width value + offsets.

        Dense rows store only values (direct-indexed); hash slots store a
        4-byte key plus the variable-width value.
        """
        widths = self._width_bits // 8
        caps = self._caps
        value_bytes = int(np.sum(caps * widths))
        key_bytes = int(np.sum(caps[~self._dense] * 4))
        return value_bytes + key_bytes + self._offsets.nbytes

    def width_mix(self) -> dict[int, int]:
        """Vertex count per entry width in bits (the paper's width mix)."""
        bits, counts = np.unique(self._width_bits, return_counts=True)
        return {int(b): int(c) for b, c in zip(bits.tolist(), counts.tolist())}

    def affinity(self, u: int, block: int) -> int:
        if self._dense[u]:
            lo, _ = self._range(u)
            return int(self._vals[lo + block])
        slot = self._probe(u, block)
        return int(self._vals[slot]) if slot >= 0 else 0

    def adjacent_blocks(self, u: int) -> np.ndarray:
        lo, hi = self._range(u)
        if self._dense[u]:
            return np.flatnonzero(self._vals[lo:hi])
        mask = self._keys[lo:hi] != self.EMPTY
        return np.sort(self._keys[lo:hi][mask].astype(np.int64))

    def gains(self, u: int) -> tuple[np.ndarray, np.ndarray]:
        if not self._bulk:
            blocks = self.adjacent_blocks(u)
            cur = int(self._pgraph.partition[u])
            cur_aff = self.affinity(u, cur)
            gains = np.array(
                [self.affinity(u, int(b)) - cur_aff for b in blocks.tolist()],
                dtype=np.int64,
            )
            return blocks, gains
        # bulk: one row read instead of a probe per adjacent block
        lo, hi = self._range(u)
        cur = int(self._pgraph.partition[u])
        if self._dense[u]:
            row = self._vals[lo:hi]
            blocks = np.flatnonzero(row)
            return blocks, row[blocks] - row[cur]
        keys = self._keys[lo:hi]
        mask = keys != self.EMPTY
        blocks = keys[mask].astype(np.int64)
        vals = self._vals[lo:hi][mask]
        order = np.argsort(blocks, kind="stable")
        blocks = blocks[order]
        vals = vals[order]
        j = int(np.searchsorted(blocks, cur))
        cur_aff = int(vals[j]) if j < len(blocks) and blocks[j] == cur else 0
        return blocks, vals - cur_aff

    def gains_many(
        self, us: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched :meth:`gains`: gather every row of ``us`` in one pass."""
        us = np.asarray(us, dtype=np.int64)
        if len(us) == 0:
            e = np.empty(0, dtype=np.int64)
            return e, e, e
        lo = self._offsets[us]
        cap = self._caps[us]
        total = int(cap.sum())
        owner = np.repeat(np.arange(len(us), dtype=np.int64), cap)
        seg = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(cap) - cap, cap
        )
        slots = np.repeat(lo, cap) + seg
        vals = self._vals[slots]
        dense_slot = np.repeat(self._dense[us], cap)
        slot_keys = self._keys[slots]
        # dense rows address blocks by slot position; hash rows by key
        block = np.where(dense_slot, seg, slot_keys.astype(np.int64))
        keep = np.where(dense_slot, vals != 0, slot_keys != self.EMPTY)
        o, b, v = owner[keep], block[keep], vals[keep]
        order = np.lexsort((b, o))
        o, b, v = o[order], b[order], v[order]
        return o, b, v - _current_affinities(self._pgraph.partition, us, o, b, v)

    def affinities(self, us: np.ndarray, blocks: np.ndarray) -> np.ndarray:
        """Batch-probe ``affinity(us[i], blocks[i])`` for every query pair."""
        us = np.asarray(us, dtype=np.int64)
        blocks = np.asarray(blocks, dtype=np.int64)
        out = tracked_zeros(len(us), np.int64, name="gain-batch-affinity")
        if len(us) == 0:
            return out
        dense = self._dense[us]
        if np.any(dense):
            d = np.flatnonzero(dense)
            out[d] = self._vals[self._offsets[us[d]] + blocks[d]]
        h = np.flatnonzero(~dense)
        if len(h):
            slots = batch_hash_probe(
                self._keys,
                self._offsets[us[h]],
                self._caps[us[h]],
                blocks[h],
                empty=self.EMPTY,
            )
            hit = slots >= 0
            out[h[hit]] = self._vals[slots[hit]]
        return out

    def apply_move(self, u: int, src: int, dst: int) -> None:
        g = self._pgraph.graph
        nbrs, wgts = g.neighbors_and_weights(u)
        for v, w in zip(np.asarray(nbrs).tolist(), np.asarray(wgts).tolist()):
            self._insert_add(v, src, -w)
            self._insert_add(v, dst, w)

    def free(self, tracker=None) -> None:
        t = tracker or self._tracker
        if t is not None and self._aid is not None:
            t.free(self._aid)
            self._aid = None


def make_gain_table(kind, pgraph, tracker=None, *, bulk: bool = True):
    """Factory keyed by :class:`repro.core.config.GainTableKind` or str.

    ``bulk`` selects the vectorized build/query paths where a table has
    them (currently :class:`SparseGainTable`); the scalar paths stay as
    the verify reference.
    """
    name = getattr(kind, "value", kind)
    if name == "none":
        return NoGainTable(pgraph, tracker)
    if name == "full":
        return FullGainTable(pgraph, tracker)
    if name == "sparse":
        return SparseGainTable(pgraph, tracker, bulk=bulk)
    raise KeyError(f"unknown gain table kind {kind!r}")
