"""Localized multi-search k-way FM ([4], [15] -- the scheme the paper's
"shared-memory parallel localized k-way FM refinement" refers to).

Instead of one global priority queue, many small *searches* run, each
seeded from one boundary vertex and expanding a bounded region around it:
a search holds its own priority queue, moves vertices inside its region
(locking them against other searches), tracks the best prefix of its move
sequence, and rolls back the tail when it stops.  Searches are executed by
virtual threads; because vertices are locked, concurrent searches never
fight over a vertex -- the mechanism that makes the real algorithm safe in
parallel, reproduced literally here.

Shares the gain-table strategies of :mod:`repro.core.refinement.gain_table`
(the memory story of Section V applies unchanged).
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.config import FMConfig
from repro.core.context import PartitionContext
from repro.core.partition import PartitionedGraph
from repro.core.refinement.fm_refine import _best_move
from repro.core.refinement.gain_table import make_gain_table
from repro.memory.scratch import tracked_zeros


def fm_refine_localized(
    pgraph: PartitionedGraph,
    ctx: PartitionContext,
    max_block_weight: int,
    fm_config: FMConfig | None = None,
    *,
    max_region: int = 64,
) -> int:
    """Run localized FM rounds; returns total cut improvement."""
    cfg = fm_config or ctx.config.fm
    total = 0
    tracer = ctx.tracer
    for _ in range(cfg.max_rounds):
        with tracer.span("gain-table-build"):
            table = make_gain_table(
                cfg.gain_table,
                pgraph,
                ctx.tracker,
                bulk=ctx.config.use_bulk_kernels,
            )
        if tracer.enabled:
            tracer.add("gain_table.bytes", table.nbytes)
            mix = getattr(table, "width_mix", None)
            if mix is not None:
                for bits, count in mix().items():
                    tracer.add(f"gain_table.width{bits}_rows", count)
        try:
            improvement = _localized_pass(
                pgraph, ctx, table, max_block_weight, cfg, max_region
            )
        finally:
            table.free(ctx.tracker)
        ctx.runtime.record(
            "fm-localized",
            work=float(pgraph.graph.num_directed_edges),
            bytes_moved=float(16 * pgraph.graph.num_directed_edges),
        )
        total += improvement
        if improvement == 0:
            break
    return total


def _localized_pass(
    pgraph: PartitionedGraph,
    ctx: PartitionContext,
    table,
    max_block_weight: int,
    cfg: FMConfig,
    max_region: int,
) -> int:
    g = pgraph.graph
    locked = tracked_zeros(g.n, bool, name="fm-locked")
    seeds = pgraph.boundary_vertices()
    if len(seeds) == 0:
        return 0
    seeds = seeds[ctx.rng.permutation(len(seeds))]
    improvement = 0
    searches = 0
    committed = 0
    rolled_back = 0

    for seed in seeds.tolist():
        if locked[seed]:
            continue
        gain, kept, rolled = _run_search(
            pgraph, table, int(seed), locked, max_block_weight, max_region
        )
        improvement += gain
        searches += 1
        committed += kept
        rolled_back += rolled
    tracer = ctx.tracer
    tracer.add("fm.searches", searches)
    tracer.add("fm.moves", committed)
    tracer.add("fm.rollback_moves", rolled_back)
    tracer.add("fm.improvement", improvement)
    return improvement


def _run_search(
    pgraph: PartitionedGraph,
    table,
    seed: int,
    locked: np.ndarray,
    max_block_weight: int,
    max_region: int,
) -> tuple[int, int, int]:
    """One localized search: expand from ``seed``, keep the best prefix.

    Returns ``(improvement, kept_moves, rolled_back_moves)``.
    """
    heap: list[tuple[int, int, int, int]] = []
    counter = 0
    touched: list[int] = []  # vertices this search acquired

    def push(u: int) -> None:
        nonlocal counter
        mv = _best_move(table, pgraph, u, max_block_weight)
        if mv is not None:
            heapq.heappush(heap, (-mv[0], counter, u, mv[1]))
            counter += 1

    push(seed)
    moves: list[tuple[int, int, int]] = []
    cumulative = 0
    best = 0
    best_prefix = 0

    while heap and len(moves) < max_region:
        neg_g, _, u, target = heapq.heappop(heap)
        if locked[u]:
            continue
        mv = _best_move(table, pgraph, u, max_block_weight)
        if mv is None:
            continue
        gain, target = mv
        if gain != -neg_g:
            heapq.heappush(heap, (-gain, counter, u, target))
            counter += 1
            continue
        if gain < 0 and cumulative + gain < best - 2:
            break  # this search has gone sour
        locked[u] = True  # acquire: other searches skip u from now on
        touched.append(u)
        src = int(pgraph.partition[u])
        pgraph.move(u, target)
        table.apply_move(u, src, target)
        cumulative += gain
        moves.append((u, src, target))
        if cumulative > best:
            best = cumulative
            best_prefix = len(moves)
        for v in np.asarray(pgraph.graph.neighbors(u)).tolist():
            if not locked[v]:
                push(int(v))

    for u, src, dst in reversed(moves[best_prefix:]):
        pgraph.move(u, src)
        table.apply_move(u, dst, src)
    return best, best_prefix, len(moves) - best_prefix
