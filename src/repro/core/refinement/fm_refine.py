"""Localized k-way FM refinement with pluggable gain tables (Section V).

Structure follows shared-memory parallel localized FM [4], [15]: searches
are seeded from boundary vertices, a priority queue orders candidate moves
by gain, moves respect the balance constraint, and each pass keeps the best
prefix of its move sequence (rollback of the unprofitable tail).  Gains are
served by one of the three gain-table strategies of
:mod:`repro.core.refinement.gain_table`, which is the memory/time trade-off
Figure 7 measures.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.config import FMConfig
from repro.core.context import PartitionContext
from repro.core.kernels import segment_best_last
from repro.core.partition import PartitionedGraph
from repro.core.refinement.gain_table import make_gain_table
from repro.memory.scratch import tracked_zeros


def _best_move(table, pgraph: PartitionedGraph, u: int, max_block_weight: int):
    """Highest-gain feasible move for ``u``; returns (gain, target) or None."""
    blocks, gains = table.gains(u)
    if len(blocks) == 0:
        return None
    cur = int(pgraph.partition[u])
    w = int(pgraph.graph.vwgt[u])
    best = None
    for b, g in zip(blocks.tolist(), gains.tolist()):
        if b == cur:
            continue
        if pgraph.block_weights[b] + w > max_block_weight:
            continue
        if best is None or g > best[0]:
            best = (int(g), int(b))
    return best


def fm_refine(
    pgraph: PartitionedGraph,
    ctx: PartitionContext,
    max_block_weight: int,
    fm_config: FMConfig | None = None,
) -> int:
    """Run FM rounds; returns the total cut improvement achieved."""
    cfg = fm_config or ctx.config.fm
    runtime = ctx.runtime
    total_improvement = 0

    tracer = ctx.tracer
    for _ in range(cfg.max_rounds):
        with tracer.span("gain-table-build"):
            table = make_gain_table(
                cfg.gain_table,
                pgraph,
                ctx.tracker,
                bulk=ctx.config.use_bulk_kernels,
            )
        if tracer.enabled:
            tracer.add("gain_table.bytes", table.nbytes)
            mix = getattr(table, "width_mix", None)
            if mix is not None:
                for bits, count in mix().items():
                    tracer.add(f"gain_table.width{bits}_rows", count)
        try:
            improvement = _fm_pass(pgraph, ctx, table, max_block_weight, cfg)
            if ctx.config.debug.validation_level >= 2:
                # after a pass (moves + rollback) the incrementally
                # maintained table must still match a recompute
                from repro.verify.invariants import check_gain_table_vs_recompute

                check_gain_table_vs_recompute(
                    table, pgraph, sample=64, phase="fm-gain-table"
                )
        finally:
            table.free(ctx.tracker)
        recompute = getattr(table, "recompute_edges", 0)
        runtime.record(
            "fm-refinement",
            work=float(pgraph.graph.num_directed_edges + 4 * recompute),
            bytes_moved=float(16 * (pgraph.graph.num_directed_edges + 4 * recompute)),
        )
        total_improvement += improvement
        if improvement == 0:
            break
    return total_improvement


def _fm_pass(
    pgraph: PartitionedGraph,
    ctx: PartitionContext,
    table,
    max_block_weight: int,
    cfg: FMConfig,
) -> int:
    seeds = (
        pgraph.boundary_vertices()
        if cfg.boundary_only
        else np.arange(pgraph.graph.n, dtype=np.int64)
    )
    if len(seeds) == 0:
        return 0
    heap: list[tuple[int, int, int, int]] = []  # (-gain, tiebreak, u, target)
    counter = 0
    in_moves: list[tuple[int, int, int]] = []  # (u, src, dst)
    locked = tracked_zeros(pgraph.graph.n, bool, name="fm-locked")

    if ctx.config.use_bulk_kernels:
        # score every seed in one batched pass; winners surface in seed
        # order, so the heap tiebreak counters match the scalar loop
        po, pb, pg = table.gains_many(seeds)
        cur = pgraph.partition[seeds].astype(np.int64)
        w = np.asarray(pgraph.graph.vwgt)[seeds]
        feasible = (pb != cur[po]) & (
            pgraph.block_weights[pb] + w[po] <= max_block_weight
        )
        po2, pb2, pg2 = po[feasible], pb[feasible], pg[feasible]
        # max gain, then smallest block -- _best_move's strict-> scan order
        best = segment_best_last(po2, pg2, tiebreak=-pb2)
        for o, b, gn in zip(
            po2[best].tolist(), pb2[best].tolist(), pg2[best].tolist()
        ):
            heapq.heappush(heap, (-int(gn), counter, int(seeds[o]), int(b)))
            counter += 1
    else:
        for u in seeds.tolist():
            mv = _best_move(table, pgraph, int(u), max_block_weight)
            if mv is not None:
                heapq.heappush(heap, (-mv[0], counter, int(u), mv[1]))
                counter += 1

    cumulative = 0
    best_cumulative = 0
    best_prefix = 0
    fruitless = 0

    while heap and fruitless < cfg.max_fruitless_moves:
        neg_g, _, u, target = heapq.heappop(heap)
        if locked[u]:
            continue
        mv = _best_move(table, pgraph, u, max_block_weight)
        if mv is None:
            continue
        gain, target = mv
        if gain != -neg_g:
            heapq.heappush(heap, (-gain, counter, u, target))
            counter += 1
            continue
        src = int(pgraph.partition[u])
        # stop descending into deeply negative territory
        if gain < 0 and cumulative + gain < best_cumulative - _abort_slack(pgraph):
            break
        locked[u] = True
        pgraph.move(u, target)
        table.apply_move(u, src, target)
        cumulative += gain
        in_moves.append((u, src, target))
        if cumulative > best_cumulative:
            best_cumulative = cumulative
            best_prefix = len(in_moves)
            fruitless = 0
        else:
            fruitless += 1
        # requeue affected neighbors
        for v in np.asarray(pgraph.graph.neighbors(u)).tolist():
            if locked[v]:
                continue
            mv = _best_move(table, pgraph, int(v), max_block_weight)
            if mv is not None:
                heapq.heappush(heap, (-mv[0], counter, int(v), mv[1]))
                counter += 1

    # rollback tail
    for u, src, dst in reversed(in_moves[best_prefix:]):
        pgraph.move(u, src)
        table.apply_move(u, dst, src)
    tracer = ctx.tracer
    tracer.add("fm.moves", best_prefix)
    tracer.add("fm.rollback_moves", len(in_moves) - best_prefix)
    tracer.add("fm.improvement", best_cumulative)
    return best_cumulative


def _abort_slack(pgraph: PartitionedGraph) -> int:
    """Allowance for temporarily-negative move chains (hill climbing).

    Ten average-weight edges' worth of slack: enough for FM to cross small
    ridges without chasing hopeless descents.
    """
    g = pgraph.graph
    avg_edge_weight = g.total_edge_weight // max(1, g.num_directed_edges)
    return 10 * max(1, int(avg_edge_weight))
