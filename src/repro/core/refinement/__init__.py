"""Uncoarsening refinement: size-constrained LP, k-way FM, rebalancing."""

from repro.core.refinement.gain_table import (
    FullGainTable,
    NoGainTable,
    SparseGainTable,
    make_gain_table,
)
from repro.core.refinement.lp_refine import lp_refine
from repro.core.refinement.fm_refine import fm_refine
from repro.core.refinement.balancer import rebalance

__all__ = [
    "FullGainTable",
    "NoGainTable",
    "SparseGainTable",
    "make_gain_table",
    "lp_refine",
    "fm_refine",
    "rebalance",
]
