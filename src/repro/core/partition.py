"""Partition representation and quality metrics.

Terminology follows the paper: blocks ``V_1..V_k`` must satisfy the balance
constraint ``w(V_i) <= L_max := (1+eps) * ceil(w(V)/k)`` and the objective is
the total weight of cut edges.
"""

from __future__ import annotations

import numpy as np

from repro.memory.scratch import tracked_zeros


def max_block_weight(total_weight: int, k: int, epsilon: float) -> int:
    """The balance ceiling ``L_max = (1+eps) * ceil(w(V)/k)``."""
    return int((1.0 + epsilon) * -(-total_weight // k))


class PartitionedGraph:
    """A graph plus a block assignment.

    Maintains block weights incrementally under :meth:`move`, which is the
    operation refinement algorithms hammer on.
    """

    def __init__(self, graph, k: int, partition: np.ndarray) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        partition = np.ascontiguousarray(partition, dtype=np.int32)
        if len(partition) != graph.n:
            raise ValueError("partition must assign every vertex")
        if graph.n and (partition.min() < 0 or partition.max() >= k):
            raise ValueError("partition contains out-of-range block IDs")
        self.graph = graph
        self.k = k
        self.partition = partition
        self.block_weights = tracked_zeros(k, np.int64, name="block-weights")
        np.add.at(self.block_weights, partition, np.asarray(graph.vwgt))

    # ------------------------------------------------------------------ #
    def block(self, u: int) -> int:
        return int(self.partition[u])

    def move(self, u: int, target: int) -> None:
        """Move ``u`` to block ``target``, updating block weights."""
        src = self.partition[u]
        if src == target:
            return
        w = int(self.graph.vwgt[u])
        self.block_weights[src] -= w
        self.block_weights[target] += w
        self.partition[u] = target

    # ------------------------------------------------------------------ #
    # metrics
    # ------------------------------------------------------------------ #
    def cut_weight(self) -> int:
        """Total weight of edges crossing blocks (each undirected edge once)."""
        g = self.graph
        part = self.partition
        if hasattr(g, "adjncy"):  # CSR fast path
            src = np.repeat(np.arange(g.n, dtype=np.int64), g.degrees)
            cross = part[src] != part[g.adjncy]
            return int(np.asarray(g.adjwgt)[cross].sum()) // 2
        # compressed graphs: bulk-decode in chunks instead of per vertex
        from repro.graph.access import chunk_adjacency

        total = 0
        for start in range(0, g.n, 4096):
            chunk = np.arange(start, min(start + 4096, g.n), dtype=np.int64)
            owner, nbrs, wgts = chunk_adjacency(g, chunk)
            cross = part[chunk[owner]] != part[nbrs]
            total += int(np.asarray(wgts)[cross].sum())
        return total // 2

    def cut_fraction(self) -> float:
        tw = self.graph.total_edge_weight // 2
        return self.cut_weight() / tw if tw else 0.0

    def imbalance(self) -> float:
        """``max_i w(V_i) / (w(V)/k) - 1`` (0 = perfectly balanced)."""
        avg = self.graph.total_vertex_weight / self.k
        if avg == 0:
            return 0.0
        return float(self.block_weights.max()) / avg - 1.0

    def is_balanced(self, epsilon: float) -> bool:
        lmax = max_block_weight(self.graph.total_vertex_weight, self.k, epsilon)
        return bool(self.block_weights.max() <= lmax)

    def nonempty_blocks(self) -> int:
        return int(np.count_nonzero(np.bincount(self.partition, minlength=self.k)))

    def boundary_vertices(self) -> np.ndarray:
        """Vertices with at least one neighbor in a different block."""
        g = self.graph
        part = self.partition
        if hasattr(g, "adjncy"):
            src = np.repeat(np.arange(g.n, dtype=np.int64), g.degrees)
            cross = part[src] != part[g.adjncy]
            return np.unique(src[cross])
        from repro.graph.access import chunk_adjacency

        out: list[np.ndarray] = []
        for start in range(0, g.n, 4096):
            chunk = np.arange(start, min(start + 4096, g.n), dtype=np.int64)
            owner, nbrs, _ = chunk_adjacency(g, chunk)
            cross = part[chunk[owner]] != part[nbrs]
            out.append(chunk[np.unique(owner[cross])])
        return (
            np.concatenate(out) if out else np.empty(0, dtype=np.int64)
        )

    def validate(self) -> None:
        """Check invariants: weights consistent, assignment in range."""
        bw = tracked_zeros(self.k, np.int64, name="validate-block-weights")
        np.add.at(bw, self.partition, np.asarray(self.graph.vwgt))
        if not np.array_equal(bw, self.block_weights):
            raise AssertionError("block weights out of sync with partition")

    def copy(self) -> "PartitionedGraph":
        return PartitionedGraph(self.graph, self.k, self.partition.copy())

    def __repr__(self) -> str:
        return (
            f"PartitionedGraph(k={self.k}, cut={self.cut_weight()}, "
            f"imbalance={self.imbalance():.3f})"
        )
