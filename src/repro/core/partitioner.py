"""The multilevel partitioning driver: coarsen -> initial -> uncoarsen+refine.

This is the KaMinPar skeleton into which the paper's optimizations plug.
The configured variant decides:

* whether the input is compressed before partitioning (Section III),
* classic vs two-phase label propagation clustering (Section IV-A),
* buffered vs one-pass contraction (Section IV-B),
* LP-only vs LP+FM refinement and the FM gain-table kind (Section V).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.coarsening.coarsener import coarsen_hierarchy
from repro.core.config import PartitionerConfig, terapart
from repro.core.context import PartitionContext
from repro.core.initial.recursive import initial_partition
from repro.core.partition import PartitionedGraph, max_block_weight
from repro.memory.scratch import tracked_full
from repro.core.refinement.balancer import rebalance
from repro.core.refinement.fm_localized import fm_refine_localized
from repro.core.refinement.fm_refine import fm_refine
from repro.core.refinement.lp_refine import lp_refine
from repro.graph import access as graph_access
from repro.graph.compressed import compress_graph
from repro.memory.report import MemoryReport
from repro.memory.tracker import MemoryTracker
from repro.obs.tracer import NULL_TRACER, SpanTracer
from repro.parallel.cost_model import CostModel
from repro.parallel.runtime import ParallelRuntime


@dataclass
class PartitionResult:
    """Everything the benchmarks report about one partitioning run."""

    pgraph: PartitionedGraph
    cut: int
    cut_fraction: float
    imbalance: float
    balanced: bool
    wall_seconds: float
    modeled_seconds: float
    peak_bytes: int
    memory: MemoryReport
    num_levels: int
    config_name: str
    phase_stats: dict = field(default_factory=dict)
    # verify-layer report (populated when config.debug enables validation
    # or conflict detection): invariant-check count, detector conflicts,
    # schedule policy used
    selfcheck: dict | None = None
    # obs-layer artifacts (populated when config.obs.enabled): the raw span
    # tracer (exportable via repro.obs.write_chrome_trace) and the metrics
    # registry snapshot (counters, per-phase memory waterfall, threads)
    trace: object | None = None
    obs: dict | None = None

    @property
    def partition(self) -> np.ndarray:
        return self.pgraph.partition


def partition(
    graph,
    k: int,
    config: PartitionerConfig | None = None,
    *,
    tracker: MemoryTracker | None = None,
    runtime: ParallelRuntime | None = None,
) -> PartitionResult:
    """Partition ``graph`` into ``k`` balanced blocks.

    ``graph`` may be a :class:`~repro.graph.csr.CSRGraph` or an
    already-compressed :class:`~repro.graph.compressed.CompressedGraph`.
    Returns a :class:`PartitionResult`; the partition array itself is
    ``result.partition``.
    """
    config = config or terapart()
    tracker = tracker if tracker is not None else MemoryTracker()
    dbg = config.debug
    runtime = runtime or ParallelRuntime(
        config.p,
        schedule_policy=dbg.schedule_policy,
        schedule_seed=dbg.schedule_seed,
    )
    detector = runtime.detector
    if dbg.detect_conflicts and detector is None:
        from repro.verify.conflicts import ConflictDetector

        detector = ConflictDetector()
        runtime.attach_detector(detector)
    inv = None
    checks_run = 0
    if dbg.validation_level:
        from repro.verify import invariants as inv

    obs_cfg = config.obs
    tracer = SpanTracer(tracker) if obs_cfg.enabled else NULL_TRACER
    if obs_cfg.enabled:
        if obs_cfg.chunk_attribution:
            runtime.attach_tracer(tracer)
        graph_access.install_tracer(tracer)
    if obs_cfg.track_scratch:
        from repro.memory import scratch as _scratch

        _scratch.install_ledger(tracker)

    ctx = PartitionContext(
        config=config,
        k=k,
        total_vertex_weight=graph.total_vertex_weight,
        tracker=tracker,
        runtime=runtime,
        tracer=tracer,
    )
    t0 = time.perf_counter()

    try:
        pgraph, levels, checks_run = _partition_phases(
            graph, k, config, ctx, inv, checks_run
        )
    finally:
        if obs_cfg.enabled:
            graph_access.uninstall_tracer()
            runtime.detach_tracer()
            tracer.finish()
        if obs_cfg.track_scratch:
            from repro.memory import scratch as _scratch

            _scratch.uninstall_ledger()

    wall = time.perf_counter() - t0
    model = CostModel()
    modeled = model.total_time(runtime.all_stats(), runtime.p)
    selfcheck = None
    if dbg.validation_level or dbg.detect_conflicts:
        selfcheck = {
            "validation_level": dbg.validation_level,
            "invariant_checks": checks_run,
            "conflicts": []
            if detector is None
            else [str(c) for c in detector.conflicts],
            "regions_checked": 0 if detector is None else detector.regions_checked,
            "accesses_recorded": 0
            if detector is None
            else detector.accesses_recorded,
            "schedule_policy": dbg.schedule_policy or "issue",
            "schedule_seed": dbg.schedule_seed,
        }
    obs_dict = None
    if obs_cfg.enabled:
        from repro.obs.metrics import MetricsRegistry

        obs_dict = MetricsRegistry.from_run(
            tracer,
            tracker,
            meta={
                "config": config.name,
                "k": k,
                "p": config.p,
                "seed": config.seed,
                "n": graph.n,
                "m": graph.m,
                "num_levels": len(levels),
            },
        ).to_dict()
    cut = pgraph.cut_weight()
    half_tew = pgraph.graph.total_edge_weight // 2
    return PartitionResult(
        pgraph=pgraph,
        cut=cut,
        cut_fraction=cut / half_tew if half_tew else 0.0,
        imbalance=pgraph.imbalance(),
        balanced=pgraph.is_balanced(config.epsilon),
        wall_seconds=wall,
        modeled_seconds=modeled,
        peak_bytes=tracker.peak_bytes,
        memory=MemoryReport.from_tracker(tracker),
        num_levels=len(levels),
        config_name=config.name,
        phase_stats={name: s for name, s in runtime.all_stats().items()},
        selfcheck=selfcheck,
        trace=tracer if obs_cfg.enabled else None,
        obs=obs_dict,
    )


def refine_partition(
    graph,
    k: int,
    partition_in,
    config: PartitionerConfig | None = None,
    *,
    tracker: MemoryTracker | None = None,
    runtime: ParallelRuntime | None = None,
    extra_lp_rounds: int = 0,
) -> PartitionResult:
    """Warm-start: refine an existing assignment instead of repartitioning.

    This is the multilevel warm start the serving layer uses for
    incremental repartitioning: ``partition_in`` (typically the previous
    result on a slightly drifted graph) is treated as the projected
    finest-level partition, and only the refinement stack runs — rebalance,
    LP refinement (plus FM when the config enables it), rebalance.  The
    whole coarsening hierarchy, initial partitioning, and input compression
    are skipped, which is where the warm-start speedup comes from.

    ``graph`` may be CSR or compressed; ``partition_in`` must assign all
    ``graph.n`` vertices to blocks in ``[0, k)``.  Returns a full
    :class:`PartitionResult` with ``num_levels == 0``.
    """
    config = config or terapart()
    tracker = tracker if tracker is not None else MemoryTracker()
    dbg = config.debug
    runtime = runtime or ParallelRuntime(
        config.p,
        schedule_policy=dbg.schedule_policy,
        schedule_seed=dbg.schedule_seed,
    )
    obs_cfg = config.obs
    tracer = SpanTracer(tracker) if obs_cfg.enabled else NULL_TRACER
    ctx = PartitionContext(
        config=config,
        k=k,
        total_vertex_weight=graph.total_vertex_weight,
        tracker=tracker,
        runtime=runtime,
        tracer=tracer,
    )
    t0 = time.perf_counter()
    part = np.ascontiguousarray(partition_in, dtype=np.int32)
    try:
        with ctx.phase("partition"):
            input_aid = tracker.alloc("input-graph", graph.nbytes, "graph")
            pgraph = PartitionedGraph(graph, k, part.copy())
            lmax = max_block_weight(
                graph.total_vertex_weight, k, config.epsilon
            )
            rounds = config.lp_refinement_rounds + max(0, extra_lp_rounds)
            with ctx.phase("refinement-level0", level=0):
                rebalance(pgraph, lmax, tracer=tracer)
                lp_refine(pgraph, ctx, lmax, rounds=rounds)
                if config.use_fm:
                    if config.fm.localized:
                        fm_refine_localized(
                            pgraph, ctx, lmax, max_region=config.fm.max_region
                        )
                    else:
                        fm_refine(pgraph, ctx, lmax)
                rebalance(pgraph, lmax, tracer=tracer)
            tracker.free(input_aid)
    finally:
        if obs_cfg.enabled:
            tracer.finish()
    wall = time.perf_counter() - t0
    model = CostModel()
    modeled = model.total_time(runtime.all_stats(), runtime.p)
    cut = pgraph.cut_weight()
    half_tew = pgraph.graph.total_edge_weight // 2
    return PartitionResult(
        pgraph=pgraph,
        cut=cut,
        cut_fraction=cut / half_tew if half_tew else 0.0,
        imbalance=pgraph.imbalance(),
        balanced=pgraph.is_balanced(config.epsilon),
        wall_seconds=wall,
        modeled_seconds=modeled,
        peak_bytes=tracker.peak_bytes,
        memory=MemoryReport.from_tracker(tracker),
        num_levels=0,
        config_name=config.name,
        phase_stats={name: s for name, s in runtime.all_stats().items()},
        trace=tracer if obs_cfg.enabled else None,
    )


def _partition_phases(graph, k, config, ctx, inv, checks_run):
    """The multilevel pipeline proper, scoped by ledger phases + obs spans."""
    tracker = ctx.tracker
    runtime = ctx.runtime
    tracer = ctx.tracer
    dbg = config.debug

    with ctx.phase("partition"):
        # ---------------- input representation ---------------- #
        top = graph
        input_aid = None
        if config.compress_input and hasattr(graph, "indptr"):
            with ctx.phase("compression"):
                top = compress_graph(
                    graph,
                    enable_intervals=config.compression_intervals,
                    tracker=None,
                    bulk=config.use_bulk_kernels,
                )
                input_aid = tracker.alloc("input-graph", top.nbytes, "graph")
                tracer.add("compression.input_bytes", graph.nbytes)
                tracer.add("compression.compressed_bytes", top.nbytes)
        else:
            input_aid = tracker.alloc("input-graph", top.nbytes, "graph")

        if inv is not None and dbg.validation_level >= 2:
            if top is not graph:
                inv.check_compressed_roundtrip(
                    graph, top, sample=256, phase="compression"
                )
                checks_run += 1
            elif hasattr(graph, "indptr"):
                inv.check_csr(graph, phase="input")
                checks_run += 1

        # ---------------- coarsening ---------------- #
        with ctx.phase("coarsening"):
            levels = coarsen_hierarchy(top, ctx)

        graphs = [top] + [lvl.graph for lvl in levels]
        coarsest = graphs[-1]
        tracer.add("coarsening.levels", len(levels))

        if inv is not None:
            for li, lvl in enumerate(levels):
                inv.check_coarse_mapping(
                    graphs[li],
                    lvl.graph,
                    lvl.fine_to_coarse,
                    phase=f"coarsening-level{li}",
                )
                checks_run += 1
                if dbg.validation_level >= 2:
                    inv.check_csr(lvl.graph, phase=f"coarsening-level{li}")
                    checks_run += 1

        # ---------------- initial partitioning ---------------- #
        deep_state = None
        with ctx.phase("initial-partitioning", level=len(levels)):
            tracer.add("initial.coarsest_n", coarsest.n)
            tracer.add("initial.attempts", config.initial.attempts)
            if config.initial.scheme == "deep":
                from repro.core.initial.deep import deep_initial_partition

                part, deep_state = deep_initial_partition(
                    coarsest,
                    k,
                    config.epsilon,
                    ctx.rng,
                    factor=config.coarsening.contraction_limit_factor,
                    attempts=config.initial.attempts,
                    fm_rounds=config.initial.fm_rounds,
                )
            else:
                part = initial_partition(
                    coarsest,
                    k,
                    config.epsilon,
                    ctx.rng,
                    attempts=config.initial.attempts,
                    fm_rounds=config.initial.fm_rounds,
                )
            # the portfolio and the bisection tree parallelize over at
            # most ~k slots (the paper: "initial partitioning can only make
            # full use of parallelism once k\' >= p")
            runtime.record(
                "initial-partitioning",
                work=float(
                    coarsest.num_directed_edges
                    * max(1, int(np.log2(max(k, 2))))
                    * config.initial.attempts
                ),
                max_parallelism=float(k),
            )

        lmax = max_block_weight(graph.total_vertex_weight, k, config.epsilon)

        def block_limits() -> np.ndarray | int:
            """Scalar L_max once all k blocks exist; budget-scaled during
            the deep scheme's growth phase (block b holds budgets[b] final
            blocks, so its ceiling is budgets[b] * ceil(w/k) * (1+eps))."""
            if deep_state is None or deep_state.done():
                return lmax
            limits = tracked_full(k, lmax, np.int64, name="block-limits")
            per_final = -(-graph.total_vertex_weight // k)
            kc = deep_state.k_current
            limits[:kc] = (
                (1.0 + config.epsilon)
                * per_final
                * deep_state.budgets.astype(np.float64)
            ).astype(np.int64)
            return limits

        # ---------------- uncoarsening + refinement ---------------- #
        pgraph = PartitionedGraph(coarsest, k, part)
        if inv is not None:
            inv.check_partition(pgraph, phase="initial-partitioning")
            checks_run += 1
        for li in range(len(graphs) - 1, -1, -1):
            with ctx.phase(f"refinement-level{li}", level=li):
                if deep_state is not None and not deep_state.done():
                    from repro.core.initial.deep import extend_partition

                    extend_partition(
                        pgraph,
                        deep_state,
                        ctx.rng,
                        factor=config.coarsening.contraction_limit_factor,
                        attempts=config.initial.attempts,
                        fm_rounds=config.initial.fm_rounds,
                    )
                limits = block_limits()
                rebalance(pgraph, limits, tracer=tracer)
                lp_refine(pgraph, ctx, limits)
                if config.use_fm and (deep_state is None or deep_state.done()):
                    if config.fm.localized:
                        fm_refine_localized(
                            pgraph, ctx, lmax, max_region=config.fm.max_region
                        )
                    else:
                        fm_refine(pgraph, ctx, lmax)
                rebalance(pgraph, limits, tracer=tracer)
            if inv is not None:
                inv.check_partition(pgraph, phase=f"refinement-level{li}")
                checks_run += 1
            if li > 0:
                # project to the next finer graph and drop the coarse level
                fine_to_coarse = levels[li - 1].fine_to_coarse
                finer = graphs[li - 1]
                part = pgraph.partition[fine_to_coarse].astype(np.int32)
                tracker.free(levels[li - 1].graph_aid)
                pgraph = PartitionedGraph(finer, k, part)

        # the deep scheme may still owe block splits if the hierarchy was
        # shallow; finish them on the input graph
        if deep_state is not None and not deep_state.done():
            from repro.core.initial.deep import extend_partition

            while not deep_state.done():
                if not extend_partition(
                    pgraph,
                    deep_state,
                    ctx.rng,
                    factor=1,  # force: every remaining budget must split now
                    attempts=config.initial.attempts,
                    fm_rounds=config.initial.fm_rounds,
                ):
                    break
            rebalance(pgraph, lmax, tracer=tracer)
            lp_refine(pgraph, ctx, lmax)
            rebalance(pgraph, lmax, tracer=tracer)

        if inv is not None:
            inv.check_partition(pgraph, phase="final")
            checks_run += 1

        if input_aid is not None:
            tracker.free(input_aid)

    return pgraph, levels, checks_run
