"""Partition quality metrics beyond the edge cut.

The paper optimizes the edge cut, but downstream users of a partitioner
(the applications in its introduction: distributed databases, graph
processing, scientific computing) also care about *communication volume*
(how many block-replicas of each vertex exist), the boundary size, and
whether blocks are internally connected.  These are standard reporting
metrics in the METIS/KaHIP ecosystem and round out the public API.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.partition import PartitionedGraph
from repro.graph.access import full_adjacency


@dataclass
class PartitionMetrics:
    """Full quality report for one partition."""

    k: int
    cut_weight: int
    cut_fraction: float
    communication_volume: int
    max_block_communication_volume: int
    boundary_vertices: int
    imbalance: float
    nonempty_blocks: int
    connected_blocks: int

    def row(self) -> str:
        return (
            f"cut={self.cut_weight} ({self.cut_fraction:.2%}) "
            f"cv={self.communication_volume} boundary={self.boundary_vertices} "
            f"imb={self.imbalance:.3f} connected={self.connected_blocks}/{self.k}"
        )


def communication_volume(pgraph: PartitionedGraph) -> tuple[int, int]:
    """Total and max-per-block communication volume.

    A vertex ``u`` in block ``b`` contributes one unit to block ``b'`` for
    every *other* block its neighborhood touches (``u`` must be replicated
    there).  Returns ``(total, max_per_block)``.
    """
    g = pgraph.graph
    part = pgraph.partition
    src, dst, _ = full_adjacency(g)
    if len(src) == 0:
        return 0, 0
    # distinct (vertex, foreign block) pairs
    pb = part[dst].astype(np.int64)
    foreign = pb != part[src]
    pairs = src[foreign] * np.int64(pgraph.k) + pb[foreign]
    uniq = np.unique(pairs)
    total = int(len(uniq))
    # volume charged to the *receiving* block
    recv = (uniq % pgraph.k).astype(np.int64)
    per_block = np.bincount(recv, minlength=pgraph.k)
    return total, int(per_block.max()) if len(per_block) else 0


def block_connectivity(pgraph: PartitionedGraph) -> int:
    """Number of blocks that induce a connected subgraph."""
    g = pgraph.graph
    part = pgraph.partition
    src, dst, _ = full_adjacency(g)
    connected = 0
    for b in range(pgraph.k):
        members = np.flatnonzero(part == b)
        if len(members) == 0:
            continue
        if len(members) == 1:
            connected += 1
            continue
        # union-find over intra-block edges
        local = {int(v): i for i, v in enumerate(members.tolist())}
        parent = np.arange(len(members), dtype=np.int64)

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = int(parent[x])
            return x

        mask = (part[src] == b) & (part[dst] == b)
        for u, v in zip(src[mask].tolist(), dst[mask].tolist()):
            ru, rv = find(local[u]), find(local[v])
            if ru != rv:
                parent[ru] = rv
        roots = {find(i) for i in range(len(members))}
        if len(roots) == 1:
            connected += 1
    return connected


def compute_metrics(pgraph: PartitionedGraph) -> PartitionMetrics:
    """All quality metrics in one pass-friendly call."""
    cv_total, cv_max = communication_volume(pgraph)
    return PartitionMetrics(
        k=pgraph.k,
        cut_weight=pgraph.cut_weight(),
        cut_fraction=pgraph.cut_fraction(),
        communication_volume=cv_total,
        max_block_communication_volume=cv_max,
        boundary_vertices=int(len(pgraph.boundary_vertices())),
        imbalance=pgraph.imbalance(),
        nonempty_blocks=pgraph.nonempty_blocks(),
        connected_blocks=block_connectivity(pgraph),
    )


def write_partition(path, partition: np.ndarray) -> None:
    """Write a METIS-style .part file (one block ID per line)."""
    np.savetxt(path, partition, fmt="%d")


def read_partition(path) -> np.ndarray:
    """Read a METIS-style .part file."""
    return np.loadtxt(path, dtype=np.int32).reshape(-1)
