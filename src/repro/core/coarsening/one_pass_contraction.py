"""One-pass cluster contraction (Section IV-B2).

Builds the coarse CSR *directly*, without a second buffered copy:

1. The coarse edge array ``E'`` is reserved with ``2m`` entries via memory
   overcommitment (only touched entries are charged).
2. Coarse vertices (clusters) are processed in parallel chunks.  A chunk's
   coarse neighborhoods are aggregated (two-phase, as in clustering), then
   the shared dual counter ``(d, s)`` is advanced **once per chunk** with a
   double-width CAS: ``d`` by the number of coarse edges, ``s`` by the number
   of coarse vertices -- the paper's buffering trick ``B_t`` that reduces CAS
   contention.
3. The pre-increment values ``(d_prev, s_prev)`` give both the write position
   in ``E'`` and the *new* coarse vertex IDs, so neighborhoods of consecutive
   coarse IDs are consecutive in ``E'`` without shuffling; endpoints are
   remapped from old cluster IDs to new IDs at the end.

Because chunk completion order in a real parallel run is nondeterministic,
the resulting coarse vertex numbering is a permutation of the buffered
scheme's numbering.  We process chunks in a seeded shuffled order to exhibit
exactly that behaviour; tests verify isomorphism against buffered output.
"""

from __future__ import annotations

import numpy as np

from repro.core.context import PartitionContext
from repro.core.coarsening.contraction import ContractionOutput
from repro.core.kernels import aggregate_coarse_edges, gather_cluster_members
from repro.graph.access import chunk_adjacency, traversal_cost
from repro.graph.csr import CSRGraph
from repro.parallel.atomics import DualCounter
from repro.verify.declarations import recorder_for


def _null_tracer():
    from repro.obs.tracer import NULL_TRACER

    return NULL_TRACER


def contract_one_pass(
    graph,
    clusters: np.ndarray,
    cluster_weights: np.ndarray,
    ctx: PartitionContext,
) -> ContractionOutput:
    """Contract ``clusters`` with the one-pass dual-counter scheme."""
    tracker = ctx.tracker
    runtime = ctx.runtime
    cc = ctx.config.coarsening
    n = graph.n
    m2 = graph.num_directed_edges

    # leaders and member lists: vertices sorted by their cluster leader
    leaders = np.unique(clusters)
    n_coarse = len(leaders)
    member_order = np.argsort(clusters, kind="stable")
    member_clusters = clusters[member_order]
    member_starts = np.searchsorted(member_clusters, leaders)
    member_ends = np.append(member_starts[1:], n)

    # working-set accounting: per-thread hash tables + chunk buffers B_t,
    # the overcommitted E' (ids + weights), P', and the remap array
    t_bump = ctx.effective_t_bump(n)
    edge_bytes, work_factor = traversal_cost(graph)
    cap = cc.first_phase_table_capacity or t_bump
    table_bytes = 16 * (1 << max(1, (2 * cap - 1).bit_length()))
    aux_aid = tracker.alloc(
        "one-pass-aux",
        runtime.p * (table_bytes + 16 * ctx.effective_buffer_capacity(n)) + 8 * n,
        "contraction",
    )
    eprime_aid = tracker.alloc(
        "coarse-edge-array", 16 * m2, "graph", overcommit=True
    )
    pprime_aid = tracker.alloc("coarse-indptr", 8 * (n_coarse + 1), "graph")

    # shared-access declarations: repro.verify.declarations, key
    # "one-pass-contraction" -- checked here dynamically and by `repro lint`
    det = ctx.detector
    rec = recorder_for(det, "one-pass-contraction")
    dual = DualCounter(detector=det)
    eprime_dst = np.empty(m2, dtype=np.int64)  # old cluster IDs, remapped later
    eprime_w = np.empty(m2, dtype=np.int64)
    pprime = np.zeros(n_coarse + 1, dtype=np.int64)
    new_id_of_leader = np.full(n, -1, dtype=np.int64)
    new_vwgt = np.empty(n_coarse, dtype=np.int64)
    bumped = 0

    # Chunk completion order in a real parallel run is nondeterministic but
    # only *locally* so: with p threads pulling chunks in issue order, a
    # chunk finishes within ~p positions of its index.  Model that with a
    # bounded perturbation (a full shuffle would destroy the vertex-ID
    # locality real runs retain, measurably hurting downstream quality).
    sched = runtime.schedule(np.arange(n_coarse, dtype=np.int64))
    # the jitter is always drawn so the rng stream is independent of any
    # schedule-policy override the verify layer installs
    jitter = ctx.rng.uniform(0.0, 2.0 * runtime.p, size=sched.num_chunks)
    default_order = np.argsort(np.arange(sched.num_chunks) + jitter)
    chunk_weights = None
    if runtime.schedule_policy == "heavy-first":
        chunk_weights = np.array(
            [int((member_ends[c] - member_starts[c]).sum()) for c in sched.chunks],
            dtype=np.int64,
        )
    if det is not None:
        det.begin_region("contraction")
    ktracer = ctx.tracer if ctx.config.obs.kernel_spans else _null_tracer()
    with ktracer.span("contraction-aggregate"):
        for _tid, leader_idx in runtime.execute(
            sched,
            weights=chunk_weights,
            default_order=default_order,
            phase="contraction",
        ):
            # leader_idx: indices into `leaders`
            chunk_leaders = leaders[leader_idx]
            # flatten all member vertices of this chunk's clusters
            members, member_owner = gather_cluster_members(
                member_order, member_starts, member_ends, leader_idx
            )

            owner_m, nbrs, wgts = chunk_adjacency(graph, members)
            owner = member_owner[owner_m]  # chunk-local coarse vertex index
            po, pc, pw, local_offsets = aggregate_coarse_edges(
                owner, clusters[nbrs], wgts, chunk_leaders, n, len(leader_idx)
            )

            nc = np.bincount(po, minlength=len(leader_idx))
            bumped += int(np.sum(nc >= t_bump))

            # dual-counter transaction for the whole chunk (buffered CAS)
            d_prev, s_prev = dual.fetch_add(len(po), len(leader_idx))

            # neighborhoods are already grouped by owner (segment reduce
            # sorts by (owner, cluster)); place them at E'[d_prev:]
            eprime_dst[d_prev : d_prev + len(po)] = pc
            eprime_w[d_prev : d_prev + len(po)] = pw
            pprime[s_prev : s_prev + len(leader_idx)] = d_prev + local_offsets
            new_ids = s_prev + np.arange(len(leader_idx), dtype=np.int64)
            new_id_of_leader[chunk_leaders] = new_ids
            new_vwgt[new_ids] = cluster_weights[chunk_leaders]

            if rec.active:
                # plain writes: the dual counter's pre-increment values must
                # make every chunk's slices disjoint -- the detector
                # verifies it
                if len(po):
                    rec.write(
                        "coarse-edges", np.arange(d_prev, d_prev + len(po))
                    )
                rec.write(
                    "coarse-indptr", np.arange(s_prev, s_prev + len(leader_idx))
                )
                rec.write("new-id-of-leader", chunk_leaders)
                rec.write("coarse-vwgt", new_ids)

            tracker.touch(eprime_aid, 16 * dual.d)
            runtime.record(
                "contraction",
                work=float(len(owner_m)) * work_factor + float(len(po)),
                bytes_moved=edge_bytes * len(owner_m) + 16.0 * len(po),
                atomic_ops=1,
            )

    if det is not None:
        det.end_region()
    m2_coarse = dual.d
    assert dual.s == n_coarse
    pprime[n_coarse] = m2_coarse
    tracer = ctx.tracer
    tracer.add("contraction.coarse_edges", m2_coarse)
    tracer.add("contraction.cas_transactions", sched.num_chunks)
    tracer.add("contraction.bumped_clusters", bumped)

    # remap endpoints from old cluster IDs to new coarse IDs (Fig. 3, bottom)
    adjncy = new_id_of_leader[eprime_dst[:m2_coarse]]
    adjwgt = eprime_w[:m2_coarse]
    unit = bool(m2_coarse == 0 or np.all(adjwgt == 1))
    coarse = CSRGraph(
        pprime,
        adjncy,
        None if unit else adjwgt.copy(),
        new_vwgt,
        sorted_neighborhoods=False,
    )
    fine_to_coarse = new_id_of_leader[clusters]

    tracker.free(aux_aid)
    tracker.free(eprime_aid)
    tracker.free(pprime_aid)
    graph_aid = tracker.alloc("coarse-graph", coarse.nbytes, "graph")
    return ContractionOutput(coarse, fine_to_coarse, graph_aid, bumped_clusters=bumped)
