"""Buffered cluster contraction (the baseline KaMinPar scheme).

Computes all coarse edges into temporary per-thread buffers, then -- once
every degree is known -- computes the offset prefix sum and *copies* the
buffered edges into the final CSR arrays.  The coarse graph therefore exists
twice in memory at the peak (Section IV-B: "a set of temporary buffers
storing E' during aggregation; before the edges are copied to E'"), which is
exactly what one-pass contraction eliminates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.context import PartitionContext
from repro.graph.access import full_adjacency, traversal_cost
from repro.graph.csr import CSRGraph
from repro.memory.scratch import tracked_empty, tracked_full


@dataclass
class ContractionOutput:
    """Result of a contraction step.

    ``graph_aid`` is the ledger handle of the coarse graph's allocation; the
    hierarchy owns it and frees it when the level is dropped.
    """

    coarse: CSRGraph
    fine_to_coarse: np.ndarray
    graph_aid: int
    bumped_clusters: int = 0


def _dense_remap(clusters: np.ndarray) -> tuple[np.ndarray, np.ndarray, int]:
    """Map sparse leader IDs to dense coarse IDs [0, n') in leader order."""
    leaders = np.unique(clusters)
    n_coarse = len(leaders)
    remap = tracked_full(len(clusters), -1, np.int64, name="contract-remap")
    remap[leaders] = np.arange(n_coarse, dtype=np.int64)
    fine_to_coarse = remap[clusters]
    return fine_to_coarse, leaders, n_coarse


def aggregate_coarse_edges(
    graph, fine_to_coarse: np.ndarray, n_coarse: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All coarse directed edges ``(cu, cv, w)`` with self-loops dropped.

    Parallel edges are merged by weight summation -- the contraction analogue
    of rating aggregation.
    """
    src, dst, wgt = full_adjacency(graph)
    cu = fine_to_coarse[src]
    cv = fine_to_coarse[dst]
    keep = cu != cv
    cu, cv, wgt = cu[keep], cv[keep], np.asarray(wgt)[keep]
    if len(cu) == 0:
        e = np.empty(0, dtype=np.int64)
        return e, e, e
    key = cu * np.int64(n_coarse) + cv
    order = np.argsort(key, kind="stable")
    key_s = key[order]
    w_s = wgt[order]
    boundary = tracked_empty(len(key_s), bool, name="contract-edge-bounds")
    boundary[0] = True
    boundary[1:] = key_s[1:] != key_s[:-1]
    starts = np.flatnonzero(boundary)
    w_merged = np.add.reduceat(w_s, starts)
    key_u = key_s[starts]
    return key_u // n_coarse, key_u % n_coarse, w_merged


def contract_buffered(
    graph,
    clusters: np.ndarray,
    cluster_weights: np.ndarray,
    ctx: PartitionContext,
) -> ContractionOutput:
    """Contract ``clusters`` with the two-copy buffered scheme."""
    tracker = ctx.tracker
    fine_to_coarse, leaders, n_coarse = _dense_remap(clusters)

    # per-thread aggregation maps (sparse arrays over coarse IDs)
    maps_aid = tracker.alloc(
        "contraction-rating-maps", ctx.runtime.p * 16 * n_coarse, "contraction"
    )
    cu, cv, w = aggregate_coarse_edges(graph, fine_to_coarse, n_coarse)
    m2 = len(cu)

    # the temporary edge buffers: E' held once in buffers ...
    buf_aid = tracker.alloc("contraction-edge-buffers", 16 * m2, "contraction")
    # ... and once in the final CSR arrays (the duplicate one-pass removes)
    degrees = np.bincount(cu, minlength=n_coarse).astype(np.int64)
    indptr = np.zeros(n_coarse + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    unit = bool(m2 == 0 or np.all(w == 1))
    vwgt = cluster_weights[leaders].astype(np.int64)
    coarse = CSRGraph(
        indptr,
        cv.copy(),
        None if unit else w.copy(),
        vwgt,
        sorted_neighborhoods=True,
    )
    graph_aid = tracker.alloc("coarse-graph", coarse.nbytes, "graph")
    edge_bytes, work_factor = traversal_cost(graph)
    ctx.runtime.record(
        "contraction",
        work=float(graph.num_directed_edges) * work_factor + float(m2),
        bytes_moved=edge_bytes * graph.num_directed_edges + 32.0 * m2,
    )
    # buffers and maps are dropped after the copy; the coarse graph lives on
    tracker.free(buf_aid)
    tracker.free(maps_aid)
    return ContractionOutput(coarse, fine_to_coarse, graph_aid)
