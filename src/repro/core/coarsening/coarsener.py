"""The coarsening level loop.

Repeatedly clusters and contracts until the graph is small enough for
initial partitioning (``n <= contraction_limit``), the shrink factor stalls
(even after two-hop matching), or the level cap is reached.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.coarsening.contraction import contract_buffered
from repro.core.coarsening.lp_clustering import label_propagation_clustering
from repro.core.coarsening.one_pass_contraction import contract_one_pass
from repro.core.coarsening.two_hop import two_hop_match
from repro.core.context import PartitionContext


@dataclass
class CoarseLevel:
    """One level of the multilevel hierarchy (below the input graph)."""

    graph: object
    fine_to_coarse: np.ndarray  # maps the *previous* level's vertices here
    graph_aid: int
    stats: dict = field(default_factory=dict)


def coarsen_hierarchy(graph, ctx: PartitionContext) -> list[CoarseLevel]:
    """Build the hierarchy ``G_1, G_2, ...`` (``G_0`` is the input graph)."""
    cc = ctx.config.coarsening
    limit = ctx.contraction_limit()
    levels: list[CoarseLevel] = []
    current = graph
    for level in range(cc.max_levels):
        if current.n <= limit:
            break
        with ctx.phase(f"coarsening-level{level}", level=level):
            cap = ctx.max_cluster_weight(current.n)
            with ctx.phase("clustering", level=level):
                result = label_propagation_clustering(current, ctx, cap)
            shrink = current.n / max(result.num_clusters, 1)
            if cc.two_hop_matching and shrink < cc.min_shrink_factor:
                two_hop_match(result, np.asarray(current.vwgt), cap)
                shrink = current.n / max(result.num_clusters, 1)
                ctx.tracer.add("coarsening.two_hop_matches", 1)
            if shrink < cc.min_shrink_factor:
                break  # coarsening stalled; go to initial partitioning
            with ctx.phase("contraction", level=level):
                contract = (
                    contract_one_pass if cc.one_pass_contraction else contract_buffered
                )
                out = contract(
                    current, result.clusters, result.cluster_weights, ctx
                )
        levels.append(
            CoarseLevel(
                out.coarse,
                out.fine_to_coarse,
                out.graph_aid,
                stats={
                    "shrink": shrink,
                    "n": out.coarse.n,
                    "m": out.coarse.m,
                    "bumped": result.bumped_per_round,
                },
            )
        )
        current = out.coarse
    return levels
