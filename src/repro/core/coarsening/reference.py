"""Pseudocode-faithful reference implementations of Algorithms 1 and 2.

The production clustering kernel (:mod:`repro.core.coarsening.lp_clustering`)
is vectorized per chunk for speed.  These reference implementations follow
the paper's pseudocode line by line on the *real* rating-map data
structures -- per-thread sparse arrays for Algorithm 1; fixed-capacity hash
tables, bumping, the shared atomic sparse array, per-thread non-zero buffers
``L_t`` and the ``FlushRatingMap`` contention shield for Algorithm 2 -- and
are tested to produce identical results to the vectorized kernel and to
each other.

They run one round over a given visit order (the paper's parallel visit
order is modelled by the order argument; decisions within a round read the
cluster array as it mutates, exactly like the in-place parallel updates of
``C`` in the paper).
"""

from __future__ import annotations

import numpy as np

from repro.core.coarsening.rating_map import (
    FixedCapacityHashTable,
    SparseArrayRatingMap,
)


def _tie_rank(rating: int, is_current: bool, cluster: int, u: int) -> int:
    """The same rating/keep-bonus/jitter ranking the vectorized kernel uses."""
    jitter = (((cluster * 0x9E3779B1) ^ (u * 0x85EBCA6B)) >> 7) & 0x3F
    return ((2 * rating + (1 if is_current else 0)) << 6) | jitter


def _select_best(
    u: int,
    keys: np.ndarray,
    vals: np.ndarray,
    clusters: np.ndarray,
    cluster_weights: np.ndarray,
    vwgt: np.ndarray,
    max_cluster_weight: int,
) -> tuple[int, int]:
    """Pick (favorite, constrained_best) from aggregated ratings."""
    favorite = -1
    fav_rank = -1
    best = -1
    best_rank = -1
    current = int(clusters[u])
    w = int(vwgt[u])
    # residual jitter collisions are broken toward the larger cluster ID,
    # matching the vectorized kernel's stable lexsort (iteration order over
    # a hash table must never influence the decision)
    for c, r in zip(keys.tolist(), vals.tolist()):
        is_cur = c == current
        rank = _tie_rank(int(r), is_cur, int(c), u)
        if rank > fav_rank or (rank == fav_rank and c > favorite):
            fav_rank, favorite = rank, int(c)
        if is_cur or cluster_weights[c] + w <= max_cluster_weight:
            if rank > best_rank or (rank == best_rank and c > best):
                best_rank, best = rank, int(c)
    return favorite, best


def lp_round_algorithm1(
    graph,
    clusters: np.ndarray,
    cluster_weights: np.ndarray,
    order: np.ndarray,
    max_cluster_weight: int,
    num_threads: int = 4,
) -> int:
    """One round of classic label propagation (Algorithm 1).

    Each virtual thread owns a full sparse-array rating map; vertices are
    processed in ``order`` with chunk-of-512 round-robin thread assignment
    (matching the production scheduler).  Returns the number of moves.
    """
    n = graph.n
    vwgt = np.asarray(graph.vwgt)
    maps = [SparseArrayRatingMap(n, num_threads=1) for _ in range(num_threads)]
    moves = 0
    for ci, start in enumerate(range(0, len(order), 512)):
        tid = ci % num_threads
        rating = maps[tid]
        for u in order[start : start + 512].tolist():
            nbrs, wgts = graph.neighbors_and_weights(u)
            for v, w in zip(np.asarray(nbrs).tolist(), np.asarray(wgts).tolist()):
                rating.add(0, int(clusters[v]), int(w))  # R[C[v]] += w(uv)
            keys = rating.nonzero_clusters()
            vals = rating.array[keys]
            _, best = _select_best(
                u, keys, vals, clusters, cluster_weights, vwgt, max_cluster_weight
            )
            rating.reset()
            if best >= 0 and best != clusters[u]:
                w = int(vwgt[u])
                if cluster_weights[best] + w <= max_cluster_weight:
                    cluster_weights[clusters[u]] -= w
                    cluster_weights[best] += w
                    clusters[u] = best
                    moves += 1
    return moves


def lp_round_algorithm2(
    graph,
    clusters: np.ndarray,
    cluster_weights: np.ndarray,
    order: np.ndarray,
    max_cluster_weight: int,
    t_bump: int,
    num_threads: int = 4,
) -> tuple[int, int]:
    """One round of two-phase label propagation (Algorithm 2).

    First phase: fixed-capacity hash tables; a vertex whose table reaches
    ``t_bump`` distinct clusters is bumped.  Second phase: bumped vertices
    are processed one at a time; their edges are split across virtual
    threads, each aggregating into its own hash table and flushing into the
    shared atomic sparse array ``A`` (``FlushRatingMap``); only the thread
    whose fetch-add raised a slot from zero records the cluster in its
    ``L_t``.  Returns ``(moves, bumped)``.
    """
    n = graph.n
    vwgt = np.asarray(graph.vwgt)
    tables = [FixedCapacityHashTable(t_bump) for _ in range(num_threads)]
    bumped: list[int] = []
    moves = 0

    # ---------------- first phase ---------------- #
    for ci, start in enumerate(range(0, len(order), 512)):
        tid = ci % num_threads
        table = tables[tid]
        for u in order[start : start + 512].tolist():
            table.clear()
            overflow = False
            nbrs, wgts = graph.neighbors_and_weights(u)
            for v, w in zip(np.asarray(nbrs).tolist(), np.asarray(wgts).tolist()):
                if not table.insert_add(int(clusters[v]), int(w)) or len(
                    table
                ) >= t_bump:
                    overflow = True
                    break
            if overflow:
                bumped.append(u)  # bump u and continue with next vertex
                continue
            keys, vals = table.items()
            _, best = _select_best(
                u, keys, vals, clusters, cluster_weights, vwgt, max_cluster_weight
            )
            if best >= 0 and best != clusters[u]:
                w = int(vwgt[u])
                if cluster_weights[best] + w <= max_cluster_weight:
                    cluster_weights[clusters[u]] -= w
                    cluster_weights[best] += w
                    clusters[u] = best
                    moves += 1

    # ---------------- second phase ---------------- #
    shared = SparseArrayRatingMap(n, num_threads=num_threads)
    for u in bumped:
        nbrs, wgts = graph.neighbors_and_weights(u)
        nbrs = np.asarray(nbrs)
        wgts = np.asarray(wgts)
        # parallelism over the edges: thread t takes slice t::num_threads
        for tid in range(num_threads):
            table = tables[tid]
            table.clear()
            for v, w in zip(
                nbrs[tid::num_threads].tolist(), wgts[tid::num_threads].tolist()
            ):
                if not table.insert_add(int(clusters[v]), int(w)):
                    shared.flush_table(tid, table)  # table full: flush early
                    table.insert_add(int(clusters[v]), int(w))
            shared.flush_table(tid, table)
        keys = shared.nonzero_clusters()
        vals = shared.array[keys]
        _, best = _select_best(
            u, keys, vals, clusters, cluster_weights, vwgt, max_cluster_weight
        )
        shared.reset()  # A[c] <- 0 for all tracked c
        if best >= 0 and best != clusters[u]:
            w = int(vwgt[u])
            if cluster_weights[best] + w <= max_cluster_weight:
                cluster_weights[clusters[u]] -= w
                cluster_weights[best] += w
                clusters[u] = best
                moves += 1
    return moves, len(bumped)
