"""Label propagation clustering: classic (Algorithm 1) and two-phase
(Algorithm 2).

Both variants make *identical clustering decisions* -- the paper verifies
that two-phase LP does not change solution quality (Fig. 4 right; average
cuts within 0.03%).  What differs is the auxiliary memory and the load
balance:

* classic: every virtual thread owns a full ``n``-entry sparse-array rating
  map (plus its non-zero list) -> ``O(n*p)`` bytes, and a single high-degree
  vertex serializes on one thread (the paper's load-balance bottleneck).
* two-phase: threads use fixed-capacity hash tables; vertices whose
  neighborhood touches ``>= T_bump`` distinct clusters are *bumped* and
  processed in a second phase with **one** shared sparse array and
  parallelism over edges -> ``O(n + p*T_bump)`` bytes.

The decision kernel itself is vectorized per chunk (see
:mod:`repro.graph.access`); the variant determines what gets charged to the
memory ledger and how work is attributed to the cost model.  The rating-map
classes in :mod:`repro.core.coarsening.rating_map` implement the real
structures and are unit-tested for equivalence with the vectorized kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.context import PartitionContext
from repro.core.kernels import bulk_size_constrained_commit, segment_best_last
from repro.graph.access import chunk_adjacency, segment_reduce_ratings, traversal_cost
from repro.memory.scratch import tracked_zeros
from repro.verify.declarations import recorder_for


def _null_tracer():
    from repro.obs.tracer import NULL_TRACER

    return NULL_TRACER


@dataclass
class ClusteringResult:
    """Outcome of one clustering pass over a level's graph."""

    clusters: np.ndarray  # cluster leader ID per vertex (values in [0, n))
    cluster_weights: np.ndarray  # weight per leader ID (size n, sparse)
    num_clusters: int
    moves_per_round: list[int] = field(default_factory=list)
    bumped_per_round: list[int] = field(default_factory=list)
    favorites: np.ndarray | None = None  # best neighbor cluster (for two-hop)


def _charge_rating_maps(
    graph, ctx: PartitionContext, two_phase: bool, t_bump: int
) -> list[int]:
    """Register the clustering working set with the ledger; return handles."""
    tracker = ctx.tracker
    p = ctx.runtime.p
    n = graph.n
    cc = ctx.config.coarsening
    handles = [tracker.alloc("cluster-array", 8 * n, "clustering")]
    handles.append(tracker.alloc("cluster-weights", 8 * n, "clustering"))
    if two_phase:
        cap = cc.first_phase_table_capacity or t_bump
        # per-thread fixed-capacity hash tables (keys+values, pow2-padded)
        table_bytes = 16 * (1 << max(1, (2 * cap - 1).bit_length()))
        handles.append(
            tracker.alloc("first-phase-hash-tables", p * table_bytes, "clustering")
        )
        # one shared sparse array + per-thread non-zero buffers
        handles.append(tracker.alloc("shared-sparse-array", 8 * n, "clustering"))
        handles.append(
            tracker.alloc("nonzero-buffers", p * 8 * cap, "clustering")
        )
    else:
        # one sparse array (values) + non-zero list per thread
        handles.append(
            tracker.alloc("thread-rating-maps", p * 16 * n, "clustering")
        )
    return handles


def label_propagation_clustering(
    graph,
    ctx: PartitionContext,
    max_cluster_weight: int,
) -> ClusteringResult:
    """Run ``lp_rounds`` of size-constrained label propagation."""
    n = graph.n
    cc = ctx.config.coarsening
    two_phase = cc.two_phase_lp
    runtime = ctx.runtime
    rng = ctx.rng
    vwgt = np.asarray(graph.vwgt)

    clusters = np.arange(n, dtype=np.int64)
    cluster_weights = vwgt.astype(np.int64).copy()
    favorites = np.arange(n, dtype=np.int64)

    t_bump = ctx.effective_t_bump(n)
    edge_bytes, work_factor = traversal_cost(graph)
    max_degree = graph.max_degree if not two_phase else 0
    handles = _charge_rating_maps(graph, ctx, two_phase, t_bump)
    phase_name = "clustering-2p" if two_phase else "clustering-classic"
    # verify layer: the synchronization classes of every shared array this
    # kernel touches live in repro.verify.declarations ("lp-clustering");
    # the recorder refuses anything outside that declaration set, and the
    # static `repro lint` pass cross-references the same registry.
    det = ctx.detector
    rec = recorder_for(det, "lp-clustering")
    inject_race = ctx.config.debug.inject_lp_weight_race
    use_bulk = ctx.config.use_bulk_kernels
    tracer = ctx.tracer
    # per-round kernel spans are opt-out (config.obs.kernel_spans)
    round_tracer = tracer if ctx.config.obs.kernel_spans else _null_tracer()
    result = ClusteringResult(
        clusters, cluster_weights, n, favorites=favorites
    )
    active = np.ones(n, dtype=bool)
    # the 5-round LP scans re-decode every neighborhood each round; a
    # bounded decoded-page cache (tracked in the ledger) trades memory for
    # those repeat decodes when the config asks for it
    cache_on = ctx.config.decode_cache_bytes > 0 and hasattr(
        graph, "enable_decode_cache"
    )
    if cache_on:
        graph.enable_decode_cache(
            ctx.config.decode_cache_bytes, tracker=ctx.tracker
        )
    try:
        for _round in range(cc.lp_rounds):
            if cc.active_set and _round > 0:
                candidates = np.flatnonzero(active)
                if len(candidates) == 0:
                    break
                order = candidates[rng.permutation(len(candidates))]
            else:
                order = rng.permutation(n).astype(np.int64)
            if cc.active_set:
                active[:] = False
            moves = 0
            bumped_total = 0
            with round_tracer.span(f"{phase_name}-round{_round}"):
                sched = runtime.schedule(order)
                chunk_weights = None
                if runtime.schedule_policy == "heavy-first":
                    degs = np.asarray(graph.degrees)
                    chunk_weights = np.array(
                        [int(degs[c].sum()) for c in sched.chunks],
                        dtype=np.int64,
                    )
                if det is not None:
                    det.begin_region(f"{phase_name}-round{_round}")
                for _tid, chunk in runtime.execute(
                    sched, weights=chunk_weights, phase=phase_name
                ):
                    owner, nbrs, wgts = chunk_adjacency(graph, chunk)
                    if len(owner) == 0:
                        continue
                    if rec.active:
                        rec.read("clusters", nbrs)
                    pair_owner, pair_cluster, pair_rating = (
                        segment_reduce_ratings(owner, clusters[nbrs], wgts, n)
                    )
                    # nc(u): distinct neighbor clusters per chunk vertex
                    nc = np.bincount(pair_owner, minlength=len(chunk))
                    bumped_mask = nc >= t_bump
                    bumped_total += int(bumped_mask.sum())
                    # second-phase atomics: only bumped vertices' rating
                    # flushes hit the shared sparse array
                    bumped_pairs = int(nc[bumped_mask].sum()) if two_phase else 0

                    # record favorites (unconstrained best) for two-hop
                    # matching and pick constrained targets
                    chunk_vw = vwgt[chunk]
                    u_of_pair = chunk[pair_owner]
                    fits = (
                        cluster_weights[pair_cluster] + chunk_vw[pair_owner]
                        <= max_cluster_weight
                    )
                    is_current = pair_cluster == clusters[u_of_pair]
                    # rank: rating first, keep-bonus on ties, then a seeded
                    # pseudo-random jitter -- LP must break remaining ties
                    # randomly or mesh clusters snake toward extreme IDs
                    jitter = (
                        ((pair_cluster * 0x9E3779B1) ^ (u_of_pair * 0x85EBCA6B))
                        >> 7
                    ) & 0x3F
                    rank = ((2 * pair_rating + is_current) << 6) | jitter

                    # unconstrained favorite per owner
                    fav_pairs = segment_best_last(pair_owner, rank)
                    fav_us = chunk[pair_owner[fav_pairs]]
                    favorites[fav_us] = pair_cluster[fav_pairs]
                    if rec.active:
                        # per-owner slots: disjoint plain stores by design
                        rec.write("favorites", fav_us)

                    # constrained best per owner
                    ok = fits | is_current
                    if not np.any(ok):
                        continue
                    po, pc, rk = pair_owner[ok], pair_cluster[ok], rank[ok]
                    best = segment_best_last(po, rk)
                    best_owner = po[best]
                    best_cluster = pc[best]

                    # commit sequentially (atomic weight updates in the
                    # paper); re-check the cap because earlier commits in
                    # this chunk may have filled the target cluster
                    us = chunk[best_owner]
                    cur = clusters[us]
                    want_move = best_cluster != cur
                    runtime.record(
                        phase_name,
                        work=float(len(owner)) * work_factor,
                        bytes_moved=edge_bytes * len(owner),
                        atomic_ops=bumped_pairs,
                    )
                    if use_bulk:
                        # bulk kernel: safe-target commits apply with one
                        # scatter-add; contended targets replay in order
                        # inside the kernel (bit-identical to the scalar
                        # loop below, proven by the differential tests)
                        mv_us = us[want_move]
                        mv_tgt = best_cluster[want_move]
                        prevs = cur[want_move]
                        acc = bulk_size_constrained_commit(
                            mv_tgt,
                            prevs,
                            vwgt[mv_us],
                            cluster_weights,
                            max_cluster_weight,
                        )
                        acc_us = mv_us[acc]
                        clusters[acc_us] = mv_tgt[acc]
                        moves += len(acc_us)
                        if rec.active and len(acc_us):
                            rec.atomic("clusters", acc_us)
                            touched = np.concatenate([prevs[acc], mv_tgt[acc]])
                            if inject_race:
                                # test-only injection drops the CAS claim so
                                # fuzzed schedules must catch the plain-write
                                # race
                                # repro-lint: ignore[parallel-access] -- deliberate race injection; the fuzzed-schedule tests must see the unprotected write
                                det.record_write("cluster-weights", touched)
                            else:
                                rec.atomic("cluster-weights", touched)
                        if cc.active_set and len(acc_us):
                            # a move invalidates the cached decision of u
                            # and of every neighbor of u (atomic-or marks)
                            _ao, acc_nbrs, _aw = chunk_adjacency(graph, acc_us)
                            active[acc_us] = True
                            active[acc_nbrs] = True
                            if rec.active:
                                rec.atomic(
                                    "active-set",
                                    np.concatenate([acc_nbrs, acc_us]),
                                )
                    else:
                        moved_us: list[int] = []
                        touched_weights: list[int] = []
                        touched_active: list[np.ndarray] = []
                        for u, c in zip(
                            us[want_move].tolist(),
                            best_cluster[want_move].tolist(),
                        ):
                            w = int(vwgt[u])
                            if cluster_weights[c] + w > max_cluster_weight:
                                continue
                            prev = int(clusters[u])
                            cluster_weights[prev] -= w
                            cluster_weights[c] += w
                            clusters[u] = c
                            moves += 1
                            if rec.active:
                                moved_us.append(u)
                                touched_weights.append(prev)
                                touched_weights.append(c)
                            if cc.active_set:
                                # a move invalidates the cached decision of u
                                # and of every neighbor of u (atomic-or marks)
                                nbrs_u = graph.neighbors(u)
                                active[u] = True
                                active[nbrs_u] = True
                                if rec.active:
                                    touched_active.append(np.asarray(nbrs_u))
                                    touched_active.append(
                                        np.array([u], dtype=np.int64)
                                    )
                        if rec.active and moved_us:
                            rec.atomic("clusters", moved_us)
                            if inject_race:
                                # test-only injection drops the CAS claim so
                                # fuzzed schedules must catch the plain-write
                                # race
                                # repro-lint: ignore[parallel-access] -- deliberate race injection; the fuzzed-schedule tests must see the unprotected write
                                det.record_write(
                                    "cluster-weights", touched_weights
                                )
                            else:
                                rec.atomic("cluster-weights", touched_weights)
                        if rec.active and touched_active:
                            rec.atomic(
                                "active-set", np.concatenate(touched_active)
                            )
                    if rec.active and two_phase and bumped_pairs:
                        rec.atomic(
                            "shared-sparse-array",
                            pair_cluster[bumped_mask[pair_owner]],
                        )
                if det is not None:
                    det.end_region()
                # straggler span for classic LP: the largest neighborhood is
                # scanned by a single thread (two-phase parallelizes it)
                if not two_phase:
                    runtime.record(
                        phase_name,
                        work=0.0,
                        span=float(max_degree),
                        sequential=False,
                    )
            tracer.add("lp.rounds", 1)
            tracer.add("lp.moves", moves)
            tracer.add("lp.bumped", bumped_total)
            result.moves_per_round.append(moves)
            result.bumped_per_round.append(bumped_total)
            if moves == 0:
                break
    finally:
        if cache_on:
            graph.disable_decode_cache()
        for h in handles:
            ctx.tracker.free(h)

    leaders = np.unique(clusters)
    result.num_clusters = int(len(leaders))
    return result


def cluster_sizes(clusters: np.ndarray) -> np.ndarray:
    """Number of member vertices per leader ID (size n, sparse)."""
    sizes = tracked_zeros(len(clusters), np.int64, name="cluster-sizes")
    np.add.at(sizes, clusters, 1)
    return sizes
