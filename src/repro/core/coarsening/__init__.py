"""Coarsening stage (Section IV): clustering + contraction."""

from repro.core.coarsening.coarsener import CoarseLevel, coarsen_hierarchy
from repro.core.coarsening.lp_clustering import (
    ClusteringResult,
    label_propagation_clustering,
)
from repro.core.coarsening.contraction import contract_buffered
from repro.core.coarsening.one_pass_contraction import contract_one_pass

__all__ = [
    "CoarseLevel",
    "coarsen_hierarchy",
    "ClusteringResult",
    "label_propagation_clustering",
    "contract_buffered",
    "contract_one_pass",
]
