"""Rating-map data structures (Section IV-A1).

A *rating map* aggregates, for one vertex ``u``, the total edge weight from
``u`` into each neighboring cluster.  Two implementations exist in
KaMinPar/TeraPart:

* :class:`FixedCapacityHashTable` -- small linear-probing table, memory
  proportional to its capacity (two-phase LP uses capacity ``~T_bump`` per
  thread).
* :class:`SparseArrayRatingMap` -- an ``n``-entry array plus a non-zero list
  used to reset it; classic LP allocates **one per thread** (the ``O(n*p)``
  culprit), two-phase LP allocates exactly **one**, shared, updated with
  atomic fetch-adds.

These structures are exercised directly by unit tests; the vectorized
clustering kernel aggregates ratings with numpy (identical results) while
charging the tracker for whichever structure the configured variant would
allocate, so the ledger reflects the real footprints.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.atomics import AtomicArray
from repro.memory.scratch import tracked_full, tracked_zeros


def _next_pow2(x: int) -> int:
    return 1 << max(0, (x - 1).bit_length())


class FixedCapacityHashTable:
    """Linear-probing int64->int64 map with fixed capacity (no growth).

    ``insert_add`` returns False when the table is full and the key is new --
    the signal two-phase LP uses to *bump* a vertex to the second phase.
    """

    __slots__ = ("capacity", "_keys", "_vals", "_size")

    EMPTY = -1

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = _next_pow2(2 * capacity)
        self._keys = tracked_full(
            self.capacity, self.EMPTY, np.int64, name="hash-table-keys"
        )
        self._vals = tracked_zeros(
            self.capacity, np.int64, name="hash-table-vals"
        )
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def nbytes(self) -> int:
        return self._keys.nbytes + self._vals.nbytes

    def _slot(self, key: int) -> int:
        # multiplicative hashing; capacity is a power of two
        return (key * 0x9E3779B97F4A7C15 & 0xFFFFFFFFFFFFFFFF) % self.capacity

    def insert_add(self, key: int, delta: int) -> bool:
        """Add ``delta`` to ``key``'s value; False if full and key absent."""
        keys = self._keys
        i = self._slot(key)
        cap = self.capacity
        for _ in range(cap):
            k = keys[i]
            if k == key:
                self._vals[i] += delta
                return True
            if k == self.EMPTY:
                if self._size * 2 >= cap:  # keep load factor <= 1/2
                    return False
                keys[i] = key
                self._vals[i] = delta
                self._size += 1
                return True
            i = (i + 1) % cap
        return False

    def get(self, key: int, default: int = 0) -> int:
        keys = self._keys
        i = self._slot(key)
        for _ in range(self.capacity):
            k = keys[i]
            if k == key:
                return int(self._vals[i])
            if k == self.EMPTY:
                return default
            i = (i + 1) % self.capacity
        return default

    def items(self) -> tuple[np.ndarray, np.ndarray]:
        mask = self._keys != self.EMPTY
        return self._keys[mask], self._vals[mask]

    def argmax(self) -> tuple[int, int]:
        """Return ``(key, value)`` with the maximum value; (-1, 0) if empty."""
        keys, vals = self.items()
        if len(keys) == 0:
            return -1, 0
        i = int(np.argmax(vals))
        return int(keys[i]), int(vals[i])

    def clear(self) -> None:
        self._keys.fill(self.EMPTY)
        self._vals.fill(0)
        self._size = 0


class SparseArrayRatingMap:
    """The ``n``-entry sparse-array rating map with a non-zero list.

    In two-phase LP a single instance is shared across threads; additions go
    through :class:`AtomicArray` fetch-adds and each virtual thread keeps its
    own non-zero buffer ``L_t``.  Only the thread whose add raised a slot
    from zero appends the cluster to its buffer, preventing duplicates in
    ``L = union L_t`` (Algorithm 2, lines 19-21).
    """

    def __init__(self, n: int, num_threads: int = 1) -> None:
        self._atomic = AtomicArray(
            tracked_zeros(n, np.int64, name="sparse-rating-array")
        )
        self._nonzero: list[list[int]] = [[] for _ in range(num_threads)]
        self.num_threads = num_threads

    @property
    def nbytes(self) -> int:
        return self._atomic.data.nbytes

    @property
    def array(self) -> np.ndarray:
        return self._atomic.data

    def add(self, tid: int, cluster: int, weight: int) -> None:
        prev = self._atomic.fetch_add(cluster, weight)
        if prev == 0:
            self._nonzero[tid].append(cluster)

    def flush_table(self, tid: int, table: FixedCapacityHashTable) -> None:
        """Apply a first-phase hash table's entries (the contention shield).

        The paper flushes the per-thread hash tables into the shared array in
        bulk to reduce the number of atomic increments.
        """
        keys, vals = table.items()
        was_zero = self._atomic.bulk_fetch_add(keys, vals)
        self._nonzero[tid].extend(keys[was_zero].tolist())
        table.clear()

    def nonzero_clusters(self) -> np.ndarray:
        if not any(self._nonzero):
            return np.empty(0, dtype=np.int64)
        return np.concatenate(
            [np.asarray(b, dtype=np.int64) for b in self._nonzero if b]
        )

    def argmax(self) -> tuple[int, int]:
        clusters = self.nonzero_clusters()
        if len(clusters) == 0:
            return -1, 0
        vals = self._atomic.data[clusters]
        i = int(np.argmax(vals))
        return int(clusters[i]), int(vals[i])

    def reset(self) -> None:
        """Clear only the touched entries (O(#nonzero), not O(n))."""
        clusters = self.nonzero_clusters()
        self._atomic.reset(clusters)
        for b in self._nonzero:
            b.clear()

    @property
    def atomic_ops(self) -> int:
        return self._atomic.op_count
