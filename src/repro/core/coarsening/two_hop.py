"""Two-hop matching (LaSalle et al. [13]) for coarsening progress.

Label propagation stalls on irregular graphs: many vertices remain singleton
clusters because all their neighbors' clusters are full or they have no
strong tie.  Two-hop matching merges *pairs of singleton clusters that share
a favorite neighbor cluster* -- vertices two hops apart through a common
neighbor -- which restores a geometric shrink factor without hurting quality.
"""

from __future__ import annotations

import numpy as np

from repro.core.coarsening.lp_clustering import ClusteringResult, cluster_sizes


def two_hop_match(
    result: ClusteringResult,
    vwgt: np.ndarray,
    max_cluster_weight: int,
) -> int:
    """Merge singleton clusters sharing a favorite; returns merge count.

    Mutates ``result.clusters`` / ``cluster_weights`` in place.
    """
    clusters = result.clusters
    weights = result.cluster_weights
    favorites = result.favorites
    if favorites is None:
        return 0
    sizes = cluster_sizes(clusters)
    # candidates: vertices alone in their own cluster whose favorite is a
    # *different* cluster (a self-favorite means "no favorite at all")
    n = len(clusters)
    ids = np.arange(n, dtype=np.int64)
    singleton = (clusters == ids) & (sizes[ids] == 1) & (favorites != clusters)
    cands = np.flatnonzero(singleton)
    if len(cands) < 2:
        return 0

    # group singletons by favorite cluster; merge consecutive pairs
    order = np.argsort(favorites[cands], kind="stable")
    cands = cands[order]
    favs = favorites[cands]
    merges = 0
    i = 0
    while i + 1 < len(cands):
        if favs[i] != favs[i + 1]:
            i += 1
            continue
        a, b = int(cands[i]), int(cands[i + 1])
        if weights[a] + weights[b] <= max_cluster_weight:
            clusters[b] = a
            weights[a] += weights[b]
            weights[b] = 0
            merges += 1
            i += 2
        else:
            i += 1
    if merges:
        result.num_clusters = int(len(np.unique(clusters)))
    return merges
