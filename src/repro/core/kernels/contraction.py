"""Bulk kernels for one-pass contraction (Section IV-B2).

Per chunk of coarse vertices: flatten the member lists into one gather,
aggregate the members' adjacency into coarse edges with a sort-based
segment reduction, and derive the per-coarse-vertex offsets the caller
writes behind the dual counter.  Pure functions -- the caller owns the
dual-counter transaction, the ``E'``/``P'`` slice writes and all recorder
declarations.
"""

from __future__ import annotations

import numpy as np

from repro.graph.access import segment_reduce_ratings


def gather_cluster_members(
    member_order: np.ndarray,
    member_starts: np.ndarray,
    member_ends: np.ndarray,
    leader_idx: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Flatten the member vertices of one chunk of clusters.

    Returns ``(members, member_owner)`` where ``member_owner[i]`` is the
    chunk-local coarse-vertex index owning fine vertex ``members[i]``.
    """
    counts = member_ends[leader_idx] - member_starts[leader_idx]
    total = int(counts.sum())
    if total == 0:
        e = np.empty(0, dtype=np.int64)
        return e, e
    gather = np.repeat(member_starts[leader_idx], counts) + (
        np.arange(total, dtype=np.int64)
        - np.repeat(np.cumsum(counts) - counts, counts)
    )
    members = member_order[gather]
    member_owner = np.repeat(np.arange(len(leader_idx), dtype=np.int64), counts)
    return members, member_owner


def aggregate_coarse_edges(
    owner: np.ndarray,
    targets: np.ndarray,
    weights: np.ndarray,
    chunk_leaders: np.ndarray,
    id_space: int,
    num_owners: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Segment-reduce a chunk's member adjacency into coarse edges.

    ``targets`` holds the neighbors' cluster leaders; intra-cluster edges
    (target == own leader) are dropped.  Returns ``(po, pc, pw,
    local_offsets)``: the coarse edge list grouped by chunk-local owner
    (clusters sorted ascending within each owner, the segment-reduce
    order) plus each owner's first-edge offset within the list.
    """
    if len(owner):
        po, pc, pw = segment_reduce_ratings(owner, targets, weights, id_space)
        keep = pc != chunk_leaders[po]
        po, pc, pw = po[keep], pc[keep], pw[keep]
    else:
        po = pc = pw = np.empty(0, dtype=np.int64)
    local_offsets = np.searchsorted(po, np.arange(num_owners, dtype=np.int64))
    return po, pc, pw, local_offsets
