"""Bulk size-constrained commit: the vectorized equivalent of the
sequential "move if the target still fits" loop used by LP clustering and
LP refinement.

The scalar reference processes candidates in order::

    for each candidate (u, target):
        if capacities[target] + weight(u) > limit(target): reject
        capacities[prev(u)] -= weight(u)
        capacities[target]  += weight(u)
        accept

Order matters only through the capacity array, and the capacity of a
bucket only changes through candidates that name it as ``target`` or
``prev``.  That yields an exact two-tier evaluation:

* **safe buckets**: if ``capacities[t] + inflow(t) <= limit(t)``, where
  ``inflow(t)`` sums the weights of *all* candidates targeting ``t``, then
  every candidate targeting ``t`` accepts no matter the order -- arrivals
  into ``t`` are bounded by ``inflow`` and departures only lower the
  capacity.  These candidates commit in bulk with ``np.add.at``.
* **unsafe buckets** ``U``: candidates whose target *or* prev lies in
  ``U`` are replayed by the scalar rule in candidate order (they are the
  only events that read or move capacity of a bucket in ``U``).  Replay
  touches the real capacity array, so its decisions match the reference
  bit for bit.

Candidates whose target is safe but whose prev is unsafe still accept
unconditionally (the safety proof does not involve ``prev``), but their
departure must land in replay order so later unsafe-target decisions see
it -- hence they are replayed too.
"""

from __future__ import annotations

import numpy as np

from repro.memory.scratch import tracked_full, tracked_zeros


def bulk_size_constrained_commit(
    targets: np.ndarray,
    prevs: np.ndarray,
    weights: np.ndarray,
    capacities: np.ndarray,
    limits,
) -> np.ndarray:
    """Commit candidate moves against ``capacities`` in place.

    Parameters
    ----------
    targets, prevs, weights:
        int64 arrays, one entry per candidate, in commit order.  Each mover
        must appear at most once (its ``prev`` is read before any commit).
    capacities:
        the shared bucket-weight array; mutated exactly as the scalar loop
        would.
    limits:
        scalar cap, or a per-bucket int64 array (deep multilevel's
        per-block budgets).

    Returns the boolean acceptance mask over candidates.
    """
    m = len(targets)
    accepted = tracked_full(m, True, np.bool_, name="commit-accepted")
    if m == 0:
        return accepted

    per_bucket = isinstance(limits, np.ndarray)
    uniq, inv = np.unique(targets, return_inverse=True)
    inflow = tracked_zeros(len(uniq), np.int64, name="commit-inflow")
    np.add.at(inflow, inv, weights)
    lim_u = limits[uniq] if per_bucket else limits
    target_unsafe_u = capacities[uniq] + inflow > lim_u

    event = target_unsafe_u[inv]
    if np.any(target_unsafe_u):
        event = event | np.isin(prevs, uniq[target_unsafe_u])

    if np.any(event):
        # ordered scalar replay of the (rare) contended candidates
        for i in np.flatnonzero(event).tolist():
            c = int(targets[i])
            w = int(weights[i])
            lim = int(limits[c]) if per_bucket else limits
            if capacities[c] + w > lim:
                accepted[i] = False
                continue
            capacities[int(prevs[i])] -= w
            capacities[c] += w

    bulk = np.flatnonzero(~event)
    if len(bulk):
        np.add.at(capacities, targets[bulk], weights[bulk])
        np.subtract.at(capacities, prevs[bulk], weights[bulk])
    return accepted
