"""Chunk-granular numpy bulk kernels for the hot phases (ROADMAP item 1).

Every kernel in this package operates on *one chunk* of work as handed out
by :meth:`repro.parallel.runtime.ParallelRuntime.execute` -- the kernels
never schedule work themselves and never hold state across chunks, so the
simulated-parallel semantics (ownership, conflict detection, deterministic
replay) are entirely the caller's.  The contract:

* inputs are the chunk's flattened adjacency (``owner``/``neighbors``/
  ``weights`` from :func:`repro.graph.access.chunk_adjacency`) plus whatever
  shared arrays the phase reads;
* shared-array *mutations* happen either in the calling kernel (which binds
  a :class:`~repro.verify.declarations.SharedAccessRecorder`) or through an
  explicitly-passed capacity array (:func:`bulk_size_constrained_commit`),
  never through hidden module state;
* every kernel is bit-identical to the scalar reference path it replaces.
  The scalar paths stay in the phase modules behind
  ``PartitionerConfig.use_bulk_kernels = False`` and the differential tests
  (``tests/test_bulk_equivalence.py``) prove equality across seeds and
  thread counts.

Scratch arrays are allocated with the tracked constructors from
:mod:`repro.memory.scratch` so the memory ledger (and the ``repro lint``
untracked-allocation pass) sees them.
"""

from repro.core.kernels.commit import bulk_size_constrained_commit
from repro.core.kernels.contraction import (
    aggregate_coarse_edges,
    gather_cluster_members,
)
from repro.core.kernels.gains import (
    batch_hash_insert,
    batch_hash_probe,
    entry_width_bits_bulk,
    move_gains,
    two_way_cut,
    two_way_gains,
)
from repro.core.kernels.segments import segment_best_last

__all__ = [
    "bulk_size_constrained_commit",
    "gather_cluster_members",
    "aggregate_coarse_edges",
    "segment_best_last",
    "move_gains",
    "two_way_gains",
    "two_way_cut",
    "batch_hash_insert",
    "batch_hash_probe",
    "entry_width_bits_bulk",
]
