"""Segment primitives over ``(owner, value)`` pair lists.

The chunk kernels all reduce a sorted-by-owner pair list (the output shape
of :func:`repro.graph.access.segment_reduce_ratings`) down to one winner
per owner; this module holds the shared argmax.
"""

from __future__ import annotations

import numpy as np

from repro.memory.scratch import tracked_empty


def _first_of_segment(owner: np.ndarray) -> np.ndarray:
    """Mask of the first element of every contiguous owner segment."""
    first = tracked_empty(len(owner), np.bool_, name="segment-first-mask")
    first[0] = True
    first[1:] = owner[1:] != owner[:-1]
    return first


def _last_of_segment(owner: np.ndarray) -> np.ndarray:
    """Mask of the last element of every contiguous owner segment."""
    last = tracked_empty(len(owner), np.bool_, name="segment-last-mask")
    last[-1] = True
    last[:-1] = owner[1:] != owner[:-1]
    return last


def _segment_max_candidates(owner: np.ndarray, rank: np.ndarray) -> np.ndarray:
    """Indices of every pair achieving its segment's maximum ``rank``."""
    first = _first_of_segment(owner)
    seg_of = np.cumsum(first) - 1
    seg_max = np.maximum.reduceat(rank, np.flatnonzero(first))
    return np.flatnonzero(rank == seg_max[seg_of])


def segment_best_last(
    owner: np.ndarray, rank: np.ndarray, tiebreak: np.ndarray | None = None
) -> np.ndarray:
    """Index of the per-owner maximum of ``rank``.

    Among equal ranks the *latest* original position wins -- exactly the
    behaviour of a sequential "``>=`` keeps the newer candidate" scan.  An
    optional ``tiebreak`` array is consulted before position: the winner
    maximizes ``(rank, tiebreak, position)`` lexicographically.  ``owner``
    must be non-decreasing (the natural output order of the segment
    reductions feeding this).  Returns indices into the pair list, one per
    distinct owner, in ascending owner order.
    """
    if len(owner) == 0:
        return np.empty(0, dtype=np.int64)
    assert len(owner) < 2 or owner[0] <= owner[-1]  # sorted-by-owner input
    cand = _segment_max_candidates(owner, rank)
    if tiebreak is not None:
        sub = _segment_max_candidates(owner[cand], tiebreak[cand])
        cand = cand[sub]
    return cand[_last_of_segment(owner[cand])]
