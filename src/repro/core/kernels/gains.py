"""Bulk gain computation and sparse-gain-table hash kernels.

``move_gains`` scores a refinement chunk's candidate moves in one pass;
``two_way_gains`` / ``two_way_cut`` serve 2-way FM on the coarsest graphs;
``batch_hash_insert`` / ``batch_hash_probe`` vectorize the sparse gain
table's per-vertex linear-probing hash tables, replicating the scalar
probe sequence bit for bit.
"""

from __future__ import annotations

import numpy as np

from repro.memory.scratch import tracked_empty, tracked_full, tracked_zeros

#: Knuth multiplicative constant -- must match ``SparseGainTable._probe``.
HASH_MULT = 0x9E3779B1

#: gain-table entry widths and their value thresholds (w > log2(U))
_WIDTH_THRESHOLDS = np.int64(1) << np.array([8, 16, 32], dtype=np.int64)
_WIDTH_BITS = np.array([8, 16, 32, 64], dtype=np.int64)


def move_gains(
    po: np.ndarray,
    pb: np.ndarray,
    pr: np.ndarray,
    cur_of_owner: np.ndarray,
    num_owners: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Gain of moving each chunk vertex to each adjacent block.

    ``(po, pb, pr)`` is the segment-reduced affinity list of one chunk
    (owner, block, affinity); ``cur_of_owner`` maps chunk-local owner
    index to its current block.  Returns ``(gain, is_current)`` aligned
    with the pair list: ``gain = affinity(b) - affinity(current block)``,
    with the current affinity 0 when the owner has no neighbor in its own
    block.
    """
    is_current = pb == cur_of_owner[po]
    cur_aff = tracked_zeros(num_owners, np.int64, name="move-gains-cur-aff")
    cur_aff[po[is_current]] = pr[is_current]
    return pr - cur_aff[po], is_current


def two_way_gains(graph, part: np.ndarray) -> np.ndarray:
    """``gain[u] = w(edges to other side) - w(edges to own side)``.

    CSR graphs take the bulk path; others fall back to the per-vertex scan
    (also the verify reference, see ``fm2way._gains_scalar``).
    """
    n = graph.n
    gain = tracked_zeros(n, np.int64, name="fm2way-gains")
    if n == 0:
        return gain
    if hasattr(graph, "adjncy"):
        src = np.repeat(np.arange(n, dtype=np.int64), graph.degrees)
        w = np.asarray(graph.adjwgt)
        same = part[graph.adjncy] == part[src]
        np.add.at(gain, src, np.where(same, -w, w))
        return gain
    for u in range(n):
        nbrs, wgts = graph.neighbors_and_weights(u)
        if len(nbrs) == 0:
            continue
        same = part[np.asarray(nbrs)] == part[u]
        w = np.asarray(wgts)
        gain[u] = int(w[~same].sum() - w[same].sum())
    return gain


def two_way_cut(graph, part: np.ndarray) -> int:
    """Total weight of edges crossing a bipartition."""
    if hasattr(graph, "adjncy"):
        n = graph.n
        if n == 0:
            return 0
        src = np.repeat(np.arange(n, dtype=np.int64), graph.degrees)
        cross = part[graph.adjncy] != part[src]
        return int(np.asarray(graph.adjwgt)[cross].sum()) // 2
    total = 0
    for u in range(graph.n):
        nbrs, wgts = graph.neighbors_and_weights(u)
        if len(nbrs) == 0:
            continue
        cross = part[np.asarray(nbrs)] != part[u]
        total += int(np.asarray(wgts)[cross].sum())
    return total // 2


def entry_width_bits_bulk(total_incident_weight: np.ndarray) -> np.ndarray:
    """Vectorized ``entry_width_bits``: smallest w in {8,16,32,64} with
    ``U < 2**w`` (64 when none fits)."""
    u = np.asarray(total_incident_weight, dtype=np.int64)
    return _WIDTH_BITS[np.searchsorted(_WIDTH_THRESHOLDS, u, side="right")]


def batch_hash_insert(
    keys: np.ndarray,
    vals: np.ndarray,
    lo: np.ndarray,
    caps: np.ndarray,
    blocks: np.ndarray,
    deltas: np.ndarray,
    empty: int = -1,
) -> None:
    """Insert ``(block, delta)`` pairs into per-row linear-probing tables.

    ``lo``/``caps`` give each pair's row offset and capacity into the flat
    ``keys``/``vals`` arrays; pairs must arrive *grouped by row* in the
    row's insertion order, with distinct blocks per row and every target
    slot initially empty (the build-from-empty case).

    Exactness: a row's probe path depends only on the keys already placed
    in that row, so inserting in *rank waves* -- wave ``j`` places the
    ``j``-th pair of every row simultaneously (at most one pending pair
    per row, rows disjoint) -- replays the sequential per-row insertion
    order exactly, including the linear-probe steps.
    """
    m = len(blocks)
    if m == 0:
        return
    assert int(blocks.max()) <= np.iinfo(np.int32).max
    idx = np.arange(m, dtype=np.int64)
    first = tracked_empty(m, np.bool_, name="hash-insert-first")
    first[0] = True
    first[1:] = lo[1:] != lo[:-1]
    rank = idx - np.maximum.accumulate(np.where(first, idx, 0))
    pos = (blocks * HASH_MULT & 0xFFFFFFFF) % caps
    for j in range(int(rank.max()) + 1):
        sel = np.flatnonzero(rank == j)
        p = pos[sel]
        while len(sel):
            slot = lo[sel] + p
            occupied = keys[slot] != empty
            placeable = ~occupied
            if np.any(placeable):
                s = slot[placeable]
                keys[s] = blocks[sel[placeable]].astype(np.int32)
                vals[s] = deltas[sel[placeable]]
            sel = sel[occupied]
            p = (p[occupied] + 1) % caps[sel]


def batch_hash_probe(
    keys: np.ndarray,
    lo: np.ndarray,
    caps: np.ndarray,
    blocks: np.ndarray,
    empty: int = -1,
) -> np.ndarray:
    """Slot index of ``blocks[i]`` in row ``i``'s table, or -1 if absent.

    Vectorized linear probing with the same hash and step as the scalar
    ``SparseGainTable._probe``; queries retire as they hit their key or an
    empty slot.
    """
    m = len(blocks)
    out = tracked_full(m, -1, np.int64, name="hash-probe-slot")
    if m == 0:
        return out
    live = np.arange(m, dtype=np.int64)
    p = (blocks * HASH_MULT & 0xFFFFFFFF) % caps
    steps = 0
    max_steps = int(caps.max())
    while len(live):
        slot = lo[live] + p
        k = keys[slot]
        found = k == blocks[live]
        out[live[found]] = slot[found]
        cont = (k != empty) & ~found
        live = live[cont]
        p = (p[cont] + 1) % caps[live]
        steps += 1
        if steps > max_steps:
            raise RuntimeError(
                "gain-table probe overran row capacity (table full?)"
            )
    return out
