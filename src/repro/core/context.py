"""Shared per-run state threaded through all partitioner components."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import PartitionerConfig
from repro.memory.tracker import MemoryTracker
from repro.obs.tracer import NULL_TRACER
from repro.parallel.runtime import ParallelRuntime


@dataclass
class PartitionContext:
    """Everything a partitioner component needs besides the graph itself."""

    config: PartitionerConfig
    k: int
    total_vertex_weight: int
    tracker: MemoryTracker = field(default_factory=MemoryTracker)
    runtime: ParallelRuntime = None  # type: ignore[assignment]
    rng: np.random.Generator = None  # type: ignore[assignment]
    # span tracer (obs layer); the shared no-op singleton when disabled
    tracer: object = NULL_TRACER

    def __post_init__(self) -> None:
        if self.runtime is None:
            dbg = self.config.debug
            self.runtime = ParallelRuntime(
                self.config.p,
                schedule_policy=dbg.schedule_policy,
                schedule_seed=dbg.schedule_seed,
            )
        if self.rng is None:
            self.rng = np.random.default_rng(self.config.seed)
        if self.k < 1:
            raise ValueError("k must be >= 1")

    @property
    def epsilon(self) -> float:
        return self.config.epsilon

    @property
    def debug(self):
        """The verify-layer knobs (``config.debug``)."""
        return self.config.debug

    @property
    def detector(self):
        """The attached conflict detector, or None."""
        return self.runtime.detector

    def phase(self, name: str, *, level: int | None = None):
        """Scope one algorithm phase: ledger phase + (if tracing) a span.

        With tracing disabled this is exactly ``tracker.phase(name)``; with
        tracing enabled the span's peak memory is read back from the
        ledger's per-phase peak, so trace and memory report agree.
        """
        return self.tracer.phase(name, self.tracker, level=level)

    def max_block_weight(self) -> int:
        from repro.core.partition import max_block_weight

        return max_block_weight(self.total_vertex_weight, self.k, self.epsilon)

    def max_cluster_weight(self, n: int | None = None) -> int:
        """Weight cap for coarsening clusters.

        Clusters become coarse vertices; capping their weight at
        ``w(V) / (contraction_limit_factor * k')`` guarantees the level
        retains enough vertices for a balanced partition into the ``k'``
        blocks it will carry.  Classic multilevel uses ``k' = k`` at every
        level; deep multilevel [3] lets ``k'`` shrink with the level
        (``k' = min(k, n / C)``), so coarsening can proceed to constant
        size -- KaMinPar's adaptive cluster-weight limit.
        """
        C = self.config.coarsening.contraction_limit_factor
        if self.config.initial.scheme == "deep" and n is not None:
            k_here = max(1, min(self.k, n // max(1, C)))
        else:
            k_here = self.k
        return max(1, self.total_vertex_weight // max(C * k_here, 1))

    def contraction_limit(self) -> int:
        """Stop coarsening once ``n`` falls below this."""
        C = self.config.coarsening.contraction_limit_factor
        if self.config.initial.scheme == "deep":
            return max(2 * C, 64)
        return max(2 * self.k, C * self.k)

    def effective_t_bump(self, n: int) -> int:
        """Resolve the bump threshold for a graph with ``n`` vertices.

        ``t_bump == 0`` auto-scales so that ``p * T_bump << n`` holds at
        benchmark scale, the regime the paper's constant 10 000 occupies on
        billion-vertex graphs with 96 cores.
        """
        t = self.config.coarsening.t_bump
        if t > 0:
            return t
        return int(min(10_000, max(128, n // (8 * self.runtime.p))))

    def effective_buffer_capacity(self, n: int) -> int:
        """Resolve the dual-counter batching buffer size ``B_t`` (entries).

        Auto-scales like :meth:`effective_t_bump`: the paper's fixed buffer
        is a constant-size structure negligible next to ``n``; keep it so.
        """
        b = self.config.coarsening.buffer_capacity
        if b > 0:
            return b
        return int(min(4_096, max(32, n // (8 * self.runtime.p))))
