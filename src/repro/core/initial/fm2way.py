"""2-way FM local search (Fiduccia-Mattheyses [1]) with rollback.

Used to polish bipartitions produced by greedy graph growing.  Single
priority queue over *all* movable vertices ordered by gain; each pass moves
vertices one at a time (locking them), tracks the best prefix seen, and
rolls back the tail.  Balance is enforced against per-side ceilings.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.kernels import two_way_cut, two_way_gains
from repro.memory.scratch import tracked_zeros


def _gains_scalar(graph, part: np.ndarray) -> np.ndarray:
    """Per-vertex reference for :func:`_gains` (equivalence-tested)."""
    n = graph.n
    gain = tracked_zeros(n, np.int64, name="fm2way-gains")
    for u in range(n):
        nbrs, wgts = graph.neighbors_and_weights(u)
        if len(nbrs) == 0:
            continue
        same = part[np.asarray(nbrs)] == part[u]
        w = np.asarray(wgts)
        gain[u] = int(w[~same].sum() - w[same].sum())
    return gain


def _gains(graph, part: np.ndarray) -> np.ndarray:
    """gain[u] = w(edges to other side) - w(edges to own side)."""
    return two_way_gains(graph, part)


def cut2way_scalar(graph, part: np.ndarray) -> int:
    """Per-vertex reference for :func:`cut2way` (equivalence-tested)."""
    total = 0
    for u in range(graph.n):
        nbrs, wgts = graph.neighbors_and_weights(u)
        if len(nbrs) == 0:
            continue
        cross = part[np.asarray(nbrs)] != part[u]
        total += int(np.asarray(wgts)[cross].sum())
    return total // 2


def cut2way(graph, part: np.ndarray) -> int:
    return two_way_cut(graph, part)


def fm2way_refine(
    graph,
    part: np.ndarray,
    max_weights: tuple[int, int],
    rounds: int = 2,
    max_fruitless: int = 200,
) -> np.ndarray:
    """Improve a bipartition in place; returns the refined assignment."""
    n = graph.n
    vwgt = np.asarray(graph.vwgt)
    side_weight = np.zeros(2, dtype=np.int64)
    np.add.at(side_weight, part, vwgt)

    for _ in range(rounds):
        gain = _gains(graph, part)
        locked = tracked_zeros(n, bool, name="fm2way-locked")
        heap: list[tuple[int, int, int]] = []
        counter = 0
        for u in range(n):
            heapq.heappush(heap, (-int(gain[u]), counter, u))
            counter += 1

        moves: list[int] = []
        best_prefix = 0
        balance_total = 0
        best_total = 0
        fruitless = 0

        while heap and fruitless < max_fruitless:
            neg_g, _, u = heapq.heappop(heap)
            if locked[u]:
                continue
            if gain[u] != -neg_g:
                heapq.heappush(heap, (-int(gain[u]), counter, u))
                counter += 1
                continue
            src = int(part[u])
            dst = 1 - src
            w = int(vwgt[u])
            if side_weight[dst] + w > max_weights[dst]:
                locked[u] = True  # cannot move this pass
                continue
            # move
            locked[u] = True
            part[u] = dst
            side_weight[src] -= w
            side_weight[dst] += w
            balance_total += int(gain[u])
            moves.append(u)
            if balance_total > best_total:
                best_total = balance_total
                best_prefix = len(moves)
                fruitless = 0
            else:
                fruitless += 1
            # update neighbor gains
            nbrs, wgts = graph.neighbors_and_weights(u)
            for v, ew in zip(
                np.asarray(nbrs).tolist(), np.asarray(wgts).tolist()
            ):
                if locked[v]:
                    continue
                if part[v] == dst:
                    gain[v] -= 2 * ew
                else:
                    gain[v] += 2 * ew
                heapq.heappush(heap, (-int(gain[v]), counter, v))
                counter += 1

        # rollback the tail beyond the best prefix
        for u in moves[best_prefix:]:
            src = int(part[u])
            dst = 1 - src
            w = int(vwgt[u])
            part[u] = dst
            side_weight[src] -= w
            side_weight[dst] += w
        if best_total <= 0:
            break
    return part
