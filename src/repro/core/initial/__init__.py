"""Initial partitioning on the coarsest graph.

KaMinPar's scheme (Section II-B): a portfolio of randomized sequential
greedy graph growing bipartitioners improved by 2-way FM, applied through
recursive bisection to obtain the k-way partition.
"""

from repro.core.initial.bipartition import greedy_graph_growing_bipartition
from repro.core.initial.fm2way import fm2way_refine
from repro.core.initial.recursive import initial_partition

__all__ = [
    "greedy_graph_growing_bipartition",
    "fm2way_refine",
    "initial_partition",
]
