"""Greedy graph growing bipartitioning.

Grows block 0 from a random seed vertex by repeatedly absorbing the frontier
vertex with the highest gain (weight of edges into the grown block minus
weight of edges to the outside), until the block reaches its target weight.
Classic GGG as used by KaMinPar's initial-partitioning portfolio.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.memory.scratch import tracked_ones, tracked_zeros


def greedy_graph_growing_bipartition(
    graph,
    target_weight0: int,
    max_weight0: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Return a 0/1 block assignment with ``w(V_0)`` close to the target.

    ``target_weight0`` steers growth; ``max_weight0`` is the hard cap (the
    bisection-adjusted balance constraint).
    """
    n = graph.n
    vwgt = np.asarray(graph.vwgt)
    part = tracked_ones(n, np.int32, name="bipartition-part")
    if n == 0:
        return part
    in_block = tracked_zeros(n, bool, name="bipartition-in-block")
    # a vertex that once exceeded the cap can never fit later (the block
    # only grows), so block it permanently to guarantee termination
    blocked = tracked_zeros(n, bool, name="bipartition-blocked")
    gain = tracked_zeros(n, np.int64, name="bipartition-gain")
    heap: list[tuple[int, int, int]] = []
    counter = 0
    weight0 = 0

    unassigned = rng.permutation(n)
    up = 0

    while weight0 < target_weight0:
        if not heap:
            # (re)start from a fresh random seed (handles disconnected graphs)
            while up < n and (in_block[unassigned[up]] or blocked[unassigned[up]]):
                up += 1
            if up >= n:
                break
            seed = int(unassigned[up])
            heapq.heappush(heap, (0, counter, seed))
            counter += 1
        neg_gain, _, u = heapq.heappop(heap)
        if in_block[u] or blocked[u]:
            continue
        if gain[u] != -neg_gain:
            # stale entry; reinsert with the current gain
            heapq.heappush(heap, (-int(gain[u]), counter, u))
            counter += 1
            continue
        w = int(vwgt[u])
        if weight0 + w > max_weight0:
            blocked[u] = True
            continue
        in_block[u] = True
        part[u] = 0
        weight0 += w
        nbrs, wgts = graph.neighbors_and_weights(u)
        for v, ew in zip(np.asarray(nbrs).tolist(), np.asarray(wgts).tolist()):
            if in_block[v]:
                continue
            gain[v] += 2 * ew  # edge flips from cut to internal
            heapq.heappush(heap, (-int(gain[v]), counter, v))
            counter += 1
    return part


def random_bipartition(
    graph, target_weight0: int, rng: np.random.Generator
) -> np.ndarray:
    """Random balanced assignment (portfolio diversity / fallback)."""
    n = graph.n
    vwgt = np.asarray(graph.vwgt)
    part = tracked_ones(n, np.int32, name="bipartition-part")
    weight0 = 0
    for u in rng.permutation(n).tolist():
        if weight0 >= target_weight0:
            break
        part[u] = 0
        weight0 += int(vwgt[u])
    return part


def bfs_bipartition(
    graph, target_weight0: int, rng: np.random.Generator
) -> np.ndarray:
    """Plain BFS growth (portfolio diversity)."""
    from collections import deque

    n = graph.n
    vwgt = np.asarray(graph.vwgt)
    part = tracked_ones(n, np.int32, name="bipartition-part")
    visited = tracked_zeros(n, bool, name="bipartition-visited")
    weight0 = 0
    order = rng.permutation(n)
    oi = 0
    q: deque[int] = deque()
    while weight0 < target_weight0:
        if not q:
            while oi < n and visited[order[oi]]:
                oi += 1
            if oi >= n:
                break
            q.append(int(order[oi]))
            visited[order[oi]] = True
        u = q.popleft()
        part[u] = 0
        weight0 += int(vwgt[u])
        for v in np.asarray(graph.neighbors(u)).tolist():
            if not visited[v]:
                visited[v] = True
                q.append(v)
    return part
