"""Recursive bisection into k blocks on the coarsest graph.

Each bisection splits the remaining block budget ``k`` into
``k0 = ceil(k/2)`` / ``k1 = floor(k/2)`` with target weight proportional to
the budget; the per-bisection imbalance allowance is relaxed to
``(1+eps)^(1/ceil(log2 k)) - 1`` so the final k-way partition lands inside
the global constraint (the standard recursive-bisection correction).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.initial.bipartition import (
    bfs_bipartition,
    greedy_graph_growing_bipartition,
    random_bipartition,
)
from repro.core.initial.fm2way import cut2way, fm2way_refine
from repro.graph.csr import CSRGraph
from repro.memory.scratch import tracked_full, tracked_zeros


def extract_subgraph(
    graph, mask: np.ndarray
) -> tuple[CSRGraph, np.ndarray]:
    """Induced subgraph on ``mask``; returns ``(subgraph, original_ids)``."""
    ids = np.flatnonzero(mask)
    local = tracked_full(graph.n, -1, np.int64, name="subgraph-local-ids")
    local[ids] = np.arange(len(ids), dtype=np.int64)
    if hasattr(graph, "indptr"):
        src = np.repeat(np.arange(graph.n, dtype=np.int64), graph.degrees)
        keep = mask[src] & mask[graph.adjncy]
        s, d = local[src[keep]], local[graph.adjncy[keep]]
        w = np.asarray(graph.adjwgt)[keep]
    else:
        ss, ds, ws = [], [], []
        for u in ids.tolist():
            nbrs, wgts = graph.neighbors_and_weights(u)
            keep = mask[np.asarray(nbrs)]
            ss.append(np.full(int(keep.sum()), local[u], dtype=np.int64))
            ds.append(local[np.asarray(nbrs)[keep]])
            ws.append(np.asarray(wgts)[keep])
        s = np.concatenate(ss) if ss else np.empty(0, dtype=np.int64)
        d = np.concatenate(ds) if ds else np.empty(0, dtype=np.int64)
        w = np.concatenate(ws) if ws else np.empty(0, dtype=np.int64)
    nsub = len(ids)
    order = np.lexsort((d, s))
    s, d, w = s[order], d[order], w[order]
    degrees = np.bincount(s, minlength=nsub).astype(np.int64)
    indptr = tracked_zeros(nsub + 1, np.int64, name="subgraph-indptr")
    np.cumsum(degrees, out=indptr[1:])
    unit = bool(len(w) == 0 or np.all(w == 1))
    vwgt = np.asarray(graph.vwgt)[ids].copy()
    sub = CSRGraph(indptr, d, None if unit else w, vwgt)
    return sub, ids


def bipartition_portfolio(
    graph,
    target_weight0: int,
    max_weight0: int,
    max_weight1: int,
    rng: np.random.Generator,
    attempts: int = 8,
    fm_rounds: int = 2,
) -> np.ndarray:
    """Best-of-``attempts`` bipartition: GGG/BFS/random seeds + 2-way FM."""
    best: np.ndarray | None = None
    best_key: tuple[int, int] | None = None
    total = graph.total_vertex_weight
    for attempt in range(max(1, attempts)):
        if attempt % 4 == 3:
            part = random_bipartition(graph, target_weight0, rng)
        elif attempt % 4 == 2:
            part = bfs_bipartition(graph, target_weight0, rng)
        else:
            part = greedy_graph_growing_bipartition(
                graph, target_weight0, max_weight0, rng
            )
        part = fm2way_refine(
            graph, part, (max_weight0, max_weight1), rounds=fm_rounds
        )
        w0 = int(np.asarray(graph.vwgt)[part == 0].sum())
        w1 = total - w0
        infeasible = int(max(0, w0 - max_weight0) + max(0, w1 - max_weight1))
        key = (infeasible, cut2way(graph, part))
        if best_key is None or key < best_key:
            best_key, best = key, part
    assert best is not None
    return best


def initial_partition(
    graph,
    k: int,
    epsilon: float,
    rng: np.random.Generator,
    attempts: int = 8,
    fm_rounds: int = 2,
) -> np.ndarray:
    """k-way partition of (the coarsest) ``graph`` via recursive bisection."""
    part = tracked_zeros(graph.n, np.int32, name="recursive-part")
    if k <= 1:
        return part
    depth = max(1, math.ceil(math.log2(k)))
    eps_b = (1.0 + epsilon) ** (1.0 / depth) - 1.0

    def recurse(g, ids: np.ndarray, k_here: int, block_offset: int) -> None:
        if k_here == 1:
            part[ids] = block_offset
            return
        k0 = (k_here + 1) // 2
        k1 = k_here - k0
        total = g.total_vertex_weight
        target0 = int(round(total * k0 / k_here))
        max0 = max(target0, int((1.0 + eps_b) * total * k0 / k_here))
        max1 = max(total - target0, int((1.0 + eps_b) * total * k1 / k_here))
        bp = bipartition_portfolio(
            g, target0, max0, max1, rng, attempts=attempts, fm_rounds=fm_rounds
        )
        left_mask = bp == 0
        sub0, ids0 = extract_subgraph(g, left_mask)
        sub1, ids1 = extract_subgraph(g, ~left_mask)
        recurse(sub0, ids[ids0], k0, block_offset)
        recurse(sub1, ids[ids1], k1, block_offset + k0)

    recurse(graph, np.arange(graph.n, dtype=np.int64), k, 0)
    return part
