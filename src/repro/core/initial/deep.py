"""Deep multilevel partitioning (Gottesbüren et al., ESA 2021 [3]).

KaMinPar's defining scheme, referenced throughout the paper: instead of
stopping coarsening at ``O(k)`` vertices and computing a full k-way
partition there (classic multilevel), *deep* multilevel coarsens to a
constant size, bipartitions once, and then **extends the partition during
uncoarsening**: whenever the current graph is large enough to support more
blocks, every block is bisected in place, doubling the block count until
``k`` is reached.  This makes the work per level independent of ``k`` and
is what lets KaMinPar handle k = 30 000 gracefully.

Block budgets handle non-power-of-two ``k``: block ``b`` is responsible for
``budget[b]`` final blocks and is split proportionally ``ceil/floor`` until
every budget is 1.

This module provides the two driver hooks:

* :func:`deep_initial_partition` -- partition the coarsest graph into the
  number of blocks its size supports (possibly < k), with budgets.
* :func:`extend_partition` -- split blocks on a finer level until the block
  count matches what the level supports (or ``k``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.initial.recursive import bipartition_portfolio, extract_subgraph
from repro.core.partition import PartitionedGraph
from repro.memory.scratch import tracked_zeros


@dataclass
class DeepState:
    """Carries the evolving block structure through uncoarsening."""

    k_target: int
    budgets: np.ndarray  # budgets[b] = number of final blocks block b owns
    epsilon: float

    @property
    def k_current(self) -> int:
        return len(self.budgets)

    def done(self) -> bool:
        return self.k_current >= self.k_target


def supported_block_count(n: int, k_target: int, factor: int) -> int:
    """How many blocks a graph with ``n`` vertices supports (``n/factor``),
    clamped to ``[1, k_target]`` and rounded to keep splits productive."""
    return max(1, min(k_target, n // max(1, factor)))


def deep_initial_partition(
    coarsest,
    k: int,
    epsilon: float,
    rng: np.random.Generator,
    *,
    factor: int = 32,
    attempts: int = 8,
    fm_rounds: int = 2,
) -> tuple[np.ndarray, DeepState]:
    """Partition the coarsest graph into as many blocks as it supports."""
    state = DeepState(
        k_target=k,
        budgets=np.array([k], dtype=np.int64),
        epsilon=epsilon,
    )
    part = tracked_zeros(coarsest.n, np.int32, name="deep-initial-part")
    pgraph = PartitionedGraph(coarsest, max(1, k), part)
    _split_until(
        pgraph,
        state,
        supported_block_count(coarsest.n, k, factor),
        rng,
        attempts=attempts,
        fm_rounds=fm_rounds,
    )
    return pgraph.partition, state


def extend_partition(
    pgraph: PartitionedGraph,
    state: DeepState,
    rng: np.random.Generator,
    *,
    factor: int = 32,
    attempts: int = 4,
    fm_rounds: int = 1,
) -> int:
    """Split blocks on the current level until it supports no more.

    Returns the number of bisections performed.  ``pgraph.k`` must be the
    *target* k (labels simply grow into the preallocated range).
    """
    want = supported_block_count(pgraph.graph.n, state.k_target, factor)
    return _split_until(
        pgraph, state, want, rng, attempts=attempts, fm_rounds=fm_rounds
    )


def _split_until(
    pgraph: PartitionedGraph,
    state: DeepState,
    want: int,
    rng: np.random.Generator,
    *,
    attempts: int,
    fm_rounds: int,
) -> int:
    splits = 0
    guard = 0
    while state.k_current < want and not state.done():
        if not _split_round(pgraph, state, rng, attempts, fm_rounds):
            break
        splits += 1
        guard += 1
        if guard > 64:  # defensive: k_target <= 2^64 splits anyway
            break
    return splits


def _split_round(
    pgraph: PartitionedGraph,
    state: DeepState,
    rng: np.random.Generator,
    attempts: int,
    fm_rounds: int,
) -> bool:
    """Bisect every block with budget > 1 once; returns True if any split."""
    k_old = len(state.budgets)
    # positions 0..k_old-1 keep their (possibly halved) budgets; each split
    # appends its second half as a brand-new label at the end
    new_budgets: list[int] = [int(b) for b in state.budgets]
    part = pgraph.partition
    eps_b = (1.0 + state.epsilon) ** (
        1.0 / max(1, int(np.ceil(np.log2(max(2, state.k_target)))))
    ) - 1.0
    any_split = False

    for b in range(k_old):
        budget = new_budgets[b]
        if budget <= 1:
            continue
        mask = part == b
        if int(mask.sum()) < 2:
            continue  # cannot split a sub-2-vertex block
        sub, ids = extract_subgraph(pgraph.graph, mask)
        b0 = (budget + 1) // 2
        b1 = budget - b0
        sub_total = sub.total_vertex_weight
        target0 = int(round(sub_total * b0 / budget))
        max0 = max(target0, int((1.0 + eps_b) * sub_total * b0 / budget))
        max1 = max(
            sub_total - target0, int((1.0 + eps_b) * sub_total * b1 / budget)
        )
        bp = bipartition_portfolio(
            sub, target0, max0, max1, rng, attempts=attempts, fm_rounds=fm_rounds
        )
        # side 0 keeps label b (budget b0); side 1 gets a fresh label
        next_label = len(new_budgets)
        movers = ids[bp == 1]
        for u in movers.tolist():
            pgraph.move(int(u), next_label)
        new_budgets[b] = b0
        new_budgets.append(b1)
        any_split = True

    if any_split:
        state.budgets = np.array(new_budgets, dtype=np.int64)
    return any_split
