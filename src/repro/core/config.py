"""Partitioner configuration and the paper's algorithm-variant presets."""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import asdict, dataclass, field, replace


class GainTableKind(enum.Enum):
    """FM gain-cache strategies compared in Figure 7."""

    NONE = "none"  # recompute gains from scratch at every inspection
    FULL = "full"  # standard O(n*k) table
    SPARSE = "sparse"  # the paper's O(m) table (Section V)


@dataclass(frozen=True)
class CoarseningConfig:
    """Knobs of the coarsening stage (Section IV)."""

    two_phase_lp: bool = True  # Algorithm 2 vs Algorithm 1
    one_pass_contraction: bool = True  # Section IV-B2 vs buffered
    lp_rounds: int = 5  # paper: five rounds per level
    # bump threshold T_bump; paper default is 10 000 on billion-edge graphs.
    # 0 = auto-scale: clamp(n / (8 p), 128, 10 000), preserving the paper's
    # regime p*T_bump << n at benchmark scale.
    t_bump: int = 0
    first_phase_table_capacity: int = 0  # 0 = derive from t_bump
    contraction_limit_factor: int = 32  # coarsen until n <= factor * k
    min_shrink_factor: float = 1.05  # below this, two-hop matching kicks in
    max_levels: int = 64
    two_hop_matching: bool = True
    # active-set optimization: after round 1, revisit only vertices whose
    # neighborhood changed (KaMinPar's standard work-saving device).  Off by
    # default so benches measure the paper's fixed five-round scheme.
    active_set: bool = False
    # dual-counter batching buffer B_t (entries per thread);
    # 0 = auto-scale: clamp(n / (8 p), 32, 4096)
    buffer_capacity: int = 0


@dataclass(frozen=True)
class FMConfig:
    """Knobs of k-way FM refinement (Section V)."""

    gain_table: GainTableKind = GainTableKind.SPARSE
    max_rounds: int = 3
    # adaptive stopping: abort a pass after this many consecutive
    # non-improving moves (classic FM stopping rule)
    max_fruitless_moves: int = 250
    # seed localized searches only from boundary vertices
    boundary_only: bool = True
    # localized multi-search FM ([4],[15]) instead of one global search
    localized: bool = False
    # per-search move cap for localized FM
    max_region: int = 64


@dataclass(frozen=True)
class DebugConfig:
    """Knobs of the verify layer (schedule fuzzing + invariant checks).

    All default to off: the production path pays nothing for the verify
    layer's existence.
    """

    # 0 = off, 1 = cheap phase-boundary checks (partition / coarse-mapping
    # consistency), 2 = adds the deep O(m)-ish checks (graph symmetry,
    # compressed roundtrip, gain-table-vs-recompute)
    validation_level: int = 0
    # attach a ConflictDetector to the runtime; conflicts are reported in
    # PartitionResult.selfcheck
    detect_conflicts: bool = False
    # chunk execution order override for every simulated-parallel loop
    # (None = model default; see repro.parallel.runtime.SCHEDULE_POLICIES)
    schedule_policy: str | None = None
    schedule_seed: int = 0
    # test-only fault injection: drop the CAS loop on the cluster-weight
    # array in LP clustering, declaring its updates as plain writes -- the
    # deliberate race the conflict detector must catch
    inject_lp_weight_race: bool = False


@dataclass(frozen=True)
class ObsConfig:
    """Knobs of the observability layer (span tracing + metrics registry).

    Defaults to off: the production path threads a shared no-op tracer and
    pays one attribute load per would-be span.  When enabled, the
    partitioner records the full span tree (phases, hierarchy levels,
    counters, memory snapshots at every span boundary) and attaches a
    :class:`~repro.obs.metrics.MetricsRegistry` snapshot plus the raw
    tracer to the :class:`~repro.core.partitioner.PartitionResult`.
    Tracing never perturbs the computation: partitions are bit-identical
    with and without it (tested).
    """

    enabled: bool = False
    # attribute chunk work to virtual threads inside ParallelRuntime.execute
    # loops (per-(region, tid) chunk/item/time aggregates in the registry)
    chunk_attribution: bool = True
    # record per-round kernel spans (LP clustering rounds, FM passes); off
    # leaves only the driver-level phase spans
    kernel_spans: bool = True
    # charge transient decode/codec scratch buffers to the memory ledger
    # (repro.memory.scratch).  Off by default so peaks stay comparable with
    # historical baselines; selfcheck runs turn it on for full accounting.
    track_scratch: bool = False


@dataclass(frozen=True)
class DistObsConfig:
    """Knobs of the distributed observability layer (DESIGN.md §12).

    Lives here (not on :class:`ObsConfig`) because it configures the
    *cluster* observer of :func:`repro.dist.dpartitioner.dpartition`:
    per-rank span trees coupled to the per-rank ledgers, collective
    instrumentation, and the memory-ratio report.  Defaults to off; the
    disabled path threads a shared no-op observer and the partition is
    bit-identical with and without it (tested).
    """

    enabled: bool = False
    # mirror per-round kernel spans (dist-lp-roundN, dist-refine-roundN)
    # onto every rank track; off keeps only driver-level phases
    round_spans: bool = True


@dataclass(frozen=True)
class InitialPartitioningConfig:
    """Portfolio of randomized greedy-graph-growing bipartitioners + 2-way FM."""

    attempts: int = 8  # portfolio size per bisection
    fm_rounds: int = 2
    # "recursive": classic recursive bisection to k on the coarsest graph.
    # "deep": KaMinPar's deep multilevel [3] -- coarsen to constant size,
    # bisect blocks progressively during uncoarsening.
    scheme: str = "recursive"


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of the long-lived partitioning service (``repro serve``).

    Deliberately *not* a field of :class:`PartitionerConfig`: the service
    wraps a partitioner variant rather than changing what it computes, so
    serving knobs must not perturb :func:`config_digest` — cache entries
    and run-DB groups keyed by the digest stay comparable whether the run
    came from the service or from a one-shot CLI invocation.
    """

    # byte budget of the LRU cache holding compressed graphs, finished
    # partitions, and warm-start seeds (tracked via the MemoryTracker
    # ledger under category "serve-cache")
    cache_budget_bytes: int = 256 * 1024 * 1024
    # incremental repartitioning: cumulative fraction of (directed) edges
    # changed since the last full run above which a request falls back to
    # a full repartition instead of a refinement-only warm start
    drift_threshold: float = 0.25
    # extra LP refinement rounds for warm starts (on top of the config's
    # lp_refinement_rounds) — drifted partitions need a little more work
    # than a freshly projected level
    warm_extra_lp_rounds: int = 2
    # disable to force every request down the full-repartition path
    # (used by benchmarks to measure the warm-start speedup)
    warm_start: bool = True
    # admission batching: how long (seconds) a worker waits to coalesce
    # further same-key requests after pulling one from the queue; 0 still
    # coalesces everything that is already queued or in flight
    batch_window_seconds: float = 0.0
    # bound of the latency reservoir behind the p50/p99 gauges
    latency_reservoir: int = 4096


@dataclass(frozen=True)
class PartitionerConfig:
    """Full configuration of one partitioner variant."""

    name: str = "terapart"
    epsilon: float = 0.03
    seed: int = 0
    p: int = 8  # virtual threads
    compress_input: bool = True
    compression_intervals: bool = True
    # Bound (bytes) of the decoded-chunk LRU cache used during repeated LP
    # scans over a compressed level; 0 disables it.  Cache bytes are
    # registered with the MemoryTracker so peak-memory figures stay honest.
    decode_cache_bytes: int = 0
    coarsening: CoarseningConfig = field(default_factory=CoarseningConfig)
    initial: InitialPartitioningConfig = field(
        default_factory=InitialPartitioningConfig
    )
    use_fm: bool = False
    fm: FMConfig = field(default_factory=FMConfig)
    lp_refinement_rounds: int = 3
    # Route the hot phases (LP clustering commits, one-pass contraction
    # aggregation, LP refinement commits, gain-table construction/probing)
    # through the chunk-granular numpy bulk kernels in repro.core.kernels.
    # False selects the per-vertex scalar reference paths, which the
    # differential-equivalence tests prove bit-identical to the kernels.
    use_bulk_kernels: bool = True
    debug: DebugConfig = field(default_factory=DebugConfig)
    obs: ObsConfig = field(default_factory=ObsConfig)

    def with_(self, **kwargs) -> "PartitionerConfig":
        return replace(self, **kwargs)


def config_to_dict(cfg: PartitionerConfig) -> dict:
    """JSON-safe dict of a config (enums collapse to their values)."""

    def _default(o):
        if isinstance(o, enum.Enum):
            return o.value
        return str(o)

    return json.loads(json.dumps(asdict(cfg), default=_default))


def config_digest(cfg: PartitionerConfig) -> str:
    """Stable short hash identifying a configuration *variant*.

    The seed is excluded: runs of the same variant under different seeds
    share a digest, which is what the run database groups by.  Any other
    knob change (including debug/obs toggles) yields a new digest.
    """
    d = config_to_dict(cfg)
    d.pop("seed", None)
    payload = json.dumps(d, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


# --------------------------------------------------------------------- #
# presets: the variant ladder of Figure 4 / Figure 7
# --------------------------------------------------------------------- #
def kaminpar(**overrides) -> PartitionerConfig:
    """The unoptimized baseline: classic LP, buffered contraction, raw CSR."""
    cfg = PartitionerConfig(
        name="kaminpar",
        compress_input=False,
        coarsening=CoarseningConfig(two_phase_lp=False, one_pass_contraction=False),
    )
    return cfg.with_(**overrides)


def kaminpar_2lp(**overrides) -> PartitionerConfig:
    """Baseline + two-phase label propagation (Fig. 4, optimization i)."""
    cfg = PartitionerConfig(
        name="kaminpar+2lp",
        compress_input=False,
        coarsening=CoarseningConfig(two_phase_lp=True, one_pass_contraction=False),
    )
    return cfg.with_(**overrides)


def kaminpar_2lp_compress(**overrides) -> PartitionerConfig:
    """+ graph compression (Fig. 4, optimization ii)."""
    cfg = PartitionerConfig(
        name="kaminpar+2lp+compress",
        compress_input=True,
        coarsening=CoarseningConfig(two_phase_lp=True, one_pass_contraction=False),
    )
    return cfg.with_(**overrides)


def terapart(**overrides) -> PartitionerConfig:
    """All three optimizations: the TeraPart configuration (LP refinement)."""
    cfg = PartitionerConfig(
        name="terapart",
        compress_input=True,
        coarsening=CoarseningConfig(two_phase_lp=True, one_pass_contraction=True),
    )
    return cfg.with_(**overrides)


def terapart_fm(**overrides) -> PartitionerConfig:
    """TeraPart-FM: + k-way FM refinement with the sparse gain table."""
    cfg = terapart().with_(
        name="terapart-fm", use_fm=True, fm=FMConfig(gain_table=GainTableKind.SPARSE)
    )
    return cfg.with_(**overrides)


def terapart_fm_full_table(**overrides) -> PartitionerConfig:
    """FM with the standard O(nk) gain table (Fig. 7 'Full Table')."""
    cfg = terapart().with_(
        name="terapart-fm-full", use_fm=True, fm=FMConfig(gain_table=GainTableKind.FULL)
    )
    return cfg.with_(**overrides)


def terapart_fm_no_table(**overrides) -> PartitionerConfig:
    """FM recomputing gains from scratch (Fig. 7 'No Table')."""
    cfg = terapart().with_(
        name="terapart-fm-none", use_fm=True, fm=FMConfig(gain_table=GainTableKind.NONE)
    )
    return cfg.with_(**overrides)


def terapart_deep(**overrides) -> PartitionerConfig:
    """TeraPart with the deep multilevel scheme [3] (KaMinPar's default)."""
    cfg = terapart().with_(
        name="terapart-deep",
        initial=InitialPartitioningConfig(scheme="deep", attempts=4, fm_rounds=1),
    )
    return cfg.with_(**overrides)


PRESETS = {
    "kaminpar": kaminpar,
    "kaminpar+2lp": kaminpar_2lp,
    "kaminpar+2lp+compress": kaminpar_2lp_compress,
    "terapart": terapart,
    "terapart-fm": terapart_fm,
    "terapart-fm-full": terapart_fm_full_table,
    "terapart-fm-none": terapart_fm_no_table,
    "terapart-deep": terapart_deep,
}


def preset(name: str, **overrides) -> PartitionerConfig:
    if name not in PRESETS:
        raise KeyError(f"unknown preset {name!r}; know {sorted(PRESETS)}")
    return PRESETS[name](**overrides)
