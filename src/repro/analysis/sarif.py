"""SARIF 2.1.0 export for ``repro lint`` reports.

SARIF (Static Analysis Results Interchange Format) is the interchange
format GitHub code scanning ingests: uploading the file produced here
annotates pull requests with the lint findings inline.  Only the small
subset of the spec that code scanning actually reads is emitted -- one
``run`` with a ``tool.driver`` describing the passes, one ``rule`` per
finding code, and one ``result`` per finding.

The ``results`` array contains only *new* findings when a baseline was
applied (``report.new``); baselined findings are historical debt that the
gate already tolerates and would only add noise to PR annotations.  When
no baseline is in play the full ``findings`` list is exported.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.core import Finding, LintReport, fingerprint

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

# severity -> SARIF level
_LEVELS = {"error": "error", "warning": "warning"}


def _rules(findings: list[Finding]) -> list[dict]:
    """One reportingDescriptor per distinct finding code, sorted."""
    by_code: dict[str, Finding] = {}
    for f in findings:
        by_code.setdefault(f.code, f)
    return [
        {
            "id": code,
            "name": by_code[code].pass_id,
            "shortDescription": {"text": f"{by_code[code].pass_id} ({code})"},
            "defaultConfiguration": {
                "level": _LEVELS.get(by_code[code].severity, "warning")
            },
        }
        for code in sorted(by_code)
    ]


def _result(f: Finding, rule_index: dict[str, int]) -> dict:
    return {
        "ruleId": f.code,
        "ruleIndex": rule_index[f.code],
        "level": _LEVELS.get(f.severity, "warning"),
        "message": {"text": f"[{f.pass_id}] {f.message}"},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": f.file,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {"startLine": max(1, f.line)},
                }
            }
        ],
        # line-insensitive identity so code scanning tracks a finding
        # across unrelated edits, matching the baseline semantics
        "partialFingerprints": {"reproLint/v1": fingerprint(f)},
    }


def to_sarif(report: LintReport, *, baselined: bool = True) -> dict:
    """Render a :class:`LintReport` as a SARIF 2.1.0 ``log`` dict.

    With ``baselined=True`` (the default) only findings not absorbed by
    the baseline are exported; pass ``False`` to export everything.
    """
    findings = report.new if baselined else report.findings
    rules = _rules(findings)
    rule_index = {r["id"]: i for i, r in enumerate(rules)}
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "src/"}},
                "results": [_result(f, rule_index) for f in findings],
            }
        ],
    }


def write_sarif(report: LintReport, path: Path, *, baselined: bool = True) -> None:
    path.write_text(json.dumps(to_sarif(report, baselined=baselined), indent=2) + "\n")
