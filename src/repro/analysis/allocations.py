"""Pass 2: untracked allocations (UA001).

The repo's memory claims rest on the :class:`~repro.memory.tracker
.MemoryTracker` ledger seeing every input-sized buffer (DESIGN.md section
2).  This pass flags raw ``np.empty`` / ``np.zeros`` / ``np.ones`` /
``np.full`` / ``bytearray`` calls in the accounting-critical subpackages
(``graph``, ``core``, ``parallel``, ``dist``) that show no evidence of
flowing into a ledger registration.

Evidence is judged at function granularity -- precise data-flow through
numpy aliasing is not tractable here, and function scope matches how the
code is actually organized (the function that allocates either registers
the buffer or hands it to a ``tracked_*`` constructor).  A function counts
as *covered* when it

* calls a ledger method (``.alloc`` / ``.touch`` / ``.resize`` /
  ``.free``), or
* calls a tracked constructor (``tracked_*`` from
  :mod:`repro.memory.scratch`) or a charge helper (``_charge*``).

Constant-size allocations of at most :data:`SMALL_LIMIT` elements are
exempt: fixed O(1) scratch (an 8-slot per-thread buffer) is below the
ledger's resolution and tracking it would be noise.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, Module, const_int

PASS_ID = "untracked-alloc"

#: allocating calls the ledger must account for
ALLOC_FUNCS = ("empty", "zeros", "ones", "full")

#: subpackages where the memory model must be complete; modules outside the
#: installed ``repro`` package (e.g. test fixtures) are always checked
SUBPACKAGES = ("graph", "core", "parallel", "dist")

#: constant element counts at or below this are O(1) scratch, exempt
SMALL_LIMIT = 64

_LEDGER_METHODS = ("alloc", "touch", "resize", "free")

#: modules that *implement* the ledger / tracked constructors
EXCLUDE = (
    "repro/memory/",
    "repro/analysis/",
)


def _in_scope(rel: str) -> bool:
    if not rel.startswith("repro/"):
        return True  # fixtures and scripts: lint everything handed to us
    return any(rel.startswith(f"repro/{p}/") for p in SUBPACKAGES)


def _const_elements(node: ast.Call) -> int | None:
    """Total element count when the shape argument is fully constant."""
    if not node.args:
        return None
    shape = node.args[0]
    if isinstance(shape, ast.Constant):
        v = const_int(shape)
        return v if v is not None else None
    if isinstance(shape, (ast.Tuple, ast.List)):
        total = 1
        for elt in shape.elts:
            v = const_int(elt)
            if v is None:
                return None
            total *= v
        return total
    return None


def _scope_covered(mod: Module, fn: ast.AST | None) -> bool:
    root = fn if fn is not None else mod.tree
    for node in ast.walk(root):
        if not isinstance(node, ast.Call):
            continue
        f = node.func
        if isinstance(f, ast.Attribute) and f.attr in _LEDGER_METHODS:
            return True
        name = (
            f.id
            if isinstance(f, ast.Name)
            else f.attr
            if isinstance(f, ast.Attribute)
            else None
        )
        if name and (name.startswith("tracked_") or name.startswith("_charge")):
            return True
    return False


def run(mod: Module) -> list[Finding]:
    if any(mod.rel.startswith(p) for p in EXCLUDE) or not _in_scope(mod.rel):
        return []
    findings: list[Finding] = []
    covered_cache: dict[ast.AST | None, bool] = {}
    for node in ast.walk(mod.tree):
        if not isinstance(node, ast.Call):
            continue
        alloc = mod.is_np_call(node, ALLOC_FUNCS)
        if alloc is None:
            if isinstance(node.func, ast.Name) and node.func.id == "bytearray":
                alloc = "bytearray"
            else:
                continue
        elems = _const_elements(node)
        if elems is not None and elems <= SMALL_LIMIT:
            continue
        fn = mod.enclosing_function(node)
        if fn not in covered_cache:
            covered_cache[fn] = _scope_covered(mod, fn)
        if covered_cache[fn]:
            continue
        scope = mod.qualname(node)
        findings.append(
            Finding(
                PASS_ID,
                "UA001",
                "warning",
                mod.rel,
                node.lineno,
                f"{alloc}() in {scope} is never registered with the "
                "memory ledger; use repro.memory.tracked_* or charge it "
                "via MemoryTracker.alloc",
                subject=f"{scope}:{alloc}",
            )
        )
    return findings
