"""``repro lint``: AST-based discipline checks for this codebase.

The repo encodes three non-negotiable disciplines that ordinary linters
cannot see -- shared-array accesses must match the declarations the
dynamic :class:`~repro.verify.conflicts.ConflictDetector` enforces, every
input-sized allocation must reach the :class:`~repro.memory.tracker
.MemoryTracker` ledger, and integer widths must never silently narrow at
tera-scale ID ranges.  This package walks the source ASTs and checks them
at rest, complementing the runtime verify layer (which only sees executed
paths).  See DESIGN.md section 9.

Passes (`repro lint --passes` selects a subset):

* ``parallel-access``   PA001-PA005  declarations vs kernel ASTs
* ``untracked-alloc``   UA001        allocations outside the ledger
* ``buffer-lifetime``   BL001-BL003  flow-sensitive escape analysis
* ``int-width``         IW001-IW002  narrowing stores / casts
* ``phase-discipline``  PH001-PH004  phase vocabulary + span hygiene/flow

``buffer-lifetime``, the ``int-width`` dtype lattice and ``PH004`` run on
the CFG + fixpoint machinery in :mod:`repro.analysis.dataflow`.

The gate (``repro lint --gate``) fails only on findings that are neither
inline-suppressed (``# repro-lint: ignore[...] -- reason``) nor covered by
the committed baseline (:mod:`repro.analysis.baseline`).  Suppressions
without a reason still work but are listed as legacy bare ignores.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import (
    allocations,
    baseline as baseline_mod,
    bufferlife,
    intwidth,
    parallel_access,
    phases,
)
from repro.analysis.core import (
    PASS_IDS,
    Finding,
    LintReport,
    fingerprint,
    load_module,
)

__all__ = [
    "PASS_IDS",
    "Finding",
    "LintReport",
    "fingerprint",
    "lint_paths",
    "render_text",
]

_PASSES = {
    parallel_access.PASS_ID: parallel_access.run,
    allocations.PASS_ID: allocations.run,
    bufferlife.PASS_ID: bufferlife.run,
    intwidth.PASS_ID: intwidth.run,
    phases.PASS_ID: phases.run,
}


def iter_python_files(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for p in paths:
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            files.append(p)
    # de-dup while keeping a stable order
    seen: set[Path] = set()
    out = []
    for f in files:
        r = f.resolve()
        if r not in seen:
            seen.add(r)
            out.append(f)
    return out


def lint_paths(
    paths: list[Path],
    *,
    baseline: Path | None = None,
    passes: list[str] | None = None,
    repo_root: Path | None = None,
) -> LintReport:
    """Run the selected passes over ``paths`` and apply the baseline."""
    selected = list(passes) if passes else list(PASS_IDS)
    unknown = [p for p in selected if p not in _PASSES]
    if unknown:
        raise KeyError(f"unknown passes {unknown}; know {sorted(_PASSES)}")

    findings: list[Finding] = []
    suppressed = 0
    bare: list[str] = []
    files = iter_python_files(paths)
    for path in files:
        mod = load_module(path, repo_root)
        if mod.skip_file:
            continue
        bare.extend(f"{mod.rel}:{line}" for line in mod.bare_ignores())
        for pid in selected:
            for f in _PASSES[pid](mod):
                if mod.suppressed(f):
                    suppressed += 1
                else:
                    findings.append(f)
    findings.sort(key=lambda f: (f.file, f.line, f.code))

    accepted = baseline_mod.load(baseline) if baseline else {}
    report = baseline_mod.apply(findings, accepted)
    report.suppressed = suppressed
    report.files_checked = len(files)
    report.bare_suppressions = bare
    return report


def render_text(report: LintReport, *, gate: bool = False) -> str:
    """Human-readable report; new findings first, then the tallies."""
    lines: list[str] = []
    shown = report.new if gate else report.findings
    for f in shown:
        lines.append(f.render())
    if report.stale_baseline:
        lines.append("")
        lines.append(
            f"{len(report.stale_baseline)} stale baseline entr"
            f"{'y' if len(report.stale_baseline) == 1 else 'ies'} "
            "(finding fixed but still accepted -- run "
            "`repro lint --update-baseline`):"
        )
        lines.extend(f"  {fp}" for fp in report.stale_baseline)
    if report.bare_suppressions:
        lines.append("")
        lines.append(
            f"{len(report.bare_suppressions)} legacy bare ignore"
            f"{'' if len(report.bare_suppressions) == 1 else 's'} "
            "(add `-- <reason>` to each `# repro-lint: ignore[...]`):"
        )
        lines.extend(f"  {loc}" for loc in report.bare_suppressions)
    lines.append("")
    by_pass = ", ".join(f"{k}={v}" for k, v in report.by_pass().items())
    lines.append(
        f"checked {report.files_checked} files: "
        f"{len(report.findings)} findings ({by_pass}), "
        f"{report.baselined} baselined, {report.suppressed} suppressed, "
        f"{len(report.new)} new"
    )
    return "\n".join(lines)


def write_json_report(report: LintReport, path: Path) -> None:
    path.write_text(json.dumps(report.to_dict(), indent=2) + "\n")
