"""Pass 3: integer-width safety (IW001-IW002), flow-sensitive.

Graph IDs in this codebase routinely exceed 32 bits (the paper's graphs
have up to 129 billion edges), so a silent narrowing -- storing int64
vertex IDs into an int32 buffer, or an unguarded ``astype`` -- corrupts
high IDs with no exception.  This pass runs a dtype inference over each
function's control-flow graph (:mod:`repro.analysis.dataflow`) and
reports:

* ``IW001`` (warning) -- a subscript store ``narrow[ix] = wide`` where the
  destination's inferred integer width is smaller than the source's.
* ``IW002`` (warning) -- ``wide.astype(<narrower int>)`` with no guard.

Both are *warnings*: narrowing is legitimate when a bound is established
first (compression does it deliberately).  A finding is suppressed when a
guard -- an ``assert`` statement or an ``np.iinfo`` bound check --
**dominates** the site in the CFG (every path from the entry to the site
passes the guard), or when the site carries an explicit
``# repro-lint: ignore[int-width]``.  A guard inside one branch of an
``if`` no longer silences sites in the sibling branch or after the join,
which the old line-number heuristic got wrong.

Inference is flow-sensitive: variable widths are tracked per CFG block
and joined at merge points on the "same or unknown" lattice -- a name
bound ``int32`` on one path and ``int64`` on another is *unknown* after
the merge, and no finding is ever produced for an unknown width.  It
still only follows direct constructor calls (``np.empty(n,
dtype=np.int32)``, ``tracked_zeros``, ``np.arange``, ``astype``) and
gives up on anything else.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, Module
from repro.analysis.dataflow import (
    Block,
    build_cfg,
    fixpoint,
    header_exprs,
    join_env,
)

PASS_ID = "int-width"

#: integer dtype name -> bit width
WIDTHS = {
    "int8": 8,
    "uint8": 8,
    "int16": 16,
    "uint16": 16,
    "int32": 32,
    "uint32": 32,
    "int64": 64,
    "uint64": 64,
    "intp": 64,
    "uintp": 64,
    "int_": 64,
}

_CTOR_FUNCS = (
    "empty",
    "zeros",
    "ones",
    "full",
    "arange",
    "array",
    "asarray",
    "full_like",
    "zeros_like",
    "empty_like",
)

EXCLUDE = ("repro/analysis/",)


def _dtype_width(mod: Module, node: ast.AST | None) -> int | None:
    """Bit width of a dtype expression (``np.int32``, ``"int32"``)."""
    if node is None:
        return None
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        if node.value.id in mod.np_aliases:
            return WIDTHS.get(node.attr)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return WIDTHS.get(node.value)
    return None


def _dtype_arg(call: ast.Call, positional: int) -> ast.AST | None:
    for kw in call.keywords:
        if kw.arg == "dtype":
            return kw.value
    if len(call.args) > positional:
        return call.args[positional]
    return None


def _infer_call_width(mod: Module, call: ast.Call) -> int | None:
    """Width of an array produced by a constructor / astype call."""
    f = call.func
    if isinstance(f, ast.Attribute) and f.attr == "astype" and call.args:
        return _dtype_width(mod, call.args[0])
    name = mod.is_np_call(call, _CTOR_FUNCS)
    if name is None and isinstance(f, ast.Name) and f.id.startswith("tracked_"):
        # repro.memory.scratch constructors: int64 unless told otherwise
        pos = 2 if f.id == "tracked_full" else 1
        return _dtype_width(mod, _dtype_arg(call, pos)) or 64
    if name is None:
        return None
    # positional dtype slot per constructor signature
    pos = {"full": 2, "full_like": 2, "arange": 3, "array": 1, "asarray": 1}
    return _dtype_width(mod, _dtype_arg(call, pos.get(name, 1)))


def _expr_width(mod: Module, node: ast.AST, env: dict[str, int]) -> int | None:
    """Inferred integer width of a value expression, None if unknown."""
    if isinstance(node, ast.Name):
        return env.get(node.id)
    if isinstance(node, ast.Call):
        return _infer_call_width(mod, node)
    if isinstance(node, ast.Subscript) and isinstance(node.value, ast.Name):
        return env.get(node.value.id)  # a[ix] has a's element width
    if isinstance(node, ast.BinOp):
        lw = _expr_width(mod, node.left, env)
        rw = _expr_width(mod, node.right, env)
        if lw is not None and rw is not None:
            return max(lw, rw)
        return lw if rw is None else rw
    return None


def _is_guard_stmt(stmt: ast.stmt) -> bool:
    """Assert or a statement whose header evaluates an np.iinfo call."""
    if isinstance(stmt, ast.Assert):
        return True
    for expr in header_exprs(stmt):
        for node in ast.walk(expr):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "iinfo"
            ):
                return True
    return False


def _kill(env: dict[str, int], target: ast.AST) -> None:
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            env.pop(node.id, None)


def _apply_stmt(mod: Module, stmt: ast.stmt, env: dict[str, int]) -> None:
    """Update the width environment in place for one statement."""
    if isinstance(stmt, ast.Assign):
        if len(stmt.targets) == 1 and isinstance(stmt.targets[0], ast.Name):
            w = _expr_width(mod, stmt.value, env)
            if w is not None:
                env[stmt.targets[0].id] = w
            else:
                env.pop(stmt.targets[0].id, None)  # dtype no longer known
        else:
            for t in stmt.targets:
                if not isinstance(t, ast.Subscript):
                    _kill(env, t)
    elif isinstance(stmt, ast.AnnAssign):
        if isinstance(stmt.target, ast.Name):
            w = (
                _expr_width(mod, stmt.value, env)
                if stmt.value is not None
                else None
            )
            if w is not None:
                env[stmt.target.id] = w
            else:
                env.pop(stmt.target.id, None)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        # iterating an int array yields scalars of its element width
        w = _expr_width(mod, stmt.iter, env)
        if isinstance(stmt.target, ast.Name) and w is not None:
            env[stmt.target.id] = w
        else:
            _kill(env, stmt.target)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                _kill(env, item.optional_vars)


def _check_function(mod: Module, fn: ast.AST, findings: list[Finding]) -> None:
    cfg = build_cfg(fn)
    dom = cfg.dominators()

    guards: list[tuple[Block, int]] = [
        (block, stmt.lineno)
        for block in cfg.blocks
        for stmt in block.stmts
        if _is_guard_stmt(stmt)
    ]

    def guarded(block: Block, line: int) -> bool:
        for gb, gl in guards:
            if gb.bid == block.bid:
                if gl < line:
                    return True
            elif cfg.dominates(dom, gb, block):
                return True
        return False

    def transfer(block: Block, env: dict[str, int]) -> dict[str, int]:
        out = dict(env)
        for stmt in block.stmts:
            _apply_stmt(mod, stmt, out)
        return out

    ins, _outs = fixpoint(cfg, transfer, {}, join_env)

    for block in cfg.blocks:
        env = ins.get(block.bid)
        if env is None:
            continue  # unreachable: no findings from dead code
        env = dict(env)
        for stmt in block.stmts:
            scope = mod.qualname(stmt)
            # IW002: narrowing astype evaluated by this statement
            for expr in header_exprs(stmt):
                for call in ast.walk(expr):
                    if not (
                        isinstance(call, ast.Call)
                        and isinstance(call.func, ast.Attribute)
                        and call.func.attr == "astype"
                        and call.args
                    ):
                        continue
                    target_w = _dtype_width(mod, call.args[0])
                    source_w = _expr_width(mod, call.func.value, env)
                    if (
                        target_w is not None
                        and source_w is not None
                        and target_w < source_w
                        and not guarded(block, call.lineno)
                    ):
                        findings.append(
                            Finding(
                                PASS_ID,
                                "IW002",
                                "warning",
                                mod.rel,
                                call.lineno,
                                f"unguarded cast int{source_w} -> "
                                f"int{target_w} in {scope}; assert the bound "
                                "(np.iinfo) first or suppress with a "
                                "justification",
                                subject=f"{scope}:astype{target_w}",
                            )
                        )
            # IW001: narrowing subscript store
            if isinstance(stmt, ast.Assign):
                for t in stmt.targets:
                    if not (
                        isinstance(t, ast.Subscript)
                        and isinstance(t.value, ast.Name)
                    ):
                        continue
                    dst_w = env.get(t.value.id)
                    src_w = _expr_width(mod, stmt.value, env)
                    if (
                        dst_w is not None
                        and src_w is not None
                        and dst_w < src_w
                        and not guarded(block, stmt.lineno)
                    ):
                        findings.append(
                            Finding(
                                PASS_ID,
                                "IW001",
                                "warning",
                                mod.rel,
                                stmt.lineno,
                                f"store of int{src_w} values into int{dst_w} "
                                f"array {t.value.id!r} in {scope} can "
                                "truncate high IDs",
                                subject=f"{scope}:{t.value.id}",
                            )
                        )
            _apply_stmt(mod, stmt, env)


def run(mod: Module) -> list[Finding]:
    if any(mod.rel.startswith(p) for p in EXCLUDE):
        return []
    findings: list[Finding] = []
    for node in ast.walk(mod.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _check_function(mod, node, findings)
    return findings
