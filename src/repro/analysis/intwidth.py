"""Pass 3: integer-width safety (IW001-IW002).

Graph IDs in this codebase routinely exceed 32 bits (the paper's graphs
have up to 129 billion edges), so a silent narrowing -- storing int64
vertex IDs into an int32 buffer, or an unguarded ``astype`` -- corrupts
high IDs with no exception.  This pass runs a small dtype-inference over
each function and reports:

* ``IW001`` (warning) -- a subscript store ``narrow[ix] = wide`` where the
  destination's inferred integer width is smaller than the source's.
* ``IW002`` (warning) -- ``wide.astype(<narrower int>)`` with no guard.

Both are *warnings*: narrowing is legitimate when a bound is established
first (compression does it deliberately).  A finding is suppressed when
the function shows a guard before the site -- an ``assert`` statement or
an ``np.iinfo`` bound check -- or carries an explicit
``# repro-lint: ignore[int-width]``.

The inference is deliberately linear and local: it follows direct
constructor calls (``np.empty(n, dtype=np.int32)``, ``tracked_zeros``,
``np.arange``, ``astype``) and gives up on anything else.  No finding is
ever produced for a name whose dtype is unknown.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, Module

PASS_ID = "int-width"

#: integer dtype name -> bit width
WIDTHS = {
    "int8": 8,
    "uint8": 8,
    "int16": 16,
    "uint16": 16,
    "int32": 32,
    "uint32": 32,
    "int64": 64,
    "uint64": 64,
    "intp": 64,
    "uintp": 64,
    "int_": 64,
}

_CTOR_FUNCS = (
    "empty",
    "zeros",
    "ones",
    "full",
    "arange",
    "array",
    "asarray",
    "full_like",
    "zeros_like",
    "empty_like",
)

EXCLUDE = ("repro/analysis/",)


def _dtype_width(mod: Module, node: ast.AST | None) -> int | None:
    """Bit width of a dtype expression (``np.int32``, ``"int32"``)."""
    if node is None:
        return None
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        if node.value.id in mod.np_aliases:
            return WIDTHS.get(node.attr)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return WIDTHS.get(node.value)
    return None


def _dtype_arg(call: ast.Call, positional: int) -> ast.AST | None:
    for kw in call.keywords:
        if kw.arg == "dtype":
            return kw.value
    if len(call.args) > positional:
        return call.args[positional]
    return None


def _infer_call_width(mod: Module, call: ast.Call) -> int | None:
    """Width of an array produced by a constructor / astype call."""
    f = call.func
    if isinstance(f, ast.Attribute) and f.attr == "astype" and call.args:
        return _dtype_width(mod, call.args[0])
    name = mod.is_np_call(call, _CTOR_FUNCS)
    if name is None and isinstance(f, ast.Name) and f.id.startswith("tracked_"):
        name = f.id  # repro.memory.scratch constructors: dtype is arg 1
        return _dtype_width(mod, _dtype_arg(call, 1)) or 64  # int64 default
    if name is None:
        return None
    # positional dtype slot per constructor signature
    pos = {"full": 2, "full_like": 2, "arange": 3, "array": 1, "asarray": 1}
    return _dtype_width(mod, _dtype_arg(call, pos.get(name, 1)))


def _expr_width(mod: Module, node: ast.AST, env: dict[str, int]) -> int | None:
    """Inferred integer width of a value expression, None if unknown."""
    if isinstance(node, ast.Name):
        return env.get(node.id)
    if isinstance(node, ast.Call):
        return _infer_call_width(mod, node)
    if isinstance(node, ast.Subscript) and isinstance(node.value, ast.Name):
        return env.get(node.value.id)  # a[ix] has a's element width
    if isinstance(node, ast.BinOp):
        lw = _expr_width(mod, node.left, env)
        rw = _expr_width(mod, node.right, env)
        if lw is not None and rw is not None:
            return max(lw, rw)
        return lw if rw is None else rw
    return None


def _guard_lines(fn: ast.AST) -> list[int]:
    """Lines of guards (asserts / np.iinfo bound checks) inside ``fn``."""
    out = []
    for node in ast.walk(fn):
        if isinstance(node, ast.Assert):
            out.append(node.lineno)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "iinfo"
        ):
            out.append(node.lineno)
    return out


def _check_function(mod: Module, fn: ast.AST, findings: list[Finding]) -> None:
    env: dict[str, int] = {}
    guards = _guard_lines(fn)

    def guarded(line: int) -> bool:
        return any(g < line for g in guards)

    body = [
        n
        for n in ast.walk(fn)
        if isinstance(
            n, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Expr, ast.Return)
        )
        and mod.enclosing_function(n) is fn  # nested defs get their own run
    ]
    body.sort(key=lambda n: n.lineno)
    for stmt in body:
        scope = mod.qualname(stmt)
        # IW002: narrowing astype anywhere in the statement
        for call in ast.walk(stmt):
            if not (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr == "astype"
                and call.args
            ):
                continue
            target_w = _dtype_width(mod, call.args[0])
            source_w = _expr_width(mod, call.func.value, env)
            if (
                target_w is not None
                and source_w is not None
                and target_w < source_w
                and not guarded(call.lineno)
            ):
                findings.append(
                    Finding(
                        PASS_ID,
                        "IW002",
                        "warning",
                        mod.rel,
                        call.lineno,
                        f"unguarded cast int{source_w} -> int{target_w} in "
                        f"{scope}; assert the bound (np.iinfo) first or "
                        "suppress with a justification",
                        subject=f"{scope}:astype{target_w}",
                    )
                )

        if not isinstance(stmt, ast.Assign):
            continue
        # IW001: narrowing subscript store
        for t in stmt.targets:
            if not (
                isinstance(t, ast.Subscript) and isinstance(t.value, ast.Name)
            ):
                continue
            dst_w = env.get(t.value.id)
            src_w = _expr_width(mod, stmt.value, env)
            if (
                dst_w is not None
                and src_w is not None
                and dst_w < src_w
                and not guarded(stmt.lineno)
            ):
                findings.append(
                    Finding(
                        PASS_ID,
                        "IW001",
                        "warning",
                        mod.rel,
                        stmt.lineno,
                        f"store of int{src_w} values into int{dst_w} array "
                        f"{t.value.id!r} in {scope} can truncate high IDs",
                        subject=f"{scope}:{t.value.id}",
                    )
                )
        # update the env from simple name assignments
        if len(stmt.targets) == 1 and isinstance(stmt.targets[0], ast.Name):
            name = stmt.targets[0].id
            w = _expr_width(mod, stmt.value, env)
            if w is not None:
                env[name] = w
            else:
                env.pop(name, None)  # dtype no longer known


def run(mod: Module) -> list[Finding]:
    if any(mod.rel.startswith(p) for p in EXCLUDE):
        return []
    findings: list[Finding] = []
    for node in ast.walk(mod.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _check_function(mod, node, findings)
    return findings
