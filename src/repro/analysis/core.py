"""Shared infrastructure for the ``repro lint`` static passes.

Each pass is a pure function from a parsed :class:`Module` to a list of
:class:`Finding`.  Findings carry enough identity -- pass ID, short code,
repo-relative file, line, and a *subject* (the variable / array / phase the
finding is about) -- for two consumers:

* humans read ``file:line: CODE [pass] message``;
* the suppression baseline matches findings by :func:`fingerprint`
  (pass, file, code, subject), deliberately *without* line numbers, so
  unrelated edits that shift lines do not churn the committed baseline.

Inline suppressions use ``# repro-lint: ignore[<pass-or-code>, ...] --
<reason>`` on the offending line or the line directly above it; the
reason after ``--`` is required on new suppressions (a suppression
without one still works but is reported as a legacy *bare ignore* so the
gate output lists the debt).  ``# repro-lint: skip-file`` anywhere in the
first ten lines exempts a whole module.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

#: pass IDs, in report order
PASS_IDS = (
    "parallel-access",
    "untracked-alloc",
    "buffer-lifetime",
    "int-width",
    "phase-discipline",
)

#: the lookbehind keeps backtick-quoted doc text (``# repro-lint: ...``)
#: from registering as a real suppression
_SUPPRESS_RE = re.compile(
    r"(?<!`)#\s*repro-lint:\s*ignore\[([^\]]+)\](?:\s*--\s*(\S.*?)\s*$)?"
)
_SKIP_FILE_RE = re.compile(r"#\s*repro-lint:\s*skip-file")


@dataclass(frozen=True)
class Finding:
    """One static-analysis finding."""

    pass_id: str  # one of PASS_IDS
    code: str  # short stable code, e.g. "PA001"
    severity: str  # "error" | "warning"
    file: str  # repo-relative path (see Module.rel)
    line: int
    message: str
    subject: str = ""  # stable identity component (var / array / phase)

    def render(self) -> str:
        return (
            f"{self.file}:{self.line}: {self.code} "
            f"[{self.pass_id}] {self.message}"
        )


def fingerprint(f: Finding) -> str:
    """Line-insensitive identity used by the suppression baseline."""
    return f"{f.pass_id}|{f.file}|{f.code}|{f.subject}"


class Module:
    """A parsed source file plus the lookup helpers the passes share."""

    def __init__(self, path: Path, source: str, rel: str) -> None:
        self.path = path
        self.source = source
        self.rel = rel  # stable repo-relative path used in findings
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self._parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        # suppressions: line -> set of pass-ids/codes (lowercased);
        # reasons: line -> the text after "--" (None for legacy bare ignores)
        self.suppressions: dict[int, set[str]] = {}
        self.suppression_reasons: dict[int, str | None] = {}
        self.skip_file = False
        for i, text in enumerate(self.lines, start=1):
            m = _SUPPRESS_RE.search(text)
            if m:
                ids = {t.strip().lower() for t in m.group(1).split(",")}
                self.suppressions[i] = ids
                self.suppression_reasons[i] = m.group(2)
            if i <= 10 and _SKIP_FILE_RE.search(text):
                self.skip_file = True
        # numpy import aliases ("np" for `import numpy as np`)
        self.np_aliases: set[str] = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    if a.name == "numpy":
                        self.np_aliases.add(a.asname or "numpy")

    # ------------------------------------------------------------------ #
    # AST helpers
    # ------------------------------------------------------------------ #
    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def enclosing_function(self, node: ast.AST) -> ast.AST | None:
        """Innermost FunctionDef/AsyncFunctionDef containing ``node``."""
        cur = self._parents.get(node)
        while cur is not None:
            if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return cur
            cur = self._parents.get(cur)
        return None

    def qualname(self, node: ast.AST) -> str:
        """Dotted class/function path of the scope containing ``node``."""
        parts: list[str] = []
        cur: ast.AST | None = node
        while cur is not None:
            if isinstance(
                cur, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                parts.append(cur.name)
            cur = self._parents.get(cur)
        return ".".join(reversed(parts)) or "<module>"

    def is_np_call(self, node: ast.AST, names: tuple[str, ...]) -> str | None:
        """If ``node`` is ``np.<name>(...)`` with name in ``names``, return it."""
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in self.np_aliases
            and node.func.attr in names
        ):
            return node.func.attr
        return None

    def suppressed(self, f: Finding) -> bool:
        for line in (f.line, f.line - 1):
            ids = self.suppressions.get(line)
            if ids and (
                f.pass_id in ids or f.code.lower() in ids or "all" in ids
            ):
                return True
        return False

    def bare_ignores(self) -> list[int]:
        """Lines of legacy suppressions missing the ``-- <reason>`` text."""
        return sorted(
            line
            for line, reason in self.suppression_reasons.items()
            if reason is None
        )


def terminal_name(node: ast.AST) -> str | None:
    """Rightmost-but-one identifier of a call receiver.

    ``runtime.execute`` -> "runtime"; ``self.tracer.span`` -> "tracer";
    ``ctx.phase`` -> "ctx".
    """
    if isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def const_str(node: ast.AST) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def const_int(node: ast.AST) -> int | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    return None


def load_module(path: Path, repo_root: Path | None = None) -> Module:
    """Parse ``path``; ``rel`` is anchored at the ``repro`` package when the
    file lives inside one (stable across checkouts and installs)."""
    source = path.read_text()
    parts = path.resolve().parts
    if "repro" in parts:
        idx = len(parts) - 1 - parts[::-1].index("repro")
        rel = "/".join(parts[idx:])
    elif repo_root is not None:
        try:
            rel = str(path.resolve().relative_to(repo_root.resolve()))
        except ValueError:
            rel = path.name
    else:
        rel = path.name
    return Module(path, source, rel)


@dataclass
class LintReport:
    """Findings of one lint run, split by baseline status."""

    findings: list[Finding] = field(default_factory=list)  # after suppressions
    new: list[Finding] = field(default_factory=list)  # not covered by baseline
    baselined: int = 0
    suppressed: int = 0
    files_checked: int = 0
    stale_baseline: list[str] = field(default_factory=list)
    # "file:line" of suppressions with no `-- reason` (legacy bare ignores)
    bare_suppressions: list[str] = field(default_factory=list)

    def by_pass(self) -> dict[str, int]:
        out = {p: 0 for p in PASS_IDS}
        for f in self.findings:
            out[f.pass_id] = out.get(f.pass_id, 0) + 1
        return out

    def to_dict(self) -> dict:
        return {
            "files_checked": self.files_checked,
            "total_findings": len(self.findings),
            "new_findings": [f.__dict__ for f in self.new],
            "baselined": self.baselined,
            "suppressed": self.suppressed,
            "by_pass": self.by_pass(),
            "stale_baseline": self.stale_baseline,
            "bare_suppressions": self.bare_suppressions,
        }
