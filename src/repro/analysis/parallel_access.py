"""Pass 1: parallel-access discipline (PA001-PA005).

Kernels dispatched through :meth:`ParallelRuntime.execute` must route every
shared-array access through a :class:`~repro.verify.declarations
.SharedAccessRecorder` bound to a declared kernel key.  This pass
cross-references the kernel ASTs against the *same* declaration registry
the dynamic :class:`~repro.verify.conflicts.ConflictDetector` enforces at
runtime (``repro.verify.declarations.KERNELS``), so undeclared accesses are
caught at rest -- on every path, not only the paths a fuzzed schedule
happens to execute.

Codes:

* ``PA001`` (error) -- access recorded on an array the kernel never
  declared.
* ``PA002`` (error) -- access recorded under a synchronization class the
  declaration does not grant (e.g. a plain ``write`` on an array declared
  atomic-only).
* ``PA003`` (error) -- raw subscript store to a kernel-local variable that
  aliases a declared shared array (``AccessDecl.vars``) whose declaration
  grants neither ``write`` nor ``atomic`` -- a store bypassing the
  recorder's discipline entirely.
* ``PA004`` (warning) -- function iterates ``runtime.execute(...)`` but
  binds no recorder and records nothing: parallel work with no access
  declarations at all.
* ``PA005`` (error) -- ``recorder_for(..., key)`` with a key missing from
  the registry (warning when the key is not a string literal).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.core import Finding, Module, const_str, terminal_name
from repro.verify.declarations import KERNELS, declared_modes, shared_vars

PASS_ID = "parallel-access"

#: files that implement the recording machinery itself
EXCLUDE = (
    "repro/verify/",
    "repro/parallel/runtime.py",
    "repro/parallel/atomics.py",
    "repro/analysis/",
)

_RECORD_MODES = {
    "record_read": "read",
    "record_write": "write",
    "record_atomic": "atomic",
}
_RECORDER_MODES = ("read", "write", "atomic")


@dataclass(frozen=True)
class _Binding:
    scope: ast.AST | None  # enclosing function node, None = module level
    var: str  # recorder variable name
    kernel: str | None  # None when the key is not a literal
    line: int


def _collect_bindings(mod: Module) -> list[_Binding]:
    out: list[_Binding] = []
    for node in ast.walk(mod.tree):
        if not isinstance(node, ast.Assign) or not isinstance(
            node.value, ast.Call
        ):
            continue
        func = node.value.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if name != "recorder_for" or len(node.value.args) < 2:
            continue
        targets = [
            t.id for t in node.targets if isinstance(t, ast.Name)
        ]
        if not targets:
            continue
        out.append(
            _Binding(
                scope=mod.enclosing_function(node),
                var=targets[0],
                kernel=const_str(node.value.args[1]),
                line=node.lineno,
            )
        )
    return out


def _kernel_for(
    mod: Module, node: ast.AST, bindings: list[_Binding]
) -> _Binding | None:
    """Innermost recorder binding visible from ``node``'s scope."""
    fn: ast.AST | None = mod.enclosing_function(node)
    while fn is not None:
        for b in bindings:
            if b.scope is fn:
                return b
        fn = mod.enclosing_function(fn)
    module_level = [b for b in bindings if b.scope is None]
    if module_level:
        return module_level[0]
    # single-kernel module: helpers extracted from the kernel share it
    if len({b.kernel for b in bindings}) == 1 and bindings:
        return bindings[0]
    return None


def _check_access(
    mod: Module,
    node: ast.Call,
    kernel: str,
    array: str,
    mode: str,
    findings: list[Finding],
) -> None:
    modes = declared_modes(kernel).get(array)
    if modes is None:
        findings.append(
            Finding(
                PASS_ID,
                "PA001",
                "error",
                mod.rel,
                node.lineno,
                f"kernel {kernel!r} records {mode} on undeclared array "
                f"{array!r}; declare it in repro.verify.declarations.KERNELS",
                subject=f"{kernel}:{array}:{mode}",
            )
        )
    elif mode not in modes:
        findings.append(
            Finding(
                PASS_ID,
                "PA002",
                "error",
                mod.rel,
                node.lineno,
                f"kernel {kernel!r} records {mode} on {array!r} but its "
                f"declaration only grants {sorted(modes)}",
                subject=f"{kernel}:{array}:{mode}",
            )
        )


def run(mod: Module) -> list[Finding]:
    if any(mod.rel.startswith(p) for p in EXCLUDE):
        return []
    findings: list[Finding] = []
    bindings = _collect_bindings(mod)

    for b in bindings:
        if b.kernel is None:
            findings.append(
                Finding(
                    PASS_ID,
                    "PA005",
                    "warning",
                    mod.rel,
                    b.line,
                    "recorder_for called with a non-literal kernel key; "
                    "the static pass cannot check its accesses",
                    subject=f"{b.var}:<dynamic>",
                )
            )
        elif b.kernel not in KERNELS:
            findings.append(
                Finding(
                    PASS_ID,
                    "PA005",
                    "error",
                    mod.rel,
                    b.line,
                    f"recorder_for bound to unknown kernel key "
                    f"{b.kernel!r}; known: {sorted(KERNELS)}",
                    subject=b.kernel,
                )
            )
    recorder_vars = {b.var for b in bindings}

    for node in ast.walk(mod.tree):
        if isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            attr = node.func.attr
            recv = terminal_name(node.func)
            # recorder-mediated access: rec.read/write/atomic("array", ix)
            if (
                attr in _RECORDER_MODES
                and recv in recorder_vars
                and node.args
            ):
                binding = _kernel_for(mod, node, bindings)
                array = const_str(node.args[0])
                if binding and binding.kernel in KERNELS and array:
                    _check_access(
                        mod, node, binding.kernel, array, attr, findings
                    )
            # direct detector access: det.record_write("array", ix)
            elif attr in _RECORD_MODES and node.args:
                binding = _kernel_for(mod, node, bindings)
                array = const_str(node.args[0])
                if binding and binding.kernel in KERNELS and array:
                    _check_access(
                        mod,
                        node,
                        binding.kernel,
                        array,
                        _RECORD_MODES[attr],
                        findings,
                    )

        # PA003: raw subscript store to a declared shared variable
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for t in targets:
                if not (
                    isinstance(t, ast.Subscript)
                    and isinstance(t.value, ast.Name)
                ):
                    continue
                binding = _kernel_for(mod, node, bindings)
                if not binding or binding.kernel not in KERNELS:
                    continue
                aliases = shared_vars(binding.kernel)
                array = aliases.get(t.value.id)
                if array is None:
                    continue
                modes = declared_modes(binding.kernel)[array]
                if "write" not in modes and "atomic" not in modes:
                    findings.append(
                        Finding(
                            PASS_ID,
                            "PA003",
                            "error",
                            mod.rel,
                            node.lineno,
                            f"raw store to {t.value.id!r} aliases shared "
                            f"array {array!r}, declared "
                            f"{sorted(modes)}-only in kernel "
                            f"{binding.kernel!r}",
                            subject=f"{binding.kernel}:{array}:store",
                        )
                    )

    # PA004: execute loop in a function with no declarations at all
    for node in ast.walk(mod.tree):
        if not isinstance(node, (ast.For, ast.AsyncFor)):
            continue
        it = node.iter
        if not (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Attribute)
            and it.func.attr == "execute"
        ):
            continue
        fn = mod.enclosing_function(node)
        if fn is None:
            continue
        if _kernel_for(mod, node, bindings) is not None:
            continue
        records = any(
            isinstance(n, ast.Call)
            and isinstance(n.func, ast.Attribute)
            and n.func.attr in _RECORD_MODES
            for n in ast.walk(fn)
        )
        if not records:
            findings.append(
                Finding(
                    PASS_ID,
                    "PA004",
                    "warning",
                    mod.rel,
                    node.iter.lineno,
                    f"{mod.qualname(node)} dispatches parallel work via "
                    "execute() without binding a SharedAccessRecorder or "
                    "recording any accesses",
                    subject=mod.qualname(node),
                )
            )
    return findings
