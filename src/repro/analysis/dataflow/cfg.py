"""Per-function control-flow graphs for the lint dataflow passes.

A :class:`CFG` is built from one ``ast.FunctionDef`` (or async variant).
Statements are grouped into :class:`Block` basic blocks connected by
directed edges; compound statements (``if``/``while``/``for``/``with``)
appear in the block that evaluates their *header* (test / iterable /
context expressions) while their bodies live in successor blocks.  The
shape is deliberately an over-approximation of CPython's real control
flow -- every block inside a ``try`` body gets an edge to every handler,
``raise``/``return`` edge to the exit block -- because the passes built on
top (escape analysis, dtype inference, span protocol) only need
may-reach / must-dominate facts, not exact exception semantics.

Use :func:`header_exprs` to get the expressions a compound statement
evaluates *inside its own block*; iterating a compound node with
``ast.walk`` would wrongly visit its body, which belongs to other blocks.
"""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = ["Block", "CFG", "build_cfg", "header_exprs"]

#: statements whose bodies are routed to successor blocks
_COMPOUND = (
    ast.If,
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.Try,
    ast.With,
    ast.AsyncWith,
)


class Block:
    """A basic block: straight-line statements plus successor edges."""

    __slots__ = ("bid", "label", "stmts", "succs", "preds")

    def __init__(self, bid: int, label: str) -> None:
        self.bid = bid
        self.label = label
        self.stmts: list[ast.stmt] = []
        self.succs: list[Block] = []
        self.preds: list[Block] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Block {self.bid} {self.label!r} stmts={len(self.stmts)}>"


class CFG:
    """Control-flow graph of one function.

    ``entry`` holds no statements; ``exit`` collects every ``return``,
    ``raise`` and fall-off-the-end edge.  ``block_of`` maps each statement
    node to the block that evaluates it (its header, for compound nodes).
    """

    def __init__(self, func: ast.AST) -> None:
        self.func = func
        self.blocks: list[Block] = []
        self.entry = self.new_block("entry")
        self.exit = self.new_block("exit")
        self.block_of: dict[ast.stmt, Block] = {}

    def new_block(self, label: str) -> Block:
        b = Block(len(self.blocks), label)
        self.blocks.append(b)
        return b

    def add_edge(self, src: Block, dst: Block) -> None:
        if dst not in src.succs:
            src.succs.append(dst)
            dst.preds.append(src)

    # ------------------------------------------------------------------ #
    # analysis helpers
    # ------------------------------------------------------------------ #
    def rpo(self) -> list[Block]:
        """Blocks in reverse post-order from the entry (unreachable last)."""
        seen: set[int] = set()
        order: list[Block] = []

        def dfs(b: Block) -> None:
            seen.add(b.bid)
            for s in b.succs:
                if s.bid not in seen:
                    dfs(s)
            order.append(b)

        dfs(self.entry)
        post = list(reversed(order))
        post.extend(b for b in self.blocks if b.bid not in seen)
        return post

    def dominators(self) -> dict[int, set[int]]:
        """Block id -> ids of blocks that dominate it (including itself).

        Classic iterative dataflow; unreachable blocks dominate nothing
        and are dominated by everything (vacuous paths)."""
        reachable = {b.bid for b in self.rpo() if b is self.entry or b.preds}
        all_ids = set(range(len(self.blocks)))
        dom: dict[int, set[int]] = {b.bid: set(all_ids) for b in self.blocks}
        dom[self.entry.bid] = {self.entry.bid}
        changed = True
        while changed:
            changed = False
            for b in self.rpo():
                if b is self.entry:
                    continue
                preds = [p for p in b.preds if p.bid in reachable]
                if not preds:
                    continue
                new = set.intersection(*(dom[p.bid] for p in preds))
                new.add(b.bid)
                if new != dom[b.bid]:
                    dom[b.bid] = new
                    changed = True
        return dom

    def dominates(
        self, dom: dict[int, set[int]], a: Block, b: Block
    ) -> bool:
        return a.bid in dom[b.bid]


def header_exprs(stmt: ast.stmt) -> Iterator[ast.expr]:
    """Expressions a statement evaluates in its *own* block.

    For simple statements this is every sub-expression; for compound
    statements only the header (test, iterable, context items)."""
    if isinstance(stmt, ast.If) or isinstance(stmt, ast.While):
        yield stmt.test
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        yield stmt.iter
        yield stmt.target
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            yield item.context_expr
            if item.optional_vars is not None:
                yield item.optional_vars
    elif isinstance(stmt, ast.Try):
        return
    else:
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                yield child


class _Builder:
    def __init__(self, func: ast.AST) -> None:
        self.cfg = CFG(func)
        # (continue_target, break_target) per enclosing loop
        self.loops: list[tuple[Block, Block]] = []
        # handler-entry blocks of enclosing try statements; every block
        # built under a try body is wired to these afterwards
        self.handler_stack: list[list[Block]] = []

    # ------------------------------------------------------------------ #
    def build(self) -> CFG:
        cur = self.cfg.new_block("body")
        self.cfg.add_edge(self.cfg.entry, cur)
        end = self.stmts(self.cfg.func.body, cur)
        if end is not None:
            self.cfg.add_edge(end, self.cfg.exit)
        return self.cfg

    def record(self, stmt: ast.stmt, block: Block) -> None:
        block.stmts.append(stmt)
        self.cfg.block_of[stmt] = block

    def stmts(self, body: list[ast.stmt], cur: Block | None) -> Block | None:
        """Thread ``body`` through blocks; ``None`` means flow terminated."""
        for s in body:
            if cur is None:
                cur = self.cfg.new_block("unreachable")
            cur = self.stmt(s, cur)
        return cur

    # ------------------------------------------------------------------ #
    def stmt(self, s: ast.stmt, cur: Block) -> Block | None:
        cfg = self.cfg
        # any statement evaluated under a try body may transfer to handlers
        for handlers in self.handler_stack:
            for h in handlers:
                cfg.add_edge(cur, h)

        if isinstance(s, ast.If):
            self.record(s, cur)
            after = cfg.new_block("if.after")
            then = cfg.new_block("if.then")
            cfg.add_edge(cur, then)
            then_end = self.stmts(s.body, then)
            if then_end is not None:
                cfg.add_edge(then_end, after)
            if s.orelse:
                els = cfg.new_block("if.else")
                cfg.add_edge(cur, els)
                els_end = self.stmts(s.orelse, els)
                if els_end is not None:
                    cfg.add_edge(els_end, after)
            else:
                cfg.add_edge(cur, after)
            return after if after.preds else None

        if isinstance(s, (ast.While, ast.For, ast.AsyncFor)):
            header = cfg.new_block("loop.header")
            cfg.add_edge(cur, header)
            self.record(s, header)
            after = cfg.new_block("loop.after")
            body = cfg.new_block("loop.body")
            cfg.add_edge(header, body)
            self.loops.append((header, after))
            body_end = self.stmts(s.body, body)
            self.loops.pop()
            if body_end is not None:
                cfg.add_edge(body_end, header)
            if s.orelse:
                els = cfg.new_block("loop.else")
                cfg.add_edge(header, els)
                els_end = self.stmts(s.orelse, els)
                if els_end is not None:
                    cfg.add_edge(els_end, after)
            else:
                cfg.add_edge(header, after)
            return after

        if isinstance(s, ast.Try):
            self.record(s, cur)
            body = cfg.new_block("try.body")
            cfg.add_edge(cur, body)
            handler_entries = [
                cfg.new_block(f"except.{i}") for i in range(len(s.handlers))
            ]
            after = cfg.new_block("try.after")
            self.handler_stack.append(handler_entries)
            body_end = self.stmts(s.body, body)
            self.handler_stack.pop()
            if s.orelse:  # runs only when the body raised nothing
                body_end = self.stmts(s.orelse, body_end)
            ends: list[Block] = []
            if body_end is not None:
                ends.append(body_end)
            for h_entry, handler in zip(handler_entries, s.handlers):
                h_end = self.stmts(handler.body, h_entry)
                if h_end is not None:
                    ends.append(h_end)
                # a handler may re-raise past us
                cfg.add_edge(h_entry, cfg.exit)
            if s.finalbody:
                fin = cfg.new_block("finally")
                for e in ends:
                    cfg.add_edge(e, fin)
                # the exceptional path also runs finally before unwinding
                if not handler_entries:
                    cfg.add_edge(body, fin)
                fin_end = self.stmts(s.finalbody, fin)
                if fin_end is None:
                    return None
                cfg.add_edge(fin_end, after)
            else:
                for e in ends:
                    cfg.add_edge(e, after)
            return after if after.preds else None

        if isinstance(s, (ast.With, ast.AsyncWith)):
            self.record(s, cur)
            return self.stmts(s.body, cur)

        if isinstance(s, ast.Return):
            self.record(s, cur)
            cfg.add_edge(cur, cfg.exit)
            return None

        if isinstance(s, ast.Raise):
            self.record(s, cur)
            cfg.add_edge(cur, cfg.exit)
            return None

        if isinstance(s, ast.Break):
            self.record(s, cur)
            if self.loops:
                cfg.add_edge(cur, self.loops[-1][1])
            return None

        if isinstance(s, ast.Continue):
            self.record(s, cur)
            if self.loops:
                cfg.add_edge(cur, self.loops[-1][0])
            return None

        if isinstance(s, ast.Match):
            self.record(s, cur)
            after = cfg.new_block("match.after")
            for i, case in enumerate(s.cases):
                arm = cfg.new_block(f"match.{i}")
                cfg.add_edge(cur, arm)
                arm_end = self.stmts(case.body, arm)
                if arm_end is not None:
                    cfg.add_edge(arm_end, after)
            cfg.add_edge(cur, after)  # no case may match
            return after

        self.record(s, cur)
        return cur


def build_cfg(func: ast.AST) -> CFG:
    """CFG of one ``FunctionDef`` / ``AsyncFunctionDef``."""
    if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        raise TypeError(f"build_cfg wants a function node, got {type(func)}")
    return _Builder(func).build()
