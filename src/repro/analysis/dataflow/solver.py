"""Worklist fixpoint solver over a generic lattice.

The passes express themselves as forward dataflow problems: a *state*
flows along CFG edges, blocks transform it with a *transfer* function,
and merge points combine incoming states with a *join*.  The solver is
agnostic to the state representation -- anything with a join and an
equality works -- which is what lets the escape pass (sets of allocation
sites), the dtype pass (variable -> bit-width maps) and the span-protocol
pass (variable -> open/closed) share it.

States must be treated as immutable by transfer functions: return a new
object, never mutate the argument.  ``None`` is reserved by the solver to
mean "edge not reached yet" and is the identity of every join.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.analysis.dataflow.cfg import CFG, Block

__all__ = ["fixpoint", "join_env", "MAX_ITERATIONS"]

#: hard cap on solver sweeps; a well-formed finite lattice converges far
#: earlier, so hitting this indicates a non-monotone transfer function
MAX_ITERATIONS = 10_000

Transfer = Callable[[Block, Any], Any]
Join = Callable[[Any, Any], Any]


def fixpoint(
    cfg: CFG,
    transfer: Transfer,
    entry_state: Any,
    join: Join,
    *,
    eq: Callable[[Any, Any], bool] | None = None,
) -> tuple[dict[int, Any], dict[int, Any]]:
    """Solve a forward dataflow problem to fixpoint.

    Returns ``(ins, outs)``: the state at entry / exit of each block id.
    Unreached blocks keep ``None``.  Raises ``RuntimeError`` when the
    iteration cap is hit (non-monotone transfer or unbounded lattice).
    """
    equal = eq if eq is not None else (lambda a, b: a == b)
    ins: dict[int, Any] = {b.bid: None for b in cfg.blocks}
    outs: dict[int, Any] = {b.bid: None for b in cfg.blocks}
    ins[cfg.entry.bid] = entry_state
    outs[cfg.entry.bid] = entry_state

    worklist = [b for b in cfg.rpo() if b is not cfg.entry]
    queued = {b.bid for b in worklist}
    steps = 0
    while worklist:
        steps += 1
        if steps > MAX_ITERATIONS:
            raise RuntimeError(
                f"dataflow solver did not converge after {MAX_ITERATIONS} "
                f"steps in {getattr(cfg.func, 'name', '<fn>')}"
            )
        block = worklist.pop(0)
        queued.discard(block.bid)
        state: Any = None
        for p in block.preds:
            o = outs[p.bid]
            if o is None:
                continue
            state = o if state is None else join(state, o)
        if state is None:
            continue  # unreachable so far
        ins[block.bid] = state
        new_out = transfer(block, state)
        if outs[block.bid] is None or not equal(outs[block.bid], new_out):
            outs[block.bid] = new_out
            for s in block.succs:
                if s.bid not in queued and s is not cfg.entry:
                    worklist.append(s)
                    queued.add(s.bid)
    return ins, outs


def join_env(a: dict, b: dict, join_val: Join | None = None) -> dict:
    """Pointwise join of two variable environments.

    A variable missing on either side is unknown after the merge and is
    dropped.  With no ``join_val``, differing values also drop (the
    two-point "same or unknown" lattice the dtype pass uses); otherwise
    ``join_val`` merges them and ``None`` results drop.
    """
    out = {}
    for k, va in a.items():
        if k not in b:
            continue
        vb = b[k]
        if va == vb:
            out[k] = va
        elif join_val is not None:
            merged = join_val(va, vb)
            if merged is not None:
                out[k] = merged
    return out
