"""Lightweight intra-module call graph with per-function summaries.

The escape analysis is intra-procedural; this module adds exactly one
level of inter-procedural precision: when function ``f`` passes a buffer
to module-local function ``g``, the verdict for the buffer uses ``g``'s
*summary* -- which of ``g``'s parameters escape / reach the ledger --
instead of writing the call off as unknown.

Summaries are themselves computed intra-procedurally (a summary
computation never consults other summaries), which keeps the whole
scheme one level deep, cycle-proof, and cheap: each function is analyzed
at most twice per lint run (once for its own findings, once as a callee).
"""

from __future__ import annotations

import ast

from repro.analysis.dataflow.escape import analyze_function

__all__ = ["ModuleSummaries", "call_edges"]


def _module_functions(mod) -> dict[str, ast.AST]:
    """Module-level functions by simple name (what a bare call resolves to)."""
    out: dict[str, ast.AST] = {}
    for node in mod.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out[node.name] = node
    return out


def call_edges(mod) -> dict[str, set[str]]:
    """Caller qualname -> called module-local function names."""
    local = _module_functions(mod)
    edges: dict[str, set[str]] = {}
    for node in ast.walk(mod.tree):
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Name) and node.func.id in local:
            edges.setdefault(mod.qualname(node), set()).add(node.func.id)
    return edges


class ModuleSummaries:
    """Summary provider handed to :func:`analyze_function`.

    ``param_escape(name)`` returns ``None`` for names that are not
    module-local functions (imports, builtins, methods), else::

        {"params": [arg names in order],
         "escape": {arg name: "local"|"escapes"|"unknown"|"registered"}}
    """

    def __init__(self, mod) -> None:
        self.mod = mod
        self.functions = _module_functions(mod)
        self._cache: dict[str, dict] = {}

    def param_escape(self, name: str) -> dict | None:
        fn = self.functions.get(name)
        if fn is None:
            return None
        if name not in self._cache:
            # summaries are intra-procedural: no nested summary lookups
            result = analyze_function(self.mod, fn, summaries=None)
            args = fn.args
            params = [
                a.arg for a in (
                    *args.posonlyargs, *args.args, *args.kwonlyargs,
                    *filter(None, (args.vararg, args.kwarg)),
                )
            ]
            self._cache[name] = {
                "params": params,
                "escape": result.param_escape,
            }
        return self._cache[name]
