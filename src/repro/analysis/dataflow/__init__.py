"""Intra-procedural dataflow framework for the ``repro lint`` passes.

Three layers (DESIGN.md section 13):

* :mod:`~repro.analysis.dataflow.cfg` -- per-function control-flow
  graphs: basic blocks, branch/loop/try edges, dominators;
* :mod:`~repro.analysis.dataflow.solver` -- a worklist fixpoint solver
  over a caller-supplied lattice (state + transfer + join);
* :mod:`~repro.analysis.dataflow.escape` /
  :mod:`~repro.analysis.dataflow.callgraph` -- buffer lifetime and
  escape analysis with one level of inter-procedural summaries.

The flow-sensitive passes (``buffer-lifetime`` BL001-BL003, the
``int-width`` dtype lattice, ``phase-discipline`` PH004) are built on
these pieces; new passes should be too -- see the pass-authoring guide in
DESIGN.md section 13.
"""

from repro.analysis.dataflow.cfg import CFG, Block, build_cfg, header_exprs
from repro.analysis.dataflow.escape import (
    ESCAPES,
    LOCAL,
    REGISTERED,
    TRACKED_FOR,
    UNKNOWN,
    AllocSite,
    FunctionEscape,
    Verdict,
    analyze_function,
)
from repro.analysis.dataflow.callgraph import ModuleSummaries, call_edges
from repro.analysis.dataflow.solver import fixpoint, join_env

__all__ = [
    "CFG",
    "Block",
    "build_cfg",
    "header_exprs",
    "fixpoint",
    "join_env",
    "analyze_function",
    "AllocSite",
    "FunctionEscape",
    "Verdict",
    "ModuleSummaries",
    "call_edges",
    "TRACKED_FOR",
    "LOCAL",
    "ESCAPES",
    "UNKNOWN",
    "REGISTERED",
]
