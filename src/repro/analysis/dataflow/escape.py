"""Flow-sensitive buffer lifetime / escape analysis.

Answers, per function, the question the ``buffer-lifetime`` pass asks:
*does this allocation die inside its phase, or does it escape into a
longer-lived structure?*  An :class:`AllocSite` is every raw
``np.empty/zeros/ones/full`` / ``bytearray`` call (and, for call-graph
summaries, every function parameter).  The analysis tracks which local
names may alias each site (a may-alias set per variable, joined by union
at CFG merges, solved to fixpoint) and folds the observable *events*:

* ``return`` / ``yield`` of an alias, storing an alias into an attribute
  or a known container, capture by a nested function, ``global`` /
  ``nonlocal`` -- definite **escapes**;
* passing an alias to an unknown callee or storing it into an object of
  unknown kind -- **unknown** (cannot prove locality);
* an alias reaching the ledger (``.alloc``/``.touch``/``.resize``,
  ``tracked_*``, ``_charge*``) -- **registered** (the ledger sees it, so
  lifetime no longer matters);
* none of the above on any path -- **local**: the buffer provably dies
  with the function frame, i.e. before the enclosing phase exits.

Numpy calls (``np.cumsum(buf)``, ``buf.astype(...)``) never retain their
arguments and are safe; subscript stores into arrays copy *values*, not
references, so ``out[mask] = buf`` does not alias.  Module-local callees
are resolved through :mod:`~repro.analysis.dataflow.callgraph` summaries
(one inter-procedural level).  Buffers held only by *local* containers
(``chunks.append(buf)``) inherit the container's own fate, one level of
indirection deep: the buffer escapes only when ``chunks`` itself does.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.dataflow.cfg import build_cfg, header_exprs
from repro.analysis.dataflow.solver import fixpoint

__all__ = [
    "AllocSite",
    "Verdict",
    "FunctionEscape",
    "analyze_function",
    "ALLOC_FUNCS",
    "TRACKED_FOR",
    "LOCAL",
    "ESCAPES",
    "UNKNOWN",
    "REGISTERED",
]

#: raw allocators the pass watches
ALLOC_FUNCS = ("empty", "zeros", "ones", "full")

#: auto-fix hint: raw allocator -> repro.memory.scratch constructor
TRACKED_FOR = {
    "empty": "tracked_empty",
    "zeros": "tracked_zeros",
    "ones": "tracked_ones",
    "full": "tracked_full",
}

_LEDGER_METHODS = ("alloc", "touch", "resize", "free")

#: builtins that never retain a reference to their arguments (value reads
#: and shallow copies; arrays hold scalars, so copying elements is safe)
_SAFE_CALLEES = frozenset(
    {"len", "int", "float", "bool", "str", "repr", "abs", "min", "max",
     "sum", "sorted", "print", "isinstance", "range", "enumerate", "id",
     "hash", "memoryview", "bytes", "format", "round", "divmod", "list",
     "tuple", "set", "dict", "zip", "map", "filter", "reversed", "iter",
     "next", "all", "any"}
)

_CONTAINER_METHODS = ("append", "extend", "insert", "add", "update",
                      "setdefault", "appendleft", "push")

# verdict statuses, in priority order (highest wins)
REGISTERED = "registered"
ESCAPES = "escapes"
UNKNOWN = "unknown"
LOCAL = "local"
_PRIORITY = {REGISTERED: 3, ESCAPES: 2, UNKNOWN: 1, LOCAL: 0}


@dataclass
class AllocSite:
    sid: int
    kind: str  # "empty" | "zeros" | ... | "bytearray" | "param"
    line: int
    node: ast.AST | None = None
    var: str | None = None  # first name bound to the site, if any
    param: str | None = None  # parameter name for kind == "param"


@dataclass
class Verdict:
    site: AllocSite
    status: str = LOCAL
    how: str = ""  # "return" / "attribute-store" / callee detail / ...
    #: local container variables holding a reference to this site
    held_by: set[str] = field(default_factory=set)

    def raise_to(self, status: str, how: str) -> None:
        if _PRIORITY[status] > _PRIORITY[self.status]:
            self.status = status
            self.how = how


@dataclass
class FunctionEscape:
    """Result of analyzing one function."""

    sites: list[AllocSite]  # allocation sites only (no params)
    verdicts: dict[int, Verdict]
    #: parameter name -> escape status (the call-graph summary)
    param_escape: dict[str, str]

    def verdict_for(self, node: ast.AST) -> Verdict | None:
        for s in self.sites:
            if s.node is node:
                return self.verdicts[s.sid]
        return None


class _Analysis:
    def __init__(self, mod, fn: ast.AST, summaries) -> None:
        self.mod = mod
        self.fn = fn
        self.summaries = summaries  # callgraph provider or None
        self.sites: list[AllocSite] = []
        self.by_node: dict[ast.AST, int] = {}
        self.verdicts: dict[int, Verdict] = {}
        # variable -> "array" | "container" | None, from its assignments
        self.var_kind: dict[str, str | None] = {}
        self.param_sites: dict[str, int] = {}
        self._collect_sites()
        self._infer_var_kinds()

    def _mine(self, node: ast.AST) -> bool:
        return self.mod.enclosing_function(node) is self.fn

    # ------------------------------------------------------------------ #
    # site discovery
    # ------------------------------------------------------------------ #
    def _new_site(self, **kw) -> AllocSite:
        site = AllocSite(sid=len(self.sites), **kw)
        self.sites.append(site)
        self.verdicts[site.sid] = Verdict(site)
        return site

    def _collect_sites(self) -> None:
        args = self.fn.args
        for a in (
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *filter(None, (args.vararg, args.kwarg)),
        ):
            site = self._new_site(kind="param", line=self.fn.lineno,
                                  param=a.arg)
            self.param_sites[a.arg] = site.sid
        for node in ast.walk(self.fn):
            if not isinstance(node, ast.Call) or not self._mine(node):
                continue
            kind = self.mod.is_np_call(node, ALLOC_FUNCS)
            if kind is None:
                if isinstance(node.func, ast.Name) and \
                        node.func.id == "bytearray":
                    kind = "bytearray"
                else:
                    continue
            site = self._new_site(kind=kind, line=node.lineno, node=node)
            self.by_node[node] = site.sid

    def _infer_var_kinds(self) -> None:
        """Object kind per name from its assignments (conflicts -> None)."""
        for node in ast.walk(self.fn):
            if not isinstance(node, ast.Assign) or not self._mine(node):
                continue
            if len(node.targets) != 1 or \
                    not isinstance(node.targets[0], ast.Name):
                continue
            name = node.targets[0].id
            kind = self._value_kind(node.value)
            if name not in self.var_kind:
                self.var_kind[name] = kind
            elif self.var_kind[name] != kind:
                self.var_kind[name] = None

    def _value_kind(self, v: ast.AST) -> str | None:
        if isinstance(v, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)):
            return "container"
        if isinstance(v, ast.Call):
            if isinstance(v.func, ast.Name):
                if v.func.id in ("deque", "defaultdict", "Counter",
                                 "OrderedDict"):
                    return "container"
                if v.func.id in ("list", "dict", "set"):
                    return "container"
                if v.func.id.startswith("tracked_"):
                    return "array"
            if self.mod.is_np_call(v, ALLOC_FUNCS + (
                    "arange", "asarray", "array", "full_like", "zeros_like",
                    "empty_like", "copy", "concatenate", "repeat", "where",
                    "cumsum", "sort", "unique", "argsort", "searchsorted",
                    "diff", "frombuffer")) is not None:
                return "array"
            if isinstance(v.func, ast.Attribute) and \
                    v.func.attr in ("astype", "copy", "reshape", "ravel"):
                return "array"
        return None

    # ------------------------------------------------------------------ #
    # alias dataflow
    # ------------------------------------------------------------------ #
    def run(self) -> FunctionEscape:
        cfg = build_cfg(self.fn)
        entry_env = {
            name: frozenset((sid,)) for name, sid in self.param_sites.items()
        }

        def transfer(block, env):
            for stmt in block.stmts:
                env = self._apply_stmt(stmt, env)
            return env

        def join(a, b):
            out = dict(a)
            for k, v in b.items():
                out[k] = out.get(k, frozenset()) | v
            return out

        ins, _ = fixpoint(cfg, transfer, entry_env, join)

        # replay each block from its solved in-state, folding events
        for block in cfg.blocks:
            env = ins[block.bid]
            if env is None:
                env = {}  # unreachable: still scan, with empty aliases
            for stmt in block.stmts:
                self._scan_events(stmt, env)
                env = self._apply_stmt(stmt, env)

        self._resolve_containers()
        param_escape = {
            s.param: self.verdicts[s.sid].status
            for s in self.sites if s.kind == "param"
        }
        return FunctionEscape(
            sites=[s for s in self.sites if s.kind != "param"],
            verdicts=self.verdicts,
            param_escape=param_escape,
        )

    # -- transfer ------------------------------------------------------- #
    def _apply_stmt(self, stmt: ast.AST, env: dict) -> dict:
        if isinstance(stmt, ast.Assign):
            new = dict(env)
            for t in stmt.targets:
                self._bind_target(t, stmt.value, new, env)
            return new
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None and \
                isinstance(stmt.target, ast.Name):
            new = dict(env)
            new[stmt.target.id] = self._sites_of(stmt.value, env)
            return new
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            new = dict(env)
            for n in ast.walk(stmt.target):
                if isinstance(n, ast.Name):
                    new.pop(n.id, None)
            return new
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            new = dict(env)
            for item in stmt.items:
                if item.optional_vars is not None:
                    for n in ast.walk(item.optional_vars):
                        if isinstance(n, ast.Name):
                            new.pop(n.id, None)
            return new
        return env

    def _bind_target(self, t, value, new, env) -> None:
        if isinstance(t, ast.Name):
            sites = self._sites_of(value, env)
            new[t.id] = sites
            for sid in sites:
                if self.sites[sid].var is None:
                    self.sites[sid].var = t.id
        elif isinstance(t, (ast.Tuple, ast.List)):
            elts = (
                value.elts
                if isinstance(value, (ast.Tuple, ast.List))
                and len(value.elts) == len(t.elts)
                else None
            )
            for i, sub_t in enumerate(t.elts):
                if elts is not None:
                    self._bind_target(sub_t, elts[i], new, env)
                else:
                    for n in ast.walk(sub_t):
                        if isinstance(n, ast.Name):
                            new[n.id] = frozenset()

    def _sites_of(self, expr: ast.AST, env: dict) -> frozenset:
        """May-alias set of the *value* of ``expr`` (reference positions)."""
        if isinstance(expr, ast.Name):
            return env.get(expr.id, frozenset())
        if expr in self.by_node:
            return frozenset((self.by_node[expr],))
        if isinstance(expr, ast.IfExp):
            return self._sites_of(expr.body, env) | \
                self._sites_of(expr.orelse, env)
        if isinstance(expr, ast.Starred):
            return self._sites_of(expr.value, env)
        if isinstance(expr, ast.NamedExpr):
            return self._sites_of(expr.value, env)
        return frozenset()

    def _value_sites(self, expr: ast.AST, env: dict) -> frozenset:
        """Aliases in reference position inside a returned/stored value:
        names, direct allocations, and container/tuple literals thereof.
        ``len(buf)`` or ``buf.nbytes`` are value reads, not references."""
        out = self._sites_of(expr, env)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            for e in expr.elts:
                out |= self._value_sites(e, env)
        elif isinstance(expr, ast.Dict):
            for e in (*expr.keys, *expr.values):
                if e is not None:
                    out |= self._value_sites(e, env)
        elif isinstance(expr, ast.IfExp):
            out |= self._value_sites(expr.body, env)
            out |= self._value_sites(expr.orelse, env)
        elif isinstance(expr, ast.Starred):
            out |= self._value_sites(expr.value, env)
        return out

    # -- events --------------------------------------------------------- #
    def _raise_sites(self, sids, status, how) -> None:
        for sid in sids:
            self.verdicts[sid].raise_to(status, how)

    def _scan_events(self, stmt: ast.AST, env: dict) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            loads = {n.id for n in ast.walk(stmt) if isinstance(n, ast.Name)}
            for name in loads & env.keys():
                self._raise_sites(env[name], ESCAPES, "closure-capture")
            return  # the nested body is its own analysis scope
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            self._raise_sites(
                self._value_sites(stmt.value, env), ESCAPES, "return"
            )
        if isinstance(stmt, (ast.Global, ast.Nonlocal)):
            for name in stmt.names:
                self._raise_sites(
                    env.get(name, frozenset()), ESCAPES, "global"
                )
        if isinstance(stmt, ast.Assign):
            for t in stmt.targets:
                self._scan_store(t, stmt.value, env)
        if isinstance(stmt, ast.AugAssign):
            self._scan_store(stmt.target, stmt.value, env)

        for expr in header_exprs(stmt):
            for node in ast.walk(expr):
                if isinstance(node, ast.Call):
                    self._scan_call(node, env)
                elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                    if node.value is not None:
                        self._raise_sites(
                            self._value_sites(node.value, env),
                            ESCAPES, "yield",
                        )
                elif isinstance(node, ast.Lambda):
                    loads = {
                        n.id for n in ast.walk(node.body)
                        if isinstance(n, ast.Name)
                    }
                    for name in loads & env.keys():
                        self._raise_sites(
                            env[name], ESCAPES, "closure-capture"
                        )
                elif isinstance(node, (ast.ListComp, ast.SetComp,
                                       ast.GeneratorExp)):
                    if isinstance(node.elt, ast.Name):
                        self._raise_sites(
                            env.get(node.elt.id, frozenset()),
                            UNKNOWN, "comprehension element",
                        )

    def _scan_store(self, target, value, env) -> None:
        """An assignment: does the stored value make a buffer escape?"""
        sites = self._value_sites(value, env)
        if isinstance(target, ast.Name):
            # container literal: the buffer is now held by the local
            if sites and isinstance(
                value, (ast.Tuple, ast.List, ast.Set, ast.Dict)
            ):
                for sid in sites:
                    self.verdicts[sid].held_by.add(target.id)
            return
        if not sites:
            return
        if isinstance(target, ast.Attribute):
            self._raise_sites(sites, ESCAPES, "attribute-store")
        elif isinstance(target, ast.Subscript):
            self._store_into(target.value, sites, env)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for t in target.elts:
                self._scan_store(t, value, env)

    def _store_into(self, recv: ast.AST, sites, env) -> None:
        """A reference stored into ``recv``: array copy, container, or ?"""
        if isinstance(recv, ast.Name):
            if env.get(recv.id) or self.var_kind.get(recv.id) == "array":
                return  # numpy subscript stores copy values, no aliasing
            if recv.id in self.param_sites:
                self._raise_sites(
                    sites, ESCAPES, f"stored into parameter {recv.id!r}"
                )
                return
            if self.var_kind.get(recv.id) == "container":
                for sid in sites:
                    self.verdicts[sid].held_by.add(recv.id)
                return
        if isinstance(recv, ast.Attribute):
            self._raise_sites(
                sites, ESCAPES, f"stored into attribute {recv.attr!r}"
            )
            return
        self._raise_sites(sites, UNKNOWN, "stored into object of unknown kind")

    def _scan_call(self, call: ast.Call, env: dict) -> None:
        f = call.func
        arg_exprs = call.args + [kw.value for kw in call.keywords]
        arg_sites = frozenset()
        for a in arg_exprs:
            arg_sites |= self._value_sites(a, env)
        # sites referenced via attribute reads (buf.nbytes) count as
        # ledger evidence but are not escaping references
        attr_sites = frozenset()
        for a in arg_exprs:
            for n in ast.walk(a):
                if isinstance(n, ast.Attribute) and \
                        isinstance(n.value, ast.Name):
                    attr_sites |= env.get(n.value.id, frozenset())

        # 1. ledger / tracked-constructor / charge-helper evidence
        if isinstance(f, ast.Attribute) and f.attr in _LEDGER_METHODS:
            self._raise_sites(arg_sites | attr_sites, REGISTERED, f.attr)
            return
        fname = f.id if isinstance(f, ast.Name) else (
            f.attr if isinstance(f, ast.Attribute) else None
        )
        if fname and (fname.startswith("tracked_")
                      or fname.startswith("_charge")):
            self._raise_sites(arg_sites | attr_sites, REGISTERED, fname)
            return
        if not arg_sites:
            return

        # 2. numpy API and methods on known arrays never retain references
        if self._is_numpy_rooted(f):
            return
        if isinstance(f, ast.Attribute):
            if f.attr in _CONTAINER_METHODS:
                self._store_into(f.value, arg_sites, env)
                return
            if isinstance(f.value, ast.Name) and (
                env.get(f.value.id)
                or self.var_kind.get(f.value.id) == "array"
            ):
                return  # method on a buffer (searchsorted/fill/...): safe
        if isinstance(f, ast.Name):
            if f.id in _SAFE_CALLEES:
                return
            # 3. module-local callee: use its one-level summary
            summary = (
                self.summaries.param_escape(f.id) if self.summaries else None
            )
            if summary is not None:
                self._apply_summary(call, summary, env)
                return
        self._raise_sites(
            arg_sites, UNKNOWN,
            f"passed to unknown callee {fname or '<expr>'!r}",
        )

    def _is_numpy_rooted(self, f: ast.AST) -> bool:
        node = f
        while isinstance(node, ast.Attribute):
            node = node.value
        return isinstance(node, ast.Name) and node.id in self.mod.np_aliases

    def _apply_summary(self, call, summary, env) -> None:
        names = summary["params"]
        callee = getattr(call.func, "id", "<callee>")
        pairs: list[tuple[frozenset, str]] = []
        for i, a in enumerate(call.args):
            status = summary["escape"].get(names[i]) if i < len(names) \
                else UNKNOWN
            pairs.append((self._value_sites(a, env), status or UNKNOWN))
        for kw in call.keywords:
            pairs.append((
                self._value_sites(kw.value, env),
                summary["escape"].get(kw.arg, UNKNOWN) or UNKNOWN,
            ))
        for sites, status in pairs:
            if not sites or status == LOCAL:
                continue
            if status == REGISTERED:
                self._raise_sites(
                    sites, REGISTERED, f"registered inside {callee!r}"
                )
            elif status == ESCAPES:
                self._raise_sites(
                    sites, ESCAPES, f"escapes inside callee {callee!r}"
                )
            else:
                self._raise_sites(
                    sites, UNKNOWN, f"unresolved inside callee {callee!r}"
                )

    # -- container indirection ------------------------------------------ #
    def _resolve_containers(self) -> None:
        """A buffer held only by local containers inherits their fate."""
        fates: dict[str, tuple[str, str]] = {}
        for v in self.verdicts.values():
            for name in v.held_by:
                if name not in fates:
                    fates[name] = self._container_fate(name)
        for v in self.verdicts.values():
            if not v.held_by or _PRIORITY[v.status] >= _PRIORITY[ESCAPES]:
                continue
            for name in v.held_by:
                status, how = fates[name]
                if status != LOCAL:
                    v.raise_to(status, how)

    def _in_ref_position(self, expr: ast.AST, name: str) -> bool:
        """Is ``name`` used as a *reference* in a returned/stored value
        (directly, or inside a tuple/list/dict literal or IfExp arm)?
        ``sum(x[0] for x in name)`` only reads values and does not count."""
        if isinstance(expr, ast.Name):
            return expr.id == name
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            return any(self._in_ref_position(e, name) for e in expr.elts)
        if isinstance(expr, ast.Dict):
            return any(
                e is not None and self._in_ref_position(e, name)
                for e in (*expr.keys, *expr.values)
            )
        if isinstance(expr, ast.IfExp):
            return self._in_ref_position(expr.body, name) or \
                self._in_ref_position(expr.orelse, name)
        if isinstance(expr, ast.Starred):
            return self._in_ref_position(expr.value, name)
        return False

    def _container_fate(self, name: str) -> tuple[str, str]:
        """Does the local container ``name`` itself leave the function?"""
        for node in ast.walk(self.fn):
            if not self._mine(node):
                continue
            if isinstance(node, ast.Return) and node.value is not None:
                if self._in_ref_position(node.value, name):
                    return (ESCAPES, f"container {name!r} is returned")
            if isinstance(node, ast.Assign):
                stored = any(
                    isinstance(t, (ast.Attribute, ast.Subscript))
                    for t in node.targets
                )
                if stored and self._in_ref_position(node.value, name):
                    return (ESCAPES, f"container {name!r} is stored away")
            if isinstance(node, ast.Call):
                fn_name = getattr(node.func, "id", None)
                if fn_name in _SAFE_CALLEES or self._is_numpy_rooted(
                        node.func):
                    continue
                if (
                    isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == name
                ):
                    continue  # chunks.append(...): not an escape of chunks
                for a in node.args + [kw.value for kw in node.keywords]:
                    if any(
                        isinstance(n, ast.Name) and n.id == name
                        for n in ast.walk(a)
                    ):
                        return (
                            UNKNOWN, f"container {name!r} passed to a callee"
                        )
        return (LOCAL, "")


def analyze_function(mod, fn: ast.AST, summaries=None) -> FunctionEscape:
    """Escape-analyze one function of ``mod``.

    ``summaries`` is an optional call-graph summary provider exposing
    ``param_escape(name) -> {"params": [...], "escape": {...}} | None``.
    """
    return _Analysis(mod, fn, summaries).run()
