"""Suppression baseline: accepted findings committed alongside the code.

``repro lint --gate`` must be adoptable on a codebase with pre-existing
findings without drowning CI in noise, so the gate compares against a
committed baseline (``analysis/baseline.json``) and fails only on *new*
findings.  The baseline stores line-insensitive fingerprints
(``pass|file|code|subject``, see :func:`~repro.analysis.core.fingerprint`)
with occurrence counts: moving code around does not churn it, but adding a
second undeclared access of the same shape does trip the gate.

Workflow:

* a finding is *fixed* -> regenerate with ``repro lint --update-baseline``
  (the stale entry disappears; the gate also reports stale entries so
  fixed findings cannot silently linger);
* a finding is *accepted* -> either add an inline
  ``# repro-lint: ignore[...]`` with a justification (preferred, visible at
  the site) or record it here via ``--update-baseline``.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.analysis.core import Finding, LintReport, fingerprint

VERSION = 1


def load(path: Path) -> dict[str, int]:
    """Fingerprint -> accepted count; empty when no baseline exists."""
    if not path.exists():
        return {}
    data = json.loads(path.read_text())
    if data.get("version") != VERSION:
        raise ValueError(
            f"baseline {path} has version {data.get('version')!r}; "
            f"this tool writes version {VERSION}"
        )
    return {str(k): int(v) for k, v in data.get("findings", {}).items()}


def save(path: Path, findings: list[Finding]) -> None:
    counts = Counter(fingerprint(f) for f in findings)
    payload = {
        "version": VERSION,
        "comment": (
            "Accepted repro-lint findings. Regenerate with "
            "`repro lint --update-baseline`; entries are "
            "pass|file|code|subject fingerprints -> count."
        ),
        "findings": {k: counts[k] for k in sorted(counts)},
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")


def apply(findings: list[Finding], accepted: dict[str, int]) -> LintReport:
    """Split findings into baselined and new; record stale entries."""
    report = LintReport(findings=list(findings))
    budget = dict(accepted)
    for f in findings:
        fp = fingerprint(f)
        if budget.get(fp, 0) > 0:
            budget[fp] -= 1
            report.baselined += 1
        else:
            report.new.append(f)
    seen = {fingerprint(f) for f in findings}
    report.stale_baseline = sorted(fp for fp in accepted if fp not in seen)
    return report
