"""Pass 5: flow-sensitive buffer lifetime / escape analysis (BL001-BL003).

The syntactic ``untracked-alloc`` pass (UA001) can say *this function
allocated without ledger evidence*; it cannot say what the right fix is.
This pass runs the :mod:`repro.analysis.dataflow` escape analysis over
every function in the accounting-critical subpackages and classifies each
raw allocation:

* ``BL001`` (warning) -- the buffer is **phase-local**: it provably dies
  with the function frame (before the enclosing ``tracker.phase`` / span
  block exits) and never escapes via return, attribute store, container,
  or closure.  The finding carries the auto-fix: the matching
  ``tracked_*`` constructor from :mod:`repro.memory.scratch`.
* ``BL002`` (error) -- the buffer **escapes** (returned, stored into an
  attribute or escaping container, captured by a closure) and never
  reaches the ledger.  Escaping bytes live past the phase, so the
  tracker's per-phase peaks are silently wrong; register the buffer
  (``tracked_*`` works for escapees too -- the charge follows the array's
  lifetime via ``weakref.finalize``) or justify a suppression.
* ``BL003`` (warning) -- escape status is **unknown** (e.g. passed to a
  callee outside the module's call graph); prove it or register it.

Allocations whose aliases reach ``MemoryTracker.alloc``/``touch``/
``resize``, a ``tracked_*`` constructor, or a ``_charge*`` helper are
ledger-registered and never reported.  The UA001 small-constant
exemption applies unchanged.
"""

from __future__ import annotations

import ast

from repro.analysis.allocations import (
    EXCLUDE,
    SMALL_LIMIT,
    _const_elements,
    _in_scope,
    _scope_covered,
)
from repro.analysis.core import Finding, Module
from repro.analysis.dataflow import (
    ESCAPES,
    LOCAL,
    REGISTERED,
    TRACKED_FOR,
    ModuleSummaries,
    analyze_function,
)

PASS_ID = "buffer-lifetime"


def _hint(kind: str) -> str:
    ctor = TRACKED_FOR.get(kind)
    if ctor is not None:
        return (
            f"auto-fix: replace with {ctor}(...) from repro.memory.scratch "
            "(same signature plus name=)"
        )
    return (
        "charge it via MemoryTracker.alloc/free (bytearray cannot be "
        "weakref-finalized by the scratch ledger)"
    )


def run(mod: Module) -> list[Finding]:
    if any(mod.rel.startswith(p) for p in EXCLUDE) or not _in_scope(mod.rel):
        return []
    findings: list[Finding] = []
    summaries = ModuleSummaries(mod)
    for fn in ast.walk(mod.tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        # honor the bulk-charge idiom: a function that shows ledger evidence
        # (tracker.alloc region charges, tracked_* calls, _charge helpers)
        # accounts its buffers at function granularity already; re-flagging
        # its sites per-buffer would push migrations that double-count
        if _scope_covered(mod, fn):
            continue
        result = analyze_function(mod, fn, summaries)
        for site in result.sites:
            if site.node is not None and isinstance(site.node, ast.Call):
                elems = _const_elements(site.node)
                if elems is not None and elems <= SMALL_LIMIT:
                    continue
            verdict = result.verdicts[site.sid]
            if verdict.status == REGISTERED:
                continue
            scope = mod.qualname(site.node)
            subject = f"{scope}:{site.kind}"
            if verdict.status == LOCAL:
                findings.append(
                    Finding(
                        PASS_ID,
                        "BL001",
                        "warning",
                        mod.rel,
                        site.line,
                        f"{site.kind}() in {scope} is phase-local (dies "
                        "before the enclosing phase exits, never escapes) "
                        f"but bypasses the ledger; {_hint(site.kind)}",
                        subject=subject,
                    )
                )
            elif verdict.status == ESCAPES:
                findings.append(
                    Finding(
                        PASS_ID,
                        "BL002",
                        "error",
                        mod.rel,
                        site.line,
                        f"{site.kind}() in {scope} escapes "
                        f"({verdict.how}) and never reaches the memory "
                        "ledger; escaping buffers must be registered "
                        "(tracked_* charges follow the array's lifetime)",
                        subject=subject,
                    )
                )
            else:
                findings.append(
                    Finding(
                        PASS_ID,
                        "BL003",
                        "warning",
                        mod.rel,
                        site.line,
                        f"cannot prove {site.kind}() in {scope} phase-local "
                        f"({verdict.how}); register it with the ledger or "
                        "suppress with a reason",
                        subject=subject,
                    )
                )
    return findings
