"""Pass 4: phase/span discipline (PH001-PH004).

The observability stack -- per-phase memory peaks, regression attribution,
the run database -- keys everything on phase names.  A span that invents a
new spelling silently falls out of every report, and a span entered by hand
(``__enter__`` / ``__exit__``) breaks the tracker's phase stack on the
error path.  This pass pins both down statically:

* ``PH001`` (error) -- a ``tracker.phase`` / ``ctx.phase`` / tracer
  ``span`` name that does not normalize (via :func:`~repro.obs.regress
  .attrib.normalize_phase`) to a member of :data:`~repro.obs.regress
  .attrib.KNOWN_PHASES`.
* ``PH002`` (error) -- a span/phase call not used directly as a context
  manager (assigned, entered manually, passed around).
* ``PH003`` (warning) -- a span/phase name the analyzer cannot resolve to
  literals (dynamic name), so PH001 cannot be checked.
* ``PH004`` (error) -- a manually-managed span that is not provably closed
  on **every** control-flow path: the span-protocol state machine (fresh ->
  open -> closed) is run over the function's CFG (:mod:`repro.analysis
  .dataflow`), and a span that may still be open at the exit block -- an
  early return, ``break`` or exception path skipping ``__exit__`` -- is an
  error.  PH002 flags manual span management *syntactically*; PH004 is the
  flow-sensitive complement that pinpoints the actual leak, so a manual
  span usually fires both.

Name resolution folds constants through one level of locals: plain string
assignments, two-armed literal conditionals (``a if c else b``) and
f-strings over those.  An unresolvable f-string hole directly after a
``...round`` / ``...level`` prefix is treated as a counter and checked with
``0`` substituted, since :func:`normalize_phase` strips those suffixes
anyway.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, Module, terminal_name
from repro.analysis.dataflow import Block, build_cfg, fixpoint, header_exprs
from repro.obs.regress.attrib import KNOWN_PHASES, normalize_phase

PASS_ID = "phase-discipline"

#: the files that *implement* spans, phases and their context managers
EXCLUDE = (
    "repro/obs/",
    "repro/memory/tracker.py",
    "repro/core/context.py",
    "repro/analysis/",
)


def _literal_env(mod: Module, fn: ast.AST | None) -> dict[str, set[str]]:
    """Names assigned only string literals (or literal conditionals) in
    scope, mapped to their possible values."""
    env: dict[str, set[str]] = {}
    roots = [mod.tree] if fn is None else [mod.tree, fn]
    seen_assign: dict[str, int] = {}
    for root in roots:
        for node in ast.walk(root):
            if not isinstance(node, ast.Assign):
                continue
            if root is mod.tree and mod.enclosing_function(node) is not None:
                continue  # function locals are out of module scope
            if root is fn and mod.enclosing_function(node) is not fn:
                continue  # nested functions' locals are out of fn scope
            for t in node.targets:
                if not isinstance(t, ast.Name):
                    continue
                vals = _literal_values(node.value)
                seen_assign[t.id] = seen_assign.get(t.id, 0) + 1
                if vals is None or seen_assign[t.id] > 1:
                    env.pop(t.id, None)  # reassigned or non-literal: unknown
                else:
                    env[t.id] = vals
    return env


def _literal_values(node: ast.AST) -> set[str] | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return {node.value}
    if isinstance(node, ast.IfExp):
        a = _literal_values(node.body)
        b = _literal_values(node.orelse)
        if a is not None and b is not None:
            return a | b
    return None


def _resolve_name(
    node: ast.AST, env: dict[str, set[str]]
) -> set[str] | None:
    """Possible values of a span-name expression; None = unresolvable."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return {node.value}
    if isinstance(node, ast.Name):
        return env.get(node.id)
    if isinstance(node, ast.IfExp):
        return _literal_values(node)
    if isinstance(node, ast.JoinedStr):
        candidates = {""}
        for part in node.values:
            if isinstance(part, ast.Constant):
                candidates = {c + str(part.value) for c in candidates}
                continue
            if isinstance(part, ast.FormattedValue):
                sub = None
                if isinstance(part.value, ast.Name):
                    sub = env.get(part.value.id)
                if sub is None:
                    # a counter hole after "...round"/"...level" is benign:
                    # normalize_phase strips the whole suffix
                    if all(
                        c.endswith("round") or c.endswith("level")
                        for c in candidates
                    ):
                        sub = {"0"}
                    else:
                        return None
                candidates = {c + s for c in candidates for s in sub}
        return candidates
    return None


def _is_span_site(node: ast.Call) -> str | None:
    """Return "span" / "phase" when ``node`` is a tracing call site."""
    if not isinstance(node.func, ast.Attribute):
        return None
    attr = node.func.attr
    recv = terminal_name(node.func) or ""
    if attr == "span" and "tracer" in recv:
        return "span"
    if attr == "phase" and (
        recv in ("ctx", "tracker") or "tracker" in recv or "tracer" in recv
    ):
        # "tracer" receivers cover the distributed driver, which threads a
        # ClusterObserver under that name (ctx wraps the shared-memory one)
        return "phase"
    return None


#: manual span protocol methods (PH004 state machine)
_OPEN_METHODS = ("__enter__", "begin")
_CLOSE_METHODS = ("__exit__", "end", "close")


def _span_methods(expr: ast.AST, span_vars) -> list[tuple[str, str]]:
    """``(var, "open"|"close")`` for protocol calls on span vars in expr."""
    out = []
    for node in ast.walk(expr):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in span_vars
        ):
            if node.func.attr in _OPEN_METHODS:
                out.append((node.func.value.id, "open"))
            elif node.func.attr in _CLOSE_METHODS:
                out.append((node.func.value.id, "close"))
    return out


def _check_span_protocol(
    mod: Module, fn: ast.AST, findings: list[Finding]
) -> None:
    """PH004: every manually-managed span must close on all CFG paths."""
    span_assigns: dict[str, int] = {}  # var -> line of the span assignment
    enter_line: dict[str, int] = {}
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Assign)
            and isinstance(node.value, ast.Call)
            and _is_span_site(node.value)
            and mod.enclosing_function(node) is fn
        ):
            for t in node.targets:
                if isinstance(t, ast.Name):
                    span_assigns.setdefault(t.id, node.lineno)
    if not span_assigns:
        return

    cfg = build_cfg(fn)

    def transfer(
        block: Block, env: dict[str, frozenset[str]]
    ) -> dict[str, frozenset[str]]:
        out = dict(env)
        for stmt in block.stmts:
            if (
                isinstance(stmt, ast.Assign)
                and isinstance(stmt.value, ast.Call)
                and _is_span_site(stmt.value)
            ):
                for t in stmt.targets:
                    if isinstance(t, ast.Name) and t.id in span_assigns:
                        out[t.id] = frozenset({"fresh"})
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                # `with s:` closes the span on every path, including raises
                for item in stmt.items:
                    ce = item.context_expr
                    if isinstance(ce, ast.Name) and ce.id in span_assigns:
                        out[ce.id] = frozenset({"closed"})
                continue
            for expr in header_exprs(stmt):
                for var, action in _span_methods(expr, span_assigns):
                    if action == "open":
                        enter_line.setdefault(var, stmt.lineno)
                        out[var] = frozenset({"open"})
                    else:
                        out[var] = frozenset({"closed"})
        return out

    def join(a: dict, b: dict) -> dict:
        out = dict(a)
        for k, v in b.items():
            out[k] = out.get(k, frozenset()) | v
        return out

    ins, _outs = fixpoint(cfg, transfer, {}, join)
    final = ins.get(cfg.exit.bid) or {}
    for var in sorted(final):
        if "open" in final[var]:
            line = enter_line.get(var, span_assigns[var])
            findings.append(
                Finding(
                    PASS_ID,
                    "PH004",
                    "error",
                    mod.rel,
                    line,
                    f"span {var!r} may still be open at function exit (an "
                    "early return, break or exception path skips __exit__); "
                    "close it on every path or use a with-block",
                    subject=f"{mod.qualname(fn)}:{var}",
                )
            )


def run(mod: Module) -> list[Finding]:
    if any(mod.rel.startswith(p) for p in EXCLUDE):
        return []
    findings: list[Finding] = []
    span_vars: set[str] = set()  # names assigned from span/phase calls

    for node in ast.walk(mod.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _check_span_protocol(mod, node, findings)

    for node in ast.walk(mod.tree):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            if _is_span_site(node.value):
                span_vars.update(
                    t.id for t in node.targets if isinstance(t, ast.Name)
                )
        if not isinstance(node, ast.Call):
            continue

        # manual __enter__ on a stored span: PH002
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "__enter__"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in span_vars
        ):
            findings.append(
                Finding(
                    PASS_ID,
                    "PH002",
                    "error",
                    mod.rel,
                    node.lineno,
                    f"span {node.func.value.id!r} entered manually; use a "
                    "with-block so the phase stack unwinds on errors",
                    subject=f"{mod.qualname(node)}:__enter__",
                )
            )
            continue

        kind = _is_span_site(node)
        if kind is None:
            continue

        if not isinstance(mod.parent(node), ast.withitem):
            findings.append(
                Finding(
                    PASS_ID,
                    "PH002",
                    "error",
                    mod.rel,
                    node.lineno,
                    f"{kind}() call is not the context expression of a "
                    "with-block; spans must be scope-bound",
                    subject=f"{mod.qualname(node)}:{kind}",
                )
            )

        if not node.args:
            continue
        env = _literal_env(mod, mod.enclosing_function(node))
        names = _resolve_name(node.args[0], env)
        if names is None:
            findings.append(
                Finding(
                    PASS_ID,
                    "PH003",
                    "warning",
                    mod.rel,
                    node.lineno,
                    f"{kind} name is dynamic; the analyzer cannot check it "
                    "against KNOWN_PHASES",
                    subject=f"{mod.qualname(node)}:{kind}:<dynamic>",
                )
            )
            continue
        for name in sorted(names):
            norm = normalize_phase(name)
            if norm not in KNOWN_PHASES:
                findings.append(
                    Finding(
                        PASS_ID,
                        "PH001",
                        "error",
                        mod.rel,
                        node.lineno,
                        f"{kind} name {name!r} normalizes to {norm!r}, "
                        "which is not in repro.obs.regress.attrib"
                        ".KNOWN_PHASES",
                        subject=norm,
                    )
                )
    return findings
