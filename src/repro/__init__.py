"""TeraPart reproduction: memory-efficient tera-scale multilevel graph
partitioning (IPDPS 2025).

Quickstart::

    import repro
    from repro.graph import generators

    g = generators.rgg2d(10_000, avg_degree=8, seed=1)
    result = repro.partition(g, k=16)
    print(result.cut, result.imbalance, result.peak_bytes)

The main entry points:

* :func:`repro.partition` -- partition a graph with a configured variant.
* :mod:`repro.core.config` -- the algorithm-variant presets
  (``kaminpar`` ... ``terapart_fm``) measured in the paper.
* :mod:`repro.graph` -- graph substrate: CSR + compressed representations,
  generators, I/O.
* :mod:`repro.dist` -- the simulated distributed runtime and xTeraPart.
* :mod:`repro.baselines` -- Mt-Metis / ParMETIS / XtraPuLP / HeiStream / SEM
  style comparison partitioners.
* :mod:`repro.bench` -- the benchmark harness regenerating every table and
  figure of the paper.
"""

from repro.core import PartitionedGraph, PartitionResult, partition, refine_partition
from repro.core import config
from repro.memory import MemoryTracker
from repro.parallel import ParallelRuntime

__version__ = "1.0.0"

__all__ = [
    "PartitionedGraph",
    "PartitionResult",
    "partition",
    "refine_partition",
    "config",
    "MemoryTracker",
    "ParallelRuntime",
    "__version__",
]
