"""Work/span/bandwidth cost model for the scaling figures.

The paper notes (Section VI-A1) that TeraPart "does not perform any expensive
arithmetic operations and is limited by memory bandwidth", which is why
96-core speedups saturate around 30-40x.  We reproduce that mechanism
explicitly: each phase reports total work ``W``, critical-path span ``S``,
bytes moved ``B`` and atomic-op count ``A``; the modelled parallel time on
``p`` cores is

    T(p) = max( (W-W_seq)/min(p, P_max) + W_seq + S ,  B / BW(p) )
           +  A/p * c_atomic * contention(p)

where ``BW(p)`` is a saturating bandwidth curve (linear up to the number of
memory channels' worth of cores, then flat) and ``contention(p)`` grows
mildly with ``p``.  Self-relative speedup is ``T(1)/T(p)``.

This reproduces the shape of Figure 5 (larger graphs scale better because
sequential initial partitioning amortises) and the weak-scaling behaviour in
Figure 8 (right).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.parallel.runtime import WorkStats


@dataclass(frozen=True)
class MachineModel:
    """Coarse model of the paper's 96-core EPYC 9684X machine.

    ``work_rate`` is work-units per second per core; ``bandwidth_cores`` is
    the core count at which memory bandwidth saturates -- graph partitioning
    issues mostly random accesses, so the 12 DDR5 channels of the EPYC are
    effectively saturated by a handful of cores' worth of demand (this is
    what caps the paper's 96-core speedups at 17-42x);
    ``bytes_per_second_per_core`` converts traffic into time.
    """

    work_rate: float = 50e6
    bytes_per_second_per_core: float = 1.6e9
    bandwidth_cores: int = 8
    atomic_cost: float = 2e-8
    contention_exponent: float = 0.3

    def bandwidth(self, p: int) -> float:
        effective = min(p, self.bandwidth_cores)
        return effective * self.bytes_per_second_per_core

    def contention(self, p: int) -> float:
        return float(p) ** self.contention_exponent


@dataclass
class PhaseCost:
    """Modelled time of one phase on ``p`` cores."""

    name: str
    compute_seconds: float
    bandwidth_seconds: float
    atomic_seconds: float

    @property
    def seconds(self) -> float:
        return max(self.compute_seconds, self.bandwidth_seconds) + self.atomic_seconds


@dataclass
class CostModel:
    machine: MachineModel = field(default_factory=MachineModel)

    def phase_time(self, stats: WorkStats, p: int) -> PhaseCost:
        m = self.machine
        parallel_work = stats.work - stats.sequential_work
        effective_p = max(1.0, min(float(p), stats.max_parallelism))
        compute = (
            parallel_work / (effective_p * m.work_rate)
            + (stats.sequential_work + stats.span) / m.work_rate
        )
        bandwidth = stats.bytes_moved / m.bandwidth(p)
        atomics = stats.atomic_ops / p * m.atomic_cost * m.contention(p)
        return PhaseCost(stats.name, compute, bandwidth, atomics)

    def total_time(self, phases: dict[str, WorkStats], p: int) -> float:
        return sum(self.phase_time(s, p).seconds for s in phases.values())

    def speedup(self, phases: dict[str, WorkStats], p: int) -> float:
        t1 = self.total_time(phases, 1)
        tp = self.total_time(phases, p)
        if tp <= 0:
            return float(p)
        return t1 / tp

    def speedup_curve(
        self, phases: dict[str, WorkStats], ps: tuple[int, ...] = (12, 24, 48, 96)
    ) -> dict[int, float]:
        return {p: self.speedup(phases, p) for p in ps}
