"""Deterministic virtual-thread scheduler.

All "parallel" loops in this reproduction run through
:class:`ParallelRuntime`.  The runtime splits a work order into chunks and
assigns chunks to ``p`` virtual threads round-robin, exactly like a static
TBB partitioner would.  Execution is sequential (one virtual thread at a
time), but:

* per-thread scratch structures are allocated once per virtual thread
  through :meth:`ParallelRuntime.thread_locals`, so the memory ledger sees
  the true ``O(n*p)`` footprint of the classic algorithms;
* chunk assignment is a pure function of ``(p, chunk_size, order)``, so runs
  are reproducible regardless of ``p``;
* every loop reports work/span/bytes-moved into :class:`WorkStats`, which the
  cost model converts into modelled parallel running times.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass, field
from typing import TypeVar

import numpy as np

T = TypeVar("T")


@dataclass
class WorkStats:
    """Accumulated cost measurements for one named parallel phase.

    ``span`` records *irreducible* critical-path work units beyond the
    ``work / p`` division (e.g. one straggler thread scanning a huge
    neighborhood); ``max_parallelism`` caps how many threads the phase can
    use (e.g. initial partitioning parallelizes over at most ``k`` blocks).
    """

    name: str
    work: float = 0.0  # total work units (e.g. edges scanned)
    span: float = 0.0  # irreducible critical-path work units
    bytes_moved: float = 0.0  # memory traffic estimate
    atomic_ops: int = 0
    sequential_work: float = 0.0  # work that ran on one thread only
    max_parallelism: float = float("inf")

    def merge(self, other: "WorkStats") -> None:
        self.work += other.work
        self.span += other.span
        self.bytes_moved += other.bytes_moved
        self.atomic_ops += other.atomic_ops
        self.sequential_work += other.sequential_work
        self.max_parallelism = min(self.max_parallelism, other.max_parallelism)


@dataclass
class ChunkSchedule:
    """A static assignment of chunks to virtual threads."""

    chunks: list[np.ndarray]
    owner: list[int]

    def __iter__(self) -> Iterator[tuple[int, np.ndarray]]:
        return iter(zip(self.owner, self.chunks))

    @property
    def num_chunks(self) -> int:
        return len(self.chunks)


class ParallelRuntime:
    """Virtual-thread runtime with ``p`` threads.

    ``p`` plays the role of the paper's 96 cores: it controls how many
    thread-local structures exist and how parallel loops are chunked.
    """

    def __init__(self, p: int = 8, *, chunk_size: int = 512) -> None:
        if p < 1:
            raise ValueError(f"p must be >= 1, got {p}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.p = p
        self.chunk_size = chunk_size
        self._stats: dict[str, WorkStats] = {}

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def schedule(self, order: np.ndarray) -> ChunkSchedule:
        """Split ``order`` into chunks assigned round-robin to threads."""
        n = len(order)
        if n == 0:
            return ChunkSchedule([], [])
        n_chunks = -(-n // self.chunk_size)
        chunks = [
            order[i * self.chunk_size : (i + 1) * self.chunk_size]
            for i in range(n_chunks)
        ]
        owner = [i % self.p for i in range(n_chunks)]
        return ChunkSchedule(chunks, owner)

    def schedule_balanced(
        self, order: np.ndarray, weights: np.ndarray
    ) -> ChunkSchedule:
        """Chunk ``order`` so each chunk has roughly equal total ``weights``.

        This mirrors the paper's compression packets, which contain "a
        similar number of edges" rather than a similar number of vertices.
        """
        n = len(order)
        if n == 0:
            return ChunkSchedule([], [])
        total = float(weights.sum())
        n_chunks = max(1, min(n, -(-n // self.chunk_size)))
        target = max(total / n_chunks, 1.0)
        cuts = [0]
        acc = 0.0
        for i in range(n):
            acc += float(weights[i])
            if acc >= target and i + 1 < n:
                cuts.append(i + 1)
                acc = 0.0
        cuts.append(n)
        chunks = [order[cuts[i] : cuts[i + 1]] for i in range(len(cuts) - 1)]
        chunks = [c for c in chunks if len(c)]
        owner = [i % self.p for i in range(len(chunks))]
        return ChunkSchedule(chunks, owner)

    def thread_locals(self, factory: Callable[[int], T]) -> list[T]:
        """Build one scratch object per virtual thread."""
        return [factory(tid) for tid in range(self.p)]

    # ------------------------------------------------------------------ #
    # cost accounting
    # ------------------------------------------------------------------ #
    def stats(self, name: str) -> WorkStats:
        return self._stats.setdefault(name, WorkStats(name))

    def record(
        self,
        name: str,
        *,
        work: float = 0.0,
        span: float | None = None,
        bytes_moved: float = 0.0,
        atomic_ops: int = 0,
        sequential: bool = False,
        max_parallelism: float | None = None,
    ) -> None:
        """Record cost for phase ``name``.

        ``sequential=True`` work runs on one thread regardless of ``p``;
        ``span`` adds irreducible critical-path work on top of the
        ``work / p`` division; ``max_parallelism`` caps usable threads.
        """
        s = self.stats(name)
        if sequential:
            s.sequential_work += work
        if span is not None:
            s.span += span
        s.work += work
        s.bytes_moved += bytes_moved
        s.atomic_ops += atomic_ops
        if max_parallelism is not None:
            s.max_parallelism = min(s.max_parallelism, max_parallelism)

    def all_stats(self) -> dict[str, WorkStats]:
        return dict(self._stats)

    def reset_stats(self) -> None:
        self._stats.clear()


@dataclass
class ScopedStats:
    """Convenience accumulator passed into inner loops of an algorithm."""

    runtime: ParallelRuntime
    phase: str
    work: float = 0.0
    bytes_moved: float = 0.0
    atomic_ops: int = 0
    extra: dict[str, float] = field(default_factory=dict)

    def flush(self, *, sequential: bool = False) -> None:
        self.runtime.record(
            self.phase,
            work=self.work,
            bytes_moved=self.bytes_moved,
            atomic_ops=self.atomic_ops,
            sequential=sequential,
        )
        self.work = self.bytes_moved = 0.0
        self.atomic_ops = 0
