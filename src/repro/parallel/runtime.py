"""Deterministic virtual-thread scheduler.

All "parallel" loops in this reproduction run through
:class:`ParallelRuntime`.  The runtime splits a work order into chunks and
assigns chunks to ``p`` virtual threads round-robin, exactly like a static
TBB partitioner would.  Execution is sequential (one virtual thread at a
time), but:

* per-thread scratch structures are allocated once per virtual thread
  through :meth:`ParallelRuntime.thread_locals`, so the memory ledger sees
  the true ``O(n*p)`` footprint of the classic algorithms;
* chunk assignment is a pure function of ``(p, chunk_size, order)``, so runs
  are reproducible regardless of ``p``;
* every loop reports work/span/bytes-moved into :class:`WorkStats`, which the
  cost model converts into modelled parallel running times;
* the *execution order* of chunks is pluggable (:data:`SCHEDULE_POLICIES`):
  by default chunks run in issue order, but a policy can replay the same
  loop under reversed, seeded-random, or adversarial heavy-first
  interleavings.  Kernels iterate via :meth:`ParallelRuntime.execute`, which
  also announces the current virtual thread to an attached
  :class:`~repro.verify.conflicts.ConflictDetector` -- the schedule-fuzzing
  substrate of the verify layer.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TypeVar

import numpy as np

T = TypeVar("T")

#: Recognized chunk-execution orders.  ``issue`` is the model default (the
#: order chunks are created, i.e. a static TBB partitioner with no work
#: stealing); ``reversed`` models the last-issued chunks finishing first;
#: ``random`` is a seeded arbitrary interleaving (fresh permutation per
#: parallel region); ``heavy-first`` is the adversarial order that runs the
#: heaviest chunks (most edges / members) first, maximizing the overlap
#: window of high-contention work.
SCHEDULE_POLICIES = ("issue", "reversed", "random", "heavy-first")


@dataclass
class WorkStats:
    """Accumulated cost measurements for one named parallel phase.

    ``span`` records *irreducible* critical-path work units beyond the
    ``work / p`` division (e.g. one straggler thread scanning a huge
    neighborhood); ``max_parallelism`` caps how many threads the phase can
    use (e.g. initial partitioning parallelizes over at most ``k`` blocks).
    """

    name: str
    work: float = 0.0  # total work units (e.g. edges scanned)
    span: float = 0.0  # irreducible critical-path work units
    bytes_moved: float = 0.0  # memory traffic estimate
    atomic_ops: int = 0
    sequential_work: float = 0.0  # work that ran on one thread only
    max_parallelism: float = float("inf")

    def merge(self, other: "WorkStats") -> None:
        self.work += other.work
        self.span += other.span
        self.bytes_moved += other.bytes_moved
        self.atomic_ops += other.atomic_ops
        self.sequential_work += other.sequential_work
        self.max_parallelism = min(self.max_parallelism, other.max_parallelism)


@dataclass
class ChunkSchedule:
    """A static assignment of chunks to virtual threads."""

    chunks: list[np.ndarray]
    owner: list[int]

    def __iter__(self) -> Iterator[tuple[int, np.ndarray]]:
        return iter(zip(self.owner, self.chunks))

    @property
    def num_chunks(self) -> int:
        return len(self.chunks)


class ParallelRuntime:
    """Virtual-thread runtime with ``p`` threads.

    ``p`` plays the role of the paper's 96 cores: it controls how many
    thread-local structures exist and how parallel loops are chunked.
    """

    def __init__(
        self,
        p: int = 8,
        *,
        chunk_size: int = 512,
        schedule_policy: str | None = None,
        schedule_seed: int = 0,
    ) -> None:
        if p < 1:
            raise ValueError(f"p must be >= 1, got {p}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if schedule_policy is not None and schedule_policy not in SCHEDULE_POLICIES:
            raise ValueError(
                f"unknown schedule policy {schedule_policy!r}; "
                f"know {SCHEDULE_POLICIES}"
            )
        self.p = p
        self.chunk_size = chunk_size
        self.schedule_policy = schedule_policy
        self.schedule_seed = schedule_seed
        self.detector = None  # ConflictDetector, attached by the verify layer
        self.tracer = None  # SpanTracer, attached by the obs layer
        self._region_counter = 0
        self._stats: dict[str, WorkStats] = {}

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def schedule(self, order: np.ndarray) -> ChunkSchedule:
        """Split ``order`` into chunks assigned round-robin to threads."""
        n = len(order)
        if n == 0:
            return ChunkSchedule([], [])
        n_chunks = -(-n // self.chunk_size)
        chunks = [
            order[i * self.chunk_size : (i + 1) * self.chunk_size]
            for i in range(n_chunks)
        ]
        owner = [i % self.p for i in range(n_chunks)]
        return ChunkSchedule(chunks, owner)

    def schedule_balanced(
        self, order: np.ndarray, weights: np.ndarray
    ) -> ChunkSchedule:
        """Chunk ``order`` so each chunk has roughly equal total ``weights``.

        This mirrors the paper's compression packets, which contain "a
        similar number of edges" rather than a similar number of vertices.
        """
        n = len(order)
        if n == 0:
            return ChunkSchedule([], [])
        total = float(weights.sum())
        n_chunks = max(1, min(n, -(-n // self.chunk_size)))
        target = max(total / n_chunks, 1.0)
        cuts = [0]
        acc = 0.0
        for i in range(n):
            acc += float(weights[i])
            if acc >= target and i + 1 < n:
                cuts.append(i + 1)
                acc = 0.0
        cuts.append(n)
        chunks = [order[cuts[i] : cuts[i + 1]] for i in range(len(cuts) - 1)]
        chunks = [c for c in chunks if len(c)]
        owner = [i % self.p for i in range(len(chunks))]
        return ChunkSchedule(chunks, owner)

    def thread_locals(self, factory: Callable[[int], T]) -> list[T]:
        """Build one scratch object per virtual thread."""
        return [factory(tid) for tid in range(self.p)]

    # ------------------------------------------------------------------ #
    # execution order (schedule policies)
    # ------------------------------------------------------------------ #
    def execution_order(
        self,
        sched: ChunkSchedule,
        *,
        weights: np.ndarray | None = None,
        default: np.ndarray | None = None,
    ) -> np.ndarray:
        """Chunk execution order under the configured policy.

        ``weights`` (one entry per chunk, e.g. summed degrees) drives the
        ``heavy-first`` adversarial order; chunk sizes are used when absent.
        ``default`` is the order used when no policy is configured -- kernels
        with their own modelled nondeterminism (one-pass contraction's
        bounded jitter) pass it so the model default stays untouched.
        """
        n_chunks = sched.num_chunks
        identity = np.arange(n_chunks, dtype=np.int64)
        policy = self.schedule_policy
        if policy is None:
            return identity if default is None else np.asarray(default, dtype=np.int64)
        if policy == "issue":
            return identity
        if policy == "reversed":
            return identity[::-1]
        if policy == "random":
            # fresh permutation per parallel region, reproducible per
            # (schedule_seed, region index)
            self._region_counter += 1
            rng = np.random.default_rng(
                [self.schedule_seed, self._region_counter]
            )
            return rng.permutation(n_chunks).astype(np.int64)
        if policy == "heavy-first":
            if weights is None:
                weights = np.array(
                    [len(c) for c in sched.chunks], dtype=np.int64
                )
            return np.argsort(-np.asarray(weights), kind="stable").astype(
                np.int64
            )
        raise ValueError(f"unknown schedule policy {policy!r}")

    def execute(
        self,
        sched: ChunkSchedule,
        *,
        weights: np.ndarray | None = None,
        default_order: np.ndarray | None = None,
        phase: str | None = None,
    ) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``(tid, chunk)`` in policy order, announcing ``tid``.

        This is the instrumented replacement for iterating a
        :class:`ChunkSchedule` directly: an attached conflict detector
        learns which virtual thread issues each subsequent shared-memory
        access, and an attached span tracer attributes each chunk's wall
        time to ``(phase, tid)`` (the time between two yields is the
        consumer's chunk processing).  With no policy, no detector and no
        tracer it degenerates to plain issue-order iteration.
        """
        order = self.execution_order(sched, weights=weights, default=default_order)
        det = self.detector
        tr = self.tracer
        if tr is not None and not tr.enabled:
            tr = None
        if tr is None:
            for ci in order.tolist():
                if det is not None:
                    det.current_tid = sched.owner[ci]
                yield sched.owner[ci], sched.chunks[ci]
        else:
            import time as _time

            name = phase or "parallel-region"
            for ci in order.tolist():
                tid = sched.owner[ci]
                if det is not None:
                    det.current_tid = tid
                t0 = _time.perf_counter()
                yield tid, sched.chunks[ci]
                tr.record_chunk(
                    name, tid, len(sched.chunks[ci]), _time.perf_counter() - t0
                )
        if det is not None:
            det.current_tid = None

    # ------------------------------------------------------------------ #
    # conflict-detector attachment
    # ------------------------------------------------------------------ #
    def attach_detector(self, detector) -> None:
        self.detector = detector

    def detach_detector(self):
        det, self.detector = self.detector, None
        return det

    # ------------------------------------------------------------------ #
    # span-tracer attachment (obs layer)
    # ------------------------------------------------------------------ #
    def attach_tracer(self, tracer) -> None:
        """Attach a span tracer for per-(phase, tid) chunk attribution."""
        self.tracer = tracer

    def detach_tracer(self):
        tr, self.tracer = self.tracer, None
        return tr

    @contextmanager
    def region(self, phase: str):
        """Scope one parallel region (loop between barriers) for detection.

        Accesses recorded inside one region by different virtual threads may
        conflict; the region boundary is a synchronization barrier, so maps
        are cleared on entry.
        """
        if self.detector is not None:
            self.detector.begin_region(phase)
        try:
            yield
        finally:
            if self.detector is not None:
                self.detector.end_region()

    # ------------------------------------------------------------------ #
    # cost accounting
    # ------------------------------------------------------------------ #
    def stats(self, name: str) -> WorkStats:
        return self._stats.setdefault(name, WorkStats(name))

    def record(
        self,
        name: str,
        *,
        work: float = 0.0,
        span: float | None = None,
        bytes_moved: float = 0.0,
        atomic_ops: int = 0,
        sequential: bool = False,
        max_parallelism: float | None = None,
    ) -> None:
        """Record cost for phase ``name``.

        ``sequential=True`` work runs on one thread regardless of ``p``;
        ``span`` adds irreducible critical-path work on top of the
        ``work / p`` division; ``max_parallelism`` caps usable threads.
        """
        s = self.stats(name)
        if sequential:
            s.sequential_work += work
        if span is not None:
            s.span += span
        s.work += work
        s.bytes_moved += bytes_moved
        s.atomic_ops += atomic_ops
        if max_parallelism is not None:
            s.max_parallelism = min(s.max_parallelism, max_parallelism)

    def all_stats(self) -> dict[str, WorkStats]:
        return dict(self._stats)

    def reset_stats(self) -> None:
        self._stats.clear()


@dataclass
class ScopedStats:
    """Convenience accumulator passed into inner loops of an algorithm."""

    runtime: ParallelRuntime
    phase: str
    work: float = 0.0
    bytes_moved: float = 0.0
    atomic_ops: int = 0
    extra: dict[str, float] = field(default_factory=dict)

    def flush(self, *, sequential: bool = False) -> None:
        self.runtime.record(
            self.phase,
            work=self.work,
            bytes_moved=self.bytes_moved,
            atomic_ops=self.atomic_ops,
            sequential=sequential,
        )
        self.work = self.bytes_moved = 0.0
        self.atomic_ops = 0
