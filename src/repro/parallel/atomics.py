"""Emulated atomic primitives.

The simulation executes virtual threads one at a time, so plain Python
updates are already linearizable.  These classes exist to (a) keep the
algorithms textually faithful to the paper -- two-phase label propagation
*checks the previous value* of a fetch-add to decide which thread records a
cluster in its non-zero list (Algorithm 2, line 20), and one-pass contraction
updates the ``(d, s)`` dual counter with a 128-bit CAS -- and (b) count how
many atomic operations each phase issues, which feeds the contention term of
the cost model.
"""

from __future__ import annotations

import numpy as np

from repro.memory.scratch import tracked_zeros


class AtomicCounter:
    """A single 64-bit counter with fetch-add semantics.

    ``detector``/``name`` optionally report every operation to an attached
    :class:`~repro.verify.conflicts.ConflictDetector` as a synchronized
    access, so atomic traffic never counts as a data race.
    """

    def __init__(self, value: int = 0, *, detector=None, name: str = "atomic-counter") -> None:
        self._value = int(value)
        self.op_count = 0
        self._detector = detector
        self._name = name

    def _note(self) -> None:
        if self._detector is not None:
            self._detector.record_atomic(self._name, (0,))

    @property
    def value(self) -> int:
        return self._value

    def load(self) -> int:
        return self._value

    def fetch_add(self, delta: int) -> int:
        """Add ``delta`` and return the value *before* the addition."""
        self.op_count += 1
        self._note()
        prev = self._value
        self._value += int(delta)
        return prev

    def store(self, value: int) -> None:
        # an atomic store is one bus transaction like any other atomic op;
        # the contention ledger must see it or store-based phases undercount
        self.op_count += 1
        self._note()
        self._value = int(value)

    def compare_exchange(self, expected: int, desired: int) -> bool:
        self.op_count += 1
        self._note()
        if self._value == expected:
            self._value = int(desired)
            return True
        return False


class DualCounter:
    """The 128-bit ``(d, s)`` pair from one-pass contraction (Section IV-B2).

    ``d`` counts coarse edges already placed in the coarse edge array, ``s``
    counts coarse vertices already processed.  The paper packs both into one
    128-bit word and updates them with ``CMPXCHG16B`` in a CAS loop; we model
    exactly that interface: :meth:`fetch_add` atomically adds to both halves
    and returns the pre-update pair.
    """

    def __init__(
        self, d: int = 0, s: int = 0, *, detector=None, name: str = "dual-counter"
    ) -> None:
        self._packed = (int(s) << 64) | int(d)
        self.cas_count = 0
        self._detector = detector
        self._name = name

    @staticmethod
    def _pack(d: int, s: int) -> int:
        if not (0 <= d < (1 << 64)):
            raise OverflowError(f"d={d} exceeds 64 bits")
        if not (0 <= s < (1 << 64)):
            raise OverflowError(f"s={s} exceeds 64 bits")
        return (s << 64) | d

    @staticmethod
    def _unpack(packed: int) -> tuple[int, int]:
        return packed & ((1 << 64) - 1), packed >> 64

    @property
    def d(self) -> int:
        return self._unpack(self._packed)[0]

    @property
    def s(self) -> int:
        return self._unpack(self._packed)[1]

    def fetch_add(self, delta_d: int, delta_s: int) -> tuple[int, int]:
        """CAS-loop transaction: returns ``(d_prev, s_prev)``.

        The loop body mirrors the paper: extract, update, repack, CAS.  In
        the simulation the CAS succeeds on the first try (no true
        concurrency), but the op count still records one CAS per call so the
        cost model can charge contention.
        """
        while True:
            observed = self._packed
            d_prev, s_prev = self._unpack(observed)
            desired = self._pack(d_prev + delta_d, s_prev + delta_s)
            self.cas_count += 1
            if self._detector is not None:
                self._detector.record_atomic(self._name, (0,))
            if self._packed == observed:
                self._packed = desired
                return d_prev, s_prev


class AtomicArray:
    """An int64 array supporting per-slot fetch-add (the sparse array ``A``).

    Backed by numpy; exposes both scalar fetch-add (faithful to Algorithm 2)
    and a bulk variant used by the hash-table flush, which applies a batch of
    (index, delta) pairs and reports which slots rose from zero -- the
    condition under which a thread appends the cluster to its local non-zero
    list ``L_t``.
    """

    def __init__(
        self, data: np.ndarray, *, detector=None, name: str = "atomic-array"
    ) -> None:
        if data.dtype != np.int64:
            raise TypeError(f"AtomicArray requires int64, got {data.dtype}")
        self._data = data
        self.op_count = 0
        self._detector = detector
        self._name = name

    @property
    def data(self) -> np.ndarray:
        return self._data

    def __len__(self) -> int:
        return len(self._data)

    def load(self, idx: int) -> int:
        return int(self._data[idx])

    def fetch_add(self, idx: int, delta: int) -> int:
        self.op_count += 1
        if self._detector is not None:
            self._detector.record_atomic(self._name, (idx,))
        prev = int(self._data[idx])
        self._data[idx] = prev + delta
        return prev

    def bulk_fetch_add(
        self, indices: np.ndarray, deltas: np.ndarray
    ) -> np.ndarray:
        """Apply ``A[indices] += deltas``; return mask of slots that were 0.

        Duplicate indices within one batch are handled sequentially (as the
        individual atomic adds would be): only the *first* add that raises a
        slot from zero reports True for that slot.
        """
        self.op_count += len(indices)
        if self._detector is not None and len(indices):
            self._detector.record_atomic(self._name, indices)
        was_zero = tracked_zeros(len(indices), bool, name="atomic-was-zero")
        # np.add.at handles duplicates; we need per-op previous values only
        # to detect zero-crossings, so detect duplicates first.
        if len(indices) == 0:
            return was_zero
        unique, first_pos = np.unique(indices, return_index=True)
        zero_before = self._data[unique] == 0
        np.add.at(self._data, indices, deltas)
        was_zero[first_pos[zero_before]] = True
        return was_zero

    def reset(self, indices: np.ndarray) -> None:
        self._data[indices] = 0
