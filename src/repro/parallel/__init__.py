"""Simulated shared-memory parallel runtime.

CPython's GIL rules out real parallel refinement (see DESIGN.md), so this
package provides a *deterministic simulation* of the paper's TBB runtime:

* :class:`ParallelRuntime` schedules work items over ``p`` virtual threads in
  chunks, giving every algorithm the same structure it has in the paper --
  per-thread scratch data really exists once per virtual thread, so the
  memory ledger reproduces the ``O(n*p)`` vs ``O(n)`` distinction exactly.
* :mod:`repro.parallel.atomics` emulates the atomic primitives the paper
  relies on (fetch-add with returned previous value; the double-width
  compare-and-swap used by one-pass contraction) and counts contended
  operations so benchmarks can report contention.
* :mod:`repro.parallel.cost_model` turns per-phase work/span/bytes-moved
  measurements into modelled speedups for the scaling figures (Fig. 5, 8).
"""

from repro.parallel.atomics import AtomicArray, AtomicCounter, DualCounter
from repro.parallel.runtime import ChunkSchedule, ParallelRuntime, WorkStats
from repro.parallel.cost_model import CostModel, MachineModel, PhaseCost

__all__ = [
    "AtomicArray",
    "AtomicCounter",
    "DualCounter",
    "ChunkSchedule",
    "ParallelRuntime",
    "WorkStats",
    "CostModel",
    "MachineModel",
    "PhaseCost",
]
