"""Command-line interface: ``python -m repro <command>``.

Commands mirror how the original KaMinPar/TeraPart binaries are driven:

* ``partition``  -- partition a graph file (binary or METIS format) into k
  blocks and write the block assignment.
* ``compress``   -- convert a binary graph to the compressed representation
  and report ratios (gap-only vs gap+interval).
* ``generate``   -- synthesize a benchmark graph to a file.
* ``stats``      -- print n / m / degree / locality statistics.
* ``serve``      -- run the long-lived partitioning service: an HTTP front
  end with admission batching, a byte-budgeted LRU cache, and incremental
  (warm-start) repartitioning under graph deltas.
* ``bench``      -- the regression observatory: ``record`` a run matrix
  into the append-only run database, capture a named ``baseline``,
  ``compare`` candidate runs against it (with ``--gate`` for CI),
  ``service`` to replay the serving trace benchmark, ``dist`` to run the
  distributed partitioner with cluster observability on, and render
  sparkline ``trend`` lines from the database history.

Examples::

    python -m repro generate --family rgg2d --n 10000 --out g.bin
    python -m repro partition g.bin -k 16 --preset terapart --out g.part16
    python -m repro compress g.bin
    python -m repro stats g.bin
    python -m repro bench record --suite smoke --label base --db runs.jsonl
    python -m repro bench baseline --name smoke --db runs.jsonl \
        --out benchmarks/baselines/smoke.json
    python -m repro bench compare --baseline benchmarks/baselines/smoke.json \
        --db runs.jsonl --gate
    python -m repro serve --graph web=g.bin --port 8642
    python -m repro bench service --suite smoke --db runs.jsonl
    python -m repro bench dist --suite smoke --ranks 2 4 --db runs.jsonl
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

import repro
from repro.core import config as C
from repro.graph import generators
from repro.graph.compressed import compress_graph
from repro.graph.io import read_binary, read_metis, stream_compressed, write_binary
from repro.graph.stats import compute_stats
from repro.parallel.runtime import SCHEDULE_POLICIES


def _load_graph(path: str, *, compressed: bool = False):
    p = Path(path)
    if p.suffix in (".metis", ".graph", ".txt"):
        if compressed:
            return compress_graph(read_metis(p))
        return read_metis(p)
    if compressed:
        return stream_compressed(p)
    return read_binary(p)


def cmd_partition(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph, compressed=args.stream_compress)
    cfg = C.preset(args.preset, seed=args.seed, p=args.threads, epsilon=args.epsilon)
    if args.selfcheck or args.schedule_policy is not None or args.schedule_seed:
        cfg = cfg.with_(
            debug=C.DebugConfig(
                validation_level=2 if args.selfcheck else 0,
                detect_conflicts=bool(args.selfcheck),
                schedule_policy=args.schedule_policy,
                schedule_seed=args.schedule_seed,
            )
        )
    want_obs = bool(args.trace_out or args.metrics_json)
    if want_obs or args.selfcheck:
        # selfcheck runs also charge transient decode scratch to the ledger
        cfg = cfg.with_(
            obs=C.ObsConfig(enabled=want_obs, track_scratch=args.selfcheck)
        )
    t0 = time.perf_counter()
    if args.seeds > 1:
        from repro.core.portfolio import partition_portfolio

        pr = partition_portfolio(
            graph, args.k, cfg, seeds=range(args.seed, args.seed + args.seeds)
        )
        result = pr.best
        print(
            f"portfolio:  best of {args.seeds} seeds "
            f"(mean cut {pr.mean_cut:.0f}, std {pr.cut_std:.0f})"
        )
    else:
        result = repro.partition(graph, args.k, cfg)
    elapsed = time.perf_counter() - t0
    out = args.out or f"{args.graph}.part{args.k}"
    np.savetxt(out, result.partition, fmt="%d")
    print(f"cut:        {result.cut} ({result.cut_fraction:.3%})")
    print(f"imbalance:  {result.imbalance:.4f} (balanced: {result.balanced})")
    print(f"peak bytes: {result.peak_bytes}")
    print(f"time:       {elapsed:.2f}s wall")
    print(f"partition:  {out}")
    if args.metrics:
        from repro.core.metrics import compute_metrics

        print("metrics:    " + compute_metrics(result.pgraph).row())
    if want_obs and result.trace is not None:
        from repro.obs.export import render_level_summary, write_chrome_trace

        if args.trace_out:
            write_chrome_trace(args.trace_out, result.trace)
            print(f"trace:      {args.trace_out}")
        if args.metrics_json:
            import json

            with open(args.metrics_json, "w") as f:
                json.dump(result.obs, f, indent=2)
                f.write("\n")
            print(f"metrics js: {args.metrics_json}")
        print(render_level_summary(result.trace))
    if result.selfcheck is not None:
        sc = result.selfcheck
        n_conflicts = len(sc["conflicts"])
        print(
            f"selfcheck:  {sc['invariant_checks']} invariant checks ok, "
            f"{sc['regions_checked']} parallel regions / "
            f"{sc['accesses_recorded']} accesses race-checked, "
            f"{n_conflicts} conflicts "
            f"(schedule {sc['schedule_policy']}, seed {sc['schedule_seed']})"
        )
        if n_conflicts:
            for c in sc["conflicts"][:10]:
                print(f"  {c}")
            return 1
    return 0


def cmd_compress(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    full = compress_graph(graph)
    gap = compress_graph(graph, enable_intervals=False)
    print(f"n={graph.n} m={graph.m}")
    print(f"CSR bytes:          {graph.nbytes}")
    print(f"compressed bytes:   {full.nbytes} (ratio {full.stats.ratio:.2f}x)")
    print(f"gap-only bytes:     {gap.nbytes} (ratio {gap.stats.ratio:.2f}x)")
    print(f"intervals:          {full.stats.num_intervals}")
    print(f"chunked vertices:   {full.stats.num_chunked_vertices}")
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    kwargs = {"n": args.n, "seed": args.seed}
    if args.family in ("rgg2d", "rhg", "weblike", "er"):
        kwargs["avg_degree"] = args.degree
    if args.family == "kmer":
        kwargs["degree"] = int(args.degree)
    if args.family == "ba":
        kwargs["m_attach"] = max(1, int(args.degree // 2))
    graph = generators.generate(args.family, **kwargs)
    write_binary(graph, args.out)
    print(f"wrote {args.out}: n={graph.n} m={graph.m}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    st = compute_stats(graph)
    print(st.row())
    print(f"mean log2 gap: {st.mean_log2_gap:.2f}")
    print(f"interval edge fraction: {st.interval_edge_fraction:.1%}")
    print(f"isolated vertices: {st.isolated_vertices}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro import analysis
    from repro.analysis import baseline as baseline_mod

    if args.paths:
        paths = [Path(p) for p in args.paths]
    else:
        # default target: the installed repro package itself
        paths = [Path(repro.__file__).parent]
    passes = args.passes.split(",") if args.passes else None
    baseline_path = Path(args.baseline)

    if args.update_baseline:
        # regenerate from scratch: suppressions still apply, baseline doesn't
        report = analysis.lint_paths(paths, baseline=None, passes=passes)
        baseline_mod.save(baseline_path, report.findings)
        print(
            f"baseline: {len(report.findings)} findings accepted -> "
            f"{baseline_path}"
        )
        return 0

    report = analysis.lint_paths(paths, baseline=baseline_path, passes=passes)
    if args.format == "sarif":
        import json

        from repro.analysis.sarif import to_sarif

        print(json.dumps(to_sarif(report), indent=2))
    else:
        print(analysis.render_text(report, gate=args.gate))
    if args.json:
        analysis.write_json_report(report, Path(args.json))
        print(f"report:     {args.json}")
    if args.sarif:
        from repro.analysis.sarif import write_sarif

        write_sarif(report, Path(args.sarif))
        if args.format != "sarif":
            print(f"sarif:      {args.sarif}")
    if args.gate:
        if report.new:
            print(f"lint gate: FAILED ({len(report.new)} new findings)")
            return 1
        print("lint gate: passed")
        return 0
    return 1 if report.new else 0


# --------------------------------------------------------------------- #
# bench: the regression observatory (run DB / baselines / compare / trend)
# --------------------------------------------------------------------- #
def _bench_instances(args: argparse.Namespace):
    from repro.bench.instances import SUITES

    instances = list(SUITES[args.suite])
    if args.instances:
        wanted = set(args.instances)
        instances = [i for i in instances if i.name in wanted]
        missing = wanted - {i.name for i in instances}
        if missing:
            raise SystemExit(f"unknown instance(s) in suite: {sorted(missing)}")
    return instances


def cmd_bench_record(args: argparse.Namespace) -> int:
    from repro.bench.harness import aggregate, run_matrix
    from repro.bench.reporting import fmt_bytes, render_table
    from repro.obs.regress.rundb import RunDB

    configs = [
        C.preset(p, p=args.threads).with_(obs=C.ObsConfig(enabled=True))
        for p in args.preset
    ]
    instances = _bench_instances(args)
    db = RunDB(args.db)
    records = run_matrix(
        configs,
        instances,
        args.k,
        args.seeds,
        progress=True,
        rundb=db,
        record_bench=args.suite,
        record_label=args.label,
    )
    rows = []
    cuts = aggregate(records, "cut")
    walls = aggregate(records, "wall_seconds")
    peaks = aggregate(records, "peak_bytes")
    for key in sorted(cuts):
        alg, inst, k = key
        rows.append(
            (alg, inst, k, f"{cuts[key]:.0f}", f"{walls[key]:.2f}s",
             fmt_bytes(peaks[key]))
        )
    print(
        render_table(
            ["algorithm", "instance", "k", "mean cut", "mean wall", "mean peak"],
            rows,
            title=f"recorded {len(records)} runs -> {args.db}"
            + (f" (label {args.label})" if args.label else ""),
        )
    )
    return 0


def _kinds(args: argparse.Namespace) -> tuple[str, ...]:
    kinds = getattr(args, "kinds", None)
    return tuple(kinds.split(",")) if kinds else ("partition",)


def _candidate_records(args: argparse.Namespace) -> list[dict]:
    from repro.obs.regress.rundb import RunDB, latest_per_key, run_key

    db = RunDB(args.db)
    kinds = _kinds(args)
    suite = getattr(args, "suite", None)
    # service/dist records are stamped bench="service-<suite>" /
    # "dist-<suite>" (they run over the suite's instances under a
    # different harness, they are not the suite itself)
    benches = (
        {suite, f"service-{suite}", f"dist-{suite}"} if suite else {None}
    )
    records = [
        r
        for r in db.query(label=args.label)
        if r.get("kind") in kinds
        and (suite is None or r.get("bench") in benches)
    ]
    # append order is chronological: keep the freshest run per identity
    return latest_per_key(records, run_key)


def cmd_bench_baseline(args: argparse.Namespace) -> int:
    from repro.obs.regress.compare import DEFAULT_METRICS, capture_baseline
    from repro.obs.regress.rundb import (
        DIST_METRICS,
        SERVICE_METRICS,
        environment_stamp,
    )

    kinds = _kinds(args)
    records = _candidate_records(args)
    if not records:
        raise SystemExit(
            f"no {'/'.join(kinds)} records in {args.db} match the filter"
        )
    metrics = DEFAULT_METRICS + ("imbalance",)
    if "service" in kinds:
        metrics = metrics + SERVICE_METRICS
    if "dist" in kinds:
        metrics = metrics + tuple(
            m for m in DIST_METRICS if m not in metrics
        )
    base = capture_baseline(
        records, args.name, env=environment_stamp(), metrics=metrics,
        kinds=kinds,
    )
    base.save(args.out)
    n_seeds = {len(g["seeds"]) for g in base.groups.values()}
    print(
        f"baseline '{args.name}': {len(base.groups)} groups "
        f"({sorted(n_seeds)} seeds each) -> {args.out}"
    )
    return 0


def cmd_bench_compare(args: argparse.Namespace) -> int:
    from repro.obs.regress import report as R
    from repro.obs.regress.compare import (
        Baseline,
        CompareThresholds,
        compare,
    )
    from repro.obs.regress.rundb import DIST_METRICS, SERVICE_METRICS, RunDB

    baseline = Baseline.load(args.baseline)
    kinds = _kinds(args)
    candidates = _candidate_records(args)
    if not candidates:
        raise SystemExit(f"no candidate records in {args.db} match the filter")
    thresholds = CompareThresholds()
    if args.metrics:
        metrics = tuple(args.metrics.split(","))
    elif kinds == ("service",):
        metrics = SERVICE_METRICS
    elif kinds == ("dist",):
        metrics = DIST_METRICS
    else:
        metrics = ("cut", "peak_bytes", "wall_seconds")
    result = compare(
        baseline, candidates, metrics=metrics, kinds=kinds,
        thresholds=thresholds,
    )
    trends = R.trend_lines(RunDB(args.db).load(), metric=metrics[0])
    md = R.render_markdown(
        result,
        baseline=baseline,
        candidate_label=args.label,
        trend_lines=trends,
    )
    print(md)
    if args.report:
        Path(args.report).write_text(md)
        print(f"report:     {args.report}")
    traj = R.trajectory_dict(
        result,
        candidate_records=candidates,
        baseline=baseline,
        candidate_label=args.label,
    )
    R.write_trajectory(args.trajectory, traj)
    print(f"trajectory: {args.trajectory}")
    if args.attrib:
        _write_attrib_diff(args.attrib, baseline, candidates, args.label)
        print(f"attribution: {args.attrib}")
    if args.gate and result.regressed:
        print("perf gate: FAILED (confirmed regression)")
        return 1
    if args.gate:
        print("perf gate: passed")
    return 0


def _write_attrib_diff(path, baseline, candidates, label) -> None:
    """Full per-phase profile diff (every section, every phase, no verdict
    filter) -- the CI artifact that answers "where did the time/bytes move"
    even when no metric was flagged."""
    import json

    from repro.obs.regress import attrib as A

    base_profile = A.aggregate_profiles(
        g.get("profile", {}) for g in baseline.groups.values()
    )
    cand_profile = A.profiles_from_records(candidates)
    deltas = {
        section: [
            {
                "phase": d.phase,
                "metric": d.metric,
                "base": d.base,
                "cand": d.cand,
                "pct": None if d.pct == float("inf") else round(d.pct, 2),
                "kernel": d.kernel,
            }
            for d in A.diff_profiles(
                base_profile,
                cand_profile,
                section=section,
                min_pct=0.0,
                min_share=0.0,
                top=64,
            )
        ]
        for section in A.PROFILE_KEYS
    }
    payload = {
        "schema": 1,
        "kind": "attribution-diff",
        "baseline": baseline.name,
        "candidate_label": label,
        "base_profile": base_profile,
        "cand_profile": cand_profile,
        "deltas": deltas,
    }
    Path(path).write_text(json.dumps(payload, indent=1))


def cmd_bench_service(args: argparse.Namespace) -> int:
    from repro.bench.reporting import render_table
    from repro.bench.service import run_service_bench
    from repro.core.config import ServeConfig
    from repro.obs.regress.rundb import RunDB

    cfg = C.preset(args.preset, p=args.threads).with_(epsilon=args.epsilon)
    serve_cfg = ServeConfig(
        drift_threshold=args.drift_threshold,
        warm_start=not args.no_warm_start,
    )
    instances = _bench_instances(args)
    db = RunDB(args.db)
    records = run_service_bench(
        tuple(instances),
        tuple(args.k),
        tuple(args.seeds),
        config=cfg,
        serve_config=serve_cfg,
        rundb=db,
        bench=f"service-{args.suite}",
        label=args.label,
        progress=True,
    )
    rows = []
    for rec in records:
        run = rec["run"]
        rows.append(
            (
                run["instance"],
                run["k"],
                run["seed"],
                f"{run['p50_seconds'] * 1e3:.1f}ms",
                f"{run['p99_seconds'] * 1e3:.1f}ms",
                f"{run['warm_over_full']:.3f}",
                f"{run['cut_overhead']:.3f}",
                f"{run['cache_hit_rate']:.2f}",
            )
        )
    print(
        render_table(
            ["instance", "k", "seed", "p50", "p99", "warm/full",
             "cut ovhd", "hit rate"],
            rows,
            title=f"recorded {len(records)} service traces -> {args.db}"
            + (f" (label {args.label})" if args.label else ""),
        )
    )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.core.config import ServeConfig
    from repro.serve.http import serve_forever
    from repro.serve.service import PartitionService

    cfg = C.preset(args.preset, p=args.threads, epsilon=args.epsilon)
    serve_cfg = ServeConfig(
        cache_budget_bytes=int(args.cache_budget_mb * 1024 * 1024),
        drift_threshold=args.drift_threshold,
        warm_start=not args.no_warm_start,
    )

    async def _main() -> None:
        service = await PartitionService.create(cfg, serve_cfg)
        for spec in args.graph or []:
            name, _, path = spec.partition("=")
            if not path:
                path, name = name, Path(name).stem
            g = _load_graph(path)
            fp = await service.register_graph(name, g)
            print(f"registered {name}: n={g.n} m={g.m} fingerprint={fp}")
        for iname in args.instance or []:
            from repro.bench.instances import load_instance

            g = load_instance(iname)
            fp = await service.register_graph(iname, g)
            print(f"registered {iname}: n={g.n} m={g.m} fingerprint={fp}")
        await serve_forever(
            service,
            host=args.host,
            port=args.port,
            ready_callback=lambda addr: print(
                f"serving on http://{addr[0]}:{addr[1]}", flush=True
            ),
        )

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print("shutting down")
    return 0


def cmd_bench_dist(args: argparse.Namespace) -> int:
    from repro.bench.dist import DEFAULT_MODES, run_dist_bench
    from repro.bench.reporting import fmt_bytes, render_table
    from repro.obs.regress.rundb import RunDB

    modes = DEFAULT_MODES
    if args.modes:
        wanted = set(args.modes.split(","))
        modes = tuple(m for m in DEFAULT_MODES if m[0] in wanted)
        unknown = wanted - {m[0] for m in DEFAULT_MODES}
        if unknown:
            raise SystemExit(f"unknown dist mode(s): {sorted(unknown)}")
    instances = _bench_instances(args)
    db = RunDB(args.db)
    records = run_dist_bench(
        tuple(instances),
        tuple(args.ranks),
        tuple(args.k),
        tuple(args.seeds),
        modes=modes,
        rundb=db,
        bench=f"dist-{args.suite}",
        label=args.label,
        artifacts_dir=args.artifacts,
        progress=True,
    )
    rows = []
    for rec in records:
        run = rec["run"]
        rows.append(
            (
                run["algorithm"],
                run["instance"],
                run["ranks"],
                run["k"],
                run["cut"],
                f"{run['memory_ratio']:.3f}",
                fmt_bytes(run["max_rank_peak_bytes"]),
                fmt_bytes(run["comm_raw_bytes"]),
                fmt_bytes(run["comm_varint_bytes"]),
            )
        )
    print(
        render_table(
            ["algorithm", "instance", "ranks", "k", "cut", "mem ratio",
             "max rank peak", "comm raw", "comm varint"],
            rows,
            title=f"recorded {len(records)} dist runs -> {args.db}"
            + (f" (label {args.label})" if args.label else ""),
        )
    )
    return 0


def cmd_bench_trend(args: argparse.Namespace) -> int:
    from repro.obs.regress import report as R
    from repro.obs.regress.rundb import RunDB

    records = RunDB(args.db).load()
    if not records:
        raise SystemExit(f"run DB {args.db} is empty")
    lines = R.trend_lines(records, metric=args.metric)
    lines += R.microbench_trend_lines(records)
    if not lines:
        print("(no matching records)")
        return 0
    print("\n".join(lines))
    return 0


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = ap.add_subparsers(dest="command", required=True)

    p = sub.add_parser("partition", help="partition a graph file")
    p.add_argument("graph")
    p.add_argument("-k", type=int, required=True)
    p.add_argument("--preset", default="terapart", choices=sorted(C.PRESETS))
    p.add_argument("--epsilon", type=float, default=0.03)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--seeds",
        type=int,
        default=1,
        help="portfolio size: run this many seeds, keep the best",
    )
    p.add_argument(
        "--metrics",
        action="store_true",
        help="also report communication volume / connectivity metrics",
    )
    p.add_argument("--threads", type=int, default=8)
    p.add_argument("--out")
    p.add_argument(
        "--stream-compress",
        action="store_true",
        help="stream the file directly into compressed memory",
    )
    p.add_argument(
        "--selfcheck",
        action="store_true",
        help="run phase-boundary invariant checks and the conflict "
        "detector; exit 1 if any conflict is found",
    )
    p.add_argument(
        "--schedule-policy",
        choices=list(SCHEDULE_POLICIES),
        default=None,
        help="replay all simulated-parallel loops under this chunk "
        "interleaving (default: model issue order)",
    )
    p.add_argument(
        "--schedule-seed",
        type=int,
        default=0,
        help="seed for the 'random' schedule policy",
    )
    p.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="enable span tracing and write a Chrome-trace JSON "
        "(chrome://tracing / Perfetto) to PATH",
    )
    p.add_argument(
        "--metrics-json",
        metavar="PATH",
        default=None,
        help="enable span tracing and write the metrics registry "
        "(counters + per-phase memory waterfall) to PATH",
    )
    p.set_defaults(func=cmd_partition)

    p = sub.add_parser("compress", help="report compression ratios")
    p.add_argument("graph")
    p.set_defaults(func=cmd_compress)

    p = sub.add_parser("generate", help="generate a synthetic graph")
    p.add_argument("--family", required=True, choices=sorted(generators.GENERATORS))
    p.add_argument("--n", type=int, required=True)
    p.add_argument("--degree", type=float, default=8.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True)
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("stats", help="print graph statistics")
    p.add_argument("graph")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser(
        "lint",
        help="AST discipline checks: parallel access, tracked allocation, "
        "integer widths, phase names (see DESIGN.md section 9)",
    )
    p.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: the repro package)",
    )
    p.add_argument(
        "--baseline",
        default="analysis/baseline.json",
        help="accepted-findings baseline (default: %(default)s)",
    )
    p.add_argument(
        "--gate",
        action="store_true",
        help="exit 1 only on findings not covered by the baseline",
    )
    p.add_argument(
        "--update-baseline",
        action="store_true",
        help="accept all current findings into the baseline file",
    )
    p.add_argument(
        "--passes",
        default=None,
        help="comma-separated subset of passes (default: all): "
        "parallel-access,untracked-alloc,int-width,phase-discipline",
    )
    p.add_argument("--json", default=None, help="write a JSON report here")
    p.add_argument(
        "--format",
        choices=("text", "sarif"),
        default="text",
        help="stdout format: human-readable text or SARIF 2.1.0 "
        "(default: %(default)s)",
    )
    p.add_argument(
        "--sarif",
        default=None,
        help="also write a SARIF 2.1.0 report here (for code-scanning upload)",
    )
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "serve",
        help="long-lived partitioning service: HTTP front end with "
        "admission batching, a byte-budgeted cache, and incremental "
        "(warm-start) repartitioning under graph deltas (DESIGN.md §11)",
    )
    p.add_argument(
        "--graph",
        action="append",
        default=None,
        metavar="NAME=PATH",
        help="register a graph file under NAME (repeatable; bare PATH "
        "uses the file stem as the name)",
    )
    p.add_argument(
        "--instance",
        action="append",
        default=None,
        help="register a named benchmark instance (repeatable)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8642)
    p.add_argument("--preset", default="terapart", choices=sorted(C.PRESETS))
    p.add_argument("--epsilon", type=float, default=0.03)
    p.add_argument("--threads", type=int, default=8)
    p.add_argument(
        "--cache-budget-mb",
        type=float,
        default=256.0,
        help="byte budget of the graph/partition LRU cache",
    )
    p.add_argument(
        "--drift-threshold",
        type=float,
        default=0.25,
        help="cumulative drift fraction forcing a full repartition",
    )
    p.add_argument(
        "--no-warm-start",
        action="store_true",
        help="disable incremental repartitioning (every run full)",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "bench",
        help="regression observatory: record runs, baseline, compare, trend",
    )
    bench_sub = p.add_subparsers(dest="bench_command", required=True)

    def _common_db_args(bp, *, suite: bool = True):
        bp.add_argument(
            "--db",
            default="BENCH_runs.jsonl",
            help="append-only JSONL run database (default: %(default)s)",
        )
        bp.add_argument(
            "--label",
            default=None,
            help="grouping label stamped on / filtering DB records",
        )
        if suite:
            from repro.bench.instances import SUITES

            bp.add_argument(
                "--suite",
                default="smoke",
                choices=sorted(SUITES),
                help="instance suite (default: %(default)s)",
            )

    bp = bench_sub.add_parser(
        "record", help="run a matrix with obs enabled and append to the DB"
    )
    _common_db_args(bp)
    bp.add_argument(
        "--preset",
        action="append",
        default=None,
        choices=sorted(C.PRESETS),
        help="config preset(s) to run (repeatable; default: terapart)",
    )
    bp.add_argument(
        "--instances",
        nargs="+",
        default=None,
        help="restrict the suite to these instance names",
    )
    bp.add_argument("-k", type=int, nargs="+", default=[4])
    bp.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2])
    bp.add_argument("--threads", type=int, default=8)
    bp.set_defaults(
        func=lambda a: cmd_bench_record(_default_presets(a)),
    )

    bp = bench_sub.add_parser(
        "service",
        help="replay the serving trace over a suite and append "
        "service-kind records to the DB",
    )
    _common_db_args(bp)
    bp.add_argument(
        "--preset", default="terapart", choices=sorted(C.PRESETS)
    )
    bp.add_argument(
        "--instances",
        nargs="+",
        default=None,
        help="restrict the suite to these instance names",
    )
    bp.add_argument("-k", type=int, nargs="+", default=[8])
    bp.add_argument("--seeds", type=int, nargs="+", default=[0])
    bp.add_argument("--threads", type=int, default=8)
    bp.add_argument("--epsilon", type=float, default=0.03)
    bp.add_argument(
        "--drift-threshold",
        type=float,
        default=0.25,
        help="cumulative drift fraction forcing a full repartition",
    )
    bp.add_argument(
        "--no-warm-start",
        action="store_true",
        help="disable incremental repartitioning (every run full)",
    )
    bp.set_defaults(func=cmd_bench_service)

    bp = bench_sub.add_parser(
        "dist",
        help="run the distributed partitioner over a suite with cluster "
        "observability on and append dist-kind records to the DB",
    )
    _common_db_args(bp)
    bp.add_argument(
        "--instances",
        nargs="+",
        default=None,
        help="restrict the suite to these instance names",
    )
    bp.add_argument(
        "--ranks",
        type=int,
        nargs="+",
        default=[2, 4],
        help="simulated rank counts (default: %(default)s)",
    )
    bp.add_argument("-k", type=int, nargs="+", default=[8])
    bp.add_argument("--seeds", type=int, nargs="+", default=[0])
    bp.add_argument(
        "--modes",
        default=None,
        help="comma-separated systems to run: dkaminpar, xterapart "
        "(default: both)",
    )
    bp.add_argument(
        "--artifacts",
        default=None,
        help="directory for per-cell merged traces + memory-ratio reports",
    )
    bp.set_defaults(func=cmd_bench_dist)

    bp = bench_sub.add_parser(
        "baseline", help="capture a named baseline from recorded runs"
    )
    _common_db_args(bp)
    bp.add_argument(
        "--kinds",
        default=None,
        help="comma-separated record kinds (default: partition; "
        "use 'service' for serving baselines, 'dist' for distributed)",
    )
    bp.add_argument("--name", required=True, help="baseline name")
    bp.add_argument(
        "--out",
        default=None,
        help="output JSON (default: benchmarks/baselines/<name>.json)",
    )
    bp.set_defaults(func=lambda a: cmd_bench_baseline(_default_baseline_out(a)))

    bp = bench_sub.add_parser(
        "compare",
        help="compare candidate runs against a baseline; --gate exits 1 "
        "on a confirmed regression",
    )
    _common_db_args(bp)
    bp.add_argument(
        "--baseline", required=True, help="baseline JSON captured earlier"
    )
    bp.add_argument(
        "--kinds",
        default=None,
        help="comma-separated record kinds (default: partition; "
        "use 'service' to gate serving benchmarks, 'dist' for distributed)",
    )
    bp.add_argument(
        "--metrics",
        default=None,
        help="comma-separated metric list (default: cut,peak_bytes,"
        "wall_seconds; service kind: p50/p99/warm_over_full/cut_overhead)",
    )
    bp.add_argument(
        "--gate",
        action="store_true",
        help="exit 1 if any metric is classified regressed or the "
        "imbalance hard gate fails",
    )
    bp.add_argument("--report", default=None, help="write the Markdown report here")
    bp.add_argument(
        "--trajectory",
        default="BENCH_trajectory.json",
        help="machine-readable output (default: %(default)s)",
    )
    bp.add_argument(
        "--attrib",
        default=None,
        help="write the full per-phase attribution diff (JSON) here, "
        "regardless of verdicts",
    )
    bp.set_defaults(func=cmd_bench_compare)

    bp = bench_sub.add_parser(
        "trend", help="sparkline trends over the run DB history"
    )
    _common_db_args(bp, suite=False)
    bp.add_argument("--metric", default="cut")
    bp.set_defaults(func=cmd_bench_trend)
    return ap


def _default_presets(args: argparse.Namespace) -> argparse.Namespace:
    if not args.preset:
        args.preset = ["terapart"]
    return args


def _default_baseline_out(args: argparse.Namespace) -> argparse.Namespace:
    if args.out is None:
        args.out = f"benchmarks/baselines/{args.name}.json"
    return args


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
