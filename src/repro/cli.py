"""Command-line interface: ``python -m repro <command>``.

Commands mirror how the original KaMinPar/TeraPart binaries are driven:

* ``partition``  -- partition a graph file (binary or METIS format) into k
  blocks and write the block assignment.
* ``compress``   -- convert a binary graph to the compressed representation
  and report ratios (gap-only vs gap+interval).
* ``generate``   -- synthesize a benchmark graph to a file.
* ``stats``      -- print n / m / degree / locality statistics.

Examples::

    python -m repro generate --family rgg2d --n 10000 --out g.bin
    python -m repro partition g.bin -k 16 --preset terapart --out g.part16
    python -m repro compress g.bin
    python -m repro stats g.bin
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

import repro
from repro.core import config as C
from repro.graph import generators
from repro.graph.compressed import compress_graph
from repro.graph.io import read_binary, read_metis, stream_compressed, write_binary
from repro.graph.stats import compute_stats
from repro.parallel.runtime import SCHEDULE_POLICIES


def _load_graph(path: str, *, compressed: bool = False):
    p = Path(path)
    if p.suffix in (".metis", ".graph", ".txt"):
        if compressed:
            return compress_graph(read_metis(p))
        return read_metis(p)
    if compressed:
        return stream_compressed(p)
    return read_binary(p)


def cmd_partition(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph, compressed=args.stream_compress)
    cfg = C.preset(args.preset, seed=args.seed, p=args.threads, epsilon=args.epsilon)
    if args.selfcheck or args.schedule_policy is not None or args.schedule_seed:
        cfg = cfg.with_(
            debug=C.DebugConfig(
                validation_level=2 if args.selfcheck else 0,
                detect_conflicts=bool(args.selfcheck),
                schedule_policy=args.schedule_policy,
                schedule_seed=args.schedule_seed,
            )
        )
    want_obs = bool(args.trace_out or args.metrics_json)
    if want_obs:
        cfg = cfg.with_(obs=C.ObsConfig(enabled=True))
    t0 = time.perf_counter()
    if args.seeds > 1:
        from repro.core.portfolio import partition_portfolio

        pr = partition_portfolio(
            graph, args.k, cfg, seeds=range(args.seed, args.seed + args.seeds)
        )
        result = pr.best
        print(
            f"portfolio:  best of {args.seeds} seeds "
            f"(mean cut {pr.mean_cut:.0f}, std {pr.cut_std:.0f})"
        )
    else:
        result = repro.partition(graph, args.k, cfg)
    elapsed = time.perf_counter() - t0
    out = args.out or f"{args.graph}.part{args.k}"
    np.savetxt(out, result.partition, fmt="%d")
    print(f"cut:        {result.cut} ({result.cut_fraction:.3%})")
    print(f"imbalance:  {result.imbalance:.4f} (balanced: {result.balanced})")
    print(f"peak bytes: {result.peak_bytes}")
    print(f"time:       {elapsed:.2f}s wall")
    print(f"partition:  {out}")
    if args.metrics:
        from repro.core.metrics import compute_metrics

        print("metrics:    " + compute_metrics(result.pgraph).row())
    if want_obs and result.trace is not None:
        from repro.obs.export import render_level_summary, write_chrome_trace

        if args.trace_out:
            write_chrome_trace(args.trace_out, result.trace)
            print(f"trace:      {args.trace_out}")
        if args.metrics_json:
            import json

            with open(args.metrics_json, "w") as f:
                json.dump(result.obs, f, indent=2)
                f.write("\n")
            print(f"metrics js: {args.metrics_json}")
        print(render_level_summary(result.trace))
    if result.selfcheck is not None:
        sc = result.selfcheck
        n_conflicts = len(sc["conflicts"])
        print(
            f"selfcheck:  {sc['invariant_checks']} invariant checks ok, "
            f"{sc['regions_checked']} parallel regions / "
            f"{sc['accesses_recorded']} accesses race-checked, "
            f"{n_conflicts} conflicts "
            f"(schedule {sc['schedule_policy']}, seed {sc['schedule_seed']})"
        )
        if n_conflicts:
            for c in sc["conflicts"][:10]:
                print(f"  {c}")
            return 1
    return 0


def cmd_compress(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    full = compress_graph(graph)
    gap = compress_graph(graph, enable_intervals=False)
    print(f"n={graph.n} m={graph.m}")
    print(f"CSR bytes:          {graph.nbytes}")
    print(f"compressed bytes:   {full.nbytes} (ratio {full.stats.ratio:.2f}x)")
    print(f"gap-only bytes:     {gap.nbytes} (ratio {gap.stats.ratio:.2f}x)")
    print(f"intervals:          {full.stats.num_intervals}")
    print(f"chunked vertices:   {full.stats.num_chunked_vertices}")
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    kwargs = {"n": args.n, "seed": args.seed}
    if args.family in ("rgg2d", "rhg", "weblike", "er"):
        kwargs["avg_degree"] = args.degree
    if args.family == "kmer":
        kwargs["degree"] = int(args.degree)
    if args.family == "ba":
        kwargs["m_attach"] = max(1, int(args.degree // 2))
    graph = generators.generate(args.family, **kwargs)
    write_binary(graph, args.out)
    print(f"wrote {args.out}: n={graph.n} m={graph.m}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    st = compute_stats(graph)
    print(st.row())
    print(f"mean log2 gap: {st.mean_log2_gap:.2f}")
    print(f"interval edge fraction: {st.interval_edge_fraction:.1%}")
    print(f"isolated vertices: {st.isolated_vertices}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = ap.add_subparsers(dest="command", required=True)

    p = sub.add_parser("partition", help="partition a graph file")
    p.add_argument("graph")
    p.add_argument("-k", type=int, required=True)
    p.add_argument("--preset", default="terapart", choices=sorted(C.PRESETS))
    p.add_argument("--epsilon", type=float, default=0.03)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--seeds",
        type=int,
        default=1,
        help="portfolio size: run this many seeds, keep the best",
    )
    p.add_argument(
        "--metrics",
        action="store_true",
        help="also report communication volume / connectivity metrics",
    )
    p.add_argument("--threads", type=int, default=8)
    p.add_argument("--out")
    p.add_argument(
        "--stream-compress",
        action="store_true",
        help="stream the file directly into compressed memory",
    )
    p.add_argument(
        "--selfcheck",
        action="store_true",
        help="run phase-boundary invariant checks and the conflict "
        "detector; exit 1 if any conflict is found",
    )
    p.add_argument(
        "--schedule-policy",
        choices=list(SCHEDULE_POLICIES),
        default=None,
        help="replay all simulated-parallel loops under this chunk "
        "interleaving (default: model issue order)",
    )
    p.add_argument(
        "--schedule-seed",
        type=int,
        default=0,
        help="seed for the 'random' schedule policy",
    )
    p.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="enable span tracing and write a Chrome-trace JSON "
        "(chrome://tracing / Perfetto) to PATH",
    )
    p.add_argument(
        "--metrics-json",
        metavar="PATH",
        default=None,
        help="enable span tracing and write the metrics registry "
        "(counters + per-phase memory waterfall) to PATH",
    )
    p.set_defaults(func=cmd_partition)

    p = sub.add_parser("compress", help="report compression ratios")
    p.add_argument("graph")
    p.set_defaults(func=cmd_compress)

    p = sub.add_parser("generate", help="generate a synthetic graph")
    p.add_argument("--family", required=True, choices=sorted(generators.GENERATORS))
    p.add_argument("--n", type=int, required=True)
    p.add_argument("--degree", type=float, default=8.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True)
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("stats", help="print graph statistics")
    p.add_argument("graph")
    p.set_defaults(func=cmd_stats)
    return ap


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
