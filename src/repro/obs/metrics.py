"""Metrics registry: one structured artifact per partitioning run.

Collapses the span trace and the memory ledger into a JSON-serializable
document with four sections:

* ``counters`` -- global counter totals (the counter taxonomy of
  DESIGN.md §7: ``decode.*``, ``lp.*``, ``contraction.*``, ``fm.*`` ...),
* ``phases`` -- one record per span: wall time, hierarchy level, memory at
  entry/exit and the in-span high-water mark, plus the span's own counters,
* ``waterfall`` -- the per-phase peak-memory waterfall (Figure 2): for every
  ledger-coupled span, the exact ``MemoryTracker`` phase peak and the
  category breakdown *at the peak sample* (breakdown values sum to the
  peak, and entries equal ``MemoryReport.phase_peaks`` byte-for-byte),
* ``threads`` -- per-(region, tid) chunk/item/time attribution from
  :meth:`ParallelRuntime.execute`.

Benchmarks consume this registry instead of re-measuring: a
``BENCH_*.json`` produced from ``--metrics-json`` is regression-comparable
against any later run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.obs.tracer import SpanTracer

SCHEMA_VERSION = 1


@dataclass
class MetricsRegistry:
    """Snapshot of one run's telemetry, ready for JSON export."""

    counters: dict[str, float] = field(default_factory=dict)
    phases: list[dict] = field(default_factory=list)
    waterfall: list[dict] = field(default_factory=list)
    threads: list[dict] = field(default_factory=list)
    peak_bytes: int = 0
    peak_breakdown: dict[str, int] = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_run(
        cls, tracer: SpanTracer, tracker=None, *, meta: dict | None = None
    ) -> "MetricsRegistry":
        """Assemble the registry from a finished tracer (+ its ledger)."""
        tracker = tracker if tracker is not None else tracer.tracker
        reg = cls(meta=dict(meta or {}))
        reg.counters = {k: _num(v) for k, v in sorted(tracer.counters.items())}

        for s in tracer.spans:
            rec = {
                "name": s.name,
                "parent": s.parent,
                "category": s.category,
                "level": s.level,
                "tid": s.tid,
                "wall_seconds": s.duration,
                "mem_enter_bytes": int(s.mem_enter),
                "mem_exit_bytes": int(s.mem_exit),
                "mem_peak_bytes": int(s.mem_peak),
            }
            if s.tracker_path is not None:
                rec["tracker_path"] = s.tracker_path
            if s.counters:
                rec["counters"] = {
                    k: _num(v) for k, v in sorted(s.counters.items())
                }
            reg.phases.append(rec)

        if tracker is not None:
            reg.peak_bytes = int(tracker.peak_bytes)
            reg.peak_breakdown = {
                k: int(v) for k, v in sorted(tracker.peak_breakdown.items())
            }
            ledger_phases = tracker.phases()
            seen: set[str] = set()
            for s in tracer.spans:
                path = s.tracker_path
                if path is None or path in seen or path not in ledger_phases:
                    continue
                seen.add(path)
                stats = ledger_phases[path]
                reg.waterfall.append(
                    {
                        "phase": path,
                        "name": s.name,
                        "level": s.level,
                        "peak_bytes": int(stats.peak_bytes),
                        "breakdown": {
                            k: int(v)
                            for k, v in sorted(stats.peak_breakdown.items())
                        },
                    }
                )

        for (phase, tid), ts in sorted(tracer.thread_slices.items()):
            reg.threads.append(
                {
                    "phase": phase,
                    "tid": tid,
                    "chunks": ts.chunks,
                    "items": ts.items,
                    "seconds": ts.seconds,
                }
            )
        return reg

    # ------------------------------------------------------------------ #
    @classmethod
    def from_counters(
        cls, counters: dict, *, meta: dict | None = None
    ) -> "MetricsRegistry":
        """Registry holding bare counters, no span tree.

        Long-lived processes (the ``repro serve`` front end) accumulate
        gauges across many partitioner runs; this wraps such a counter
        snapshot in the same schema :meth:`from_run` produces, so every
        consumer of a ``BENCH_*.json`` / run-DB ``obs`` section reads
        service telemetry without a second code path.
        """
        return cls(
            counters={k: _num(v) for k, v in sorted(counters.items())},
            meta=dict(meta or {}),
        )

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "meta": self.meta,
            "counters": self.counters,
            "peak_bytes": self.peak_bytes,
            "peak_breakdown": self.peak_breakdown,
            "phases": self.phases,
            "waterfall": self.waterfall,
            "threads": self.threads,
        }

    def write_json(self, path) -> None:
        with open(path, "w") as f:
            json.dump(self.to_dict(), f, indent=1, sort_keys=False)
            f.write("\n")


def _num(v: float) -> float | int:
    """Store integral counters as ints so JSON diffs stay clean."""
    return int(v) if float(v).is_integer() else float(v)
