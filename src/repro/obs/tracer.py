"""Low-overhead span tracer: the telemetry spine of the partitioner.

A *span* is a named, nested interval of work (a phase, a hierarchy level, a
refinement pass).  Spans carry:

* the algorithm phase and multilevel hierarchy ``level`` they belong to,
* virtual-thread attribution (``tid``) for work done inside
  :meth:`~repro.parallel.runtime.ParallelRuntime.execute` loops,
* named counters (edges decoded, LP bumps, FM moves, gain-table width mix),
* memory snapshots from the :class:`~repro.memory.tracker.MemoryTracker`
  taken at every span boundary -- enter bytes, exit bytes, and the in-span
  high-water mark -- which the metrics registry turns into the per-phase
  memory waterfall of the paper's Figures 1 and 2.

Two span flavours exist:

* :meth:`SpanTracer.phase` couples the span to a ``tracker.phase`` scope, so
  the span's peak is *exactly* the ledger's per-phase peak (the numbers in
  :mod:`repro.memory.report` and the trace agree byte-for-byte);
* :meth:`SpanTracer.span` is a pure timing/counter span (kernel rounds,
  passes) whose memory fields come from boundary samples only.

When observability is disabled the partitioner threads a shared
:class:`NullTracer` through instead: every call is a constant-time no-op and
``phase`` degenerates to the plain ``tracker.phase`` context manager the
driver has always used, so the disabled path is bit-identical to a build
without the tracer (see ``tests/test_obs_differential.py``).

The tracer deliberately never touches the run's RNG streams, the schedule,
or any shared algorithm state: tracing must not perturb the computation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Span:
    """One recorded interval.  Times are seconds from the tracer's epoch."""

    sid: int
    parent: int  # parent span id, -1 for roots
    name: str
    category: str = "span"  # "phase" for tracker-coupled spans
    level: int | None = None  # multilevel hierarchy level, if applicable
    tid: int = 0  # owning virtual thread (0 = driver)
    t_start: float = 0.0
    t_end: float = 0.0
    mem_enter: int = 0  # ledger bytes at entry
    mem_exit: int = 0  # ledger bytes at exit
    mem_peak: int = 0  # high-water mark while the span was open
    tracker_path: str | None = None  # coupled MemoryTracker phase path
    counters: dict[str, float] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


@dataclass
class ThreadSlice:
    """Aggregated chunk work of one virtual thread inside one region."""

    phase: str
    tid: int
    chunks: int = 0
    items: int = 0  # order entries processed (vertices, clusters, ...)
    seconds: float = 0.0


class SpanTracer:
    """Records a tree of spans plus global counters and thread slices."""

    enabled = True

    def __init__(self, tracker=None, *, clock=time.perf_counter) -> None:
        self.tracker = tracker
        self._clock = clock
        self.epoch = clock()
        self.spans: list[Span] = []
        self._stack: list[int] = []
        self.counters: dict[str, float] = {}
        self.thread_slices: dict[tuple[str, int], ThreadSlice] = {}

    # ------------------------------------------------------------------ #
    # span lifecycle
    # ------------------------------------------------------------------ #
    def _open(
        self,
        name: str,
        *,
        category: str = "span",
        level: int | None = None,
        tid: int = 0,
        tracker_path: str | None = None,
    ) -> int:
        mem = self.tracker.current_bytes if self.tracker is not None else 0
        sid = len(self.spans)
        span = Span(
            sid=sid,
            parent=self._stack[-1] if self._stack else -1,
            name=name,
            category=category,
            level=level,
            tid=tid,
            t_start=self._clock() - self.epoch,
            mem_enter=mem,
            mem_peak=mem,
            tracker_path=tracker_path,
        )
        self.spans.append(span)
        self._stack.append(sid)
        return sid

    def _close(self, sid: int) -> Span:
        assert self._stack and self._stack[-1] == sid, "span close out of order"
        self._stack.pop()
        span = self.spans[sid]
        span.t_end = self._clock() - self.epoch
        mem = self.tracker.current_bytes if self.tracker is not None else 0
        span.mem_exit = mem
        span.mem_peak = max(span.mem_peak, span.mem_enter, mem)
        # a child's high-water mark is also the parent's
        if span.parent >= 0:
            parent = self.spans[span.parent]
            parent.mem_peak = max(parent.mem_peak, span.mem_peak)
        return span

    def span(
        self, name: str, *, level: int | None = None, tid: int = 0
    ) -> "_SpanContext":
        """A pure timing/counter span (no ledger phase is entered)."""
        return _SpanContext(self, name, level=level, tid=tid)

    def phase(
        self, name: str, tracker=None, *, level: int | None = None
    ) -> "_PhaseSpanContext":
        """A span coupled to a ``MemoryTracker`` phase of the same name.

        Entering opens both the ledger phase and the span; on exit the
        span's ``mem_peak`` is read back from the ledger's per-phase peak,
        so trace and memory report agree exactly.
        """
        return _PhaseSpanContext(self, tracker or self.tracker, name, level)

    # ------------------------------------------------------------------ #
    # counters & thread attribution
    # ------------------------------------------------------------------ #
    def add(self, name: str, value: float = 1) -> None:
        """Bump counter ``name`` on the current span and globally."""
        self.counters[name] = self.counters.get(name, 0) + value
        if self._stack:
            c = self.spans[self._stack[-1]].counters
            c[name] = c.get(name, 0) + value

    def record_chunk(
        self, phase: str, tid: int, items: int, seconds: float
    ) -> None:
        """Attribute one executed chunk to ``(phase, tid)``.

        Called by :meth:`ParallelRuntime.execute` when a tracer is attached;
        aggregation (rather than one span per chunk) keeps traces of
        million-chunk runs small.
        """
        key = (phase, tid)
        ts = self.thread_slices.get(key)
        if ts is None:
            ts = self.thread_slices[key] = ThreadSlice(phase, tid)
        ts.chunks += 1
        ts.items += items
        ts.seconds += seconds

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def current_span(self) -> Span | None:
        return self.spans[self._stack[-1]] if self._stack else None

    def roots(self) -> list[Span]:
        return [s for s in self.spans if s.parent == -1]

    def children(self, sid: int) -> list[Span]:
        return [s for s in self.spans if s.parent == sid]

    def span_tree(self) -> list[dict]:
        """Nested ``{"name": ..., "children": [...]}`` structure (no timings).

        This is the shape golden-tested against a checked-in reference: it
        captures names and nesting only, so it is stable across machines.
        """
        kids: dict[int, list[int]] = {}
        for s in self.spans:
            kids.setdefault(s.parent, []).append(s.sid)

        def build(sid: int) -> dict:
            s = self.spans[sid]
            node: dict = {"name": s.name}
            ch = [build(c) for c in kids.get(sid, [])]
            if ch:
                node["children"] = ch
            return node

        return [build(s.sid) for s in self.roots()]

    def finish(self) -> None:
        """Close any spans left open (defensive; normal runs close all)."""
        while self._stack:
            self._close(self._stack[-1])


class _SpanContext:
    __slots__ = ("_tracer", "_name", "_level", "_tid", "_sid")

    def __init__(self, tracer: SpanTracer, name: str, *, level, tid) -> None:
        self._tracer = tracer
        self._name = name
        self._level = level
        self._tid = tid

    def __enter__(self) -> Span:
        self._sid = self._tracer._open(
            self._name, level=self._level, tid=self._tid
        )
        return self._tracer.spans[self._sid]

    def __exit__(self, *exc: object) -> None:
        self._tracer._close(self._sid)


class _PhaseSpanContext:
    __slots__ = ("_tracer", "_tracker", "_name", "_level", "_sid", "_pc", "_path")

    def __init__(self, tracer: SpanTracer, tracker, name: str, level) -> None:
        self._tracer = tracer
        self._tracker = tracker
        self._name = name
        self._level = level

    def __enter__(self) -> Span:
        self._pc = None
        self._path = None
        if self._tracker is not None:
            self._pc = self._tracker.phase(self._name)
            self._pc.__enter__()
            self._path = self._tracker.current_phase
        self._sid = self._tracer._open(
            self._name,
            category="phase",
            level=self._level,
            tracker_path=self._path,
        )
        return self._tracer.spans[self._sid]

    def __exit__(self, *exc: object) -> None:
        span = self._tracer._close(self._sid)
        if self._pc is not None:
            span.mem_peak = max(
                span.mem_peak, self._tracker.phase_peak(self._path)
            )
            self._pc.__exit__(*exc)


class _NullContext:
    """Shared reusable no-op context manager."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc: object) -> None:
        pass


_NULL_CONTEXT = _NullContext()


class NullTracer:
    """The disabled fast path: every operation is a constant-time no-op.

    ``phase`` returns the plain ``tracker.phase`` context manager, so call
    sites written as ``with ctx.phase(name):`` behave bit-identically to the
    pre-observability driver when tracing is off.
    """

    enabled = False
    __slots__ = ()

    def span(self, name: str, *, level=None, tid=0):
        return _NULL_CONTEXT

    def phase(self, name: str, tracker=None, *, level=None):
        if tracker is not None:
            return tracker.phase(name)
        return _NULL_CONTEXT

    def add(self, name: str, value: float = 1) -> None:
        pass

    def record_chunk(self, phase, tid, items, seconds) -> None:
        pass

    def finish(self) -> None:
        pass


#: Shared singleton; components may hold it without allocation cost.
NULL_TRACER = NullTracer()
