"""Trace exporters: Chrome-trace JSON and human-readable summaries.

``write_chrome_trace`` emits the Trace Event Format consumed by
``chrome://tracing`` and Perfetto (https://ui.perfetto.dev): ``B``/``E``
duration events per span (one lane per virtual thread), ``C`` counter
events carrying the memory ledger at every span boundary (the waterfall as
a live track), and ``M`` metadata naming the process and thread lanes.

Events are emitted in depth-first span order per thread, so ``B``/``E``
pairs nest strictly even when adjacent timestamps tie at microsecond
resolution.  Every event carries the five mandatory keys
``name/ph/ts/pid/tid`` (golden-schema-tested).

``render_level_summary`` prints the per-level table the paper's Figure 2
narrates: wall time, peak memory, and headline counters per hierarchy
level.
"""

from __future__ import annotations

import json

from repro.obs.tracer import Span, SpanTracer

PID = 1  # single-process reproduction


def chrome_trace_events(
    tracer: SpanTracer,
    *,
    pid: int = PID,
    process_name: str = "repro.partition",
) -> list[dict]:
    """The flat ``traceEvents`` list for a finished tracer.

    ``pid``/``process_name`` select the process lane the events land in:
    the shared-memory exporter keeps the single-process default, while the
    distributed roll-up (:mod:`repro.obs.dist.rollup`) emits one process
    per rank so the merged trace shows one track per rank.
    """
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "ts": 0,
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    tids = sorted({s.tid for s in tracer.spans} | {0})
    for tid in tids:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": tid,
                "args": {
                    "name": "driver" if tid == 0 else f"vthread-{tid}"
                },
            }
        )

    # depth-first emission keeps B/E strictly nested per tid
    kids: dict[int, list[Span]] = {}
    for s in tracer.spans:
        kids.setdefault(s.parent, []).append(s)

    def emit(span: Span) -> None:
        args: dict = {"category": span.category}
        if span.level is not None:
            args["level"] = span.level
        events.append(
            {
                "name": span.name,
                "ph": "B",
                "ts": span.t_start * 1e6,
                "pid": pid,
                "tid": span.tid,
                "args": args,
            }
        )
        events.append(_mem_counter(span.t_start, span.mem_enter, pid))
        for child in kids.get(span.sid, []):
            emit(child)
        end_args: dict = {
            "mem_enter_bytes": int(span.mem_enter),
            "mem_exit_bytes": int(span.mem_exit),
            "mem_peak_bytes": int(span.mem_peak),
        }
        if span.counters:
            end_args["counters"] = {
                k: v for k, v in sorted(span.counters.items())
            }
        events.append(
            {
                "name": span.name,
                "ph": "E",
                "ts": span.t_end * 1e6,
                "pid": pid,
                "tid": span.tid,
                "args": end_args,
            }
        )
        events.append(_mem_counter(span.t_end, span.mem_exit, pid))

    for root in kids.get(-1, []):
        emit(root)
    return events


def _mem_counter(t: float, bytes_now: int, pid: int = PID) -> dict:
    return {
        "name": "ledger-bytes",
        "ph": "C",
        "ts": t * 1e6,
        "pid": pid,
        "tid": 0,
        "args": {"bytes": int(bytes_now)},
    }


def chrome_trace(tracer: SpanTracer) -> dict:
    return {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
    }


def write_chrome_trace(path, tracer: SpanTracer) -> None:
    with open(path, "w") as f:
        json.dump(chrome_trace(tracer), f)
        f.write("\n")


# --------------------------------------------------------------------- #
# human-readable per-level summary
# --------------------------------------------------------------------- #
def _fmt_bytes(n: int) -> str:
    v = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(v) < 1024 or unit == "TiB":
            return f"{v:.1f} {unit}" if unit != "B" else f"{int(v)} B"
        v /= 1024
    raise AssertionError("unreachable")


#: headline counters shown in the summary table, in display order; a tuple
#: of keys sums into one column (compressed-decode + CSR-gather edges)
_SUMMARY_COUNTERS = (
    (("decode.edges", "decode.edges_csr"), "edges decoded"),
    ("lp.bumped", "bumps"),
    ("lp.moves", "lp moves"),
    ("contraction.coarse_edges", "coarse edges"),
    ("refine.lp_moves", "refine moves"),
    ("fm.moves", "fm moves"),
)


def render_level_summary(tracer: SpanTracer) -> str:
    """Per-hierarchy-level roll-up of wall time, peak memory and counters."""
    levels: dict[object, dict] = {}

    def fold(span: Span, acc: dict) -> None:
        acc["wall"] += span.duration
        acc["peak"] = max(acc["peak"], span.mem_peak)
        for k, v in span.counters.items():
            acc["counters"][k] = acc["counters"].get(k, 0) + v

    # attribute each *top-most* levelled span (and, via counters already
    # rolled into it, its children) to its level; unlevelled roots go to "-"
    for s in tracer.spans:
        if s.level is None:
            continue
        parent = tracer.spans[s.parent] if s.parent >= 0 else None
        if parent is not None and parent.level == s.level:
            continue  # nested same-level span: parent already counted
        acc = levels.setdefault(
            s.level, {"wall": 0.0, "peak": 0, "counters": {}}
        )
        fold(s, acc)
        # pull descendants' counters up (durations nest inside the parent)
        stack = [s.sid]
        while stack:
            sid = stack.pop()
            for child in tracer.spans:
                if child.parent != sid:
                    continue
                for k, v in child.counters.items():
                    acc["counters"][k] = acc["counters"].get(k, 0) + v
                acc["peak"] = max(acc["peak"], child.mem_peak)
                stack.append(child.sid)

    header = ["level", "wall", "peak mem"] + [
        label for _, label in _SUMMARY_COUNTERS
    ]
    rows: list[list[str]] = []
    for level in sorted(levels, key=lambda x: (x is None, x)):
        acc = levels[level]
        row = [
            str(level),
            f"{acc['wall']:.3f}s",
            _fmt_bytes(acc["peak"]),
        ]
        for key, _label in _SUMMARY_COUNTERS:
            keys = key if isinstance(key, tuple) else (key,)
            v = sum(acc["counters"].get(k, 0) for k in keys)
            row.append(str(int(v)) if float(v).is_integer() else f"{v:.1f}")
        rows.append(row)

    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(header, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for r in rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)
