"""Human (Markdown) and machine (``BENCH_trajectory.json``) reporting.

The Markdown report is what a PR reviewer reads: one verdict table, the
imbalance gate, the per-phase attribution of anything regressed, and
sparkline trends over the run database's history.  The trajectory JSON is
the same content machine-readable, uploaded as a CI artifact so the perf
history of a branch can be assembled without parsing logs.
"""

from __future__ import annotations

import json
import time
from collections.abc import Iterable
from pathlib import Path

from repro.bench.sparkline import sparkline
from repro.obs.regress.attrib import PhaseDelta, format_attribution
from repro.obs.regress.compare import Baseline, CompareReport
from repro.obs.regress.rundb import RUNDB_SCHEMA

_ARROWS = {"improved": "▼", "neutral": "·", "regressed": "▲"}


def _fmt_ratio(v: float) -> str:
    if v == float("inf"):
        return "inf"
    return f"{v:.3f}"


def render_markdown(
    report: CompareReport,
    *,
    baseline: Baseline | None = None,
    candidate_label: str | None = None,
    trend_lines: Iterable[str] = (),
) -> str:
    """The full compare report as GitHub-flavored Markdown."""
    out: list[str] = []
    title = f"# Bench compare — candidate vs baseline `{report.baseline_name}`"
    out.append(title)
    out.append("")
    status = "**REGRESSED**" if report.regressed else "ok"
    out.append(
        f"Overall: {status} · {len(report.keys_compared)} (algorithm, "
        f"instance, k) groups compared"
        + (f" · candidate label `{candidate_label}`" if candidate_label else "")
    )
    if baseline is not None and baseline.env:
        sha = baseline.env.get("git_sha")
        out.append(
            f"Baseline captured at `{(sha or 'unknown')[:12]}` "
            f"(python {baseline.env.get('python')}, "
            f"numpy {baseline.env.get('numpy')})"
        )
    if report.keys_missing:
        out.append(
            f"Missing from candidate: {', '.join(report.keys_missing)}"
        )
    out.append("")

    out.append("| metric | geomean ratio | 95% CI | band | verdict |")
    out.append("|---|---|---|---|---|")
    for v in report.verdicts:
        extras = []
        if v.dropped_pairs:
            extras.append(f"{v.dropped_pairs} pair(s) hit zero, excluded")
        if v.infinite_pairs:
            extras.append(f"{v.infinite_pairs} pair(s) lost a zero baseline")
        note = f" ({'; '.join(extras)})" if extras else ""
        out.append(
            f"| {v.metric} | {_fmt_ratio(v.ratio)} "
            f"| [{_fmt_ratio(v.ci_low)}, {_fmt_ratio(v.ci_high)}] "
            f"| ±{v.neutral_band:.0%} "
            f"| {_ARROWS[v.classification]} {v.classification}{note} |"
        )
    out.append("")

    out.append("## Balance gate")
    if report.gate.passed:
        out.append("All candidate runs balanced — hard gate passed.")
    else:
        out.append(
            f"**{len(report.gate.violations)} imbalance violation(s)** — "
            "hard gate FAILED:"
        )
        for viol in report.gate.violations:
            out.append(
                f"- `{viol['key']}` seed {viol['seed']}: "
                f"imbalance {viol['imbalance']:.4f}"
            )
    out.append("")

    if report.regressed_metrics:
        out.append("## Attribution")
        if report.attribution:
            out.append(format_attribution(report.attribution))
            out.append("")
            for d in report.attribution:
                scope = "kernel" if d.kernel else "phase"
                out.append(
                    f"- {scope} `{d.phase}`: {d.base:.4g} → {d.cand:.4g} "
                    f"{d.metric} ({d.describe().split()[-2]})"
                )
        else:
            out.append(
                "No per-phase obs data recorded — rerun with observability "
                "enabled to attribute the regression."
            )
        out.append("")

    trend_lines = list(trend_lines)
    if trend_lines:
        out.append("## Trends")
        out.append("```")
        out.extend(trend_lines)
        out.append("```")
        out.append("")
    return "\n".join(out).rstrip() + "\n"


def trend_lines(
    records: list[dict], *, metric: str = "cut", width: int = 40
) -> list[str]:
    """One sparkline per (algorithm, instance, k) over DB history order."""
    series: dict[str, list[float]] = {}
    for rec in records:
        if rec.get("kind") != "partition":
            continue
        run = rec["run"]
        if metric not in run:
            continue
        key = f"{run['algorithm']}|{run['instance']}|{run['k']}"
        series.setdefault(key, []).append(float(run[metric]))
    out = []
    for key in sorted(series):
        vals = series[key][-width:]
        out.append(
            f"{metric:>12} {key:<32} {sparkline(vals)}  "
            f"last={vals[-1]:.6g} n={len(series[key])}"
        )
    return out


def microbench_trend_lines(
    records: list[dict], *, width: int = 40
) -> list[str]:
    """Sparklines for microbench metrics (e.g. the decode hot path)."""
    series: dict[tuple[str, str], list[float]] = {}
    for rec in records:
        if rec.get("kind") != "microbench":
            continue
        for name, v in rec.get("run", {}).items():
            if isinstance(v, (int, float)) and not isinstance(v, bool):
                series.setdefault((rec.get("bench", "?"), name), []).append(
                    float(v)
                )
    out = []
    for (bench, name) in sorted(series):
        vals = series[(bench, name)][-width:]
        out.append(
            f"{bench}.{name:<28} {sparkline(vals)}  last={vals[-1]:.6g}"
        )
    return out


def trajectory_dict(
    report: CompareReport,
    *,
    candidate_records: list[dict],
    baseline: Baseline | None = None,
    candidate_label: str | None = None,
    timestamp: float | None = None,
) -> dict:
    """The machine-readable companion of the Markdown report.

    Candidate records ride along without their obs payloads (the
    attribution already condensed what matters) so the artifact stays
    small."""
    slim = []
    for rec in candidate_records:
        r = {k: v for k, v in rec.items() if k != "obs"}
        slim.append(r)
    return {
        "schema": RUNDB_SCHEMA,
        "kind": "trajectory",
        "generated_unix": time.time() if timestamp is None else timestamp,
        "baseline": report.baseline_name,
        "baseline_env": baseline.env if baseline else {},
        "candidate_label": candidate_label,
        "regressed": report.regressed,
        "verdicts": [v.to_dict() for v in report.verdicts],
        "gate": report.gate.to_dict(),
        "attribution": [
            {
                "phase": d.phase,
                "metric": d.metric,
                "base": d.base,
                "cand": d.cand,
                "kernel": d.kernel,
                "description": d.describe(),
            }
            for d in report.attribution
        ],
        "keys_compared": report.keys_compared,
        "keys_missing": report.keys_missing,
        "records": slim,
    }


def write_trajectory(path: str | Path, trajectory: dict) -> None:
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    with open(p, "w") as f:
        json.dump(trajectory, f, indent=1)
        f.write("\n")


__all__ = [
    "PhaseDelta",
    "render_markdown",
    "trend_lines",
    "microbench_trend_lines",
    "trajectory_dict",
    "write_trajectory",
]
