"""Regression observatory: persisted run DB, baselines, attribution.

Four layers (DESIGN.md §8):

* :mod:`~repro.obs.regress.rundb`   — append-only JSONL run database with
  versioned, provenance-stamped records and schema migration,
* :mod:`~repro.obs.regress.compare` — named baselines + seed-aware
  bootstrap classification (improved / neutral / regressed) with the
  imbalance hard gate,
* :mod:`~repro.obs.regress.attrib`  — per-phase diffing of the obs
  waterfalls to *name* the phase behind a wall/memory regression,
* :mod:`~repro.obs.regress.report`  — Markdown report with sparkline
  trends and the machine-readable ``BENCH_trajectory.json``.

Driven by ``repro bench record|baseline|compare|trend`` (see
EXPERIMENTS.md for the workflow) and by the CI perf gate.
"""

from repro.obs.regress.attrib import (
    PhaseDelta,
    aggregate_profiles,
    attribute,
    diff_profiles,
    format_attribution,
    phase_profile,
)
from repro.obs.regress.compare import (
    DEFAULT_KINDS,
    DEFAULT_METRICS,
    Baseline,
    CompareReport,
    CompareThresholds,
    GateResult,
    MetricVerdict,
    capture_baseline,
    compare,
)
from repro.obs.regress.report import (
    microbench_trend_lines,
    render_markdown,
    trajectory_dict,
    trend_lines,
    write_trajectory,
)
from repro.obs.regress.rundb import (
    RUNDB_SCHEMA,
    SERVICE_METRICS,
    RunDB,
    default_rundb,
    environment_stamp,
    latest_per_key,
    make_microbench_record,
    make_record,
    make_service_record,
    migrate_record,
    run_key,
)

__all__ = [
    "DEFAULT_KINDS",
    "DEFAULT_METRICS",
    "RUNDB_SCHEMA",
    "SERVICE_METRICS",
    "Baseline",
    "CompareReport",
    "CompareThresholds",
    "GateResult",
    "MetricVerdict",
    "PhaseDelta",
    "RunDB",
    "aggregate_profiles",
    "attribute",
    "capture_baseline",
    "compare",
    "default_rundb",
    "diff_profiles",
    "environment_stamp",
    "format_attribution",
    "latest_per_key",
    "make_microbench_record",
    "make_record",
    "make_service_record",
    "microbench_trend_lines",
    "migrate_record",
    "phase_profile",
    "render_markdown",
    "run_key",
    "trajectory_dict",
    "trend_lines",
    "write_trajectory",
]
