"""Append-only run database for the regression observatory.

Every benchmark run — a full partitioner run out of the bench harness or a
microbenchmark record like the decode hot path — is persisted as one JSON
line in a ``.jsonl`` file.  Records are versioned (``RUNDB_SCHEMA``) and
stamped with enough provenance to make any two records comparable later:

* the environment: git SHA (+dirty flag), python / numpy versions, platform,
* the configuration: preset name plus the seed-independent
  :func:`~repro.core.config.config_digest`,
* the measurement itself (``run`` section), and
* the per-phase observability snapshot (``obs``) when the run was traced.

The store is append-only by construction: :meth:`RunDB.append` opens the
file in ``"a"`` mode and never rewrites history.  Loading migrates every
record to the current schema, so legacy flat records (the pre-observatory
``BENCH_decode.json`` entries, schema 0) keep working.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import time
from collections.abc import Callable, Iterable
from pathlib import Path

RUNDB_SCHEMA = 4

#: metrics of a partition-kind record, in report order
PARTITION_METRICS = (
    "cut",
    "wall_seconds",
    "modeled_seconds",
    "peak_bytes",
    "imbalance",
)

#: gated metrics of a service-kind record (all lower-is-better): request
#: latency quantiles, warm-start compute relative to a full repartition,
#: and the warm-start quality overhead (warm cut / from-scratch cut)
SERVICE_METRICS = (
    "p50_seconds",
    "p99_seconds",
    "warm_over_full",
    "cut_overhead",
)

#: gated metrics of a dist-kind record (all lower-is-better): quality, the
#: worst single-rank ledger peak, the cluster memory ratio (max rank peak /
#: mean rank peak — 1.0 is perfectly even, the paper's tera-scale runs stay
#: under ~2), and the raw / compressed communication volumes
DIST_METRICS = (
    "cut",
    "max_rank_peak_bytes",
    "memory_ratio",
    "comm_raw_bytes",
    "comm_varint_bytes",
    "wall_seconds",
)


# --------------------------------------------------------------------- #
# provenance stamps
# --------------------------------------------------------------------- #
def environment_stamp() -> dict:
    """Best-effort provenance of the machine/tree producing a record."""
    git_sha, git_dirty = _git_state()
    try:
        import numpy

        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dep
        numpy_version = None
    return {
        "git_sha": git_sha,
        "git_dirty": git_dirty,
        "python": platform.python_version(),
        "numpy": numpy_version,
        "platform": sys.platform,
        "machine": platform.machine(),
    }


def _git_state() -> tuple[str | None, bool | None]:
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
        if sha.returncode != 0:
            return None, None
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True,
            text=True,
            timeout=5,
        )
        dirty = bool(status.stdout.strip()) if status.returncode == 0 else None
        return sha.stdout.strip(), dirty
    except (OSError, subprocess.SubprocessError):
        return None, None


def config_stamp(cfg) -> dict:
    """Name + seed-independent digest of a :class:`PartitionerConfig`."""
    from repro.core.config import config_digest

    return {"name": cfg.name, "digest": config_digest(cfg)}


# --------------------------------------------------------------------- #
# record builders
# --------------------------------------------------------------------- #
def make_record(
    run_record,
    *,
    bench: str,
    label: str | None = None,
    config=None,
    env: dict | None = None,
    timestamp: float | None = None,
) -> dict:
    """Stamp a harness :class:`~repro.bench.harness.RunRecord` into a v2 DB
    record.  ``run_record`` is duck-typed (anything with the RunRecord
    fields works), so this module never imports the bench harness."""
    extra = dict(getattr(run_record, "extra", None) or {})
    obs = extra.pop("obs", None)
    rec = {
        "schema": RUNDB_SCHEMA,
        "kind": "partition",
        "bench": bench,
        "label": label,
        "recorded_unix": time.time() if timestamp is None else timestamp,
        "env": env if env is not None else environment_stamp(),
        "config": config_stamp(config) if config is not None else None,
        "run": {
            "algorithm": run_record.algorithm,
            "instance": run_record.instance,
            "k": int(run_record.k),
            "seed": int(run_record.seed),
            "cut": int(run_record.cut),
            "balanced": bool(run_record.balanced),
            "imbalance": float(run_record.imbalance),
            "wall_seconds": float(run_record.wall_seconds),
            "modeled_seconds": float(run_record.modeled_seconds),
            "peak_bytes": int(run_record.peak_bytes),
            "extra": extra,
        },
        "obs": obs,
    }
    return rec


def make_service_record(
    bench: str,
    *,
    algorithm: str,
    instance: str,
    k: int,
    seed: int,
    metrics: dict,
    label: str | None = None,
    config=None,
    obs: dict | None = None,
    env: dict | None = None,
    timestamp: float | None = None,
) -> dict:
    """Stamp one replayed-trace service benchmark into a v3 DB record.

    Service records carry the same (algorithm, instance, k, seed) identity
    as partition records so the baseline/compare machinery groups them
    identically — but the ``run`` payload is the flat service metric dict
    (latency quantiles, hit rates, warm-vs-full ratios) a trace replay
    produced, and ``obs`` holds the service's counter-only metrics
    registry snapshot.
    """
    return {
        "schema": RUNDB_SCHEMA,
        "kind": "service",
        "bench": bench,
        "label": label,
        "recorded_unix": time.time() if timestamp is None else timestamp,
        "env": env if env is not None else environment_stamp(),
        "config": config_stamp(config) if config is not None else None,
        "run": {
            "algorithm": algorithm,
            "instance": instance,
            "k": int(k),
            "seed": int(seed),
            **{str(m): v for m, v in metrics.items()},
        },
        "obs": obs,
    }


def make_dist_record(
    bench: str,
    *,
    algorithm: str,
    instance: str,
    k: int,
    seed: int,
    metrics: dict,
    label: str | None = None,
    config=None,
    obs: dict | None = None,
    env: dict | None = None,
    timestamp: float | None = None,
) -> dict:
    """Stamp one distributed partitioner run into a v4 DB record.

    Dist records carry the partition identity + quality fields plus the
    cluster-observability metrics of :data:`DIST_METRICS` flat in the
    ``run`` section (rank count, per-rank peak spread, communication
    volumes raw vs varint-compressed).  ``obs`` holds the full
    memory-ratio report + per-phase rollup
    (:func:`~repro.obs.dist.report.dist_obs_registry`), condensed or
    dropped by the baseline capture exactly like traced partition runs.
    """
    return {
        "schema": RUNDB_SCHEMA,
        "kind": "dist",
        "bench": bench,
        "label": label,
        "recorded_unix": time.time() if timestamp is None else timestamp,
        "env": env if env is not None else environment_stamp(),
        "config": config_stamp(config) if config is not None else None,
        "run": {
            "algorithm": algorithm,
            "instance": instance,
            "k": int(k),
            "seed": int(seed),
            **{str(m): v for m, v in metrics.items()},
        },
        "obs": obs,
    }


def make_microbench_record(
    bench: str,
    metrics: dict,
    *,
    label: str | None = None,
    env: dict | None = None,
    timestamp: float | None = None,
) -> dict:
    """Stamp a flat microbenchmark metric dict into a v2 DB record."""
    return {
        "schema": RUNDB_SCHEMA,
        "kind": "microbench",
        "bench": bench,
        "label": label,
        "recorded_unix": time.time() if timestamp is None else timestamp,
        "env": env if env is not None else environment_stamp(),
        "config": None,
        "run": dict(metrics),
        "obs": None,
    }


# --------------------------------------------------------------------- #
# schema migration
# --------------------------------------------------------------------- #
def migrate_record(rec: dict) -> dict:
    """Upgrade a record of any historical schema to ``RUNDB_SCHEMA``.

    * schema 0 (unversioned): the flat metric dicts the decode hot-path
      bench appended to ``BENCH_decode.json`` before the observatory
      existed.  They become ``microbench`` records with unknown provenance.
    * schema 2: pre-service records (kinds ``partition``/``microbench``
      only); identical layout, so migration just fills optional fields and
      restamps the version.
    * schema 3: adds the ``service`` record kind (replayed-trace serving
      benchmarks, :func:`make_service_record`); layout unchanged since.
    * schema 4: current; adds the ``dist`` record kind (distributed
      partitioner runs with cluster-observability metrics,
      :func:`make_dist_record`).

    Records from a *future* schema raise — refusing to silently reinterpret
    data written by newer code.
    """
    version = rec.get("schema", 0)
    if version > RUNDB_SCHEMA:
        raise ValueError(
            f"run-DB record has schema {version}, newer than supported "
            f"{RUNDB_SCHEMA}; upgrade the code reading it"
        )
    if version == 0:
        # legacy flat record: everything measured lives at the top level
        bench = rec.pop("bench", "decode_hotpath")
        return {
            "schema": RUNDB_SCHEMA,
            "kind": "microbench",
            "bench": bench,
            "label": rec.pop("label", "legacy"),
            "recorded_unix": rec.pop("recorded_unix", None),
            "env": {
                "git_sha": None,
                "git_dirty": None,
                "python": None,
                "numpy": None,
                "platform": None,
                "machine": None,
            },
            "config": None,
            "run": dict(rec),
            "obs": None,
        }
    out = dict(rec)
    out.setdefault("kind", "partition")
    out.setdefault("bench", "unknown")
    out.setdefault("label", None)
    out.setdefault("recorded_unix", None)
    out.setdefault("env", {})
    out.setdefault("config", None)
    out.setdefault("run", {})
    out.setdefault("obs", None)
    out["schema"] = RUNDB_SCHEMA
    return out


# --------------------------------------------------------------------- #
# the store
# --------------------------------------------------------------------- #
class RunDB:
    """One JSONL file of versioned run records, append-only."""

    def __init__(self, path: str | Path):
        self.path = Path(path)

    # -- writing ------------------------------------------------------- #
    def append(self, record: dict) -> dict:
        """Migrate-stamp and append one record; returns the stored form."""
        rec = migrate_record(record)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as f:
            f.write(json.dumps(rec, sort_keys=False) + "\n")
        return rec

    def extend(self, records: Iterable[dict]) -> list[dict]:
        return [self.append(r) for r in records]

    # -- reading ------------------------------------------------------- #
    def load(self) -> list[dict]:
        """All records, migrated to the current schema, in append order."""
        if not self.path.exists():
            return []
        out = []
        with open(self.path) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                out.append(migrate_record(json.loads(line)))
        return out

    def query(
        self,
        *,
        kind: str | None = None,
        bench: str | None = None,
        label: str | None = None,
        algorithm: str | None = None,
        instance: str | None = None,
        k: int | None = None,
        since: float | None = None,
        predicate: Callable[[dict], bool] | None = None,
    ) -> list[dict]:
        """Filter records; every criterion is optional and conjunctive."""
        out = []
        for rec in self.load():
            run = rec.get("run", {})
            if kind is not None and rec.get("kind") != kind:
                continue
            if bench is not None and rec.get("bench") != bench:
                continue
            if label is not None and rec.get("label") != label:
                continue
            if algorithm is not None and run.get("algorithm") != algorithm:
                continue
            if instance is not None and run.get("instance") != instance:
                continue
            if k is not None and run.get("k") != k:
                continue
            if since is not None and (rec.get("recorded_unix") or 0) < since:
                continue
            if predicate is not None and not predicate(rec):
                continue
            out.append(rec)
        return out


def latest_per_key(
    records: Iterable[dict], key_fn: Callable[[dict], tuple]
) -> list[dict]:
    """Keep only the last (most recently appended) record per key."""
    by_key: dict[tuple, dict] = {}
    for rec in records:
        by_key[key_fn(rec)] = rec
    return list(by_key.values())


def run_key(rec: dict) -> tuple:
    """The identity a partition record is compared under."""
    run = rec.get("run", {})
    return (
        run.get("algorithm"),
        run.get("instance"),
        run.get("k"),
        run.get("seed"),
    )


def default_rundb() -> RunDB | None:
    """The process-wide default DB: ``$REPRO_RUNDB`` if set, else none.

    The bench suite's conftest points this at the repo-root
    ``BENCH_runs.jsonl`` so every figure script appends its runs by
    default; unit tests (no env var) stay side-effect free.
    """
    import os

    path = os.environ.get("REPRO_RUNDB")
    return RunDB(path) if path else None
