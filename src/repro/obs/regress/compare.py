"""Baseline capture and statistical baseline-vs-candidate comparison.

A *baseline* is a named snapshot of a run matrix: per (algorithm,
instance, k) the per-seed values of every gated metric, plus a condensed
per-phase profile for attribution.  A *comparison* pairs candidate
records against the baseline per (algorithm, instance, k), forms the
seed-mean ratio candidate/baseline for each pair, and classifies each
metric from a bootstrap confidence interval on the geometric mean of
those ratios (the paper's cross-instance aggregate, Section VI):

* ``regressed``  — the CI lies entirely above ``1 + neutral_band``,
* ``improved``   — the CI lies entirely below ``1 - neutral_band``,
* ``neutral``    — otherwise (the CI straddles the band; CI noise never
  fails a gate).

All gated metrics are lower-is-better.  Two hard rules sit outside the
statistics: a candidate run violating its balance constraint fails the
gate outright, and a pair whose baseline value is 0 while the candidate
is positive (a vanished perfect cut) is a regression no geometric mean
can express, so it forces the metric to ``regressed``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.obs.regress.attrib import phase_profile, aggregate_profiles

BASELINE_SCHEMA = 2

#: metrics compared by default (all lower-is-better)
DEFAULT_METRICS = ("cut", "peak_bytes", "wall_seconds")

#: half-width of the per-metric neutral band around ratio 1.0.  Wall gets a
#: wide band: CI runners are noisy and a wall gate must not cry wolf.
DEFAULT_NEUTRAL_BANDS = {
    "cut": 0.02,
    "peak_bytes": 0.02,
    "modeled_seconds": 0.05,
    "wall_seconds": 0.25,
    # service-kind metrics: latency quantiles are wall-clock (noisy, wide
    # bands like wall_seconds); cut_overhead is a quality ratio (tight)
    "p50_seconds": 0.25,
    "p99_seconds": 0.30,
    "warm_over_full": 0.25,
    "cut_overhead": 0.02,
    # dist-kind metrics: ledger peaks and collective byte counts are
    # deterministic (tight); memory_ratio divides two such peaks, so small
    # shifts in either side compound -- give it a little more room
    "max_rank_peak_bytes": 0.02,
    "memory_ratio": 0.05,
    "comm_raw_bytes": 0.02,
    "comm_varint_bytes": 0.02,
}

#: record kinds the baseline/compare machinery consumes by default
DEFAULT_KINDS = ("partition",)


@dataclass(frozen=True)
class CompareThresholds:
    """Knobs of the classifier; defaults match the CI perf gate."""

    neutral_bands: dict = field(
        default_factory=lambda: dict(DEFAULT_NEUTRAL_BANDS)
    )
    confidence: float = 0.95
    bootstrap_samples: int = 1000
    rng_seed: int = 0

    def band(self, metric: str) -> float:
        return self.neutral_bands.get(metric, 0.05)


# --------------------------------------------------------------------- #
# baselines
# --------------------------------------------------------------------- #
def group_key(run: dict) -> str:
    return f"{run['algorithm']}|{run['instance']}|{run['k']}"


@dataclass
class Baseline:
    """Named snapshot of a run matrix, ready to be committed to the repo."""

    name: str
    env: dict = field(default_factory=dict)
    created_unix: float | None = None
    # key -> {"algorithm", "instance", "k", "seeds", "metrics", "balanced",
    #          "profile"}
    groups: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "schema": BASELINE_SCHEMA,
            "kind": "baseline",
            "name": self.name,
            "created_unix": self.created_unix,
            "env": self.env,
            "groups": self.groups,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Baseline":
        version = d.get("schema", 0)
        if version > BASELINE_SCHEMA:
            raise ValueError(
                f"baseline schema {version} is newer than supported "
                f"{BASELINE_SCHEMA}"
            )
        return cls(
            name=d.get("name", "unnamed"),
            env=d.get("env", {}),
            created_unix=d.get("created_unix"),
            groups=d.get("groups", {}),
        )

    def save(self, path: str | Path) -> None:
        p = Path(path)
        p.parent.mkdir(parents=True, exist_ok=True)
        with open(p, "w") as f:
            json.dump(self.to_dict(), f, indent=1, sort_keys=False)
            f.write("\n")

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        with open(path) as f:
            return cls.from_dict(json.load(f))


def capture_baseline(
    records: list[dict],
    name: str,
    *,
    env: dict | None = None,
    metrics: tuple[str, ...] = DEFAULT_METRICS + ("imbalance",),
    kinds: tuple[str, ...] = DEFAULT_KINDS,
    timestamp: float | None = None,
) -> Baseline:
    """Snapshot run-DB records of the given ``kinds`` into a named baseline.

    The raw obs registries are condensed to per-phase profiles at capture
    time, so a committed baseline stays a few KB however long the runs
    traced.  ``service``-kind records carry their gated metrics flat in
    the ``run`` section and no ``balanced`` flag; metrics a record lacks
    are simply absent from its group."""
    base = Baseline(
        name=name,
        env=env if env is not None else {},
        created_unix=time.time() if timestamp is None else timestamp,
    )
    by_key: dict[str, list[dict]] = {}
    for rec in records:
        if rec.get("kind") not in kinds:
            continue
        by_key.setdefault(group_key(rec["run"]), []).append(rec)
    for key, recs in sorted(by_key.items()):
        recs = sorted(recs, key=lambda r: r["run"]["seed"])
        run0 = recs[0]["run"]
        group_metrics = {}
        for m in metrics:
            vals = [float(r["run"][m]) for r in recs if m in r["run"]]
            if vals:
                group_metrics[m] = vals
        base.groups[key] = {
            "algorithm": run0["algorithm"],
            "instance": run0["instance"],
            "k": run0["k"],
            "seeds": [r["run"]["seed"] for r in recs],
            "metrics": group_metrics,
            "balanced": [
                bool(r["run"].get("balanced", True)) for r in recs
            ],
            "profile": aggregate_profiles(
                phase_profile(r["obs"]) for r in recs if r.get("obs")
            ),
        }
    return base


# --------------------------------------------------------------------- #
# comparison
# --------------------------------------------------------------------- #
@dataclass
class MetricVerdict:
    """One metric's classification across all compared (instance, k)."""

    metric: str
    ratio: float  # geometric mean of per-key seed-mean ratios
    ci_low: float
    ci_high: float
    classification: str  # improved | neutral | regressed
    n_keys: int
    neutral_band: float
    per_key: dict = field(default_factory=dict)
    dropped_pairs: int = 0  # zero/zero or positive/zero pairs left out
    infinite_pairs: int = 0  # baseline 0 -> candidate > 0 (forces regressed)

    def to_dict(self) -> dict:
        return {
            "metric": self.metric,
            "ratio": self.ratio,
            "ci": [self.ci_low, self.ci_high],
            "classification": self.classification,
            "n_keys": self.n_keys,
            "neutral_band": self.neutral_band,
            "per_key": self.per_key,
            "dropped_pairs": self.dropped_pairs,
            "infinite_pairs": self.infinite_pairs,
        }


@dataclass
class GateResult:
    """The imbalance hard gate: no statistics, any violation fails."""

    violations: list = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {"passed": self.passed, "violations": self.violations}


@dataclass
class CompareReport:
    baseline_name: str
    verdicts: list[MetricVerdict] = field(default_factory=list)
    gate: GateResult = field(default_factory=GateResult)
    keys_compared: list[str] = field(default_factory=list)
    keys_missing: list[str] = field(default_factory=list)
    attribution: list = field(default_factory=list)  # PhaseDelta list

    @property
    def regressed_metrics(self) -> list[str]:
        return [
            v.metric for v in self.verdicts if v.classification == "regressed"
        ]

    @property
    def regressed(self) -> bool:
        return bool(self.regressed_metrics) or not self.gate.passed

    def verdict_for(self, metric: str) -> MetricVerdict | None:
        for v in self.verdicts:
            if v.metric == metric:
                return v
        return None


def _pair_ratio(base_mean: float, cand_mean: float) -> float | None:
    """Ratio of seed means; None = drop, inf = unexpressible regression."""
    if base_mean > 0 and cand_mean > 0:
        return cand_mean / base_mean
    if base_mean == 0 and cand_mean == 0:
        return 1.0  # both perfect: identical, counts as ratio 1
    if base_mean == 0 and cand_mean > 0:
        return float("inf")
    return None  # candidate reached 0 from positive: drop from geomean


def _bootstrap_ci(
    pairs: list[tuple[list[float], list[float]]],
    *,
    n_samples: int,
    confidence: float,
    rng: np.random.Generator,
) -> tuple[float, float]:
    """Percentile bootstrap CI of the geometric-mean ratio.

    Resamples both levels of the design: (instance, k) pairs with
    replacement, and seed values within each sampled pair (seed-aware:
    seed-to-seed variance widens the interval)."""
    stats = np.empty(n_samples)
    n = len(pairs)
    for s in range(n_samples):
        idxs = rng.integers(0, n, n)
        logs = []
        for i in idxs:
            b, c = pairs[i]
            bs = [b[j] for j in rng.integers(0, len(b), len(b))]
            cs = [c[j] for j in rng.integers(0, len(c), len(c))]
            r = _pair_ratio(float(np.mean(bs)), float(np.mean(cs)))
            if r is not None and np.isfinite(r) and r > 0:
                logs.append(np.log(r))
        stats[s] = float(np.exp(np.mean(logs))) if logs else 1.0
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(stats, alpha)),
        float(np.quantile(stats, 1.0 - alpha)),
    )


def _classify(
    ratio: float,
    ci_low: float,
    ci_high: float,
    band: float,
    infinite_pairs: int,
) -> str:
    if infinite_pairs:
        return "regressed"
    if ci_low > 1.0 + band:
        return "regressed"
    if ci_high < 1.0 - band:
        return "improved"
    return "neutral"


def compare(
    baseline: Baseline,
    candidate_records: list[dict],
    *,
    metrics: tuple[str, ...] = DEFAULT_METRICS,
    kinds: tuple[str, ...] = DEFAULT_KINDS,
    thresholds: CompareThresholds | None = None,
    attribute_regressions: bool = True,
) -> CompareReport:
    """Classify candidate run-DB records against a baseline."""
    from repro.obs.regress import attrib

    thresholds = thresholds or CompareThresholds()
    rng = np.random.default_rng(thresholds.rng_seed)
    report = CompareReport(baseline_name=baseline.name)

    cand_by_key: dict[str, list[dict]] = {}
    for rec in candidate_records:
        if rec.get("kind") not in kinds:
            continue
        cand_by_key.setdefault(group_key(rec["run"]), []).append(rec)

    shared = sorted(set(baseline.groups) & set(cand_by_key))
    report.keys_compared = shared
    report.keys_missing = sorted(set(baseline.groups) - set(cand_by_key))

    # imbalance hard gate: any unbalanced candidate run fails, full stop
    for key in sorted(cand_by_key):
        for rec in cand_by_key[key]:
            run = rec["run"]
            if not run.get("balanced", True):
                report.gate.violations.append(
                    {
                        "key": key,
                        "seed": run.get("seed"),
                        "imbalance": run.get("imbalance"),
                    }
                )

    if not shared:
        return report

    for metric in metrics:
        pairs: list[tuple[list[float], list[float]]] = []
        per_key: dict[str, float] = {}
        dropped = infinite = 0
        point_ratios: list[float] = []
        for key in shared:
            bvals = baseline.groups[key]["metrics"].get(metric)
            if not bvals:
                continue
            cvals = [
                float(r["run"][metric])
                for r in cand_by_key[key]
                if metric in r["run"]
            ]
            if not cvals:
                continue
            r = _pair_ratio(float(np.mean(bvals)), float(np.mean(cvals)))
            if r is None:
                dropped += 1
                per_key[key] = 0.0
                continue
            if r == float("inf"):
                infinite += 1
                per_key[key] = float("inf")
                continue
            per_key[key] = r
            point_ratios.append(r)
            pairs.append((list(map(float, bvals)), cvals))
        if not per_key:
            continue
        if pairs:
            ratio = float(np.exp(np.mean(np.log(point_ratios))))
            ci_low, ci_high = _bootstrap_ci(
                pairs,
                n_samples=thresholds.bootstrap_samples,
                confidence=thresholds.confidence,
                rng=rng,
            )
        else:
            ratio, ci_low, ci_high = float("inf"), float("inf"), float("inf")
        band = thresholds.band(metric)
        report.verdicts.append(
            MetricVerdict(
                metric=metric,
                ratio=ratio,
                ci_low=ci_low,
                ci_high=ci_high,
                classification=_classify(ratio, ci_low, ci_high, band, infinite),
                n_keys=len(per_key),
                neutral_band=band,
                per_key=per_key,
                dropped_pairs=dropped,
                infinite_pairs=infinite,
            )
        )

    regressed = report.regressed_metrics
    if attribute_regressions and regressed:
        base_profile = aggregate_profiles(
            baseline.groups[key].get("profile", {}) for key in shared
        )
        cand_recs = [r for key in shared for r in cand_by_key[key]]
        report.attribution = attrib.attribute(
            [],
            cand_recs,
            regressed_metrics=regressed,
            base_profile=base_profile,
        )
    return report
