"""Per-phase attribution of wall-time / memory regressions.

When the compare engine flags a total (wall or peak bytes) as regressed,
this module answers *where*: it condenses each run's obs registry (the
span records + memory waterfall of :class:`~repro.obs.metrics
.MetricsRegistry`) into a small per-phase profile, aggregates profiles
across seeds, and diffs baseline vs candidate to name the offending
phase — "clustering +210% time, coarsening +96% bytes" instead of a bare
"wall regressed".

Phase naming: ledger-coupled spans carry a ``tracker_path`` like
``partition/coarsening/coarsening-level0/clustering``.  Depth-1 children
of the root form the non-overlapping *top-level* phases (compression,
coarsening, initial-partitioning, refinement-levelN); deeper spans are
*kernels* (clustering, contraction, fm-pass ...).  Per-level suffixes are
stripped so the same phase aggregates across hierarchy levels.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable

_LEVEL_RE = re.compile(r"(-level\d+|-round\d+|-rank\d+)$")

#: profile sections: (key, how runs aggregate, human metric name)
PROFILE_KEYS = ("wall", "bytes", "kernel_wall", "kernel_bytes")

#: The closed phase vocabulary.  Every ``tracker.phase`` / tracer span name
#: in the partitioner must normalize (via :func:`normalize_phase`) to one of
#: these, so attribution reports, the run database and the ``repro lint``
#: phase-discipline pass all agree on what a phase is called.  Extend this
#: set when introducing a genuinely new pipeline stage -- never spell an
#: existing stage a second way.
KNOWN_PHASES = frozenset(
    {
        "partition",  # root span
        "compression",
        "coarsening",
        "clustering",
        "clustering-2p",
        "clustering-classic",
        "contraction",
        "contraction-aggregate",  # bulk-kernel sub-phase of contraction
        "gain-table-build",  # bulk-kernel sub-phase of FM refinement
        "initial-partitioning",
        "refinement",
        "lp-refinement",
        "fm-pass",
        # distributed driver (repro.dist, DESIGN.md §12); mirrored onto
        # every rank track by the ClusterObserver
        "dist-partition",  # distributed root span
        "dist-distribute",
        "dist-coarsening",
        "dist-lp",
        "dist-contract",
        "dist-initial",
        "dist-refinement",
        "dist-refine",  # per-round refinement kernel
        "dist-rebalance",
        "ghost-exchange",
    }
)


def normalize_phase(name: str) -> str:
    """Strip the per-level / per-round / per-rank suffix:
    ``refinement-level3`` -> ``refinement``, ``clustering-2p-round1`` ->
    ``clustering-2p``, ``dist-lp-round2`` -> ``dist-lp``,
    ``shard-load-rank3`` -> ``shard-load``."""
    return _LEVEL_RE.sub("", name)


# --------------------------------------------------------------------- #
# profile extraction
# --------------------------------------------------------------------- #
def phase_profile(obs: dict) -> dict[str, dict[str, float]]:
    """Condense one run's obs registry into per-phase totals.

    Returns ``{"wall": {phase: seconds}, "bytes": {phase: peak_bytes},
    "kernel_wall": ..., "kernel_bytes": ...}``.  Wall times sum over the
    levels of a phase; byte entries keep the maximum per-phase ledger peak
    (the waterfall value that can move the run's global peak).
    """
    wall: dict[str, float] = {}
    kernel_wall: dict[str, float] = {}
    for span in obs.get("phases", ()):
        path = span.get("tracker_path")
        if not path:
            continue
        depth = path.count("/")  # root span "partition" has depth 0
        if depth == 0:
            continue
        name = normalize_phase(span["name"])
        target = wall if depth == 1 else kernel_wall
        target[name] = target.get(name, 0.0) + float(span["wall_seconds"])

    bytes_: dict[str, float] = {}
    kernel_bytes: dict[str, float] = {}
    for step in obs.get("waterfall", ()):
        depth = step["phase"].count("/")
        if depth == 0:
            continue
        name = normalize_phase(step["name"])
        target = bytes_ if depth == 1 else kernel_bytes
        target[name] = max(target.get(name, 0.0), float(step["peak_bytes"]))

    return {
        "wall": wall,
        "bytes": bytes_,
        "kernel_wall": kernel_wall,
        "kernel_bytes": kernel_bytes,
    }


def aggregate_profiles(
    profiles: Iterable[dict[str, dict[str, float]]],
) -> dict[str, dict[str, float]]:
    """Aggregate per-run profiles across seeds: mean for wall sections
    (timing noise averages out), max for byte sections (peaks gate)."""
    profiles = [p for p in profiles if p]
    if not profiles:
        return {k: {} for k in PROFILE_KEYS}
    out: dict[str, dict[str, float]] = {}
    for key in PROFILE_KEYS:
        agg: dict[str, list[float]] = {}
        for p in profiles:
            for phase, v in p.get(key, {}).items():
                agg.setdefault(phase, []).append(float(v))
        if key.endswith("bytes"):
            out[key] = {ph: max(vs) for ph, vs in agg.items()}
        else:
            out[key] = {ph: sum(vs) / len(vs) for ph, vs in agg.items()}
    return out


def profiles_from_records(records: Iterable[dict]) -> dict:
    """Aggregate profile over DB records (records without obs are skipped)."""
    return aggregate_profiles(
        phase_profile(rec["obs"]) for rec in records if rec.get("obs")
    )


# --------------------------------------------------------------------- #
# diffing
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class PhaseDelta:
    """One phase's contribution to a regression (or improvement)."""

    phase: str
    metric: str  # "time" | "bytes"
    base: float
    cand: float
    kernel: bool = False

    @property
    def pct(self) -> float:
        if self.base <= 0:
            return float("inf")
        return (self.cand / self.base - 1.0) * 100.0

    def describe(self) -> str:
        unit = self.metric
        if self.pct == float("inf"):
            return f"{self.phase} (new) {unit}"
        return f"{self.phase} {self.pct:+.0f}% {unit}"


def diff_profiles(
    base: dict[str, dict[str, float]],
    cand: dict[str, dict[str, float]],
    *,
    section: str,
    min_pct: float = 5.0,
    min_share: float = 0.02,
    top: int = 4,
) -> list[PhaseDelta]:
    """Phases of one profile section whose value moved by >= ``min_pct``.

    ``min_share`` drops phases too small to matter (below that fraction of
    the section's candidate total) so 1-ms noise phases never headline a
    report.  Results sort by absolute phase delta, largest offender first.
    """
    metric = "bytes" if section.endswith("bytes") else "time"
    kernel = section.startswith("kernel_")
    b = base.get(section, {})
    c = cand.get(section, {})
    total = sum(c.values()) or sum(b.values())
    deltas: list[PhaseDelta] = []
    for phase in sorted(set(b) | set(c)):
        bv, cv = b.get(phase, 0.0), c.get(phase, 0.0)
        if total > 0 and max(bv, cv) / total < min_share:
            continue
        d = PhaseDelta(phase, metric, bv, cv, kernel=kernel)
        if d.pct == float("inf") or abs(d.pct) >= min_pct:
            deltas.append(d)
    deltas.sort(
        key=lambda d: abs(d.cand - d.base)
        if d.base > 0
        else float("inf"),
        reverse=True,
    )
    return deltas[:top]


def attribute(
    base_records: Iterable[dict],
    cand_records: Iterable[dict],
    *,
    regressed_metrics: Iterable[str] = ("wall_seconds", "peak_bytes"),
    base_profile: dict | None = None,
    min_pct: float = 5.0,
    top: int = 4,
) -> list[PhaseDelta]:
    """Name the phases behind a flagged regression.

    ``base_records``/``cand_records`` are run-DB records; when the baseline
    was captured with a condensed profile (no raw obs), pass it as
    ``base_profile``.  Only the sections matching a regressed total are
    diffed: ``wall_seconds`` -> time sections, ``peak_bytes`` -> byte
    sections.  Top-level phases headline; kernels refine them.
    """
    bp = base_profile if base_profile is not None else profiles_from_records(
        base_records
    )
    cp = profiles_from_records(cand_records)
    regressed = set(regressed_metrics)
    sections: list[str] = []
    if "wall_seconds" in regressed or "modeled_seconds" in regressed:
        sections += ["wall", "kernel_wall"]
    if "peak_bytes" in regressed:
        sections += ["bytes", "kernel_bytes"]
    out: list[PhaseDelta] = []
    for section in sections:
        out.extend(
            diff_profiles(bp, cp, section=section, min_pct=min_pct, top=top)
        )
    return out


def format_attribution(deltas: Iterable[PhaseDelta], *, top: int = 3) -> str:
    """The one-line headline: worst regressing phases, time before bytes."""
    worsened = [d for d in deltas if d.cand > d.base and not d.kernel]
    if not worsened:
        worsened = [d for d in deltas if d.cand > d.base]
    worsened.sort(key=lambda d: (d.metric != "time", -(d.cand - d.base)))
    if not worsened:
        return "no phase moved beyond the noise floor"
    return ", ".join(d.describe() for d in worsened[:top])
