"""Roll all ranks of a distributed run up into cluster-wide artifacts.

* :func:`cluster_chrome_trace` — one Chrome-trace document with one process
  track per rank (``pid = rank + 1``) plus a ``pid 0`` cluster track
  carrying cumulative COMM counters (raw vs varint bytes, messages), all on
  the shared observer epoch so the tracks align.
* :func:`cluster_waterfall` / :func:`cluster_rollup` — the per-rank phase
  peaks and their cluster-wide reduction.  Each row's ``peak_bytes`` is read
  straight from that rank's :class:`~repro.memory.tracker.MemoryTracker`
  (``tracker.phase_peak``), so the roll-up inherits the PR 3 byte-for-byte
  invariant instead of re-deriving memory numbers a second way.
"""

from __future__ import annotations

import json

from repro.obs.export import chrome_trace_events

#: pid of the cluster-wide COMM counter track (ranks are pid 1..size)
CLUSTER_PID = 0


def cluster_chrome_trace_events(observer) -> list[dict]:
    """The flat ``traceEvents`` list for a finished cluster observer."""
    events: list[dict] = []
    for rank, tracer in enumerate(observer.rank_tracers):
        events.extend(
            chrome_trace_events(
                tracer, pid=rank + 1, process_name=f"rank{rank}"
            )
        )
    events.append(
        {
            "name": "process_name",
            "ph": "M",
            "ts": 0,
            "pid": CLUSTER_PID,
            "tid": 0,
            "args": {"name": "cluster-comm"},
        }
    )
    raw = varint = msgs = 0
    for ev in sorted(observer.comm_events, key=lambda e: e.t):
        raw += ev.raw_bytes
        varint += ev.varint_bytes
        msgs += ev.messages
        events.append(
            {
                "name": "comm-bytes",
                "ph": "C",
                "ts": ev.t * 1e6,
                "pid": CLUSTER_PID,
                "tid": 0,
                "args": {"raw": raw, "varint": varint},
            }
        )
        events.append(
            {
                "name": "comm-messages",
                "ph": "C",
                "ts": ev.t * 1e6,
                "pid": CLUSTER_PID,
                "tid": 0,
                "args": {"messages": msgs},
            }
        )
    return events


def cluster_chrome_trace(observer) -> dict:
    return {
        "traceEvents": cluster_chrome_trace_events(observer),
        "displayTimeUnit": "ms",
    }


def write_cluster_trace(path, observer) -> None:
    with open(path, "w") as f:
        json.dump(cluster_chrome_trace(observer), f)
        f.write("\n")


# --------------------------------------------------------------------- #
# memory waterfall
# --------------------------------------------------------------------- #
def cluster_waterfall(observer) -> list[dict]:
    """One row per (rank, ledger-coupled phase): the rank's phase peak.

    ``peak_bytes`` comes from the rank's tracker, which is byte-identical
    to the phase span's ``mem_peak`` in that rank's trace track (tested).
    """
    rows: list[dict] = []
    for rank, tracer in enumerate(observer.rank_tracers):
        tracker = tracer.tracker
        for span in tracer.spans:
            if span.category != "phase" or not span.tracker_path:
                continue
            rows.append(
                {
                    "rank": rank,
                    "phase": span.tracker_path,
                    "name": span.name,
                    "level": span.level,
                    "peak_bytes": int(tracker.phase_peak(span.tracker_path)),
                }
            )
    return rows


def cluster_rollup(observer) -> list[dict]:
    """Cluster-wide reduction of the waterfall: per phase path, the peak of
    every rank plus the max over ranks (the number that OOMs a node)."""
    size = len(observer.rank_tracers)
    agg: dict[str, dict] = {}
    for row in cluster_waterfall(observer):
        e = agg.setdefault(
            row["phase"],
            {
                "phase": row["phase"],
                "name": row["name"],
                "level": row["level"],
                "rank_peak_bytes": [0] * size,
            },
        )
        peaks = e["rank_peak_bytes"]
        peaks[row["rank"]] = max(peaks[row["rank"]], row["peak_bytes"])
    out = []
    for phase in sorted(agg):
        e = agg[phase]
        e["max_rank_peak_bytes"] = max(e["rank_peak_bytes"])
        out.append(e)
    return out
