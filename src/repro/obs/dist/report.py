"""The memory-ratio report: the paper's xTeraPart claims as numbers.

The distributed experiments stand on two quantitative claims:

* **memory ratio** — per-rank peak memory stays near the fair share
  ``total / size``; we report ``max_rank_peak / (sum(rank_peaks) / size)``,
  which is 1.0 for perfectly balanced ledgers and grows with whatever one
  rank holds beyond its share (the coarsest-copy spike, skewed shards).
* **communication volume** — traffic is dominated by ghost-vertex label
  exchange, which compresses well: the report carries raw vs varint bytes
  per collective kind, per phase, and per hierarchy level, plus the
  comm/compute byte ratio per level (traffic over resident shard bytes).

Everything here is pure aggregation over a finished
:class:`~repro.obs.dist.cluster.ClusterObserver`; the per-rank peaks come
from the rank ledgers themselves, not a re-derivation.
"""

from __future__ import annotations

from repro.obs.dist.rollup import cluster_rollup
from repro.obs.export import _fmt_bytes

REPORT_SCHEMA = 1


def memory_ratio_report(observer) -> dict:
    """Condense a finished observer into the memory-ratio report dict."""
    comm = observer.comm
    size = comm.size
    peaks = [int(p) for p in comm.rank_peaks()]
    total_peak = sum(peaks)
    mean_peak = total_peak / size if size else 0.0
    totals = observer.comm_totals()
    raw = sum(e["raw_bytes"] for e in totals.values())
    varint = sum(e["varint_bytes"] for e in totals.values())
    msgs = sum(e["messages"] for e in totals.values())

    by_level = {lv["level"]: lv for lv in observer.levels}
    comm_lv = observer.comm_by_level()
    per_level = []
    for level in sorted(by_level):
        lv = by_level[level]
        c = comm_lv.get(
            level, {"raw_bytes": 0, "varint_bytes": 0, "messages": 0}
        )
        shard_bytes = lv["shard_bytes"]
        per_level.append(
            {
                "level": level,
                "n": lv["n"],
                "m": lv["m"],
                "shard_bytes": shard_bytes,
                "ghost_bytes": lv["ghost_bytes"],
                "comm_raw_bytes": c["raw_bytes"],
                "comm_varint_bytes": c["varint_bytes"],
                "comm_messages": c["messages"],
                "comm_compute_ratio": (
                    c["raw_bytes"] / shard_bytes if shard_bytes else 0.0
                ),
            }
        )

    top = by_level.get(0)
    ghost_bytes = int(top["ghost_bytes"]) if top else 0
    shard_bytes = int(top["shard_bytes"]) if top else 0
    footprint = ghost_bytes + shard_bytes
    return {
        "schema": REPORT_SCHEMA,
        "size": size,
        "rank_peak_bytes": peaks,
        "max_rank_peak_bytes": max(peaks) if peaks else 0,
        "mean_rank_peak_bytes": mean_peak,
        "memory_ratio": (max(peaks) / mean_peak) if mean_peak else 0.0,
        "ghost_bytes": ghost_bytes,
        "shard_bytes": shard_bytes,
        "ghost_fraction": (ghost_bytes / footprint) if footprint else 0.0,
        "comm": {
            "raw_bytes": raw,
            "varint_bytes": varint,
            "messages": msgs,
            "supersteps": comm.stats.supersteps,
            "compression_ratio": (varint / raw) if raw else 1.0,
            "by_kind": totals,
        },
        "per_phase": observer.comm_by_phase(),
        "per_level": per_level,
        "counters": dict(observer.counters),
    }


def dist_obs_registry(observer) -> dict:
    """The obs snapshot stored in ``kind="dist"`` run-DB records: the
    memory-ratio report plus the cluster phase roll-up (compact — no raw
    span trees, which would bloat the append-only DB)."""
    return {
        "schema": REPORT_SCHEMA,
        "report": memory_ratio_report(observer),
        "rollup": cluster_rollup(observer),
    }


def render_memory_ratio(report: dict) -> str:
    """Human-readable memory-ratio table (the README sample's format)."""
    lines = [
        f"ranks={report['size']}  "
        f"max rank peak={_fmt_bytes(report['max_rank_peak_bytes'])}  "
        f"mean={_fmt_bytes(int(report['mean_rank_peak_bytes']))}  "
        f"memory ratio={report['memory_ratio']:.2f}  "
        f"ghost fraction={report['ghost_fraction']:.3f}",
        f"comm: raw={_fmt_bytes(report['comm']['raw_bytes'])}  "
        f"varint={_fmt_bytes(report['comm']['varint_bytes'])}  "
        f"(x{report['comm']['compression_ratio']:.2f})  "
        f"messages={report['comm']['messages']}  "
        f"supersteps={report['comm']['supersteps']}",
    ]
    header = ("level", "n", "shard", "ghost", "comm raw", "comm varint", "c/c")
    rows = [
        (
            str(lv["level"]),
            str(lv["n"]),
            _fmt_bytes(lv["shard_bytes"]),
            _fmt_bytes(lv["ghost_bytes"]),
            _fmt_bytes(lv["comm_raw_bytes"]),
            _fmt_bytes(lv["comm_varint_bytes"]),
            f"{lv['comm_compute_ratio']:.2f}",
        )
        for lv in report["per_level"]
    ]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)
