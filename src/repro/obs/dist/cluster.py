"""Cluster-wide observer: one span tree + ledger view per simulated rank.

The shared-memory tracer (:mod:`repro.obs.tracer`) couples one span tree to
one :class:`~repro.memory.tracker.MemoryTracker`.  A distributed run has
``size`` trackers — one per rank, living on the :class:`SimComm` — so the
:class:`ClusterObserver` holds one :class:`SpanTracer` per rank, all sharing
a single epoch/clock so their tracks align in the merged trace.  Phases of
the distributed driver are *mirrored*: entering ``observer.phase(name)``
opens the same tracker-coupled phase span on every rank, which preserves the
PR 3 invariant per rank — a phase span's ``mem_peak`` is read back from that
rank's ledger and equals ``tracker.phase_peak(path)`` byte-for-byte.

The observer also registers itself on the communicator: every collective
reports its kind, exact raw payload bytes and message count through
:meth:`on_collective`, which tags the event with the phase/level open at
that moment and prices the same payload under the Section III varint codec
(delta + zigzag + varint per integer stream).  That yields per-phase,
per-collective raw-vs-compressed byte volumes without the communicator ever
importing the obs layer.

Like the shared-memory tracer, the observer never touches RNG streams or
algorithm state: traced and untraced runs are bit-identical (tested).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.graph.varint import stream_len, zigzag_encode
from repro.obs.tracer import _NULL_CONTEXT, SpanTracer


@dataclass
class CommEvent:
    """One collective, attributed to the phase that issued it."""

    kind: str  # alltoallv | allgather | allreduce | bcast | barrier
    phase: str  # "/"-joined observer phase path at call time
    name: str  # innermost phase/span name ("" outside any span)
    level: int | None  # innermost hierarchy level on the stack, if any
    t: float  # seconds from the observer epoch
    raw_bytes: int  # exact payload bytes (machine-word wire format)
    varint_bytes: int  # same payload under delta+zigzag+varint coding
    messages: int
    superstep: int


def varint_payload_nbytes(obj) -> int:
    """Price a collective payload under the Section III integer codec.

    Integer arrays are delta-coded (first value absolute), zigzag-folded
    and varint-encoded — the same scheme :mod:`repro.graph.varint` uses for
    adjacency streams.  2-D arrays are priced column-wise (each column is
    one stream, e.g. the ``(src, dst, weight)`` buckets of the distributed
    contraction).  Float buffers and raw bytes are incompressible here and
    priced at their true size.
    """
    if isinstance(obj, np.ndarray):
        if obj.size == 0:
            return 0
        if obj.dtype.kind not in "iub":
            return obj.nbytes
        if obj.ndim == 2:
            return sum(
                varint_payload_nbytes(np.ascontiguousarray(obj[:, j]))
                for j in range(obj.shape[1])
            )
        vals = obj.astype(np.int64, copy=False).ravel()
        deltas = np.empty_like(vals)
        deltas[0] = vals[0]
        np.subtract(vals[1:], vals[:-1], out=deltas[1:])
        return int(stream_len(zigzag_encode(deltas)))
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, (bool, np.bool_)):
        return 1
    if isinstance(obj, (int, np.integer)):
        return int(stream_len(zigzag_encode(np.array([int(obj)]))))
    if isinstance(obj, (float, np.floating)):
        return 8
    if isinstance(obj, str):
        return len(obj.encode("utf-8"))
    if isinstance(obj, (list, tuple)):
        return sum(varint_payload_nbytes(x) for x in obj)
    if isinstance(obj, dict):
        return sum(
            varint_payload_nbytes(k) + varint_payload_nbytes(v)
            for k, v in obj.items()
        )
    if obj is None:
        return 0
    return 8


class ClusterObserver:
    """Per-rank span trees + cluster-wide communication accounting."""

    enabled = True

    def __init__(
        self, comm, *, clock=time.perf_counter, round_spans: bool = True
    ) -> None:
        self.comm = comm
        self._clock = clock
        self.round_spans = round_spans
        epoch = clock()
        self.epoch = epoch
        self.rank_tracers: list[SpanTracer] = []
        for tracker in comm.trackers:
            tracer = SpanTracer(tracker, clock=clock)
            tracer.epoch = epoch  # shared epoch: tracks align in the trace
            self.rank_tracers.append(tracer)
        self.comm_events: list[CommEvent] = []
        self.counters: dict[str, float] = {}
        self.levels: list[dict] = []  # per-level graph footprints
        self._phase_stack: list[tuple[str, int | None]] = []
        comm.observer = self

    @property
    def size(self) -> int:
        return self.comm.size

    # ------------------------------------------------------------------ #
    # mirrored spans
    # ------------------------------------------------------------------ #
    def phase(self, name: str, *, level: int | None = None) -> "_ClusterSpan":
        """A ledger-coupled phase opened on every rank simultaneously."""
        return _ClusterSpan(self, name, level, coupled=True)

    def span(self, name: str, *, level: int | None = None):
        """A pure timing/counter (kernel) span mirrored on every rank.

        Gated by ``round_spans``: disabling it keeps only the driver-level
        phases, which bounds trace size on many-round runs.
        """
        if not self.round_spans:
            return _NULL_CONTEXT
        return _ClusterSpan(self, name, level, coupled=False)

    # ------------------------------------------------------------------ #
    # counters
    # ------------------------------------------------------------------ #
    def add(self, name: str, value: float = 1) -> None:
        """Bump a cluster-global counter (also shown on the rank-0 track)."""
        self.counters[name] = self.counters.get(name, 0) + value
        self.rank_tracers[0].add(name, value)

    def rank_add(self, rank: int, name: str, value: float = 1) -> None:
        """Bump a counter on one specific rank's current span."""
        self.rank_tracers[rank].add(name, value)

    # ------------------------------------------------------------------ #
    # structural notes from the driver
    # ------------------------------------------------------------------ #
    def note_level(
        self, level: int, *, n: int, m: int, shard_bytes: int, ghost_bytes: int
    ) -> None:
        """Record one hierarchy level's distributed footprint (for the
        comm/compute ratio and ghost fraction of the memory-ratio report)."""
        self.levels.append(
            {
                "level": int(level),
                "n": int(n),
                "m": int(m),
                "shard_bytes": int(shard_bytes),
                "ghost_bytes": int(ghost_bytes),
            }
        )

    # ------------------------------------------------------------------ #
    # communicator hook
    # ------------------------------------------------------------------ #
    def on_collective(
        self,
        kind: str,
        nbytes: int,
        nmsgs: int,
        payload=None,
        replication: int = 1,
    ) -> None:
        varint = (
            0
            if payload is None
            else varint_payload_nbytes(payload) * int(replication)
        )
        name, level = "", None
        if self._phase_stack:
            name = self._phase_stack[-1][0]
            for _, lv in reversed(self._phase_stack):
                if lv is not None:
                    level = lv
                    break
        self.comm_events.append(
            CommEvent(
                kind=kind,
                phase="/".join(n for n, _ in self._phase_stack),
                name=name,
                level=level,
                t=self._clock() - self.epoch,
                raw_bytes=int(nbytes),
                varint_bytes=int(varint),
                messages=int(nmsgs),
                superstep=self.comm.stats.supersteps,
            )
        )
        self.counters["comm.raw_bytes"] = (
            self.counters.get("comm.raw_bytes", 0) + int(nbytes)
        )
        self.counters["comm.varint_bytes"] = (
            self.counters.get("comm.varint_bytes", 0) + int(varint)
        )
        self.counters["comm.messages"] = (
            self.counters.get("comm.messages", 0) + int(nmsgs)
        )

    # ------------------------------------------------------------------ #
    # aggregation
    # ------------------------------------------------------------------ #
    def comm_totals(self) -> dict[str, dict[str, int]]:
        """Per-collective-kind totals over the whole run."""
        out: dict[str, dict[str, int]] = {}
        for ev in self.comm_events:
            e = out.setdefault(
                ev.kind,
                {"calls": 0, "messages": 0, "raw_bytes": 0, "varint_bytes": 0},
            )
            e["calls"] += 1
            e["messages"] += ev.messages
            e["raw_bytes"] += ev.raw_bytes
            e["varint_bytes"] += ev.varint_bytes
        return out

    def comm_by_level(self) -> dict[int | None, dict[str, int]]:
        """Raw/compressed traffic grouped by hierarchy level."""
        out: dict[int | None, dict[str, int]] = {}
        for ev in self.comm_events:
            e = out.setdefault(
                ev.level, {"raw_bytes": 0, "varint_bytes": 0, "messages": 0}
            )
            e["raw_bytes"] += ev.raw_bytes
            e["varint_bytes"] += ev.varint_bytes
            e["messages"] += ev.messages
        return out

    def comm_by_phase(self) -> dict[str, dict[str, int]]:
        """Traffic grouped by the normalized innermost phase name."""
        from repro.obs.regress.attrib import normalize_phase

        out: dict[str, dict[str, int]] = {}
        for ev in self.comm_events:
            key = normalize_phase(ev.name) if ev.name else "(untagged)"
            e = out.setdefault(
                key, {"raw_bytes": 0, "varint_bytes": 0, "messages": 0}
            )
            e["raw_bytes"] += ev.raw_bytes
            e["varint_bytes"] += ev.varint_bytes
            e["messages"] += ev.messages
        return out

    def finish(self) -> None:
        for tracer in self.rank_tracers:
            tracer.finish()


class _ClusterSpan:
    """Context manager mirroring one span across every rank tracer."""

    __slots__ = ("_obs", "_name", "_level", "_coupled", "_ctxs")

    def __init__(self, obs, name, level, *, coupled) -> None:
        self._obs = obs
        self._name = name
        self._level = level
        self._coupled = coupled

    def __enter__(self) -> "_ClusterSpan":
        self._ctxs = []
        for tracer in self._obs.rank_tracers:
            ctx = (
                tracer.phase(self._name, level=self._level)
                if self._coupled
                else tracer.span(self._name, level=self._level)
            )
            ctx.__enter__()
            self._ctxs.append(ctx)
        self._obs._phase_stack.append((self._name, self._level))
        return self

    def __exit__(self, *exc: object) -> None:
        self._obs._phase_stack.pop()
        for ctx in reversed(self._ctxs):
            ctx.__exit__(*exc)


class NullClusterObserver:
    """Disabled fast path: every operation is a constant-time no-op."""

    enabled = False
    __slots__ = ()

    def phase(self, name: str, *, level=None):
        return _NULL_CONTEXT

    def span(self, name: str, *, level=None):
        return _NULL_CONTEXT

    def add(self, name: str, value: float = 1) -> None:
        pass

    def rank_add(self, rank: int, name: str, value: float = 1) -> None:
        pass

    def note_level(self, level: int, **kwargs) -> None:
        pass

    def on_collective(self, *args, **kwargs) -> None:
        pass

    def finish(self) -> None:
        pass


#: Shared singleton; the distributed driver threads it when obs is off.
NULL_CLUSTER_OBSERVER = NullClusterObserver()
