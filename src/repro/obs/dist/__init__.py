"""Distributed observability: per-rank span trees rolled up cluster-wide.

One :class:`ClusterObserver` mirrors every driver phase onto one
:class:`~repro.obs.tracer.SpanTracer` per rank (each coupled to that rank's
:class:`~repro.memory.tracker.MemoryTracker` on the :class:`SimComm`),
instruments every collective with per-phase raw-vs-varint byte accounting,
and collapses into the merged Chrome trace, the cluster memory waterfall,
and the memory-ratio report.  See DESIGN.md §12.
"""

from repro.obs.dist.cluster import (
    NULL_CLUSTER_OBSERVER,
    ClusterObserver,
    CommEvent,
    NullClusterObserver,
    varint_payload_nbytes,
)
from repro.obs.dist.report import (
    dist_obs_registry,
    memory_ratio_report,
    render_memory_ratio,
)
from repro.obs.dist.rollup import (
    cluster_chrome_trace,
    cluster_chrome_trace_events,
    cluster_rollup,
    cluster_waterfall,
    write_cluster_trace,
)

__all__ = [
    "ClusterObserver",
    "CommEvent",
    "NULL_CLUSTER_OBSERVER",
    "NullClusterObserver",
    "cluster_chrome_trace",
    "cluster_chrome_trace_events",
    "cluster_rollup",
    "cluster_waterfall",
    "dist_obs_registry",
    "memory_ratio_report",
    "render_memory_ratio",
    "varint_payload_nbytes",
    "write_cluster_trace",
]
