"""Observability subsystem: span tracing, metrics registry, trace export.

The partitioner threads a :class:`SpanTracer` (or the no-op
:data:`NULL_TRACER`) through every layer the paper measures; a finished run
collapses into a :class:`MetricsRegistry` (``--metrics-json``) and a
Chrome-trace file (``--trace-out``) loadable in ``chrome://tracing`` or
Perfetto.  See DESIGN.md §7 for the span model and counter taxonomy.

The :mod:`repro.obs.regress` subpackage builds on these snapshots: a
persisted run database, statistical baseline comparison, and per-phase
regression attribution (DESIGN.md §8, ``python -m repro bench``).
"""

from repro.obs.export import (
    chrome_trace,
    chrome_trace_events,
    render_level_summary,
    write_chrome_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, SpanTracer

__all__ = [
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanTracer",
    "chrome_trace",
    "chrome_trace_events",
    "render_level_summary",
    "write_chrome_trace",
]
