"""Uncompressed CSR graph (Section III of the paper).

Edges live in one contiguous array ``adjncy`` of size ``2m`` (each undirected
edge stored in both directions); ``indptr`` of size ``n+1`` stores the
beginning of each neighborhood.  Vertex and edge weights are int64 arrays;
unweighted graphs share a single broadcast-stride array so they cost no extra
memory, matching the paper's storage model.
"""

from __future__ import annotations

import numpy as np


def _ones_like_view(n: int) -> np.ndarray:
    """A length-``n`` all-ones int64 array that occupies 8 bytes total."""
    base = np.ones(1, dtype=np.int64)
    return np.lib.stride_tricks.as_strided(
        base, shape=(n,), strides=(0,), writeable=False
    )


class CSRGraph:
    """An undirected graph in compressed-sparse-row form.

    Parameters
    ----------
    indptr:
        int64 array of size ``n+1``; neighborhood of ``u`` is
        ``adjncy[indptr[u]:indptr[u+1]]``.
    adjncy:
        int64 array of size ``2m`` holding neighbor IDs.
    adjwgt:
        optional int64 edge weights aligned with ``adjncy``.
    vwgt:
        optional int64 vertex weights.
    sorted_neighborhoods:
        set True if every neighborhood is sorted ascending (required by the
        compression codec; the builder guarantees it).
    """

    __slots__ = (
        "indptr",
        "adjncy",
        "adjwgt",
        "vwgt",
        "sorted_neighborhoods",
        "_unit_edge_weights",
        "_unit_vertex_weights",
        "_total_vertex_weight",
        "_total_edge_weight",
    )

    def __init__(
        self,
        indptr: np.ndarray,
        adjncy: np.ndarray,
        adjwgt: np.ndarray | None = None,
        vwgt: np.ndarray | None = None,
        *,
        sorted_neighborhoods: bool = False,
    ) -> None:
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        adjncy = np.ascontiguousarray(adjncy, dtype=np.int64)
        if indptr.ndim != 1 or len(indptr) < 1:
            raise ValueError("indptr must be a 1-D array of size n+1")
        if indptr[0] != 0 or indptr[-1] != len(adjncy):
            raise ValueError(
                f"indptr must start at 0 and end at len(adjncy)={len(adjncy)}, "
                f"got [{indptr[0]}, {indptr[-1]}]"
            )
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        self.indptr = indptr
        self.adjncy = adjncy
        n = len(indptr) - 1
        if len(adjncy) and (adjncy.min() < 0 or adjncy.max() >= n):
            raise ValueError("adjncy contains out-of-range vertex IDs")

        self._unit_edge_weights = adjwgt is None
        if adjwgt is None:
            adjwgt = _ones_like_view(len(adjncy))
        else:
            adjwgt = np.ascontiguousarray(adjwgt, dtype=np.int64)
            if len(adjwgt) != len(adjncy):
                raise ValueError("adjwgt must align with adjncy")
        self.adjwgt = adjwgt

        self._unit_vertex_weights = vwgt is None
        if vwgt is None:
            vwgt = _ones_like_view(n)
        else:
            vwgt = np.ascontiguousarray(vwgt, dtype=np.int64)
            if len(vwgt) != n:
                raise ValueError("vwgt must have size n")
        self.vwgt = vwgt

        self.sorted_neighborhoods = bool(sorted_neighborhoods)
        self._total_vertex_weight = int(n if self._unit_vertex_weights else vwgt.sum())
        self._total_edge_weight = int(
            len(adjncy) if self._unit_edge_weights else self.adjwgt.sum()
        )

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Number of vertices."""
        return len(self.indptr) - 1

    @property
    def m(self) -> int:
        """Number of *undirected* edges (``len(adjncy) // 2``)."""
        return len(self.adjncy) // 2

    @property
    def num_directed_edges(self) -> int:
        return len(self.adjncy)

    @property
    def has_edge_weights(self) -> bool:
        return not self._unit_edge_weights

    @property
    def has_vertex_weights(self) -> bool:
        return not self._unit_vertex_weights

    @property
    def total_vertex_weight(self) -> int:
        return self._total_vertex_weight

    @property
    def total_edge_weight(self) -> int:
        return self._total_edge_weight

    def degree(self, u: int) -> int:
        return int(self.indptr[u + 1] - self.indptr[u])

    @property
    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    @property
    def max_degree(self) -> int:
        return int(self.degrees.max()) if self.n else 0

    # ------------------------------------------------------------------ #
    # neighborhood protocol
    # ------------------------------------------------------------------ #
    def neighbors(self, u: int) -> np.ndarray:
        return self.adjncy[self.indptr[u] : self.indptr[u + 1]]

    def edge_weights(self, u: int) -> np.ndarray:
        return self.adjwgt[self.indptr[u] : self.indptr[u + 1]]

    def neighbors_and_weights(self, u: int) -> tuple[np.ndarray, np.ndarray]:
        lo, hi = self.indptr[u], self.indptr[u + 1]
        return self.adjncy[lo:hi], self.adjwgt[lo:hi]

    def incident_edge_ids(self, u: int) -> np.ndarray:
        return np.arange(self.indptr[u], self.indptr[u + 1], dtype=np.int64)

    def incident_weight(self, u: int) -> int:
        """Total weight of edges incident to ``u`` (bounds gain values)."""
        return int(self.edge_weights(u).sum())

    # ------------------------------------------------------------------ #
    # memory accounting
    # ------------------------------------------------------------------ #
    @property
    def nbytes(self) -> int:
        total = self.indptr.nbytes + self.adjncy.nbytes
        total += 8 if self._unit_edge_weights else self.adjwgt.nbytes
        total += 8 if self._unit_vertex_weights else self.vwgt.nbytes
        return total

    # ------------------------------------------------------------------ #
    # validation & misc
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check structural invariants: symmetry, no self-loops, weights > 0."""
        n = self.n
        src = np.repeat(np.arange(n, dtype=np.int64), self.degrees)
        if np.any(src == self.adjncy):
            u = int(src[np.argmax(src == self.adjncy)])
            raise ValueError(f"self-loop at vertex {u}")
        # symmetry with matching weights: sort directed edges (u,v,w) and
        # their reverses (v,u,w); equal multisets <=> symmetric graph.
        w = np.asarray(self.adjwgt)
        fwd = np.stack([src, self.adjncy, w], axis=1)
        rev = np.stack([self.adjncy, src, w], axis=1)
        fwd_sorted = fwd[np.lexsort((fwd[:, 2], fwd[:, 1], fwd[:, 0]))]
        rev_sorted = rev[np.lexsort((rev[:, 2], rev[:, 1], rev[:, 0]))]
        if not np.array_equal(fwd_sorted, rev_sorted):
            raise ValueError("graph is not symmetric (or weights mismatch)")
        if w.size and w.min() <= 0:
            raise ValueError("edge weights must be positive")
        vw = np.asarray(self.vwgt)
        if vw.size and vw.min() <= 0:
            raise ValueError("vertex weights must be positive")

    def with_sorted_neighborhoods(self) -> "CSRGraph":
        """Return a copy whose neighborhoods are sorted by neighbor ID."""
        if self.sorted_neighborhoods:
            return self
        src = np.repeat(np.arange(self.n, dtype=np.int64), self.degrees)
        order = np.lexsort((self.adjncy, src))
        adjncy = self.adjncy[order]
        adjwgt = (
            np.asarray(self.adjwgt)[order] if self.has_edge_weights else None
        )
        return CSRGraph(
            self.indptr.copy(),
            adjncy,
            adjwgt,
            None if not self.has_vertex_weights else np.asarray(self.vwgt).copy(),
            sorted_neighborhoods=True,
        )

    def __repr__(self) -> str:
        return (
            f"CSRGraph(n={self.n}, m={self.m}, "
            f"weighted_edges={self.has_edge_weights}, "
            f"weighted_vertices={self.has_vertex_weights})"
        )
