"""VarInt byte codec (Section III-A).

Seven payload bits per byte plus a continuation bit; signed values use an
extra sign bit in the first byte (the paper stores edge-weight gaps, which
are not sorted, with a sign bit).  Scalar routines are the reference
implementation; the ``encode_stream`` / ``decode_stream`` bulk routines are
the hot path used by the graph codec and operate on numpy arrays with plain
Python loops kept tight (locals-bound, no attribute lookups) -- the fastest
portable option without compiled extensions.
"""

from __future__ import annotations

import numpy as np

MAX_VARINT64_BYTES = 10


def varint_len(value: int) -> int:
    """Number of bytes :func:`encode_varint` produces for ``value``."""
    if value < 0:
        raise ValueError(f"varint cannot encode negative value {value}")
    n = 1
    value >>= 7
    while value:
        n += 1
        value >>= 7
    return n


def encode_varint(value: int, out: bytearray) -> int:
    """Append the VarInt encoding of ``value`` to ``out``; return byte count."""
    if value < 0:
        raise ValueError(f"varint cannot encode negative value {value}")
    n = 0
    while True:
        byte = value & 0x7F
        value >>= 7
        n += 1
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return n


def decode_varint(buf, pos: int) -> tuple[int, int]:
    """Decode a VarInt at ``buf[pos:]``; return ``(value, new_pos)``."""
    result = 0
    shift = 0
    while True:
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise ValueError("varint too long (corrupt stream?)")


def encode_signed_varint(value: int, out: bytearray) -> int:
    """Append a signed VarInt (sign bit in bit 0 of the first byte)."""
    # The paper stores "an additional sign bit"; we fold it into the
    # least-significant bit so small magnitudes stay small either way.
    zz = ((-value) << 1) | 1 if value < 0 else value << 1
    return encode_varint(zz, out)


def decode_signed_varint(buf, pos: int) -> tuple[int, int]:
    zz, pos = decode_varint(buf, pos)
    value = zz >> 1
    if zz & 1:
        value = -value
    return value, pos


def encode_stream(values: np.ndarray, out: bytearray) -> int:
    """Append VarInt encodings of every element of ``values``; return bytes."""
    total = 0
    append = out.append
    for v in values.tolist():
        if v < 0:
            raise ValueError(f"varint cannot encode negative value {v}")
        while True:
            byte = v & 0x7F
            v >>= 7
            total += 1
            if v:
                append(byte | 0x80)
            else:
                append(byte)
                break
    return total


def decode_stream(buf, pos: int, count: int) -> tuple[np.ndarray, int]:
    """Decode ``count`` VarInts starting at ``buf[pos:]``."""
    out = np.empty(count, dtype=np.int64)
    for i in range(count):
        result = 0
        shift = 0
        while True:
            byte = buf[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
        out[i] = result
    return out, pos


def stream_len(values: np.ndarray) -> int:
    """Total encoded byte length of ``values`` without materialising bytes.

    Vectorised: a value needs ``ceil(bits/7)`` bytes.
    """
    values = np.asarray(values, dtype=np.int64)
    if values.size == 0:
        return 0
    if values.min() < 0:
        raise ValueError("varint cannot encode negative values")
    # bit length: values of 0 still need 1 byte
    safe = np.maximum(values, 1)
    bits = np.floor(np.log2(safe.astype(np.float64))).astype(np.int64) + 1
    # correct potential float rounding at powers of two
    too_low = (np.int64(1) << bits) <= safe
    bits += too_low
    too_high = (np.int64(1) << (bits - 1)) > safe
    bits -= too_high
    return int(np.sum((bits + 6) // 7))
