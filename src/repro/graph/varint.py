"""VarInt byte codec (Section III-A).

Seven payload bits per byte plus a continuation bit; signed values use an
extra sign bit in the first byte (the paper stores edge-weight gaps, which
are not sorted, with a sign bit).  Scalar routines are the reference
implementation.

The hot path is the *byte-parallel* bulk decoder
(:func:`decode_stream_bulk` / :func:`decode_region_bulk`): one mask over the
whole buffer finds terminator bytes (``(byte & 0x80) == 0``), per-value byte
spans follow from the terminator positions, and the 7-bit payload groups are
assembled with a handful of vectorized shift passes (one per byte of the
longest value present, typically 1-2).  Values longer than eight payload
bytes fall back to the scalar loop -- they cannot occur in encoder output
for int64 values below ``2**63`` but the fallback keeps the decoder total.
"""

from __future__ import annotations

import numpy as np

from repro.memory.scratch import tracked_empty

MAX_VARINT64_BYTES = 10

# Longest varint the vectorized assembler handles: 9 bytes x 7 payload bits
# = 63 bits, the largest shift that cannot overflow a signed int64 lane.
_MAX_VECTOR_BYTES = 9


def varint_len(value: int) -> int:
    """Number of bytes :func:`encode_varint` produces for ``value``."""
    if value < 0:
        raise ValueError(f"varint cannot encode negative value {value}")
    n = 1
    value >>= 7
    while value:
        n += 1
        value >>= 7
    return n


def encode_varint(value: int, out: bytearray) -> int:
    """Append the VarInt encoding of ``value`` to ``out``; return byte count."""
    if value < 0:
        raise ValueError(f"varint cannot encode negative value {value}")
    n = 0
    while True:
        byte = value & 0x7F
        value >>= 7
        n += 1
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return n


# thresholds for exact encoded lengths: a value needs j+1 bytes iff
# value >= 2**(7*j); int64 non-negative values top out at 9 bytes
_LEN_THRESHOLDS = np.int64(1) << (7 * np.arange(1, 9, dtype=np.int64))


def varint_lengths(values: np.ndarray) -> np.ndarray:
    """Exact per-value encoded byte counts (vectorized :func:`varint_len`)."""
    values = np.asarray(values, dtype=np.int64)
    if values.size and values.min() < 0:
        raise ValueError("varint cannot encode negative values")
    return np.searchsorted(_LEN_THRESHOLDS, values, side="right") + 1


def zigzag_encode(values: np.ndarray) -> np.ndarray:
    """Vectorized sign fold of :func:`encode_signed_varint` (bit 0 = sign)."""
    values = np.asarray(values, dtype=np.int64)
    return np.where(values < 0, ((-values) << 1) | 1, values << 1)


def encode_stream_bulk(
    values: np.ndarray, lengths: np.ndarray | None = None
) -> np.ndarray:
    """VarInt-encode every element of ``values`` into one uint8 array.

    Byte-parallel counterpart of :func:`encode_stream`: one scatter pass
    per byte of the longest value present (typically 1-2) writes the j-th
    byte of every value still needing one.  Byte-identical to the scalar
    encoder.
    """
    values = np.asarray(values, dtype=np.int64)
    if values.size == 0:
        return np.empty(0, dtype=np.uint8)
    if lengths is None:
        lengths = varint_lengths(values)
    starts = np.cumsum(lengths) - lengths
    total = int(starts[-1] + lengths[-1])
    out = tracked_empty(total, np.uint8, name="varint-encode-bytes")
    for j in range(int(lengths.max())):
        sel = np.flatnonzero(lengths > j)
        payload = (values[sel] >> (7 * j)) & 0x7F
        cont = np.where(lengths[sel] > j + 1, 0x80, 0)
        byte = payload | cont
        assert int(byte.max()) <= 0xFF  # 7 payload bits + continuation bit
        out[starts[sel] + j] = byte.astype(np.uint8)
    return out


def decode_varint(buf, pos: int) -> tuple[int, int]:
    """Decode a VarInt at ``buf[pos:]``; return ``(value, new_pos)``."""
    result = 0
    shift = 0
    while True:
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise ValueError("varint too long (corrupt stream?)")


def encode_signed_varint(value: int, out: bytearray) -> int:
    """Append a signed VarInt (sign bit in bit 0 of the first byte)."""
    # The paper stores "an additional sign bit"; we fold it into the
    # least-significant bit so small magnitudes stay small either way.
    zz = ((-value) << 1) | 1 if value < 0 else value << 1
    return encode_varint(zz, out)


def decode_signed_varint(buf, pos: int) -> tuple[int, int]:
    zz, pos = decode_varint(buf, pos)
    value = zz >> 1
    if zz & 1:
        value = -value
    return value, pos


def encode_stream(values: np.ndarray, out: bytearray) -> int:
    """Append VarInt encodings of every element of ``values``; return bytes."""
    total = 0
    append = out.append
    for v in values.tolist():
        if v < 0:
            raise ValueError(f"varint cannot encode negative value {v}")
        while True:
            byte = v & 0x7F
            v >>= 7
            total += 1
            if v:
                append(byte | 0x80)
            else:
                append(byte)
                break
    return total


def decode_stream(buf, pos: int, count: int) -> tuple[np.ndarray, int]:
    """Decode ``count`` VarInts starting at ``buf[pos:]``."""
    out = tracked_empty(count, np.int64, name="varint-decode-values")
    for i in range(count):
        result = 0
        shift = 0
        while True:
            byte = buf[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
        out[i] = result
    return out, pos


def as_byte_array(buf) -> np.ndarray:
    """View ``buf`` (bytes/bytearray/memoryview/ndarray) as a uint8 array."""
    if isinstance(buf, np.ndarray):
        return buf if buf.dtype == np.uint8 else buf.view(np.uint8)
    return np.frombuffer(buf, dtype=np.uint8)


def zigzag_decode(zz: np.ndarray) -> np.ndarray:
    """Vectorized inverse of the signed-VarInt sign fold (bit 0 = sign)."""
    zz = np.asarray(zz, dtype=np.int64)
    mag = zz >> 1
    return np.where(zz & 1, -mag, mag)


def _assemble_payloads(
    block: np.ndarray, starts: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """Combine 7-bit payload groups into values, one shift pass per byte.

    ``block`` is an int64 view of the raw bytes; ``starts``/``lengths``
    delimit each value's span.  Values longer than ``_MAX_VECTOR_BYTES``
    must be patched by the caller (their lanes hold partial garbage here).
    """
    values = block[starts] & 0x7F
    max_len = int(lengths.max())
    for j in range(1, min(max_len, _MAX_VECTOR_BYTES)):
        sel = np.flatnonzero(lengths > j)
        if sel.size == 0:
            break
        values[sel] |= (block[starts[sel] + j] & 0x7F) << (7 * j)
    return values


def _decode_spans(block_u8, starts, lengths) -> np.ndarray:
    """Decode the values at the given spans, scalar-patching long ones."""
    block = block_u8.astype(np.int64)
    values = _assemble_payloads(block, starts, lengths)
    if int(lengths.max()) > _MAX_VECTOR_BYTES:
        for i in np.flatnonzero(lengths > _MAX_VECTOR_BYTES).tolist():
            s = int(starts[i])
            v, _ = decode_varint(bytes(block_u8[s : s + MAX_VARINT64_BYTES]), 0)
            values[i] = v
    return values


def decode_stream_bulk(buf, pos: int, count: int) -> tuple[np.ndarray, int]:
    """Byte-parallel equivalent of :func:`decode_stream`.

    Scans a window of the buffer for terminator bytes, widening it until
    ``count`` values are covered (streams average well under two bytes per
    value, so the initial guess of two bytes/value almost always suffices).
    """
    if count == 0:
        return np.empty(0, dtype=np.int64), pos
    data = as_byte_array(buf)
    limit = min(len(data), pos + count * MAX_VARINT64_BYTES)
    hi = min(limit, pos + 2 * count + 8)
    while True:
        window = data[pos:hi]
        term = np.flatnonzero((window & 0x80) == 0)
        if len(term) >= count or hi >= limit:
            break
        hi = limit
    if len(term) < count:
        raise ValueError("varint stream truncated (corrupt stream?)")
    ends = term[:count]
    starts = tracked_empty(count, np.int64, name="varint-span-starts")
    starts[0] = 0
    starts[1:] = ends[:-1] + 1
    lengths = ends - starts + 1
    nbytes = int(ends[-1]) + 1
    values = _decode_spans(window[:nbytes], starts, lengths)
    return values, pos + nbytes


def decode_region_bulk(block_u8: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Decode *every* VarInt in ``block_u8``; return ``(values, starts)``.

    The block must begin and end on value boundaries (any concatenation of
    whole encoded neighborhoods does).  ``starts`` gives each value's byte
    offset within the block, which callers use to locate per-vertex
    sub-streams inside a gathered multi-vertex region.
    """
    if len(block_u8) == 0:
        e = np.empty(0, dtype=np.int64)
        return e, e
    term = np.flatnonzero((block_u8 & 0x80) == 0)
    if len(term) == 0 or int(term[-1]) != len(block_u8) - 1:
        raise ValueError("varint region does not end on a value boundary")
    count = len(term)
    starts = tracked_empty(count, np.int64, name="varint-span-starts")
    starts[0] = 0
    starts[1:] = term[:-1] + 1
    lengths = term - starts + 1
    values = _decode_spans(block_u8, starts, lengths)
    return values, starts


def stream_len(values: np.ndarray) -> int:
    """Total encoded byte length of ``values`` without materialising bytes.

    Vectorised: a value needs ``ceil(bits/7)`` bytes.
    """
    values = np.asarray(values, dtype=np.int64)
    if values.size == 0:
        return 0
    if values.min() < 0:
        raise ValueError("varint cannot encode negative values")
    # bit length: values of 0 still need 1 byte
    safe = np.maximum(values, 1)
    bits = np.floor(np.log2(safe.astype(np.float64))).astype(np.int64) + 1
    # correct potential float rounding at powers of two
    too_low = (np.int64(1) << bits) <= safe
    bits += too_low
    too_high = (np.int64(1) << (bits - 1)) > safe
    bits -= too_high
    return int(np.sum((bits + 6) // 7))
