"""Graph statistics (reproduces Table I / Figure 9 columns).

Also provides the locality metrics that explain per-family compression
ratios: the mean log2 neighbor gap (drives gap-encoding cost) and the
fraction of edges covered by length->=3 consecutive runs (drives interval
encoding gains).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.compressed import MIN_INTERVAL_LEN, split_intervals


@dataclass
class GraphStats:
    n: int
    m: int
    avg_degree: float
    max_degree: int
    min_degree: int
    isolated_vertices: int
    mean_log2_gap: float
    interval_edge_fraction: float
    weighted: bool

    def row(self) -> str:
        return (
            f"n={self.n:>12,} m={self.m:>14,} d={self.avg_degree:7.1f} "
            f"Δ={self.max_degree:>10,} runs={self.interval_edge_fraction:5.1%}"
        )


def compute_stats(graph) -> GraphStats:
    """Compute :class:`GraphStats` for any graph following the protocol."""
    n = graph.n
    degrees = np.asarray(graph.degrees)
    log_gaps: list[float] = []
    interval_edges = 0
    total_edges = 0
    sample = range(n) if n <= 4096 else np.linspace(0, n - 1, 4096).astype(int)
    for u in sample:
        nbrs = np.sort(np.asarray(graph.neighbors(int(u))))
        if len(nbrs) == 0:
            continue
        gaps = np.diff(nbrs)
        first = abs(int(nbrs[0]) - int(u))
        all_gaps = np.concatenate([[max(first, 1)], np.maximum(gaps, 1)])
        log_gaps.append(float(np.mean(np.log2(all_gaps.astype(np.float64) + 1))))
        intervals, _ = split_intervals(nbrs, MIN_INTERVAL_LEN)
        interval_edges += sum(length for _, length in intervals)
        total_edges += len(nbrs)
    return GraphStats(
        n=n,
        m=graph.m,
        avg_degree=float(degrees.mean()) if n else 0.0,
        max_degree=int(degrees.max()) if n else 0,
        min_degree=int(degrees.min()) if n else 0,
        isolated_vertices=int((degrees == 0).sum()),
        mean_log2_gap=float(np.mean(log_gaps)) if log_gaps else 0.0,
        interval_edge_fraction=(
            interval_edges / total_edges if total_edges else 0.0
        ),
        weighted=graph.has_edge_weights,
    )
