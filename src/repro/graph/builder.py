"""Edge-list -> CSR builder.

Handles the normalisations the paper applies to its inputs (Section VI,
*Instances*): directed inputs are symmetrised by adding missing reverse
edges, self-loops are removed, and parallel edges are merged by summing
weights.  Neighborhoods come out sorted by neighbor ID, which the
compression codec requires for gap encoding.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.memory.scratch import tracked_empty, tracked_ones, tracked_zeros


def from_edges(
    n: int,
    edges: np.ndarray,
    weights: np.ndarray | None = None,
    vwgt: np.ndarray | None = None,
    *,
    symmetrize: bool = True,
    dedup: bool = True,
) -> CSRGraph:
    """Build a :class:`CSRGraph` from an ``(e, 2)`` edge array.

    Each row is one edge ``(u, v)``; with ``symmetrize=True`` the reverse
    direction is added automatically (duplicates merge).  Self-loops are
    always dropped.
    """
    edges = np.asarray(edges, dtype=np.int64)
    if edges.size == 0:
        edges = edges.reshape(0, 2)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise ValueError(f"edges must have shape (e, 2), got {edges.shape}")
    if edges.size and (edges.min() < 0 or edges.max() >= n):
        raise ValueError("edge endpoints out of range")
    if weights is not None:
        weights = np.asarray(weights, dtype=np.int64)
        if len(weights) != len(edges):
            raise ValueError("weights must align with edges")
        if weights.size and weights.min() <= 0:
            raise ValueError("edge weights must be positive")

    # drop self-loops
    keep = edges[:, 0] != edges[:, 1]
    edges = edges[keep]
    if weights is not None:
        weights = weights[keep]

    src = edges[:, 0].copy()
    dst = edges[:, 1].copy()
    if weights is None:
        weights = tracked_ones(len(src), np.int64, name="builder-unit-weights")

    if symmetrize and len(src):
        # Canonicalise to undirected pairs (min, max).  A duplicate pair --
        # whether the input listed (u,v) twice or listed both directions --
        # collapses to one undirected edge with the *maximum* weight.  This
        # is the paper's "add missing reverse edges" union semantics.
        lo = np.minimum(src, dst)
        hi = np.maximum(src, dst)
        key = lo * np.int64(n) + hi
        order = np.argsort(key, kind="stable")
        key_s, lo_s, hi_s, w_s = key[order], lo[order], hi[order], weights[order]
        uniq_mask = tracked_empty(len(key_s), bool, name="builder-uniq-mask")
        uniq_mask[0] = True
        uniq_mask[1:] = key_s[1:] != key_s[:-1]
        if dedup:
            group_ids = np.cumsum(uniq_mask) - 1
            w_max = tracked_zeros(
                int(group_ids[-1]) + 1, np.int64, name="builder-weight-merge"
            )
            np.maximum.at(w_max, group_ids, w_s)
            lo, hi, weights = lo_s[uniq_mask], hi_s[uniq_mask], w_max
        else:
            lo, hi, weights = lo_s, hi_s, w_s
        src = np.concatenate([lo, hi])
        dst = np.concatenate([hi, lo])
        weights = np.concatenate([weights, weights])
    elif dedup and len(src):
        # caller promises a symmetric directed list; merge parallel edges by
        # summing per direction (identical sums on both directions preserve
        # symmetry).
        key = src * np.int64(n) + dst
        order = np.argsort(key, kind="stable")
        key_s, src_s, dst_s, w_s = key[order], src[order], dst[order], weights[order]
        uniq_mask = tracked_empty(len(key_s), bool, name="builder-uniq-mask")
        uniq_mask[0] = True
        uniq_mask[1:] = key_s[1:] != key_s[:-1]
        group_ids = np.cumsum(uniq_mask) - 1
        w_sum = tracked_zeros(
            int(group_ids[-1]) + 1, np.int64, name="builder-weight-merge"
        )
        np.add.at(w_sum, group_ids, w_s)
        src, dst, weights = src_s[uniq_mask], dst_s[uniq_mask], w_sum

    order = np.lexsort((dst, src))
    src, dst, weights = src[order], dst[order], weights[order]

    degrees = np.bincount(src, minlength=n).astype(np.int64)
    indptr = tracked_zeros(n + 1, np.int64, name="csr-indptr")
    np.cumsum(degrees, out=indptr[1:])

    unit = bool(len(weights) == 0 or np.all(weights == 1))
    return CSRGraph(
        indptr,
        dst,
        None if unit else weights,
        vwgt,
        sorted_neighborhoods=True,
    )


class GraphBuilder:
    """Incremental builder used by generators and tests.

    Collects edges in Python lists (append-friendly) and materialises a
    normalised :class:`CSRGraph` at the end.
    """

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("n must be non-negative")
        self.n = n
        self._us: list[int] = []
        self._vs: list[int] = []
        self._ws: list[int] = []
        self._vwgt: np.ndarray | None = None

    def add_edge(self, u: int, v: int, w: int = 1) -> None:
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ValueError(f"edge ({u}, {v}) out of range for n={self.n}")
        self._us.append(u)
        self._vs.append(v)
        self._ws.append(w)

    def add_edges(self, edges: np.ndarray, weights: np.ndarray | None = None) -> None:
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        self._us.extend(edges[:, 0].tolist())
        self._vs.extend(edges[:, 1].tolist())
        if weights is None:
            self._ws.extend([1] * len(edges))
        else:
            self._ws.extend(np.asarray(weights, dtype=np.int64).tolist())

    def set_vertex_weights(self, vwgt: np.ndarray) -> None:
        vwgt = np.asarray(vwgt, dtype=np.int64)
        if len(vwgt) != self.n:
            raise ValueError("vwgt must have size n")
        self._vwgt = vwgt

    @property
    def num_pending_edges(self) -> int:
        return len(self._us)

    def build(self, *, symmetrize: bool = True) -> CSRGraph:
        edges = np.stack(
            [
                np.asarray(self._us, dtype=np.int64),
                np.asarray(self._vs, dtype=np.int64),
            ],
            axis=1,
        ) if self._us else np.zeros((0, 2), dtype=np.int64)
        weights = np.asarray(self._ws, dtype=np.int64) if self._ws else None
        return from_edges(
            self.n, edges, weights, self._vwgt, symmetrize=symmetrize
        )
