"""Graph substrate: representations, codecs, I/O and generators.

Two interchangeable graph representations implement the same neighborhood
protocol (``degree``, ``neighbors``, ``neighbors_and_weights``, ``nbytes``):

* :class:`CSRGraph` -- plain compressed-sparse-row arrays (Section III).
* :class:`CompressedGraph` -- gap + interval + VarInt encoded neighborhoods
  with interleaved weights and chunked high-degree vertices (Section III-A),
  decoded on the fly.

Everything downstream (coarsening, refinement, baselines, the distributed
layer) works against the protocol, so compression is a drop-in toggle, as in
the paper.
"""

from repro.graph.csr import CSRGraph
from repro.graph.builder import GraphBuilder, from_edges
from repro.graph.compressed import CompressedGraph, CompressionStats, compress_graph
from repro.graph import generators, ordering
from repro.graph.stats import GraphStats, compute_stats

__all__ = [
    "CSRGraph",
    "GraphBuilder",
    "from_edges",
    "CompressedGraph",
    "CompressionStats",
    "compress_graph",
    "generators",
    "ordering",
    "GraphStats",
    "compute_stats",
]
