"""Parallel single-pass compression pipeline (Section III-B).

The paper compresses the graph *during* I/O in one pass:

1. The compressed edge array's final size is unknown upfront, so a
   conservative upper bound is reserved with **memory overcommitment**; only
   touched bytes are physically backed (modelled through the tracker's
   overcommit allocations).
2. Threads work on **packets** of consecutive vertices containing a similar
   number of edges, compressing each packet into a thread-local buffer.
3. An **ordered writer** hands out destination ranges: a thread that finished
   packet ``i`` waits until all packets ``< i`` have claimed their ranges,
   then advances the shared end position by its buffer size and copies the
   buffer in.

The simulation executes packets in virtual-thread order but reproduces the
synchronisation structure: per-packet buffer sizes, the claim order, and the
high-water mark of simultaneously-live thread-local buffers (which is what
the technique saves memory on).  Output is byte-identical to the sequential
:func:`repro.graph.compressed.compress_graph`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.compressed import (
    CompressedGraph,
    CompressionConfig,
    CompressionStats,
    encode_neighborhood,
)
from repro.graph.csr import CSRGraph
from repro.parallel.runtime import ParallelRuntime


def compressed_size_upper_bound(
    degrees: np.ndarray, weighted: bool
) -> int:
    """Worst-case byte size of the compressed edge array.

    Every neighbor gap fits in 10 VarInt bytes; headers, interval counts and
    chunk length prefixes add at most ``10`` bytes per vertex plus ``10``
    per chunk; weights add at most ``10`` per edge.  This is the reservation
    the paper overcommits -- deliberately loose, because only touched pages
    materialise.
    """
    total_deg = int(degrees.sum())
    n = len(degrees)
    per_edge = 10 * (2 if weighted else 1)
    chunk_overhead = 10 * int(np.sum(-(-degrees // 1000)))
    return 20 * n + per_edge * total_deg + chunk_overhead + 10


@dataclass
class PacketTrace:
    """Synchronisation record for one packet (for tests/cost model)."""

    packet_id: int
    thread_id: int
    num_vertices: int
    buffer_bytes: int
    claim_position: int


def compress_graph_parallel(
    graph: CSRGraph,
    runtime: ParallelRuntime,
    *,
    enable_intervals: bool = True,
    high_degree_threshold: int = 10_000,
    chunk_length: int = 1_000,
    tracker=None,
) -> tuple[CompressedGraph, list[PacketTrace]]:
    """Compress ``graph`` with the packet-ordered parallel pipeline."""
    if not graph.sorted_neighborhoods:
        graph = graph.with_sorted_neighborhoods()
    cfg = CompressionConfig(
        enable_intervals=enable_intervals,
        high_degree_threshold=high_degree_threshold,
        chunk_length=chunk_length,
    )
    stats = CompressionStats(uncompressed_bytes=graph.nbytes)
    n = graph.n
    weighted = graph.has_edge_weights

    # reserve the overcommitted edge array
    bound = compressed_size_upper_bound(graph.degrees, weighted)
    oc_aid = None
    if tracker is not None:
        oc_aid = tracker.alloc(
            "compressed-edge-array", bound, "graph", overcommit=True
        )

    # packets of consecutive vertices with similar edge counts
    order = np.arange(n, dtype=np.int64)
    degrees = graph.degrees
    schedule = runtime.schedule_balanced(order, np.maximum(degrees, 1))

    offsets = np.empty(n + 1, dtype=np.int64)
    out = bytearray()
    traces: list[PacketTrace] = []
    max_buffer_bytes = 0

    # The ordered-writer protocol: packets claim ranges strictly in packet
    # order.  We iterate in that order (virtual threads are deterministic),
    # recording per-packet buffers exactly as the real pipeline would hold
    # them.  At most one buffer per thread is live at a time; the tracker
    # charges the per-thread high-water mark.
    thread_buf_aids: dict[int, int] = {}
    for packet_id, (tid, chunk) in enumerate(schedule):
        buf = bytearray()
        local_offsets = np.empty(len(chunk), dtype=np.int64)
        for i, u in enumerate(chunk.tolist()):
            local_offsets[i] = len(buf)
            nbrs, wgts = graph.neighbors_and_weights(u)
            encode_neighborhood(
                u,
                nbrs,
                np.asarray(wgts) if weighted else None,
                int(graph.indptr[u]),
                buf,
                cfg,
                stats,
            )
        if tracker is not None:
            if tid in thread_buf_aids:
                tracker.free(thread_buf_aids[tid])
            thread_buf_aids[tid] = tracker.alloc(
                f"packet-buffer-t{tid}", len(buf), "compression-buffers"
            )
        max_buffer_bytes = max(max_buffer_bytes, len(buf))
        # claim: advance shared end position (packets < id already claimed)
        claim = len(out)
        offsets[chunk] = claim + local_offsets
        out.extend(buf)
        if tracker is not None and oc_aid is not None:
            tracker.touch(oc_aid, len(out))
        traces.append(
            PacketTrace(packet_id, tid, len(chunk), len(buf), claim)
        )
        runtime.record(
            "compression",
            work=float(degrees[chunk].sum() + len(chunk)),
            bytes_moved=float(2 * len(buf)),
        )
    for aid in thread_buf_aids.values():
        if tracker is not None:
            tracker.free(aid)
    offsets[n] = len(out)
    data = bytes(out)
    stats.compressed_bytes = len(data) + offsets.nbytes
    vwgt = np.asarray(graph.vwgt).copy() if graph.has_vertex_weights else None
    cg = CompressedGraph(
        n,
        graph.num_directed_edges,
        offsets,
        data,
        vwgt,
        has_edge_weights=weighted,
        config=cfg,
        stats=stats,
        total_edge_weight=graph.total_edge_weight,
    )
    if tracker is not None and oc_aid is not None:
        # replace the overcommitted reservation by the final footprint
        tracker.free(oc_aid)
        tracker.alloc("compressed-graph", cg.nbytes, "graph")
    return cg, traces


def io_time_model(
    graph_bytes: int,
    p: int,
    *,
    compress: bool,
    disk_bandwidth: float = 3.5e9,
    compress_rate_per_core: float = 60e6,
) -> float:
    """Modelled wall-clock seconds to stream a graph from disk.

    Reproduces the paper's I/O observation (Section VI *Methodology*): with
    one core, on-the-fly compression dominates (2905 s vs 572 s on eu-2015);
    with 96 cores the compression hides behind the disk (179 s vs 177 s).
    """
    disk_seconds = graph_bytes / disk_bandwidth
    if not compress:
        return disk_seconds
    compress_seconds = graph_bytes / (compress_rate_per_core * p)
    # pipelined: the slower stage dominates, plus a small coupling term
    return max(disk_seconds, compress_seconds) + 0.01 * min(
        disk_seconds, compress_seconds
    )
