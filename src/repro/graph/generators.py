"""Synthetic graph generators (KaGen substitutes + benchmark-set families).

The paper evaluates on three kinds of inputs, none of which are shippable:

* KaGen-generated ``rgg2D`` (random geometric) and ``rhg`` (random
  hyperbolic, power-law) families -- reimplemented here.  For ``rhg`` we use
  the threshold Geometric Inhomogeneous Random Graph (GIRG) formulation,
  which is the standard asymptotically-equivalent model of threshold RHG and
  reproduces the properties the paper relies on: power-law degrees with
  exponent ``gamma``, high clustering, and strong neighbor-ID locality.
* Benchmark Set A: 72 graphs from SuiteSparse / Network Repository spanning
  meshes, k-mer graphs, social networks and compressed-text graphs.  We
  generate structural stand-ins per family (``grid2d``/``torus`` for FEM
  meshes, ``kmer`` for low-locality near-regular graphs, ``ba`` for social
  networks, ``textlike`` for the weighted text-compression class).
* Benchmark Set B: huge web crawls.  ``weblike`` models their two key
  features -- skewed degree distribution and *runs of consecutive neighbor
  IDs* induced by URL-ordered vertex IDs -- which drive both partitioning
  behaviour and the 5-11x interval-encoding compression ratios.

All generators take a ``seed`` and are deterministic given it.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.memory.scratch import tracked_zeros

from repro.graph.builder import from_edges
from repro.graph.csr import CSRGraph


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


# --------------------------------------------------------------------- #
# KaGen substitutes
# --------------------------------------------------------------------- #
def rgg2d(n: int, avg_degree: float = 8.0, seed: int = 0) -> CSRGraph:
    """Random geometric graph on the unit square (KaGen ``rgg2D``).

    Connects points within Euclidean distance ``r`` chosen so the expected
    average degree is ``avg_degree``.  Mesh-like: no high-degree vertices.
    """
    if n < 2:
        return from_edges(n, np.zeros((0, 2), dtype=np.int64))
    rng = _rng(seed)
    pts = rng.random((n, 2))
    r = float(np.sqrt(avg_degree / (np.pi * n)))
    # sort by space-filling order so vertex IDs have locality, as KaGen's
    # distributed generation produces
    order = np.lexsort((pts[:, 1], np.floor(pts[:, 0] * 16)))
    pts = pts[order]
    tree = cKDTree(pts)
    pairs = tree.query_pairs(r, output_type="ndarray")
    return from_edges(n, pairs.astype(np.int64))


def rhg(
    n: int, avg_degree: float = 8.0, gamma: float = 3.0, seed: int = 0
) -> CSRGraph:
    """Random hyperbolic graph substitute via threshold 1-D GIRG.

    Vertices get power-law weights ``w ~ Pareto(gamma - 1)`` and positions on
    a ring; ``u ~ v`` iff ``dist(x_u, x_v) <= c * w_u * w_v / W``.  The
    constant ``c`` is calibrated so the realised average degree approaches
    ``avg_degree``.  Weight layers (powers of two) + sorted positions give
    near-linear generation time.
    """
    if gamma <= 2.0:
        raise ValueError("gamma must be > 2 for finite mean degree")
    if n < 2:
        return from_edges(n, np.zeros((0, 2), dtype=np.int64))
    rng = _rng(seed)
    alpha = gamma - 1.0
    w = (1.0 - rng.random(n)) ** (-1.0 / alpha)  # Pareto(alpha), min 1
    w = np.minimum(w, np.sqrt(n))  # cap to keep max degree < n
    pos = rng.random(n)
    total_w = float(w.sum())
    # E[deg_u] = sum_v min(1, 2 c w_u w_v / W); for small c: 2 c w_u.
    # Solve 2 c E[w] = avg_degree / n * W  =>  c = avg_degree / (2 E[w]) ... :
    mean_w = total_w / n
    c = avg_degree / (2.0 * mean_w)

    # sort by position; vertex ids follow position for locality
    order = np.argsort(pos)
    pos = pos[order]
    w = w[order]

    # layer vertices by log2(weight)
    layers = np.floor(np.log2(w)).astype(np.int64)
    max_layer = int(layers.max())
    layer_members: dict[int, np.ndarray] = {
        l: np.flatnonzero(layers == l) for l in range(max_layer + 1)
    }
    layer_members = {l: idx for l, idx in layer_members.items() if len(idx)}

    us: list[np.ndarray] = []
    vs: list[np.ndarray] = []
    for li, mi in layer_members.items():
        for lj, mj in layer_members.items():
            if lj < li:
                continue
            # conservative window for this layer pair
            win = c * (2.0 ** (li + 1)) * (2.0 ** (lj + 1)) / total_w
            if win >= 0.5:
                # all pairs across these layers are candidates
                cand_u = np.repeat(mi, len(mj))
                cand_v = np.tile(mj, len(mi))
            else:
                pj = pos[mj]
                lo = np.searchsorted(pj, pos[mi] - win)
                hi = np.searchsorted(pj, pos[mi] + win)
                counts = hi - lo
                # also wrap-around candidates on the ring
                cand_u = np.repeat(mi, counts)
                flat = [mj[l:h] for l, h in zip(lo.tolist(), hi.tolist())]
                cand_v = (
                    np.concatenate(flat) if flat else np.empty(0, dtype=np.int64)
                )
                # ring wrap: near 0/1 boundary
                wrap_lo = np.searchsorted(pj, pos[mi] - win + 1.0)
                wrap_counts = len(mj) - wrap_lo
                if np.any(wrap_counts > 0):
                    wu = np.repeat(mi, wrap_counts)
                    wflat = [mj[l:] for l in wrap_lo.tolist()]
                    wv = np.concatenate(wflat) if wflat else np.empty(0, dtype=np.int64)
                    cand_u = np.concatenate([cand_u, wu])
                    cand_v = np.concatenate([cand_v, wv])
                wrap_hi = np.searchsorted(pj, pos[mi] + win - 1.0)
                if np.any(wrap_hi > 0):
                    wu = np.repeat(mi, wrap_hi)
                    wflat = [mj[:h] for h in wrap_hi.tolist()]
                    wv = np.concatenate(wflat) if wflat else np.empty(0, dtype=np.int64)
                    cand_u = np.concatenate([cand_u, wu])
                    cand_v = np.concatenate([cand_v, wv])
            if len(cand_u) == 0:
                continue
            keep = cand_u < cand_v
            cand_u, cand_v = cand_u[keep], cand_v[keep]
            d = np.abs(pos[cand_u] - pos[cand_v])
            d = np.minimum(d, 1.0 - d)
            thresh = c * w[cand_u] * w[cand_v] / total_w
            hit = d <= thresh
            us.append(cand_u[hit])
            vs.append(cand_v[hit])
    if us:
        edges = np.stack([np.concatenate(us), np.concatenate(vs)], axis=1)
    else:
        edges = np.zeros((0, 2), dtype=np.int64)
    return from_edges(n, edges)


# --------------------------------------------------------------------- #
# benchmark-family stand-ins
# --------------------------------------------------------------------- #
def weblike(
    n: int,
    avg_degree: float = 20.0,
    seed: int = 0,
    *,
    locality: float = 0.9,
    mean_run: int = 6,
    hub_fraction: float = 0.002,
) -> CSRGraph:
    """Web-crawl stand-in (gsh-2015 / eu-2015 / hyperlink class).

    Vertex IDs follow URL order, so most links land in a window around the
    source and arrive in *consecutive runs* (directory listings, navigation
    bars) -- exactly the structure interval encoding exploits.  Local links
    are emitted as explicit runs of ``3..2*mean_run`` consecutive IDs, so
    interval encoding is crucial for these graphs (gap-only compresses 2-3x,
    gap+interval 5-11x, as in Fig. 6 right).  A small hub set receives
    heavy-tailed in-links, producing the huge max degrees of Table I.
    """
    rng = _rng(seed)
    # heavy-tailed out-degrees
    deg = np.minimum(
        rng.zipf(1.7, size=n), max(4, int(avg_degree * 12))
    ).astype(np.int64)
    scale = avg_degree / max(deg.mean(), 1e-9) / 2.0
    deg = np.maximum(1, (deg * scale).astype(np.int64))

    local_deg = (deg * locality).astype(np.int64)
    global_deg = deg - local_deg

    # local links: per vertex, ceil(local_deg / run_len) runs of consecutive
    # IDs anchored inside a window around the source
    window = max(16, n // 256)
    run_len = max(3, mean_run)
    num_runs = -(-local_deg // run_len)  # ceil
    total_runs = int(num_runs.sum())
    run_src = np.repeat(np.arange(n, dtype=np.int64), num_runs)
    anchors = run_src + rng.integers(-window, window + 1, size=total_runs)
    # expand each run into run_len consecutive destinations
    lsrc = np.repeat(run_src, run_len)
    ldst = np.repeat(anchors, run_len) + np.tile(
        np.arange(run_len, dtype=np.int64), total_runs
    )
    np.clip(ldst, 0, n - 1, out=ldst)

    # global links: preferential toward a hub set
    total_global = int(global_deg.sum())
    gsrc = np.repeat(np.arange(n, dtype=np.int64), global_deg)
    n_hubs = max(1, int(n * hub_fraction))
    hubs = rng.integers(0, n, size=n_hubs)
    pick_hub = rng.random(total_global) < 0.7
    gdst = np.where(
        pick_hub,
        hubs[rng.integers(0, n_hubs, size=total_global)],
        rng.integers(0, n, size=total_global),
    )
    edges = np.stack(
        [np.concatenate([lsrc, gsrc]), np.concatenate([ldst, gdst])], axis=1
    )
    return from_edges(n, edges)


def kmer(n: int, degree: int = 4, seed: int = 0) -> CSRGraph:
    """k-mer graph stand-in: near-regular, *no* neighbor-ID locality.

    De-Bruijn-style genome graphs have degree <= 2k with neighbor IDs given
    by hashes, so gap encoding buys nothing (compression ratio ~1 in
    Fig. 10).  Modelled as a union of ``degree`` random permutations --
    random endpoints, tightly concentrated degrees.
    """
    rng = _rng(seed)
    srcs = []
    dsts = []
    for _ in range(max(1, degree // 2)):
        perm = rng.permutation(n).astype(np.int64)
        srcs.append(np.arange(n, dtype=np.int64))
        dsts.append(perm)
    edges = np.stack([np.concatenate(srcs), np.concatenate(dsts)], axis=1)
    return from_edges(n, edges)


def grid2d(rows: int, cols: int, *, torus: bool = False) -> CSRGraph:
    """FEM-mesh stand-in: 2-D grid (optionally wrapped into a torus).

    Maximal neighbor-ID locality; compression ratios around 5-6 as the paper
    reports for finite-element graphs.
    """
    n = rows * cols
    idx = np.arange(n, dtype=np.int64).reshape(rows, cols)
    es = []
    # horizontal
    es.append(np.stack([idx[:, :-1].ravel(), idx[:, 1:].ravel()], axis=1))
    # vertical
    es.append(np.stack([idx[:-1, :].ravel(), idx[1:, :].ravel()], axis=1))
    if torus:
        es.append(np.stack([idx[:, -1], idx[:, 0]], axis=1))
        es.append(np.stack([idx[-1, :], idx[0, :]], axis=1))
    edges = np.concatenate(es, axis=0)
    return from_edges(n, edges)


def grid3d(nx: int, ny: int, nz: int) -> CSRGraph:
    """3-D grid mesh."""
    n = nx * ny * nz
    idx = np.arange(n, dtype=np.int64).reshape(nx, ny, nz)
    es = [
        np.stack([idx[:-1].ravel(), idx[1:].ravel()], axis=1),
        np.stack([idx[:, :-1].ravel(), idx[:, 1:].ravel()], axis=1),
        np.stack([idx[:, :, :-1].ravel(), idx[:, :, 1:].ravel()], axis=1),
    ]
    return from_edges(n, np.concatenate(es, axis=0))


def ba(n: int, m_attach: int = 4, seed: int = 0) -> CSRGraph:
    """Barabási-Albert preferential attachment (social-network stand-in)."""
    if n <= m_attach:
        raise ValueError("n must exceed m_attach")
    rng = _rng(seed)
    # repeated-nodes implementation: O(n * m)
    targets = list(range(m_attach))
    repeated: list[int] = []
    us: list[int] = []
    vs: list[int] = []
    for v in range(m_attach, n):
        for t in targets:
            us.append(v)
            vs.append(t)
        repeated.extend(targets)
        repeated.extend([v] * m_attach)
        # sample next targets from repeated (preferential) without replacement
        targets = []
        seen = set()
        while len(targets) < m_attach:
            t = repeated[rng.integers(0, len(repeated))]
            if t not in seen:
                seen.add(t)
                targets.append(t)
    edges = np.stack(
        [np.asarray(us, dtype=np.int64), np.asarray(vs, dtype=np.int64)], axis=1
    )
    return from_edges(n, edges)


def er(n: int, avg_degree: float = 8.0, seed: int = 0) -> CSRGraph:
    """Erdős–Rényi G(n, m) graph."""
    rng = _rng(seed)
    m = int(n * avg_degree / 2)
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    return from_edges(n, np.stack([src, dst], axis=1))


def textlike(n: int, seed: int = 0, *, skip_links: int = 3) -> CSRGraph:
    """Weighted text-compression-graph stand-in (Pizza&Chili class).

    Grammar-compressed texts yield chain-like weighted graphs: a backbone
    path (adjacent symbols) with Zipf-distributed multi-edge weights plus
    skip links from repeated phrases.
    """
    rng = _rng(seed)
    us: list[np.ndarray] = []
    vs: list[np.ndarray] = []
    ws: list[np.ndarray] = []
    backbone = np.arange(n - 1, dtype=np.int64)
    us.append(backbone)
    vs.append(backbone + 1)
    ws.append(np.minimum(rng.zipf(1.5, size=n - 1), 10_000).astype(np.int64))
    for k in range(skip_links):
        span = int(2 ** (k + 2))
        count = max(1, n // (2 * (k + 1)))
        s = rng.integers(0, max(1, n - span), size=count)
        us.append(s.astype(np.int64))
        vs.append((s + rng.integers(2, span + 1, size=count)).astype(np.int64))
        ws.append(np.minimum(rng.zipf(1.8, size=count), 1_000).astype(np.int64))
    edges = np.stack([np.concatenate(us), np.concatenate(vs)], axis=1)
    weights = np.concatenate(ws)
    edges[:, 1] = np.minimum(edges[:, 1], n - 1)
    return from_edges(n, edges, weights)


def star(n: int) -> CSRGraph:
    """Star graph: the extreme high-degree stress case for chunked encoding."""
    edges = np.stack(
        [
            tracked_zeros(n - 1, np.int64, name="star-centers"),
            np.arange(1, n, dtype=np.int64),
        ],
        axis=1,
    )
    return from_edges(n, edges)


def path(n: int) -> CSRGraph:
    b = np.arange(n - 1, dtype=np.int64)
    return from_edges(n, np.stack([b, b + 1], axis=1))


def complete(n: int) -> CSRGraph:
    u, v = np.triu_indices(n, k=1)
    return from_edges(n, np.stack([u.astype(np.int64), v.astype(np.int64)], axis=1))


def rmat(
    n: int,
    avg_degree: float = 8.0,
    seed: int = 0,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
) -> CSRGraph:
    """R-MAT / Kronecker graph (Graph500-style power-law generator).

    Each edge is placed by descending a 2^scale x 2^scale adjacency matrix,
    choosing a quadrant per level with probabilities (a, b, c, 1-a-b-c).
    Produces heavy-tailed degrees with community structure; rounds ``n`` up
    to a power of two internally and discards out-of-range endpoints.
    """
    if not (0 < a and 0 <= b and 0 <= c and a + b + c < 1):
        raise ValueError("require a,b,c >= 0 and a+b+c < 1")
    rng = _rng(seed)
    scale = max(1, int(np.ceil(np.log2(max(2, n)))))
    m = int(n * avg_degree / 2)
    src = tracked_zeros(m, np.int64, name="rmat-src")
    dst = tracked_zeros(m, np.int64, name="rmat-dst")
    for level in range(scale):
        r = rng.random(m)
        # quadrant: 0=(0,0) w.p. a, 1=(0,1) w.p. b, 2=(1,0) w.p. c, 3=(1,1)
        right = (r >= a) & (r < a + b)
        down = (r >= a + b) & (r < a + b + c)
        both = r >= a + b + c
        bit = np.int64(1) << (scale - 1 - level)
        dst += bit * (right | both)
        src += bit * (down | both)
    keep = (src < n) & (dst < n)
    edges = np.stack([src[keep], dst[keep]], axis=1)
    return from_edges(n, edges)


def connected_components(graph) -> np.ndarray:
    """Component label per vertex (labels are representative vertex IDs).

    Pointer-jumping label propagation: O((n + m) log n) vectorized rounds.
    """
    n = graph.n
    labels = np.arange(n, dtype=np.int64)
    if n == 0:
        return labels
    from repro.graph.access import full_adjacency

    src, dstv, _ = full_adjacency(graph)
    while True:
        new = labels.copy()
        np.minimum.at(new, src, labels[dstv])
        # pointer jumping
        changed = not np.array_equal(new, labels)
        labels = new
        for _ in range(2):
            labels = labels[labels]
        if not changed:
            break
    return labels


GENERATORS = {
    "rmat": rmat,
    "rgg2d": rgg2d,
    "rhg": rhg,
    "weblike": weblike,
    "kmer": kmer,
    "ba": ba,
    "er": er,
    "textlike": textlike,
}


def generate(name: str, **kwargs) -> CSRGraph:
    """Dispatch into the generator registry by family name."""
    if name not in GENERATORS:
        raise KeyError(f"unknown generator {name!r}; know {sorted(GENERATORS)}")
    return GENERATORS[name](**kwargs)
