"""Content fingerprints for graphs.

The serving layer keys its caches by *what the graph is*, not by the
Python object identity: two requests naming byte-identical graphs must
coalesce into one partitioner run, and a graph mutated by a delta batch
must stop matching every cache entry computed from its previous state.

A fingerprint is a short blake2b digest over the structural arrays (CSR)
or the encoded byte stream (compressed representation), prefixed with
``n``/``m`` so a collision would additionally have to match the size
header.  Both representations of the *same* graph deliberately produce
*different* fingerprints — the cache stores representation-specific
artifacts (a compressed graph is itself a cached value), so conflating
them would alias entries of different byte sizes.
"""

from __future__ import annotations

import hashlib

import numpy as np

_DIGEST_SIZE = 12  # 96 bits: collision-safe for any plausible cache size


def graph_fingerprint(graph) -> str:
    """Hex content digest of a CSR or compressed graph."""
    h = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    h.update(f"{graph.n}:{graph.num_directed_edges}:".encode())
    if hasattr(graph, "indptr"):  # CSR
        h.update(b"csr:")
        h.update(np.ascontiguousarray(graph.indptr).tobytes())
        h.update(np.ascontiguousarray(graph.adjncy).tobytes())
        if graph.has_edge_weights:
            h.update(np.ascontiguousarray(graph.adjwgt).tobytes())
        if graph.has_vertex_weights:
            h.update(np.ascontiguousarray(graph.vwgt).tobytes())
    else:  # compressed: offsets + encoded stream are the structure
        h.update(b"cmp:")
        h.update(np.ascontiguousarray(graph.offsets).tobytes())
        data = graph.data
        h.update(data if isinstance(data, (bytes, bytearray)) else bytes(data))
        vwgt = np.asarray(graph.vwgt)
        if graph.has_vertex_weights:
            h.update(vwgt.tobytes())
    return h.hexdigest()
