"""Bulk adjacency access helpers shared by all vectorized kernels.

Partitioning kernels in this reproduction are vectorized *per chunk of
vertices*: they need, for a chunk ``[u_0, u_1, ...]``, the flattened arrays
``(owner_index, neighbor, edge_weight)``.  For CSR graphs this is a pure
numpy gather; for compressed graphs each neighborhood is decoded on the fly
(the paper's point: decoding speed is close enough to raw CSR that the
partitioner can run directly on the compressed representation).
"""

from __future__ import annotations

import numpy as np

from repro.memory.scratch import tracked_empty, tracked_full

# Decode-work factor of compressed vs CSR traversal, measured once per
# process by `measured_decode_work_factor` (fallback if measurement is
# impossible, e.g. a stripped-down environment).
_FALLBACK_WORK_FACTOR = 1.3
_work_factor_cache: float | None = None

# Obs-layer counter hook.  When a traced run is active the partitioner
# installs its SpanTracer here and every bulk adjacency access reports how
# many edges it decoded (split CSR-gather vs compressed-decode) plus the
# decode-cache hit/miss deltas.  One None-check per *chunk* when disabled.
_tracer = None


def install_tracer(tracer) -> None:
    """Route decode counters of this module into ``tracer`` (obs layer)."""
    global _tracer
    _tracer = tracer


def uninstall_tracer() -> None:
    global _tracer
    _tracer = None


def _count_decode(graph, nedges: int) -> None:
    tr = _tracer
    if tr is None or nedges == 0:
        return
    if hasattr(graph, "indptr"):
        tr.add("decode.edges_csr", nedges)
    else:
        tr.add("decode.edges", nedges)


def _count_cache(stats_before: dict | None, stats_after: dict | None) -> None:
    """Report decode-cache hit/miss/eviction deltas between two snapshots."""
    tr = _tracer
    if tr is None or stats_after is None:
        return
    before = stats_before or {}
    for key in ("hits", "misses", "evictions"):
        delta = stats_after.get(key, 0) - before.get(key, 0)
        if delta:
            tr.add(f"decode.cache_{key}", delta)


def measured_decode_work_factor(*, refresh: bool = False) -> float:
    """Per-edge work factor of compressed chunk traversal relative to CSR.

    Times the vectorized bulk decode against the raw CSR gather on a fixed
    weblike instance (best-of-5 to damp scheduler noise) and caches the
    ratio for the process.  The probe uses chunks of ~1000 vertices -- the
    scale LP actually traverses -- so the ratio reflects per-edge work, not
    per-call fixed overhead.  Clamped to ``[1.05, 8.0]`` so cost-model
    figures stay sane on noisy machines; the fallback 1.3 (the paper's ~6%
    overhead plus interpreter slack) is used only if measurement fails.
    """
    global _work_factor_cache
    if _work_factor_cache is not None and not refresh:
        return _work_factor_cache
    try:
        import time

        from repro.graph.compressed import compress_graph
        from repro.graph.generators import weblike

        g = weblike(8000, avg_degree=10, seed=1)
        cg = compress_graph(g)
        chunks = np.array_split(np.arange(g.n, dtype=np.int64), 8)

        def best_of(graph, reps: int = 5) -> float:
            best = float("inf")
            for _ in range(reps):
                t0 = time.perf_counter()
                for c in chunks:
                    chunk_adjacency(graph, c)
                best = min(best, time.perf_counter() - t0)
            return best

        t_csr = best_of(g)
        t_cmp = best_of(cg)
        factor = t_cmp / t_csr if t_csr > 0 else _FALLBACK_WORK_FACTOR
        _work_factor_cache = float(min(8.0, max(1.05, factor)))
    except Exception:
        _work_factor_cache = _FALLBACK_WORK_FACTOR
    return _work_factor_cache


def traversal_cost(graph) -> tuple[float, float]:
    """Per-directed-edge ``(bytes_moved, work_factor)`` of scanning ``graph``.

    Raw CSR moves 16 bytes per edge (ID + weight); a compressed graph moves
    only its encoded bytes but pays a decode-work overhead -- the mechanism
    behind the paper's "compression costs ~6% time, saves 3-26x memory".
    The decode-work factor is measured from the actual bulk-decode path
    (see :func:`measured_decode_work_factor`), not hardcoded.
    """
    if hasattr(graph, "indptr"):
        return 16.0, 1.0
    stats = getattr(graph, "stats", None)
    if stats is not None and graph.num_directed_edges:
        data_bytes = len(graph.data) / graph.num_directed_edges
    else:
        data_bytes = 2.0
    return data_bytes + 8.0 / max(1, graph.n), measured_decode_work_factor()


def chunk_adjacency(
    graph, chunk: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flattened adjacency of a vertex chunk.

    Returns ``(owner, neighbors, weights)`` where ``owner[i]`` is the index
    *within the chunk* of the vertex owning edge ``i``.
    """
    chunk = np.asarray(chunk, dtype=np.int64)
    if hasattr(graph, "indptr"):  # CSR fast path
        starts = graph.indptr[chunk]
        degs = graph.indptr[chunk + 1] - starts
        total = int(degs.sum())
        if total == 0:
            e = np.empty(0, dtype=np.int64)
            return e, e, e
        owner = np.repeat(np.arange(len(chunk), dtype=np.int64), degs)
        # intra-neighborhood offsets: 0..deg-1 per vertex, vectorized
        cum = np.cumsum(degs) - degs
        offsets = np.arange(total, dtype=np.int64) - np.repeat(cum, degs)
        gather = np.repeat(starts, degs) + offsets
        if _tracer is not None:
            _count_decode(graph, total)
        return owner, graph.adjncy[gather], np.asarray(graph.adjwgt)[gather]
    if hasattr(graph, "decode_chunk"):  # compressed graph: bulk decode
        if _tracer is None:
            return graph.decode_chunk(chunk)
        cache_before = getattr(graph, "decode_cache_stats", None)
        out = graph.decode_chunk(chunk)
        _count_decode(graph, len(out[0]))
        _count_cache(cache_before, getattr(graph, "decode_cache_stats", None))
        return out
    # generic fallback: per-neighborhood decode via the protocol
    owners: list[np.ndarray] = []
    nbrs: list[np.ndarray] = []
    wgts: list[np.ndarray] = []
    for i, u in enumerate(chunk.tolist()):
        nv, wv = graph.neighbors_and_weights(u)
        if len(nv) == 0:
            continue
        owners.append(tracked_full(len(nv), i, name="adjacency-owner"))
        nbrs.append(np.asarray(nv))
        wgts.append(np.asarray(wv))
    if not owners:
        e = np.empty(0, dtype=np.int64)
        return e, e, e
    owner = np.concatenate(owners)
    if _tracer is not None:
        _count_decode(graph, len(owner))
    return owner, np.concatenate(nbrs), np.concatenate(wgts)


def full_adjacency(graph) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flattened adjacency of the whole graph: ``(src, dst, weight)``.

    For compressed graphs this hits the bulk decode path (one contiguous
    byte scan), not the per-vertex loop.
    """
    if hasattr(graph, "indptr"):
        src = np.repeat(np.arange(graph.n, dtype=np.int64), graph.degrees)
        return src, graph.adjncy, np.asarray(graph.adjwgt)
    owner, nbrs, wgts = chunk_adjacency(graph, np.arange(graph.n, dtype=np.int64))
    return owner, nbrs, wgts


def segment_reduce_ratings(
    owner: np.ndarray,
    clusters: np.ndarray,
    weights: np.ndarray,
    id_space: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Aggregate edge weights per ``(owner, cluster)`` pair.

    Returns ``(pair_owner, pair_cluster, pair_rating)`` -- the vectorized
    equivalent of filling one rating map per chunk vertex.
    """
    if len(owner) == 0:
        e = np.empty(0, dtype=np.int64)
        return e, e, e
    key = owner * np.int64(id_space) + clusters
    order = np.argsort(key, kind="stable")
    key_s = key[order]
    w_s = weights[order]
    boundary = tracked_empty(len(key_s), bool, name="rating-segment-bounds")
    boundary[0] = True
    boundary[1:] = key_s[1:] != key_s[:-1]
    starts = np.flatnonzero(boundary)
    ratings = np.add.reduceat(w_s, starts)
    pair_key = key_s[starts]
    return pair_key // id_space, pair_key % id_space, ratings
