"""Vertex reordering utilities.

The compression ratios in Section III depend entirely on neighbor-ID
locality -- the paper's web graphs compress 5-11x *because* their crawl
order clusters neighborhoods.  These utilities relabel a graph to
manufacture (or destroy) that locality:

* :func:`bfs_order` -- breadth-first relabeling (the classic locality
  restorer; what one would run on a kmer graph before compressing).
* :func:`degree_order` -- sort by degree (groups hubs; useful for skewed
  graphs).
* :func:`random_order` -- destroys locality (the adversarial baseline).
* :func:`relabel` -- apply any permutation to a graph.

``benchmarks/bench_ablation_ordering.py`` measures the ordering ->
compression-ratio interaction.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graph.builder import from_edges
from repro.graph.csr import CSRGraph
from repro.memory.scratch import tracked_empty, tracked_full


def relabel(graph, new_id: np.ndarray) -> CSRGraph:
    """Return a copy of ``graph`` where vertex ``u`` becomes ``new_id[u]``."""
    new_id = np.asarray(new_id, dtype=np.int64)
    if len(new_id) != graph.n:
        raise ValueError("permutation must cover all vertices")
    if len(np.unique(new_id)) != graph.n:
        raise ValueError("new_id is not a permutation")
    from repro.graph.access import full_adjacency

    src, dst, w = full_adjacency(graph)
    edges = np.stack([new_id[src], new_id[dst]], axis=1)
    vwgt = None
    if graph.has_vertex_weights:
        vwgt = tracked_empty(graph.n, np.int64, name="relabel-vwgt")
        vwgt[new_id] = np.asarray(graph.vwgt)
    unit = not graph.has_edge_weights
    return from_edges(
        graph.n,
        edges,
        None if unit else np.asarray(w),
        vwgt,
        symmetrize=False,
        dedup=False,
    )


def bfs_order(graph, seed: int = 0) -> np.ndarray:
    """BFS relabeling: ``new_id[u]`` = BFS visit position of ``u``.

    Restarts from the lowest unvisited vertex for disconnected graphs; the
    start vertex is randomized by ``seed``.
    """
    n = graph.n
    new_id = tracked_full(n, -1, np.int64, name="bfs-order-labels")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    next_label = 0
    q: deque[int] = deque()
    oi = 0
    while next_label < n:
        if not q:
            while oi < n and new_id[order[oi]] >= 0:
                oi += 1
            if oi >= n:
                break
            q.append(int(order[oi]))
            new_id[order[oi]] = next_label
            next_label += 1
        u = q.popleft()
        for v in np.sort(np.asarray(graph.neighbors(u))).tolist():
            if new_id[v] < 0:
                new_id[v] = next_label
                next_label += 1
                q.append(v)
    return new_id


def degree_order(graph) -> np.ndarray:
    """Relabel by ascending degree (stable)."""
    perm = np.argsort(graph.degrees, kind="stable")
    new_id = tracked_empty(graph.n, np.int64, name="degree-order-labels")
    new_id[perm] = np.arange(graph.n, dtype=np.int64)
    return new_id


def random_order(graph, seed: int = 0) -> np.ndarray:
    """A random permutation (locality destroyer)."""
    return np.random.default_rng(seed).permutation(graph.n).astype(np.int64)
