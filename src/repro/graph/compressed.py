"""Compressed graph representation (Section III-A).

Each neighborhood is encoded independently into one contiguous byte array:

* **header**: the neighborhood's *first edge ID* as a VarInt.  Storing the
  first edge ID instead of the degree lets iteration recover per-edge IDs
  (required by parts of the partitioner); the degree of ``u`` is deduced as
  ``first_edge_id(u+1) - first_edge_id(u)`` (with ``2m`` as the sentinel for
  the last vertex).
* **interval encoding**: maximal runs ``{x, x+1, ..., x+l-1}`` with
  ``l >= 3`` are stored as ``(x, l)`` pairs instead of ``l`` unit gaps.
* **gap encoding** for the residual (non-interval) neighbors: the first
  residual is stored as a *signed* VarInt relative to the source vertex ``u``
  (neighbor IDs cluster around ``u`` in graphs with locality), subsequent
  residuals as ``v_i - v_{i-1} - 1``.
* **edge weights** (weighted graphs only): gap-encoded signed VarInts in
  neighbor order, stored inside the same per-neighborhood byte range (the
  paper interleaves them with the structure; we place them after the
  structural stream of each chunk, which has identical footprint and
  locality at neighborhood granularity).
* **chunking**: a neighborhood with degree above ``high_degree_threshold``
  (paper: 10 000) is split into chunks of ``chunk_length`` (paper: 1 000)
  neighbors, each encoded independently (first element relative to ``u``)
  and prefixed with its byte length, so chunks can be decoded in parallel.

Like CSR, per-vertex byte offsets into the edge array are kept in an
``n+1``-entry pointer array.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import CSRGraph, _ones_like_view
from repro.graph.varint import (
    as_byte_array,
    decode_region_bulk,
    decode_signed_varint,
    decode_stream_bulk,
    decode_varint,
    encode_signed_varint,
    encode_stream_bulk,
    encode_varint,
    varint_lengths,
    zigzag_decode,
    zigzag_encode,
    MAX_VARINT64_BYTES,
)
from repro.memory.scratch import tracked_empty, tracked_ones, tracked_zeros

MIN_INTERVAL_LEN = 3


@dataclass(frozen=True)
class CompressionConfig:
    """Codec knobs; defaults follow the paper."""

    enable_intervals: bool = True
    high_degree_threshold: int = 10_000
    chunk_length: int = 1_000

    def __post_init__(self) -> None:
        if self.chunk_length < 1:
            raise ValueError("chunk_length must be >= 1")
        if self.high_degree_threshold < self.chunk_length:
            raise ValueError("high_degree_threshold must be >= chunk_length")


@dataclass
class CompressionStats:
    """Aggregate statistics of one compression run (feeds Fig. 6/10)."""

    uncompressed_bytes: int = 0
    compressed_bytes: int = 0
    num_intervals: int = 0
    num_interval_edges: int = 0
    num_chunked_vertices: int = 0
    num_neighborhoods: int = 0
    header_bytes: int = 0
    weight_bytes: int = 0

    @property
    def ratio(self) -> float:
        if self.compressed_bytes == 0:
            return 1.0
        return self.uncompressed_bytes / self.compressed_bytes

    @property
    def bytes_per_edge(self) -> float:
        edges = max(1, self.num_interval_edges + self.num_neighborhoods)
        return self.compressed_bytes / edges


def split_intervals(
    nbrs: np.ndarray, min_len: int = MIN_INTERVAL_LEN
) -> tuple[list[tuple[int, int]], np.ndarray]:
    """Split a sorted ID array into maximal runs (len >= min_len) + residuals."""
    n = len(nbrs)
    if n == 0:
        return [], nbrs
    breaks = np.flatnonzero(np.diff(nbrs) != 1)
    starts = np.concatenate([[0], breaks + 1])
    ends = np.concatenate([breaks + 1, [n]])
    intervals: list[tuple[int, int]] = []
    residual_mask = tracked_ones(n, bool, name="split-intervals-mask")
    for s, e in zip(starts.tolist(), ends.tolist()):
        if e - s >= min_len:
            intervals.append((int(nbrs[s]), e - s))
            residual_mask[s:e] = False
    return intervals, nbrs[residual_mask]


def _encode_block(
    u: int,
    nbrs: np.ndarray,
    wgts: np.ndarray | None,
    out: bytearray,
    cfg: CompressionConfig,
    stats: CompressionStats,
) -> None:
    """Encode one chunk (or whole low-degree neighborhood)."""
    if cfg.enable_intervals:
        intervals, residuals = split_intervals(nbrs)
        encode_varint(len(intervals), out)
        prev_end = None
        for left, length in intervals:
            if prev_end is None:
                encode_signed_varint(left - u, out)
            else:
                encode_varint(left - prev_end, out)
            encode_varint(length - MIN_INTERVAL_LEN, out)
            prev_end = left + length
        stats.num_intervals += len(intervals)
        stats.num_interval_edges += int(len(nbrs) - len(residuals))
    else:
        residuals = nbrs
    prev = None
    for v in residuals.tolist():
        if prev is None:
            encode_signed_varint(v - u, out)
        else:
            encode_varint(v - prev - 1, out)
        prev = v
    if wgts is not None:
        before = len(out)
        prev_w = 0
        for w in wgts.tolist():
            encode_signed_varint(w - prev_w, out)
            prev_w = w
        stats.weight_bytes += len(out) - before


def _decode_block(
    u: int,
    buf,
    pos: int,
    count: int,
    cfg: CompressionConfig,
    weighted: bool,
) -> tuple[np.ndarray, np.ndarray | None, int]:
    """Decode one chunk of ``count`` neighbors starting at ``buf[pos]``."""
    nbrs = tracked_empty(count, np.int64, name="decode-block-nbrs")
    idx = 0
    if cfg.enable_intervals:
        num_intervals, pos = decode_varint(buf, pos)
        prev_end = None
        for _ in range(num_intervals):
            if prev_end is None:
                delta, pos = decode_signed_varint(buf, pos)
                left = u + delta
            else:
                gap, pos = decode_varint(buf, pos)
                left = prev_end + gap
            length_off, pos = decode_varint(buf, pos)
            length = length_off + MIN_INTERVAL_LEN
            nbrs[idx : idx + length] = np.arange(left, left + length)
            idx += length
            prev_end = left + length
    n_res = count - idx
    res_start = idx
    prev = None
    for _ in range(n_res):
        if prev is None:
            delta, pos = decode_signed_varint(buf, pos)
            v = u + delta
        else:
            gap, pos = decode_varint(buf, pos)
            v = prev + gap + 1
        nbrs[idx] = v
        idx += 1
        prev = v
    # The interval stream and the residual stream are each sorted but were
    # written interval-first; sorting the merged IDs restores the original
    # sorted neighbor order.  Weights were encoded against that sorted
    # order, so the weight stream below aligns with the sorted IDs as-is.
    if cfg.enable_intervals and 0 < res_start < count:
        nbrs.sort(kind="stable")
    wgts = None
    if weighted:
        wgts = tracked_empty(count, np.int64, name="decode-block-wgts")
        prev_w = 0
        for i in range(count):
            dw, pos = decode_signed_varint(buf, pos)
            prev_w += dw
            wgts[i] = prev_w
    return nbrs, wgts, pos


def _decode_block_bulk(
    u: int,
    buf,
    data_u8: np.ndarray,
    pos: int,
    count: int,
    cfg: CompressionConfig,
    weighted: bool,
) -> tuple[np.ndarray, np.ndarray | None, int]:
    """Bulk-decode one chunk: same output as :func:`_decode_block`.

    Used for the fixed-size blocks of chunked high-degree neighborhoods,
    where ``count`` (the paper's 1000) amortizes the vectorization setup.
    """
    nbrs = tracked_empty(count, np.int64, name="decode-block-nbrs")
    idx = 0
    if cfg.enable_intervals:
        num_intervals, pos = decode_varint(buf, pos)
        if num_intervals:
            ivals, pos = decode_stream_bulk(data_u8, pos, 2 * num_intervals)
            gaps = ivals[0::2].copy()
            lengths = ivals[1::2] + MIN_INTERVAL_LEN
            # left edges: first is u-relative (signed), later ones chain off
            # the previous interval's end -> one cumsum after adjusting gaps
            gaps[0] = u + int(zigzag_decode(gaps[:1])[0])
            gaps[1:] += lengths[:-1]
            lefts = np.cumsum(gaps)
            total = int(lengths.sum())
            cum = np.cumsum(lengths) - lengths
            intra = np.arange(total, dtype=np.int64) - np.repeat(cum, lengths)
            nbrs[:total] = np.repeat(lefts, lengths) + intra
            idx = total
    n_res = count - idx
    if n_res:
        rvals, pos = decode_stream_bulk(data_u8, pos, n_res)
        adj = rvals + 1
        adj[0] = u + int(zigzag_decode(rvals[:1])[0])
        nbrs[idx:] = np.cumsum(adj)
    if cfg.enable_intervals and 0 < idx < count:
        nbrs.sort(kind="stable")
    wgts = None
    if weighted:
        wvals, pos = decode_stream_bulk(data_u8, pos, count)
        wgts = np.cumsum(zigzag_decode(wvals))
    return nbrs, wgts, pos


class CompressedGraph:
    """On-the-fly-decoded compressed graph.

    Implements the same neighborhood protocol as :class:`CSRGraph`.  Weighted
    graphs store the weight stream inline; the decoded weights align with the
    sorted neighbor IDs.
    """

    def __init__(
        self,
        n: int,
        num_directed_edges: int,
        offsets: np.ndarray,
        data: bytes,
        vwgt: np.ndarray | None,
        *,
        has_edge_weights: bool,
        config: CompressionConfig,
        stats: CompressionStats,
        total_edge_weight: int | None = None,
    ) -> None:
        self._n = n
        self._num_directed = num_directed_edges
        self.offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        self.data = data
        self._has_edge_weights = has_edge_weights
        self.config = config
        self.stats = stats
        self._unit_vertex_weights = vwgt is None
        self.vwgt = _ones_like_view(n) if vwgt is None else np.ascontiguousarray(vwgt, dtype=np.int64)
        self._total_vertex_weight = int(n if vwgt is None else self.vwgt.sum())
        self._total_edge_weight = (
            num_directed_edges if total_edge_weight is None else total_edge_weight
        )
        self.sorted_neighborhoods = True
        self._data_u8 = as_byte_array(data)
        self._first_edge_ids: np.ndarray | None = None
        self._degrees: np.ndarray | None = None
        self._decode_cache: _DecodedPageCache | None = None

    # -- basic properties ------------------------------------------------ #
    @property
    def n(self) -> int:
        return self._n

    @property
    def m(self) -> int:
        return self._num_directed // 2

    @property
    def num_directed_edges(self) -> int:
        return self._num_directed

    @property
    def has_edge_weights(self) -> bool:
        return self._has_edge_weights

    @property
    def has_vertex_weights(self) -> bool:
        return not self._unit_vertex_weights

    @property
    def total_vertex_weight(self) -> int:
        return self._total_vertex_weight

    @property
    def total_edge_weight(self) -> int:
        return self._total_edge_weight

    @property
    def nbytes(self) -> int:
        vw = 8 if self._unit_vertex_weights else self.vwgt.nbytes
        return self.offsets.nbytes + len(self.data) + vw

    # -- headers ----------------------------------------------------------#
    def first_edge_id(self, u: int) -> int:
        if u == self._n:
            return self._num_directed
        return int(self.first_edge_ids[u])

    def degree(self, u: int) -> int:
        return int(self.degrees[u])

    @property
    def first_edge_ids(self) -> np.ndarray:
        """First edge ID per vertex, decoded once (vectorized) and cached."""
        if self._first_edge_ids is None:
            self._first_edge_ids = self._decode_headers()
        return self._first_edge_ids

    def _decode_headers(self) -> np.ndarray:
        n = self._n
        if n == 0:
            return np.empty(0, dtype=np.int64)
        data = self._data_u8
        pos = self.offsets[:n]
        values = tracked_zeros(n, np.int64, name="decode-header-values")
        pending = np.arange(n, dtype=np.int64)
        # one masked pass per header byte; headers are tiny so 1-2 passes
        for j in range(MAX_VARINT64_BYTES - 1):
            b = data[np.minimum(pos[pending] + j, len(data) - 1)].astype(np.int64)
            values[pending] |= (b & 0x7F) << (7 * j)
            pending = pending[(b & 0x80) != 0]
            if pending.size == 0:
                return values
        raise ValueError("varint too long (corrupt header?)")

    @property
    def degrees(self) -> np.ndarray:
        if self._degrees is None:
            fe = self.first_edge_ids
            out = tracked_empty(self._n, np.int64, name="degrees-cache")
            if self._n:
                out[:-1] = fe[1:] - fe[:-1]
                out[-1] = self._num_directed - fe[-1]
            self._degrees = out
        return self._degrees

    @property
    def max_degree(self) -> int:
        return int(self.degrees.max()) if self._n else 0

    # -- neighborhood protocol -------------------------------------------#
    def neighbors(self, u: int) -> np.ndarray:
        return self._decode(u)[0]

    def edge_weights(self, u: int) -> np.ndarray:
        nbrs, wgts = self._decode(u)
        if wgts is None:
            return _ones_like_view(len(nbrs))
        return wgts

    def neighbors_and_weights(self, u: int) -> tuple[np.ndarray, np.ndarray]:
        nbrs, wgts = self._decode(u)
        if wgts is None:
            wgts = _ones_like_view(len(nbrs))
        return nbrs, wgts

    def incident_edge_ids(self, u: int) -> np.ndarray:
        fe = self.first_edge_id(u)
        return np.arange(fe, fe + self.degree(u), dtype=np.int64)

    def incident_weight(self, u: int) -> int:
        return int(np.asarray(self.edge_weights(u)).sum())

    def _decode(self, u: int) -> tuple[np.ndarray, np.ndarray | None]:
        buf = self.data
        pos = int(self.offsets[u])
        _fe, pos = decode_varint(buf, pos)
        deg = int(self.degrees[u])
        cfg = self.config
        if deg == 0:
            return np.empty(0, dtype=np.int64), (
                np.empty(0, dtype=np.int64) if self._has_edge_weights else None
            )
        if deg <= cfg.high_degree_threshold:
            nbrs, wgts, _ = _decode_block(u, buf, pos, deg, cfg, self._has_edge_weights)
            return nbrs, wgts
        # chunked decoding: each chunk is large (paper: 1000 neighbors), so
        # the byte-parallel block decoder pays off per chunk
        n_chunks = -(-deg // cfg.chunk_length)
        parts: list[np.ndarray] = []
        wparts: list[np.ndarray] = []
        remaining = deg
        for _ in range(n_chunks):
            chunk_count = min(cfg.chunk_length, remaining)
            chunk_bytes, pos = decode_varint(buf, pos)
            nbrs, wgts, end = _decode_block_bulk(
                u, buf, self._data_u8, pos, chunk_count, cfg, self._has_edge_weights
            )
            if end - pos != chunk_bytes:
                raise ValueError(
                    f"chunk length mismatch at vertex {u}: "
                    f"declared {chunk_bytes}, consumed {end - pos}"
                )
            pos = end
            parts.append(nbrs)
            if wgts is not None:
                wparts.append(wgts)
            remaining -= chunk_count
        all_nbrs = np.concatenate(parts)
        all_wgts = np.concatenate(wparts) if wparts else None
        return all_nbrs, all_wgts

    def _decode_scalar(self, u: int) -> tuple[np.ndarray, np.ndarray | None]:
        """Pure-scalar reference decode (tests check bulk paths against it)."""
        buf = self.data
        pos = int(self.offsets[u])
        fe, pos = decode_varint(buf, pos)
        deg = self.first_edge_id(u + 1) - fe
        cfg = self.config
        if deg == 0:
            return np.empty(0, dtype=np.int64), (
                np.empty(0, dtype=np.int64) if self._has_edge_weights else None
            )
        if deg <= cfg.high_degree_threshold:
            nbrs, wgts, _ = _decode_block(u, buf, pos, deg, cfg, self._has_edge_weights)
            return nbrs, wgts
        parts: list[np.ndarray] = []
        wparts: list[np.ndarray] = []
        remaining = deg
        while remaining:
            chunk_count = min(cfg.chunk_length, remaining)
            chunk_bytes, pos = decode_varint(buf, pos)
            nbrs, wgts, end = _decode_block(
                u, buf, pos, chunk_count, cfg, self._has_edge_weights
            )
            if end - pos != chunk_bytes:
                raise ValueError(f"chunk length mismatch at vertex {u}")
            pos = end
            parts.append(nbrs)
            if wgts is not None:
                wparts.append(wgts)
            remaining -= chunk_count
        return np.concatenate(parts), (
            np.concatenate(wparts) if wparts else None
        )

    # -- bulk chunk decode (the kernels' hot path) ------------------------#
    def decode_chunk(
        self, chunk: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flattened adjacency ``(owner, neighbors, weights)`` of a vertex chunk.

        ``owner[i]`` is the index within ``chunk`` of the vertex owning edge
        ``i``.  Decodes all non-chunked neighborhoods of the chunk in a few
        numpy passes over the gathered byte region (see
        :meth:`_decode_chunk_simple`); high-degree chunked vertices fall back
        to the per-vertex block decoder and are spliced in.
        """
        chunk = np.asarray(chunk, dtype=np.int64)
        if self._decode_cache is not None:
            return self._decode_cache.chunk_adjacency(chunk)
        return self._decode_chunk_impl(chunk)

    def _decode_chunk_impl(
        self, chunk: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        degs = self.degrees[chunk] if len(chunk) else np.empty(0, dtype=np.int64)
        total = int(degs.sum())
        if total == 0:
            e = np.empty(0, dtype=np.int64)
            return e, e, e
        owner = np.repeat(np.arange(len(chunk), dtype=np.int64), degs)
        hd = degs > self.config.high_degree_threshold
        if not hd.any():
            nbrs, wgts = self._decode_chunk_simple(chunk, degs)
            if wgts is None:
                wgts = _ones_like_view(total)
            return owner, nbrs, wgts
        # splice: bulk-decode the simple vertices, per-vertex the chunked ones
        seg_start = np.cumsum(degs) - degs
        nbrs = tracked_empty(total, np.int64, name="decode-chunk-nbrs")
        wgts = (
            tracked_empty(total, np.int64, name="decode-chunk-wgts")
            if self._has_edge_weights
            else None
        )
        simple = np.flatnonzero(~hd)
        if simple.size:
            s_deg = degs[simple]
            s_nbrs, s_wgts = self._decode_chunk_simple(chunk[simple], s_deg)
            s_total = int(s_deg.sum())
            intra = np.arange(s_total, dtype=np.int64) - np.repeat(
                np.cumsum(s_deg) - s_deg, s_deg
            )
            tgt = np.repeat(seg_start[simple], s_deg) + intra
            nbrs[tgt] = s_nbrs
            if wgts is not None:
                wgts[tgt] = s_wgts
        for i in np.flatnonzero(hd).tolist():
            nv, wv = self._decode(int(chunk[i]))
            lo = int(seg_start[i])
            nbrs[lo : lo + len(nv)] = nv
            if wgts is not None:
                wgts[lo : lo + len(nv)] = wv
        if wgts is None:
            wgts = _ones_like_view(total)
        return owner, nbrs, wgts

    def _decode_chunk_simple(
        self, chunk: np.ndarray, degs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Vectorized decode of non-chunked neighborhoods.

        One byte gather, one terminator mask, one VarInt assembly over the
        whole region; then the interval/residual/weight sub-streams of every
        vertex are located arithmetically and undone with shared segmented
        cumsums instead of per-vertex loops.
        """
        cfg = self.config
        weighted = self._has_edge_weights
        C = len(chunk)
        total = int(degs.sum())
        data = self._data_u8
        byte_start = self.offsets[chunk]
        byte_len = self.offsets[chunk + 1] - byte_start
        tot_b = int(byte_len.sum())
        gstart = np.cumsum(byte_len) - byte_len
        if C and int(chunk[-1] - chunk[0]) == C - 1 and np.all(np.diff(chunk) == 1):
            block = data[int(byte_start[0]) : int(byte_start[0]) + tot_b]
        else:
            gather = np.repeat(byte_start - gstart, byte_len) + np.arange(
                tot_b, dtype=np.int64
            )
            block = data[gather]
        vals, vstarts = decode_region_bulk(block)
        nvals = len(vals)
        first_val = np.searchsorted(vstarts, gstart)
        if not np.array_equal(vstarts[np.minimum(first_val, nvals - 1)], gstart):
            raise ValueError("neighborhood boundary not on a varint boundary")
        has_body = degs > 0

        # interval section: count, per-interval (left, length) undo
        L = tracked_zeros(C, np.int64, name="decode-simple-scratch")
        totI = 0
        if cfg.enable_intervals:
            nI = np.where(
                has_body, vals[np.minimum(first_val + 1, nvals - 1)], 0
            )
            totI = int(nI.sum())
        else:
            nI = tracked_zeros(C, np.int64, name="decode-simple-scratch")
        if totI:
            cumI = np.cumsum(nI) - nI
            intraI = np.arange(totI, dtype=np.int64) - np.repeat(cumI, nI)
            slot = np.repeat(first_val + 2, nI) + 2 * intraI
            raw_gap = vals[slot]
            ilen = vals[slot + 1] + MIN_INTERVAL_LEN
            # index of each vertex's first interval entry (vertices w/ nI>0)
            fidx = cumI[nI > 0]
            adj = raw_gap.copy()
            adj[1:] += ilen[:-1]
            adj[fidx] = chunk[nI > 0] + zigzag_decode(raw_gap[fidx])
            csum = np.cumsum(adj)
            seg_base = csum[fidx] - adj[fidx]
            lefts = csum - np.repeat(seg_base, nI[nI > 0])
            L = np.bincount(
                np.repeat(np.arange(C, dtype=np.int64), nI),
                weights=ilen,
                minlength=C,
            ).astype(np.int64)

        # residual section: u-relative signed first value, then +1 gaps
        n_res = degs - L
        if np.any(n_res < 0):
            raise ValueError("interval lengths exceed degree (corrupt stream?)")
        totR = int(n_res.sum())
        if cfg.enable_intervals:
            res_base = first_val + 2 + 2 * nI
        else:
            res_base = first_val + 1
        if totR:
            cumR = np.cumsum(n_res) - n_res
            intraR = np.arange(totR, dtype=np.int64) - np.repeat(cumR, n_res)
            raw = vals[np.repeat(res_base, n_res) + intraR]
            fidx = cumR[n_res > 0]
            adjR = raw + 1
            adjR[fidx] = chunk[n_res > 0] + zigzag_decode(raw[fidx])
            csum = np.cumsum(adjR)
            seg_base = csum[fidx] - adjR[fidx]
            res_ids = csum - np.repeat(seg_base, n_res[n_res > 0])

        # weight section: signed gap undo against the sorted neighbor order
        wgts = None
        if weighted:
            w_base = res_base + n_res
            cumD = np.cumsum(degs) - degs
            intraW = np.arange(total, dtype=np.int64) - np.repeat(cumD, degs)
            adjW = zigzag_decode(vals[np.repeat(w_base, degs) + intraW])
            csum = np.cumsum(adjW)
            fidx = cumD[degs > 0]
            seg_base = csum[fidx] - adjW[fidx]
            wgts = csum - np.repeat(seg_base, degs[degs > 0])

        # assemble: merge the (sorted) expanded-interval and residual
        # streams of each vertex without sorting -- the final rank of an
        # element is its rank in its own stream plus the number of elements
        # of the other stream below it, which one searchsorted over
        # owner-major composite keys yields for all vertices at once.
        seg_start = np.cumsum(degs) - degs
        if not totI:
            return res_ids if totR else np.empty(0, dtype=np.int64), wgts
        totE = int(L.sum())
        cumlen = np.cumsum(ilen) - ilen
        intraE = np.arange(totE, dtype=np.int64) - np.repeat(cumlen, ilen)
        exp_vals = np.repeat(lefts, ilen) + intraE
        if not totR:
            return exp_vals, wgts
        nbrs = tracked_empty(total, np.int64, name="decode-simple-nbrs")
        cumL = np.cumsum(L) - L
        intraV = np.arange(totE, dtype=np.int64) - np.repeat(cumL, L)
        # owner-major keys (owner = position in chunk, so keys are globally
        # sorted even for permuted chunks)
        stride = np.int64(self._n + 1)
        ownerIdx = np.arange(C, dtype=np.int64)
        keyA = np.repeat(ownerIdx, L) * stride + exp_vals
        keyR = np.repeat(ownerIdx, n_res) * stride + res_ids
        below_A = np.searchsorted(keyR, keyA) - np.repeat(cumR, L)
        below_R = np.searchsorted(keyA, keyR) - np.repeat(cumL, n_res)
        nbrs[np.repeat(seg_start, L) + intraV + below_A] = exp_vals
        nbrs[np.repeat(seg_start, n_res) + intraR + below_R] = res_ids
        return nbrs, wgts

    # -- optional decoded-chunk cache -------------------------------------#
    def enable_decode_cache(
        self,
        max_bytes: int,
        *,
        tracker=None,
        page_size: int = 1024,
    ) -> None:
        """Attach a bounded LRU cache of decoded vertex pages.

        Repeated traversals (the 5-round LP scans) then decode each page
        once; cached bytes are registered with ``tracker`` so memory ledgers
        stay honest about the extra working set.
        """
        if self._decode_cache is not None:
            self.disable_decode_cache()
        self._decode_cache = _DecodedPageCache(
            self, max_bytes, tracker=tracker, page_size=page_size
        )

    def disable_decode_cache(self) -> None:
        if self._decode_cache is not None:
            self._decode_cache.close()
            self._decode_cache = None

    @property
    def decode_cache_stats(self) -> dict | None:
        if self._decode_cache is None:
            return None
        c = self._decode_cache
        return {
            "pages": len(c.pages),
            "bytes": c.cur_bytes,
            "hits": c.hits,
            "misses": c.misses,
            "evictions": c.evictions,
        }

    def __repr__(self) -> str:
        return (
            f"CompressedGraph(n={self.n}, m={self.m}, "
            f"ratio={self.stats.ratio:.2f})"
        )


class _DecodedPageCache:
    """Bounded LRU cache of decoded vertex pages for a compressed graph.

    A page is a contiguous range of ``page_size`` vertices stored as a small
    local CSR (indptr, neighbor IDs, weights); chunk requests are served by
    vectorized gathers from the pages they touch.  Total decoded bytes are
    capped by ``max_bytes`` (evicting least-recently-used pages) and
    mirrored into a ``MemoryTracker`` allocation when one is supplied.
    """

    def __init__(self, graph, max_bytes: int, *, tracker=None, page_size: int = 1024):
        from collections import OrderedDict

        self.graph = graph
        self.max_bytes = int(max_bytes)
        self.page_size = int(page_size)
        self.pages: "OrderedDict[int, tuple]" = OrderedDict()
        self.cur_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._tracker = tracker
        self._aid = (
            tracker.alloc("decode-cache", 0, "decode-cache")
            if tracker is not None
            else None
        )

    def close(self) -> None:
        self.pages.clear()
        self.cur_bytes = 0
        if self._tracker is not None and self._aid is not None:
            self._tracker.free(self._aid)
            self._aid = None

    def _account(self) -> None:
        if self._tracker is not None and self._aid is not None:
            self._tracker.resize(self._aid, self.cur_bytes)

    def _page(self, pid: int) -> tuple:
        entry = self.pages.get(pid)
        if entry is not None:
            self.hits += 1
            self.pages.move_to_end(pid)
            return entry
        self.misses += 1
        g = self.graph
        lo = pid * self.page_size
        hi = min(g.n, lo + self.page_size)
        members = np.arange(lo, hi, dtype=np.int64)
        _owner, nbrs, wgts = g._decode_chunk_impl(members)
        degs = g.degrees[lo:hi]
        indptr = tracked_empty(len(members) + 1, np.int64, name="page-indptr")
        indptr[0] = 0
        np.cumsum(degs, out=indptr[1:])
        # a broadcast all-ones weight view is backed by 8 real bytes
        wbytes = 8 if wgts.strides == (0,) else wgts.nbytes
        nbytes = indptr.nbytes + nbrs.nbytes + wbytes
        entry = (indptr, nbrs, wgts, nbytes)
        self.pages[pid] = entry
        self.cur_bytes += nbytes
        while self.cur_bytes > self.max_bytes and len(self.pages) > 1:
            _pid, (_ip, _nb, _wg, old_bytes) = self.pages.popitem(last=False)
            self.cur_bytes -= old_bytes
            self.evictions += 1
        self._account()
        return entry

    def chunk_adjacency(
        self, chunk: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        g = self.graph
        degs = g.degrees[chunk] if len(chunk) else np.empty(0, dtype=np.int64)
        total = int(degs.sum())
        if total == 0:
            e = np.empty(0, dtype=np.int64)
            return e, e, e
        owner = np.repeat(np.arange(len(chunk), dtype=np.int64), degs)
        nbrs = tracked_empty(total, np.int64, name="page-chunk-nbrs")
        wgts = tracked_empty(total, np.int64, name="page-chunk-wgts")
        seg_start = np.cumsum(degs) - degs
        pids = chunk // self.page_size
        for pid in np.unique(pids).tolist():
            indptr, p_nbrs, p_wgts, _nb = self._page(pid)
            sel = np.flatnonzero(pids == pid)
            local = chunk[sel] - pid * self.page_size
            d = degs[sel]
            nsel = int(d.sum())
            if nsel == 0:
                continue
            intra = np.arange(nsel, dtype=np.int64) - np.repeat(
                np.cumsum(d) - d, d
            )
            src = np.repeat(indptr[local], d) + intra
            tgt = np.repeat(seg_start[sel], d) + intra
            nbrs[tgt] = p_nbrs[src]
            wgts[tgt] = p_wgts[src]
        return owner, nbrs, wgts


def encode_neighborhood(
    u: int,
    nbrs: np.ndarray,
    wgts: np.ndarray | None,
    first_edge_id: int,
    out: bytearray,
    cfg: CompressionConfig,
    stats: CompressionStats,
) -> None:
    """Encode one full neighborhood (header + chunks) into ``out``."""
    before = len(out)
    encode_varint(first_edge_id, out)
    stats.header_bytes += len(out) - before
    deg = len(nbrs)
    stats.num_neighborhoods += 1
    if deg == 0:
        return
    if deg <= cfg.high_degree_threshold:
        _encode_block(u, nbrs, wgts, out, cfg, stats)
        return
    stats.num_chunked_vertices += 1
    # repro-lint: ignore[untracked-alloc, buffer-lifetime] -- bytearray cannot be weakref-finalized, so the scratch ledger cannot follow it; its bytes are covered by the callers' bulk output-chunk charges
    scratch = bytearray()
    for start in range(0, deg, cfg.chunk_length):
        end = min(start + cfg.chunk_length, deg)
        scratch.clear()
        _encode_block(
            u,
            nbrs[start:end],
            None if wgts is None else wgts[start:end],
            scratch,
            cfg,
            stats,
        )
        encode_varint(len(scratch), out)
        out.extend(scratch)


def _encode_low_degree_bulk(
    graph: CSRGraph, lows: np.ndarray, cfg: CompressionConfig, stats
) -> tuple[bytes, np.ndarray]:
    """Encode every low-degree neighborhood of ``lows`` in one bulk pass.

    Builds the *global value sequence* -- per vertex: header, [interval
    count], [interval pairs], [residual gaps], [weight gaps] -- with pure
    array arithmetic, then VarInt-encodes all values at once.  Returns the
    byte blob and the per-vertex byte starts (``len(lows) + 1`` entries),
    byte-identical to per-vertex :func:`encode_neighborhood` calls.
    """
    nl = len(lows)
    stats.num_neighborhoods += nl
    if nl == 0:
        return b"", np.zeros(1, dtype=np.int64)
    indptr = np.asarray(graph.indptr)
    deg = np.asarray(graph.degrees)[lows].astype(np.int64)
    weighted = graph.has_edge_weights
    tot = int(deg.sum())
    row_ofs = np.cumsum(deg) - deg
    owner = np.repeat(np.arange(nl, dtype=np.int64), deg)
    pos_in_row = np.arange(tot, dtype=np.int64) - row_ofs[owner]
    eidx = indptr[lows][owner] + pos_in_row
    nb = np.asarray(graph.adjncy)[eidx].astype(np.int64)

    # interval detection: maximal runs of consecutive IDs, len >= 3
    if cfg.enable_intervals:
        run_start = np.ones(tot, dtype=bool)
        if tot > 1:
            run_start[1:] = (owner[1:] != owner[:-1]) | (nb[1:] != nb[:-1] + 1)
        run_id = np.cumsum(run_start) - 1
        run_len = np.bincount(run_id)
        is_iv_run = run_len >= MIN_INTERVAL_LEN
        in_interval = is_iv_run[run_id] if tot else np.zeros(0, dtype=bool)
        run_first = np.flatnonzero(run_start)
        iv = np.flatnonzero(is_iv_run)
        iv_left = nb[run_first[iv]]
        iv_len = run_len[iv].astype(np.int64)
        iv_owner = owner[run_first[iv]]
        ni = np.bincount(iv_owner, minlength=nl).astype(np.int64)
        stats.num_intervals += len(iv)
        stats.num_interval_edges += int(iv_len.sum())
    else:
        in_interval = np.zeros(tot, dtype=bool)
        iv_left = iv_len = iv_owner = np.empty(0, dtype=np.int64)
        ni = np.zeros(nl, dtype=np.int64)

    res = np.flatnonzero(~in_interval)
    res_owner = owner[res]
    res_nb = nb[res]
    nr = np.bincount(res_owner, minlength=nl).astype(np.int64)

    # value-sequence layout: header, [nint], [pairs], [residuals], [weights]
    has_edges = deg > 0
    count = np.ones(nl, dtype=np.int64)
    if cfg.enable_intervals:
        count += has_edges * (1 + 2 * ni)
    count += nr
    if weighted:
        count += deg
    val_start = np.cumsum(count) - count
    nvals = int(val_start[-1] + count[-1])
    vals = tracked_empty(nvals, np.int64, name="compress-bulk-values")

    vals[val_start] = indptr[lows]  # headers: first edge IDs
    if cfg.enable_intervals and np.any(has_edges):
        vals[val_start[has_edges] + 1] = ni[has_edges]
    if len(iv_owner):
        iv_rank = (
            np.arange(len(iv_owner), dtype=np.int64)
            - (np.cumsum(ni) - ni)[iv_owner]
        )
        first_iv = iv_rank == 0
        prev_end = np.empty_like(iv_left)
        prev_end[0] = 0
        prev_end[1:] = iv_left[:-1] + iv_len[:-1]
        left_val = np.where(
            first_iv,
            zigzag_encode(iv_left - lows[iv_owner]),
            iv_left - prev_end,
        )
        p = val_start[iv_owner] + 2 + 2 * iv_rank
        vals[p] = left_val
        vals[p + 1] = iv_len - MIN_INTERVAL_LEN
    if len(res):
        res_first = np.ones(len(res), dtype=bool)
        res_first[1:] = res_owner[1:] != res_owner[:-1]
        prev_res = np.empty_like(res_nb)
        prev_res[0] = 0
        prev_res[1:] = res_nb[:-1]
        res_rank = (
            np.arange(len(res), dtype=np.int64)
            - (np.cumsum(nr) - nr)[res_owner]
        )
        res_pos = (
            val_start[res_owner]
            + (count - nr - (deg if weighted else 0))[res_owner]
            + res_rank
        )
        vals[res_pos] = np.where(
            res_first,
            zigzag_encode(res_nb - lows[res_owner]),
            res_nb - prev_res - 1,
        )
    w_pos = None
    if weighted and tot:
        adjwgt = np.asarray(graph.adjwgt)
        w = adjwgt[eidx].astype(np.int64)
        prev_w = np.where(pos_in_row == 0, 0, adjwgt[eidx - 1]).astype(
            np.int64
        )
        w_pos = val_start[owner] + (count - deg)[owner] + pos_in_row
        vals[w_pos] = zigzag_encode(w - prev_w)

    lens = varint_lengths(vals)
    byte_start = np.cumsum(lens) - lens
    stats.header_bytes += int(lens[val_start].sum())
    if w_pos is not None:
        stats.weight_bytes += int(lens[w_pos].sum())
    blob = encode_stream_bulk(vals, lens)
    low_byte_start = tracked_empty(nl + 1, np.int64, name="compress-bulk-starts")
    low_byte_start[:nl] = byte_start[val_start]
    low_byte_start[nl] = int(lens.sum())
    return blob.tobytes(), low_byte_start


def _encode_graph_bulk(
    graph: CSRGraph, cfg: CompressionConfig, stats
) -> tuple[bytes, np.ndarray]:
    """Whole-graph bulk encoder: low-degree vertices in one vectorized
    pass, chunked high-degree vertices scalar, stitched in vertex order."""
    n = graph.n
    degrees = np.asarray(graph.degrees)
    high = degrees > cfg.high_degree_threshold
    lows = np.flatnonzero(~high)
    offsets = tracked_empty(n + 1, np.int64, name="compress-offsets")
    blob, low_byte_start = _encode_low_degree_bulk(graph, lows, cfg, stats)
    if not np.any(high):
        offsets[:n] = low_byte_start[:n]
        offsets[n] = low_byte_start[n] if n else 0
        return blob, offsets
    weighted = graph.has_edge_weights
    out = bytearray()
    li = 0
    for h in np.flatnonzero(high).tolist():
        li2 = int(np.searchsorted(lows, h))
        if li2 > li:
            base = len(out) - int(low_byte_start[li])
            offsets[lows[li:li2]] = base + low_byte_start[li:li2]
            out += blob[int(low_byte_start[li]) : int(low_byte_start[li2])]
            li = li2
        offsets[h] = len(out)
        nbrs, wgts = graph.neighbors_and_weights(h)
        encode_neighborhood(
            h,
            nbrs,
            np.asarray(wgts) if weighted else None,
            int(graph.indptr[h]),
            out,
            cfg,
            stats,
        )
    if li < len(lows):
        base = len(out) - int(low_byte_start[li])
        offsets[lows[li:]] = base + low_byte_start[li:-1]
        out += blob[int(low_byte_start[li]) :]
    offsets[n] = len(out)
    return bytes(out), offsets


def compress_graph(
    graph: CSRGraph,
    *,
    enable_intervals: bool = True,
    high_degree_threshold: int = 10_000,
    chunk_length: int = 1_000,
    tracker=None,
    bulk: bool = True,
) -> CompressedGraph:
    """Compress a CSR graph.

    ``bulk`` selects the vectorized whole-graph encoder; ``bulk=False``
    runs the per-vertex sequential reference path.  Both produce
    byte-identical output (tested), as does the parallel single-pass
    pipeline in :mod:`repro.graph.compression`.
    """
    if not graph.sorted_neighborhoods:
        graph = graph.with_sorted_neighborhoods()
    cfg = CompressionConfig(
        enable_intervals=enable_intervals,
        high_degree_threshold=high_degree_threshold,
        chunk_length=chunk_length,
    )
    stats = CompressionStats(uncompressed_bytes=graph.nbytes)
    n = graph.n
    weighted = graph.has_edge_weights
    if bulk:
        data, offsets = _encode_graph_bulk(graph, cfg, stats)
    else:
        out = bytearray()
        offsets = np.empty(n + 1, dtype=np.int64)
        for u in range(n):
            offsets[u] = len(out)
            nbrs, wgts = graph.neighbors_and_weights(u)
            encode_neighborhood(
                u,
                nbrs,
                np.asarray(wgts) if weighted else None,
                int(graph.indptr[u]),
                out,
                cfg,
                stats,
            )
        offsets[n] = len(out)
        data = bytes(out)
    stats.compressed_bytes = len(data) + offsets.nbytes
    vwgt = np.asarray(graph.vwgt).copy() if graph.has_vertex_weights else None
    cg = CompressedGraph(
        n,
        graph.num_directed_edges,
        offsets,
        data,
        vwgt,
        has_edge_weights=weighted,
        config=cfg,
        stats=stats,
        total_edge_weight=graph.total_edge_weight,
    )
    if tracker is not None:
        tracker.alloc("compressed-graph", cg.nbytes, "graph")
    return cg


def decompress_graph(cg: CompressedGraph) -> CSRGraph:
    """Expand back to CSR via the bulk decode path (round-trips, baselines)."""
    degrees = cg.degrees
    indptr = tracked_zeros(cg.n + 1, np.int64, name="decompress-indptr")
    np.cumsum(degrees, out=indptr[1:])
    _owner, adjncy, adjwgt = cg.decode_chunk(np.arange(cg.n, dtype=np.int64))
    adjncy = np.ascontiguousarray(adjncy)
    adjwgt = np.asarray(adjwgt).copy() if cg.has_edge_weights else None
    vwgt = np.asarray(cg.vwgt).copy() if cg.has_vertex_weights else None
    return CSRGraph(indptr, adjncy, adjwgt, vwgt, sorted_neighborhoods=True)
