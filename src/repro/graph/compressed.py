"""Compressed graph representation (Section III-A).

Each neighborhood is encoded independently into one contiguous byte array:

* **header**: the neighborhood's *first edge ID* as a VarInt.  Storing the
  first edge ID instead of the degree lets iteration recover per-edge IDs
  (required by parts of the partitioner); the degree of ``u`` is deduced as
  ``first_edge_id(u+1) - first_edge_id(u)`` (with ``2m`` as the sentinel for
  the last vertex).
* **interval encoding**: maximal runs ``{x, x+1, ..., x+l-1}`` with
  ``l >= 3`` are stored as ``(x, l)`` pairs instead of ``l`` unit gaps.
* **gap encoding** for the residual (non-interval) neighbors: the first
  residual is stored as a *signed* VarInt relative to the source vertex ``u``
  (neighbor IDs cluster around ``u`` in graphs with locality), subsequent
  residuals as ``v_i - v_{i-1} - 1``.
* **edge weights** (weighted graphs only): gap-encoded signed VarInts in
  neighbor order, stored inside the same per-neighborhood byte range (the
  paper interleaves them with the structure; we place them after the
  structural stream of each chunk, which has identical footprint and
  locality at neighborhood granularity).
* **chunking**: a neighborhood with degree above ``high_degree_threshold``
  (paper: 10 000) is split into chunks of ``chunk_length`` (paper: 1 000)
  neighbors, each encoded independently (first element relative to ``u``)
  and prefixed with its byte length, so chunks can be decoded in parallel.

Like CSR, per-vertex byte offsets into the edge array are kept in an
``n+1``-entry pointer array.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import CSRGraph, _ones_like_view
from repro.graph.varint import (
    decode_signed_varint,
    decode_varint,
    encode_signed_varint,
    encode_varint,
)

MIN_INTERVAL_LEN = 3


@dataclass(frozen=True)
class CompressionConfig:
    """Codec knobs; defaults follow the paper."""

    enable_intervals: bool = True
    high_degree_threshold: int = 10_000
    chunk_length: int = 1_000

    def __post_init__(self) -> None:
        if self.chunk_length < 1:
            raise ValueError("chunk_length must be >= 1")
        if self.high_degree_threshold < self.chunk_length:
            raise ValueError("high_degree_threshold must be >= chunk_length")


@dataclass
class CompressionStats:
    """Aggregate statistics of one compression run (feeds Fig. 6/10)."""

    uncompressed_bytes: int = 0
    compressed_bytes: int = 0
    num_intervals: int = 0
    num_interval_edges: int = 0
    num_chunked_vertices: int = 0
    num_neighborhoods: int = 0
    header_bytes: int = 0
    weight_bytes: int = 0

    @property
    def ratio(self) -> float:
        if self.compressed_bytes == 0:
            return 1.0
        return self.uncompressed_bytes / self.compressed_bytes

    @property
    def bytes_per_edge(self) -> float:
        edges = max(1, self.num_interval_edges + self.num_neighborhoods)
        return self.compressed_bytes / edges


def split_intervals(
    nbrs: np.ndarray, min_len: int = MIN_INTERVAL_LEN
) -> tuple[list[tuple[int, int]], np.ndarray]:
    """Split a sorted ID array into maximal runs (len >= min_len) + residuals."""
    n = len(nbrs)
    if n == 0:
        return [], nbrs
    breaks = np.flatnonzero(np.diff(nbrs) != 1)
    starts = np.concatenate([[0], breaks + 1])
    ends = np.concatenate([breaks + 1, [n]])
    intervals: list[tuple[int, int]] = []
    residual_mask = np.ones(n, dtype=bool)
    for s, e in zip(starts.tolist(), ends.tolist()):
        if e - s >= min_len:
            intervals.append((int(nbrs[s]), e - s))
            residual_mask[s:e] = False
    return intervals, nbrs[residual_mask]


def _encode_block(
    u: int,
    nbrs: np.ndarray,
    wgts: np.ndarray | None,
    out: bytearray,
    cfg: CompressionConfig,
    stats: CompressionStats,
) -> None:
    """Encode one chunk (or whole low-degree neighborhood)."""
    if cfg.enable_intervals:
        intervals, residuals = split_intervals(nbrs)
        encode_varint(len(intervals), out)
        prev_end = None
        for left, length in intervals:
            if prev_end is None:
                encode_signed_varint(left - u, out)
            else:
                encode_varint(left - prev_end, out)
            encode_varint(length - MIN_INTERVAL_LEN, out)
            prev_end = left + length
        stats.num_intervals += len(intervals)
        stats.num_interval_edges += int(len(nbrs) - len(residuals))
    else:
        residuals = nbrs
    prev = None
    for v in residuals.tolist():
        if prev is None:
            encode_signed_varint(v - u, out)
        else:
            encode_varint(v - prev - 1, out)
        prev = v
    if wgts is not None:
        before = len(out)
        prev_w = 0
        for w in wgts.tolist():
            encode_signed_varint(w - prev_w, out)
            prev_w = w
        stats.weight_bytes += len(out) - before


def _decode_block(
    u: int,
    buf,
    pos: int,
    count: int,
    cfg: CompressionConfig,
    weighted: bool,
) -> tuple[np.ndarray, np.ndarray | None, int]:
    """Decode one chunk of ``count`` neighbors starting at ``buf[pos]``."""
    nbrs = np.empty(count, dtype=np.int64)
    idx = 0
    if cfg.enable_intervals:
        num_intervals, pos = decode_varint(buf, pos)
        prev_end = None
        for _ in range(num_intervals):
            if prev_end is None:
                delta, pos = decode_signed_varint(buf, pos)
                left = u + delta
            else:
                gap, pos = decode_varint(buf, pos)
                left = prev_end + gap
            length_off, pos = decode_varint(buf, pos)
            length = length_off + MIN_INTERVAL_LEN
            nbrs[idx : idx + length] = np.arange(left, left + length)
            idx += length
            prev_end = left + length
    n_res = count - idx
    res_start = idx
    prev = None
    for _ in range(n_res):
        if prev is None:
            delta, pos = decode_signed_varint(buf, pos)
            v = u + delta
        else:
            gap, pos = decode_varint(buf, pos)
            v = prev + gap + 1
        nbrs[idx] = v
        idx += 1
        prev = v
    # The interval stream and the residual stream are each sorted but were
    # written interval-first; sorting the merged IDs restores the original
    # sorted neighbor order.  Weights were encoded against that sorted
    # order, so the weight stream below aligns with the sorted IDs as-is.
    if cfg.enable_intervals and 0 < res_start < count:
        nbrs.sort(kind="stable")
    wgts = None
    if weighted:
        wgts = np.empty(count, dtype=np.int64)
        prev_w = 0
        for i in range(count):
            dw, pos = decode_signed_varint(buf, pos)
            prev_w += dw
            wgts[i] = prev_w
    return nbrs, wgts, pos


class CompressedGraph:
    """On-the-fly-decoded compressed graph.

    Implements the same neighborhood protocol as :class:`CSRGraph`.  Weighted
    graphs store the weight stream inline; the decoded weights align with the
    sorted neighbor IDs.
    """

    def __init__(
        self,
        n: int,
        num_directed_edges: int,
        offsets: np.ndarray,
        data: bytes,
        vwgt: np.ndarray | None,
        *,
        has_edge_weights: bool,
        config: CompressionConfig,
        stats: CompressionStats,
        total_edge_weight: int | None = None,
    ) -> None:
        self._n = n
        self._num_directed = num_directed_edges
        self.offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        self.data = data
        self._has_edge_weights = has_edge_weights
        self.config = config
        self.stats = stats
        self._unit_vertex_weights = vwgt is None
        self.vwgt = _ones_like_view(n) if vwgt is None else np.ascontiguousarray(vwgt, dtype=np.int64)
        self._total_vertex_weight = int(n if vwgt is None else self.vwgt.sum())
        self._total_edge_weight = (
            num_directed_edges if total_edge_weight is None else total_edge_weight
        )
        self.sorted_neighborhoods = True

    # -- basic properties ------------------------------------------------ #
    @property
    def n(self) -> int:
        return self._n

    @property
    def m(self) -> int:
        return self._num_directed // 2

    @property
    def num_directed_edges(self) -> int:
        return self._num_directed

    @property
    def has_edge_weights(self) -> bool:
        return self._has_edge_weights

    @property
    def has_vertex_weights(self) -> bool:
        return not self._unit_vertex_weights

    @property
    def total_vertex_weight(self) -> int:
        return self._total_vertex_weight

    @property
    def total_edge_weight(self) -> int:
        return self._total_edge_weight

    @property
    def nbytes(self) -> int:
        vw = 8 if self._unit_vertex_weights else self.vwgt.nbytes
        return self.offsets.nbytes + len(self.data) + vw

    # -- headers ----------------------------------------------------------#
    def first_edge_id(self, u: int) -> int:
        if u == self._n:
            return self._num_directed
        value, _ = decode_varint(self.data, int(self.offsets[u]))
        return value

    def degree(self, u: int) -> int:
        return self.first_edge_id(u + 1) - self.first_edge_id(u)

    @property
    def degrees(self) -> np.ndarray:
        out = np.empty(self._n + 1, dtype=np.int64)
        for u in range(self._n):
            out[u], _ = decode_varint(self.data, int(self.offsets[u]))
        out[self._n] = self._num_directed
        return np.diff(out)

    @property
    def max_degree(self) -> int:
        return int(self.degrees.max()) if self._n else 0

    # -- neighborhood protocol -------------------------------------------#
    def neighbors(self, u: int) -> np.ndarray:
        return self._decode(u)[0]

    def edge_weights(self, u: int) -> np.ndarray:
        nbrs, wgts = self._decode(u)
        if wgts is None:
            return _ones_like_view(len(nbrs))
        return wgts

    def neighbors_and_weights(self, u: int) -> tuple[np.ndarray, np.ndarray]:
        nbrs, wgts = self._decode(u)
        if wgts is None:
            wgts = _ones_like_view(len(nbrs))
        return nbrs, wgts

    def incident_edge_ids(self, u: int) -> np.ndarray:
        fe = self.first_edge_id(u)
        return np.arange(fe, fe + self.degree(u), dtype=np.int64)

    def incident_weight(self, u: int) -> int:
        return int(np.asarray(self.edge_weights(u)).sum())

    def _decode(self, u: int) -> tuple[np.ndarray, np.ndarray | None]:
        buf = self.data
        pos = int(self.offsets[u])
        fe, pos = decode_varint(buf, pos)
        deg = self.first_edge_id(u + 1) - fe
        cfg = self.config
        if deg == 0:
            return np.empty(0, dtype=np.int64), (
                np.empty(0, dtype=np.int64) if self._has_edge_weights else None
            )
        if deg <= cfg.high_degree_threshold:
            nbrs, wgts, _ = _decode_block(u, buf, pos, deg, cfg, self._has_edge_weights)
            return nbrs, wgts
        # chunked decoding
        n_chunks = -(-deg // cfg.chunk_length)
        parts: list[np.ndarray] = []
        wparts: list[np.ndarray] = []
        remaining = deg
        for _ in range(n_chunks):
            chunk_count = min(cfg.chunk_length, remaining)
            chunk_bytes, pos = decode_varint(buf, pos)
            nbrs, wgts, end = _decode_block(
                u, buf, pos, chunk_count, cfg, self._has_edge_weights
            )
            if end - pos != chunk_bytes:
                raise ValueError(
                    f"chunk length mismatch at vertex {u}: "
                    f"declared {chunk_bytes}, consumed {end - pos}"
                )
            pos = end
            parts.append(nbrs)
            if wgts is not None:
                wparts.append(wgts)
            remaining -= chunk_count
        all_nbrs = np.concatenate(parts)
        all_wgts = np.concatenate(wparts) if wparts else None
        return all_nbrs, all_wgts

    def __repr__(self) -> str:
        return (
            f"CompressedGraph(n={self.n}, m={self.m}, "
            f"ratio={self.stats.ratio:.2f})"
        )


def encode_neighborhood(
    u: int,
    nbrs: np.ndarray,
    wgts: np.ndarray | None,
    first_edge_id: int,
    out: bytearray,
    cfg: CompressionConfig,
    stats: CompressionStats,
) -> None:
    """Encode one full neighborhood (header + chunks) into ``out``."""
    before = len(out)
    encode_varint(first_edge_id, out)
    stats.header_bytes += len(out) - before
    deg = len(nbrs)
    stats.num_neighborhoods += 1
    if deg == 0:
        return
    if deg <= cfg.high_degree_threshold:
        _encode_block(u, nbrs, wgts, out, cfg, stats)
        return
    stats.num_chunked_vertices += 1
    scratch = bytearray()
    for start in range(0, deg, cfg.chunk_length):
        end = min(start + cfg.chunk_length, deg)
        scratch.clear()
        _encode_block(
            u,
            nbrs[start:end],
            None if wgts is None else wgts[start:end],
            scratch,
            cfg,
            stats,
        )
        encode_varint(len(scratch), out)
        out.extend(scratch)


def compress_graph(
    graph: CSRGraph,
    *,
    enable_intervals: bool = True,
    high_degree_threshold: int = 10_000,
    chunk_length: int = 1_000,
    tracker=None,
) -> CompressedGraph:
    """Compress a CSR graph (sequential reference path).

    The parallel single-pass pipeline lives in
    :mod:`repro.graph.compression`; both produce byte-identical output.
    """
    if not graph.sorted_neighborhoods:
        graph = graph.with_sorted_neighborhoods()
    cfg = CompressionConfig(
        enable_intervals=enable_intervals,
        high_degree_threshold=high_degree_threshold,
        chunk_length=chunk_length,
    )
    stats = CompressionStats(uncompressed_bytes=graph.nbytes)
    n = graph.n
    out = bytearray()
    offsets = np.empty(n + 1, dtype=np.int64)
    weighted = graph.has_edge_weights
    for u in range(n):
        offsets[u] = len(out)
        nbrs, wgts = graph.neighbors_and_weights(u)
        encode_neighborhood(
            u,
            nbrs,
            np.asarray(wgts) if weighted else None,
            int(graph.indptr[u]),
            out,
            cfg,
            stats,
        )
    offsets[n] = len(out)
    data = bytes(out)
    stats.compressed_bytes = len(data) + offsets.nbytes
    vwgt = np.asarray(graph.vwgt).copy() if graph.has_vertex_weights else None
    cg = CompressedGraph(
        n,
        graph.num_directed_edges,
        offsets,
        data,
        vwgt,
        has_edge_weights=weighted,
        config=cfg,
        stats=stats,
        total_edge_weight=graph.total_edge_weight,
    )
    if tracker is not None:
        tracker.alloc("compressed-graph", cg.nbytes, "graph")
    return cg


def decompress_graph(cg: CompressedGraph) -> CSRGraph:
    """Expand back to CSR (used by tests for round-trip verification)."""
    degrees = cg.degrees
    indptr = np.zeros(cg.n + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    adjncy = np.empty(int(indptr[-1]), dtype=np.int64)
    adjwgt = np.empty(int(indptr[-1]), dtype=np.int64) if cg.has_edge_weights else None
    for u in range(cg.n):
        nbrs, wgts = cg.neighbors_and_weights(u)
        adjncy[indptr[u] : indptr[u + 1]] = nbrs
        if adjwgt is not None:
            adjwgt[indptr[u] : indptr[u + 1]] = wgts
    vwgt = np.asarray(cg.vwgt).copy() if cg.has_vertex_weights else None
    return CSRGraph(indptr, adjncy, adjwgt, vwgt, sorted_neighborhoods=True)
