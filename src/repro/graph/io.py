"""Graph I/O: binary CSR format, METIS text format, streaming loader.

The paper stores graphs "on disk in an uncompressed binary format" and
streams them into (optionally compressed) memory in a single pass.  The
binary format here mirrors that: a small header followed by the raw
``indptr`` / ``adjncy`` / optional weight arrays.  :func:`stream_compressed`
reads the file in vertex packets and feeds them straight into the codec
without ever materialising the full CSR -- the single-pass pipeline of
Section III-B at file level.

The METIS text format is supported because Mt-Metis "reads graphs in a text
format" (the paper uses this to justify excluding I/O from timings).
"""

from __future__ import annotations

import io as _io
import struct
from pathlib import Path

import numpy as np

from repro.graph.compressed import (
    CompressedGraph,
    CompressionConfig,
    CompressionStats,
    encode_neighborhood,
)
from repro.graph.csr import CSRGraph
from repro.memory.scratch import tracked_ones, tracked_zeros

MAGIC = b"TPGR"
VERSION = 1
_HEADER = struct.Struct("<4sIQQBB6x")  # magic, version, n, 2m, ew flag, vw flag


def write_binary(graph: CSRGraph, path: str | Path) -> None:
    """Write a graph in the uncompressed binary on-disk format."""
    path = Path(path)
    with path.open("wb") as f:
        f.write(
            _HEADER.pack(
                MAGIC,
                VERSION,
                graph.n,
                graph.num_directed_edges,
                1 if graph.has_edge_weights else 0,
                1 if graph.has_vertex_weights else 0,
            )
        )
        f.write(graph.indptr.tobytes())
        f.write(graph.adjncy.tobytes())
        if graph.has_edge_weights:
            f.write(np.ascontiguousarray(graph.adjwgt).tobytes())
        if graph.has_vertex_weights:
            f.write(np.ascontiguousarray(graph.vwgt).tobytes())


def _read_header(f) -> tuple[int, int, bool, bool]:
    raw = f.read(_HEADER.size)
    if len(raw) != _HEADER.size:
        raise ValueError("truncated header")
    magic, version, n, m2, ew, vw = _HEADER.unpack(raw)
    if magic != MAGIC:
        raise ValueError(f"bad magic {magic!r}")
    if version != VERSION:
        raise ValueError(f"unsupported version {version}")
    return n, m2, bool(ew), bool(vw)


def read_binary(path: str | Path) -> CSRGraph:
    """Load a binary graph fully into an uncompressed CSR."""
    with Path(path).open("rb") as f:
        n, m2, ew, vw = _read_header(f)
        indptr = np.frombuffer(f.read(8 * (n + 1)), dtype=np.int64)
        adjncy = np.frombuffer(f.read(8 * m2), dtype=np.int64)
        adjwgt = np.frombuffer(f.read(8 * m2), dtype=np.int64) if ew else None
        vwgt = np.frombuffer(f.read(8 * n), dtype=np.int64) if vw else None
    return CSRGraph(
        indptr.copy(),
        adjncy.copy(),
        None if adjwgt is None else adjwgt.copy(),
        None if vwgt is None else vwgt.copy(),
        sorted_neighborhoods=True,
    )


def stream_compressed(
    path: str | Path,
    *,
    enable_intervals: bool = True,
    high_degree_threshold: int = 10_000,
    chunk_length: int = 1_000,
    packet_edges: int = 1 << 16,
    tracker=None,
) -> CompressedGraph:
    """Stream a binary graph from disk directly into compressed form.

    Never holds the uncompressed edge array in memory: reads ``indptr``,
    then consumes ``adjncy`` (and weights) in packets of roughly
    ``packet_edges`` directed edges, compressing each packet as it arrives.
    This is the file-level realisation of the paper's single-pass I/O.
    """
    cfg = CompressionConfig(
        enable_intervals=enable_intervals,
        high_degree_threshold=high_degree_threshold,
        chunk_length=chunk_length,
    )
    with Path(path).open("rb") as f:
        n, m2, ew, vw = _read_header(f)
        indptr = np.frombuffer(f.read(8 * (n + 1)), dtype=np.int64).copy()
        stats = CompressionStats(
            uncompressed_bytes=8 * (n + 1) + 8 * m2 * (2 if ew else 1) + (8 * n if vw else 8)
        )
        out = bytearray()
        offsets = np.empty(n + 1, dtype=np.int64)
        adj_start = f.tell()
        wgt_start = adj_start + 8 * m2
        total_edge_weight = 0
        u = 0
        while u < n:
            # pick a packet of consecutive vertices totalling ~packet_edges
            v = u
            while v < n and indptr[v + 1] - indptr[u] < packet_edges:
                v += 1
            v = max(v, u + 1) if v < n else n
            if v == u:
                v = u + 1
            lo, hi = int(indptr[u]), int(indptr[v])
            f.seek(adj_start + 8 * lo)
            adj = np.frombuffer(f.read(8 * (hi - lo)), dtype=np.int64)
            wgt = None
            if ew:
                f.seek(wgt_start + 8 * lo)
                wgt = np.frombuffer(f.read(8 * (hi - lo)), dtype=np.int64)
                total_edge_weight += int(wgt.sum())
            for x in range(u, v):
                offsets[x] = len(out)
                a, b = int(indptr[x] - lo), int(indptr[x + 1] - lo)
                nbrs = adj[a:b]
                ws = None if wgt is None else wgt[a:b]
                order = np.argsort(nbrs, kind="stable")
                nbrs = nbrs[order]
                if ws is not None:
                    ws = ws[order]
                encode_neighborhood(
                    x, nbrs, ws, int(indptr[x]), out, cfg, stats
                )
            u = v
        offsets[n] = len(out)
        vwgt = None
        if vw:
            f.seek(wgt_start + (8 * m2 if ew else 0))
            vwgt = np.frombuffer(f.read(8 * n), dtype=np.int64).copy()
    data = bytes(out)
    stats.compressed_bytes = len(data) + offsets.nbytes
    cg = CompressedGraph(
        n,
        m2,
        offsets,
        data,
        vwgt,
        has_edge_weights=ew,
        config=cfg,
        stats=stats,
        total_edge_weight=total_edge_weight if ew else m2,
    )
    if tracker is not None:
        tracker.alloc("compressed-graph", cg.nbytes, "graph")
    return cg


# --------------------------------------------------------------------- #
# METIS text format
# --------------------------------------------------------------------- #
def _write_metis_body(graph, f) -> None:
    """Write METIS header + adjacency lines via one bulk adjacency scan.

    Using :func:`full_adjacency` means compressed graphs are decoded once
    through the vectorized path instead of per vertex.
    """
    from repro.graph.access import full_adjacency

    fmt = ""
    if graph.has_edge_weights or graph.has_vertex_weights:
        fmt = f" {'1' if graph.has_vertex_weights else '0'}{'1' if graph.has_edge_weights else '0'}"
    f.write(f"{graph.n} {graph.m}{fmt}\n")
    _src, nbrs, wgts = full_adjacency(graph)
    degrees = np.asarray(graph.degrees)
    nbrs_list = (np.asarray(nbrs) + 1).tolist()
    wgts_list = np.asarray(wgts).tolist()
    lo = 0
    for u in range(graph.n):
        parts: list[str] = []
        if graph.has_vertex_weights:
            parts.append(str(int(graph.vwgt[u])))
        hi = lo + int(degrees[u])
        for i in range(lo, hi):
            parts.append(str(nbrs_list[i]))
            if graph.has_edge_weights:
                parts.append(str(wgts_list[i]))
        lo = hi
        f.write(" ".join(parts) + "\n")


def write_metis(graph: CSRGraph, path: str | Path) -> None:
    """Write the METIS text format (1-indexed)."""
    with Path(path).open("w") as f:
        _write_metis_body(graph, f)


def read_metis(path_or_file) -> CSRGraph:
    """Parse the METIS text format."""
    if isinstance(path_or_file, (str, Path)):
        f = Path(path_or_file).open("r")
        close = True
    else:
        f = path_or_file
        close = False
    try:
        header = f.readline().split()
        n, m = int(header[0]), int(header[1])
        fmt = header[2] if len(header) > 2 else "00"
        fmt = fmt.zfill(2)
        has_vw, has_ew = fmt[-2] == "1", fmt[-1] == "1"
        indptr = tracked_zeros(n + 1, np.int64, name="metis-indptr")
        adjncy: list[int] = []
        adjwgt: list[int] = []
        vwgt = tracked_ones(n, np.int64, name="metis-vwgt") if has_vw else None
        for u in range(n):
            tokens = f.readline().split()
            i = 0
            if has_vw:
                vwgt[u] = int(tokens[0])  # type: ignore[index]
                i = 1
            while i < len(tokens):
                adjncy.append(int(tokens[i]) - 1)
                i += 1
                if has_ew:
                    adjwgt.append(int(tokens[i]))
                    i += 1
            indptr[u + 1] = len(adjncy)
        if indptr[-1] != 2 * m:
            raise ValueError(
                f"header claims m={m} but found {indptr[-1]} directed edges"
            )
        return CSRGraph(
            indptr,
            np.asarray(adjncy, dtype=np.int64),
            np.asarray(adjwgt, dtype=np.int64) if has_ew else None,
            vwgt,
        )
    finally:
        if close:
            f.close()


def roundtrip_text(graph: CSRGraph) -> CSRGraph:
    """Write+read through METIS text in memory (for tests)."""
    buf = _io.StringIO()
    _write_metis_body(graph, buf)
    buf.seek(0)
    return read_metis(buf)
