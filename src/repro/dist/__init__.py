"""Simulated distributed-memory substrate and xTeraPart.

The paper's distributed experiments (Section VI-C) run dKaMinPar + graph
compression ("xTeraPart") over MPI on up to 128 nodes.  Here the message
passing layer is simulated in-process (DESIGN.md section 2): ranks execute
collectives in lock-step supersteps, every byte crossing rank boundaries is
counted, and each rank owns a private memory ledger so per-node peaks (the
256 GiB constraint that OOMs the baselines in Fig. 8) are measured exactly.

Key pieces:

* :class:`SimComm` -- rank-indexed collectives (alltoallv / allgather /
  allreduce / bcast) in the shape of the mpi4py API.
* :class:`DistributedGraph` -- contiguous vertex ranges per rank, adjacency
  in global IDs, ghost-vertex mappings (the 1.2-1.3x overhead the paper
  attributes to distribution).
* :func:`repro.dist.dpartitioner.dpartition` -- the distributed multilevel
  driver: distributed LP coarsening, distributed contraction, per-rank
  initial partitioning on a gathered coarsest graph, distributed LP
  refinement with batch-synchronous moves and rebalancing.
"""

from repro.dist.comm import CommStats, SimComm
from repro.dist.dgraph import DistributedGraph, distribute_graph
from repro.dist.dpartitioner import DistPartitionResult, dpartition

__all__ = [
    "CommStats",
    "SimComm",
    "DistributedGraph",
    "distribute_graph",
    "DistPartitionResult",
    "dpartition",
]
