"""Batch-synchronous distributed label propagation (dKaMinPar style).

Coarsening clustering and refinement both run label propagation in
synchronous vertex batches: within a batch every rank decides moves against
the *stale* labels snapshotted at batch start (exactly the semantics of
dKaMinPar's bulk-synchronous rounds), then label changes of boundary
vertices are exchanged with the ranks holding them as ghosts.  Cluster/block
weights are tracked approximately between batches via an allreduce of
deltas, so the balance constraint can be transiently violated -- repaired by
the explicit rebalancing step, as in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.dist.comm import SimComm
from repro.dist.dgraph import DistributedGraph
from repro.memory.scratch import tracked_empty, tracked_full, tracked_zeros
from repro.obs.dist.cluster import NULL_CLUSTER_OBSERVER


def _segment_best(
    owner: np.ndarray,
    labels_of_nbrs: np.ndarray,
    weights: np.ndarray,
    id_space: int,
    current: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Best label per owner (ties favor the current label, then jitter)."""
    key = owner * np.int64(id_space) + labels_of_nbrs
    order = np.argsort(key, kind="stable")
    key_s, w_s = key[order], weights[order]
    boundary = tracked_empty(len(key_s), bool, name="segment-boundary")
    boundary[0] = True
    boundary[1:] = key_s[1:] != key_s[:-1]
    starts = np.flatnonzero(boundary)
    ratings = np.add.reduceat(w_s, starts)
    pair_key = key_s[starts]
    po = pair_key // id_space
    pl = pair_key % id_space
    is_current = pl == current[po]
    jitter = ((pl * 0x9E3779B1) ^ (po * 0x85EBCA6B)) >> 7 & 0x3F
    rank_score = ((2 * ratings + is_current) << 6) | jitter
    ordc = np.lexsort((rank_score, po))
    last = tracked_empty(len(ordc), bool, name="segment-last-mask")
    last[-1] = True
    last[:-1] = po[ordc][1:] != po[ordc][:-1]
    best = ordc[last]
    return po[best], pl[best]



def _ghost_update_payload(
    dgraph: DistributedGraph,
    changes: list[tuple[np.ndarray, np.ndarray]],
) -> list[list[np.ndarray]]:
    """Route each rank's label changes only to ranks holding them as ghosts.

    ``changes[src]`` is ``(vertices, labels)`` moved by rank ``src`` this
    batch.  Rank ``dst`` needs the update for vertex ``v`` iff ``v`` is in
    ``dst``'s ghost set -- sending anything more would inflate traffic
    quadratically in the rank count (and ruin weak scaling).
    """
    size = dgraph.comm.size
    payload: list[list[np.ndarray]] = []
    for src in range(size):
        us = changes[src][0]
        row: list[np.ndarray] = []
        for dst in range(size):
            if src == dst or len(us) == 0:
                row.append(np.empty(0, dtype=np.int64))
                continue
            ghosts = dgraph.shards[dst].ghosts
            pos = np.searchsorted(ghosts, us)
            pos = np.minimum(pos, max(0, len(ghosts) - 1))
            is_ghost = len(ghosts) > 0
            mask = (
                (ghosts[pos] == us)
                if is_ghost
                else tracked_zeros(len(us), bool, name="ghost-mask")
            )
            row.append(us[mask])
        payload.append(row)
    return payload


def _count_ghost_updates(tracer, payload: list[list[np.ndarray]]) -> None:
    """Per-rank + cluster-wide ghost-update counters for one exchange."""
    if not tracer.enabled:
        return
    total = 0
    for src, row in enumerate(payload):
        sent = sum(len(us) for us in row)
        if sent:
            tracer.rank_add(src, "dlp.ghost_updates_sent", sent)
        total += sent
    tracer.add("dlp.ghost_updates", total)


def distributed_lp_clustering(
    dgraph: DistributedGraph,
    max_cluster_weight: int,
    rounds: int,
    batches: int,
    rng: np.random.Generator,
    *,
    tracer=NULL_CLUSTER_OBSERVER,
    level: int | None = None,
) -> np.ndarray:
    """Cluster all vertices; returns global leader labels (size n).

    The simulation holds labels in one global array but performs reads and
    updates with the batch-synchronous protocol: decisions inside a batch
    see only labels from the previous batch boundary, matching the stale
    reads a real distributed run exhibits.  Per-rank ledgers are charged for
    the per-rank label + ghost-label + weight-table working set.

    ``tracer`` (a :class:`~repro.obs.dist.cluster.ClusterObserver` or the
    shared null observer) gets one kernel span per round, a
    ``ghost-exchange`` span around every boundary-label alltoallv, the
    per-round contention count (moves the stale weight table rejected at
    apply time), and per-rank ghost-update counters.  It never influences
    the computation.
    """
    comm = dgraph.comm
    n = dgraph.n
    labels = np.arange(n, dtype=np.int64)
    weights = np.zeros(n, dtype=np.int64)
    for shard in dgraph.shards:
        weights[shard.lo : shard.hi] = shard.vwgt

    # per-rank working set: local labels, ghost labels, active-cluster table
    aids = []
    for rank, shard in enumerate(dgraph.shards):
        aids.append(
            comm.trackers[rank].alloc(
                f"dlp-working-set-{rank}",
                8 * shard.n_local + 16 * len(shard.ghosts) + 16 * shard.n_local,
                "clustering",
            )
        )

    vwgt_global = weights.copy()
    for rnd in range(rounds):
        moved = 0
        with tracer.span(f"dist-lp-round{rnd}", level=level):
            for batch in range(batches):
                snapshot = labels.copy()  # batch-start label view (stale reads)
                all_changes: list[tuple[np.ndarray, np.ndarray]] = []
                for shard in dgraph.shards:
                    local = np.arange(shard.lo, shard.hi, dtype=np.int64)
                    mine = local[local % batches == batch]
                    if len(mine) == 0:
                        all_changes.append(
                            (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
                        )
                        continue
                    owners = []
                    nbrs = []
                    ws = []
                    for i, u in enumerate(mine.tolist()):
                        nv, wv = shard.neighbors_and_weights(u - shard.lo)
                        if len(nv):
                            owners.append(np.full(len(nv), i, dtype=np.int64))
                            nbrs.append(np.asarray(nv))
                            ws.append(np.asarray(wv))
                    if not owners:
                        all_changes.append(
                            (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
                        )
                        continue
                    owner = np.concatenate(owners)
                    nbr = np.concatenate(nbrs)
                    w = np.concatenate(ws)
                    po, pl = _segment_best(
                        owner, snapshot[nbr], w, n, snapshot[mine]
                    )
                    us = mine[po]
                    cur = snapshot[us]
                    fits = weights[pl] + vwgt_global[us] <= max_cluster_weight
                    move = (pl != cur) & fits
                    all_changes.append((us[move], pl[move]))
                # apply moves + exchange boundary label updates (alltoallv)
                contended = 0
                for us, ls in all_changes:
                    for u, l in zip(us.tolist(), ls.tolist()):
                        w = int(vwgt_global[u])
                        if weights[l] + w > max_cluster_weight:
                            contended += 1
                            continue  # weight table refreshed between batches
                        weights[labels[u]] -= w
                        weights[l] += w
                        labels[u] = l
                        moved += 1
                with tracer.span("ghost-exchange", level=level):
                    payload = _ghost_update_payload(dgraph, all_changes)
                    comm.alltoallv(payload)  # label updates to ghost holders only
                tracer.add("dlp.contention", contended)
                _count_ghost_updates(tracer, payload)
            comm.allreduce(
                [np.array([moved], dtype=np.int64) for _ in range(comm.size)]
            )
            tracer.add("dlp.moves", moved)
        if moved == 0:
            break

    for rank, aid in enumerate(aids):
        comm.trackers[rank].free(aid)
    return labels


def distributed_lp_refine(
    dgraph: DistributedGraph,
    partition: np.ndarray,
    block_weights: np.ndarray,
    k: int,
    max_block_weight: int,
    rounds: int,
    batches: int,
    *,
    tracer=NULL_CLUSTER_OBSERVER,
    level: int | None = None,
) -> int:
    """Batch-synchronous size-constrained LP refinement; returns move count."""
    comm = dgraph.comm
    vwgt = tracked_zeros(dgraph.n, np.int64, name="dlp-global-vwgt")
    for shard in dgraph.shards:
        vwgt[shard.lo : shard.hi] = shard.vwgt
    total_moves = 0
    for rnd in range(rounds):
        moved = 0
        with tracer.span(f"dist-refine-round{rnd}", level=level):
            for batch in range(batches):
                snapshot = partition.copy()
                all_changes: list[tuple[np.ndarray, np.ndarray]] = []
                for shard in dgraph.shards:
                    local = np.arange(shard.lo, shard.hi, dtype=np.int64)
                    mine = local[local % batches == batch]
                    owners, nbrs, ws = [], [], []
                    for i, u in enumerate(mine.tolist()):
                        nv, wv = shard.neighbors_and_weights(u - shard.lo)
                        if len(nv):
                            owners.append(
                                tracked_full(len(nv), i, np.int64, name="dlp-owners")
                            )
                            nbrs.append(np.asarray(nv))
                            ws.append(np.asarray(wv))
                    if not owners:
                        all_changes.append(
                            (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
                        )
                        continue
                    owner = np.concatenate(owners)
                    nbr = np.concatenate(nbrs)
                    w = np.concatenate(ws)
                    # compute gains per (owner, block)
                    key = owner * np.int64(k) + snapshot[nbr]
                    order = np.argsort(key, kind="stable")
                    key_s, w_s = key[order], w[order]
                    boundary = tracked_empty(
                        len(key_s), bool, name="dlp-boundary"
                    )
                    boundary[0] = True
                    boundary[1:] = key_s[1:] != key_s[:-1]
                    starts = np.flatnonzero(boundary)
                    ratings = np.add.reduceat(w_s, starts)
                    pair_key = key_s[starts]
                    po = pair_key // k
                    pb = pair_key % k
                    us_all = mine[po]
                    cur = snapshot[us_all].astype(np.int64)
                    cur_aff = tracked_zeros(len(mine), np.int64, name="dlp-cur-aff")
                    is_cur = pb == cur
                    cur_aff[po[is_cur]] = ratings[is_cur]
                    gain = ratings - cur_aff[po]
                    fits = block_weights[pb] + vwgt[us_all] <= max_block_weight
                    ok = fits & ~is_cur & (gain > 0)
                    if not np.any(ok):
                        all_changes.append(
                            (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
                        )
                        continue
                    po2, pb2, g2 = po[ok], pb[ok], gain[ok]
                    ordc = np.lexsort((g2, po2))
                    last = tracked_empty(len(ordc), bool, name="dlp-last-mask")
                    last[-1] = True
                    last[:-1] = po2[ordc][1:] != po2[ordc][:-1]
                    best = ordc[last]
                    all_changes.append((mine[po2[best]], pb2[best]))
                for us, bs in all_changes:
                    for u, b in zip(us.tolist(), bs.tolist()):
                        w = int(vwgt[u])
                        src = int(partition[u])
                        if b == src:
                            continue
                        # batch-synchronous: the stale weight check may overfill;
                        # the rebalancer repairs it afterwards (paper Section II-B)
                        block_weights[src] -= w
                        block_weights[b] += w
                        partition[u] = b
                        moved += 1
                with tracer.span("ghost-exchange", level=level):
                    payload = _ghost_update_payload(dgraph, all_changes)
                    comm.alltoallv(payload)
                _count_ghost_updates(tracer, payload)
            comm.allreduce(
                [block_weights.copy() for _ in range(comm.size)], op="max"
            )
            tracer.add("dlp.refine_moves", moved)
        total_moves += moved
        if moved == 0:
            break
    return total_moves
