"""Simulated MPI communicator.

Collectives take rank-indexed inputs and return rank-indexed outputs; the
simulation executes them atomically (a superstep barrier).  Byte counters
feed the distributed cost model: per-rank traffic, message counts, and the
number of supersteps (latency-bound term).  Per-rank memory ledgers live
here too, because the binding constraint in Figure 8 is *per-node* memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.memory.tracker import MemoryTracker


@dataclass
class CommStats:
    """Aggregate communication measurements."""

    bytes_sent: int = 0
    messages: int = 0
    supersteps: int = 0

    def record(self, nbytes: int, nmsgs: int) -> None:
        self.bytes_sent += int(nbytes)
        self.messages += int(nmsgs)
        self.supersteps += 1


def _nbytes(obj) -> int:
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, (list, tuple)):
        return sum(_nbytes(x) for x in obj)
    return 8  # scalars / small objects


class SimComm:
    """A communicator over ``size`` simulated ranks."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("communicator needs at least one rank")
        self.size = size
        self.stats = CommStats()
        self.trackers = [MemoryTracker() for _ in range(size)]

    # ------------------------------------------------------------------ #
    # collectives (rank-indexed in, rank-indexed out)
    # ------------------------------------------------------------------ #
    def alltoallv(self, send: list[list]) -> list[list]:
        """``send[src][dst]`` -> ``recv[dst][src]``."""
        self._check_square(send)
        traffic = sum(
            _nbytes(send[s][d]) for s in range(self.size) for d in range(self.size) if s != d
        )
        self.stats.record(traffic, self.size * (self.size - 1))
        return [
            [send[s][d] for s in range(self.size)] for d in range(self.size)
        ]

    def allgather(self, items: list) -> list[list]:
        """Every rank contributes one item; all ranks receive all items."""
        if len(items) != self.size:
            raise ValueError("allgather needs one item per rank")
        per_rank = sum(_nbytes(x) for x in items)
        self.stats.record(per_rank * (self.size - 1), self.size * (self.size - 1))
        return [list(items) for _ in range(self.size)]

    def allreduce(self, values: list[np.ndarray], op: str = "sum") -> np.ndarray:
        """Element-wise reduction of one array per rank; result replicated."""
        if len(values) != self.size:
            raise ValueError("allreduce needs one value per rank")
        arrs = [np.asarray(v) for v in values]
        self.stats.record(
            arrs[0].nbytes * 2 * max(0, self.size - 1), 2 * (self.size - 1)
        )
        if op == "sum":
            return np.sum(arrs, axis=0)
        if op == "max":
            return np.max(arrs, axis=0)
        if op == "min":
            return np.min(arrs, axis=0)
        raise ValueError(f"unknown reduction {op!r}")

    def bcast(self, value, root: int = 0):
        """Root's value replicated to every rank."""
        self.stats.record(_nbytes(value) * (self.size - 1), self.size - 1)
        return [value for _ in range(self.size)]

    def barrier(self) -> None:
        self.stats.record(0, self.size)

    # ------------------------------------------------------------------ #
    # per-rank memory
    # ------------------------------------------------------------------ #
    def max_rank_peak_bytes(self) -> int:
        return max(t.peak_bytes for t in self.trackers)

    def rank_peaks(self) -> list[int]:
        return [t.peak_bytes for t in self.trackers]

    def _check_square(self, send: list[list]) -> None:
        if len(send) != self.size or any(len(row) != self.size for row in send):
            raise ValueError(
                f"alltoallv needs a {self.size}x{self.size} send matrix"
            )
