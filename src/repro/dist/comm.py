"""Simulated MPI communicator.

Collectives take rank-indexed inputs and return rank-indexed outputs; the
simulation executes them atomically (a superstep barrier).  Byte counters
feed the distributed cost model: per-rank traffic, message counts, and the
number of supersteps (latency-bound term).  Per-rank memory ledgers live
here too, because the binding constraint in Figure 8 is *per-node* memory.

Every collective is also reported to an optional ``observer`` (duck-typed;
see :class:`repro.obs.dist.cluster.ClusterObserver`) with the exact raw
payload, so the observability layer can attribute traffic to the phase that
caused it and price a varint-compressed wire format against the raw one.
This module deliberately does not import the obs layer: the observer is
attached from above and ``None`` costs one attribute load per collective.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.memory.tracker import MemoryTracker


@dataclass
class CollectiveStats:
    """Counters of one collective kind (alltoallv, allgather, ...)."""

    calls: int = 0
    messages: int = 0
    bytes_sent: int = 0


@dataclass
class CommStats:
    """Aggregate communication measurements, split by collective kind."""

    bytes_sent: int = 0
    messages: int = 0
    supersteps: int = 0
    by_kind: dict[str, CollectiveStats] = field(default_factory=dict)

    def record(self, nbytes: int, nmsgs: int, kind: str = "collective") -> None:
        self.bytes_sent += int(nbytes)
        self.messages += int(nmsgs)
        self.supersteps += 1
        ks = self.by_kind.get(kind)
        if ks is None:
            ks = self.by_kind[kind] = CollectiveStats()
        ks.calls += 1
        ks.messages += int(nmsgs)
        ks.bytes_sent += int(nbytes)


def _nbytes(obj) -> int:
    """Exact payload bytes of one collective operand.

    Containers recurse into their elements (a nested list of arrays counts
    every buffer, not the outer list object); buffers report their true
    size; scalars cost one machine word (8 bytes) regardless of Python's
    boxed representation, matching what a wire format would carry.
    """
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, (bool, np.bool_)):
        return 1
    if isinstance(obj, (int, float, np.integer, np.floating)):
        return 8
    if isinstance(obj, str):
        return len(obj.encode("utf-8"))
    if isinstance(obj, (list, tuple)):
        return sum(_nbytes(x) for x in obj)
    if isinstance(obj, dict):
        return sum(_nbytes(k) + _nbytes(v) for k, v in obj.items())
    if obj is None:
        return 0
    return 8  # unknown small object: one word


class SimComm:
    """A communicator over ``size`` simulated ranks."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("communicator needs at least one rank")
        self.size = size
        self.stats = CommStats()
        self.trackers = [MemoryTracker() for _ in range(size)]
        self.observer = None  # duck-typed ClusterObserver, attached from obs

    # ------------------------------------------------------------------ #
    # collectives (rank-indexed in, rank-indexed out)
    # ------------------------------------------------------------------ #
    def alltoallv(self, send: list[list]) -> list[list]:
        """``send[src][dst]`` -> ``recv[dst][src]``."""
        self._check_square(send)
        wire = [
            send[s][d]
            for s in range(self.size)
            for d in range(self.size)
            if s != d
        ]
        traffic = sum(_nbytes(x) for x in wire)
        nmsgs = self.size * (self.size - 1)
        self.stats.record(traffic, nmsgs, kind="alltoallv")
        if self.observer is not None:
            self.observer.on_collective(
                "alltoallv", traffic, nmsgs, payload=wire
            )
        return [
            [send[s][d] for s in range(self.size)] for d in range(self.size)
        ]

    def allgather(self, items: list) -> list[list]:
        """Every rank contributes one item; all ranks receive all items."""
        if len(items) != self.size:
            raise ValueError("allgather needs one item per rank")
        per_rank = sum(_nbytes(x) for x in items)
        traffic = per_rank * (self.size - 1)
        nmsgs = self.size * (self.size - 1)
        self.stats.record(traffic, nmsgs, kind="allgather")
        if self.observer is not None:
            self.observer.on_collective(
                "allgather",
                traffic,
                nmsgs,
                payload=items,
                replication=self.size - 1,
            )
        return [list(items) for _ in range(self.size)]

    def allreduce(self, values: list[np.ndarray], op: str = "sum") -> np.ndarray:
        """Element-wise reduction of one array per rank; result replicated."""
        if len(values) != self.size:
            raise ValueError("allreduce needs one value per rank")
        arrs = [np.asarray(v) for v in values]
        traffic = arrs[0].nbytes * 2 * max(0, self.size - 1)
        nmsgs = 2 * (self.size - 1)
        self.stats.record(traffic, nmsgs, kind="allreduce")
        if self.observer is not None:
            self.observer.on_collective(
                "allreduce",
                traffic,
                nmsgs,
                payload=arrs[0],
                replication=2 * max(0, self.size - 1),
            )
        if op == "sum":
            return np.sum(arrs, axis=0)
        if op == "max":
            return np.max(arrs, axis=0)
        if op == "min":
            return np.min(arrs, axis=0)
        raise ValueError(f"unknown reduction {op!r}")

    def bcast(self, value, root: int = 0):
        """Root's value replicated to every rank."""
        traffic = _nbytes(value) * (self.size - 1)
        nmsgs = self.size - 1
        self.stats.record(traffic, nmsgs, kind="bcast")
        if self.observer is not None:
            self.observer.on_collective(
                "bcast",
                traffic,
                nmsgs,
                payload=value,
                replication=self.size - 1,
            )
        return [value for _ in range(self.size)]

    def barrier(self) -> None:
        self.stats.record(0, self.size, kind="barrier")
        if self.observer is not None:
            self.observer.on_collective("barrier", 0, self.size)

    # ------------------------------------------------------------------ #
    # per-rank memory
    # ------------------------------------------------------------------ #
    def max_rank_peak_bytes(self) -> int:
        return max(t.peak_bytes for t in self.trackers)

    def rank_peaks(self) -> list[int]:
        return [t.peak_bytes for t in self.trackers]

    def _check_square(self, send: list[list]) -> None:
        if len(send) != self.size or any(len(row) != self.size for row in send):
            raise ValueError(
                f"alltoallv needs a {self.size}x{self.size} send matrix"
            )
