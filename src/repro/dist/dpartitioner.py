"""The distributed multilevel driver (dKaMinPar / xTeraPart).

Pipeline (Section II-B):

1. **Coarsening**: batch-synchronous distributed LP clustering, then a
   distributed contraction -- coarse vertices are owned by the rank owning
   the cluster leader, coarse edges travel to their owner via alltoallv.
2. **Initial partitioning**: *every rank obtains a full copy of the
   coarsest graph* (a deliberate memory spike, charged per rank) and runs
   the shared-memory partitioner with rank-specific seeds; the best result
   wins and is broadcast.
3. **Uncoarsening**: project, batch-synchronous LP refinement, explicit
   rebalancing of the violations the stale-weight batches introduce.

``compressed=True`` stores every level's shards with the Section III codec:
that single toggle is what turns dKaMinPar into xTeraPart, and it is what
lets the per-rank ledger stay under the node memory budget for graphs 8x
larger (Fig. 8 left/middle).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import DistObsConfig, PartitionerConfig, terapart
from repro.core.initial.recursive import initial_partition
from repro.core.partition import max_block_weight
from repro.dist.comm import CommStats, SimComm
from repro.dist.dgraph import DistributedGraph, distribute_graph
from repro.dist.dlp import distributed_lp_clustering, distributed_lp_refine
from repro.graph.builder import from_edges
from repro.graph.csr import CSRGraph
from repro.memory.scratch import tracked_empty, tracked_full, tracked_zeros
from repro.obs.dist.cluster import NULL_CLUSTER_OBSERVER, ClusterObserver


@dataclass
class DistPartitionResult:
    partition: np.ndarray
    cut: int
    cut_fraction: float
    imbalance: float
    balanced: bool
    num_ranks: int
    max_rank_peak_bytes: int
    rank_peak_bytes: list[int]
    comm: CommStats
    wall_seconds: float
    modeled_seconds: float
    num_levels: int
    oom: bool = False
    # when obs is enabled: the finished ClusterObserver and the compact
    # registry snapshot (memory-ratio report + cluster roll-up)
    trace: object | None = None
    obs: dict | None = None


@dataclass
class DistConfig:
    """Distributed driver knobs."""

    lp_rounds: int = 3
    refine_rounds: int = 2
    batches: int = 4
    contraction_limit_factor: int = 32
    max_levels: int = 16
    min_shrink_factor: float = 1.05
    # per-rank memory budget in bytes; exceeded -> OOM (Fig. 8 markers).
    rank_memory_budget: int | None = None
    seed: int = 0
    epsilon: float = 0.03
    obs: DistObsConfig = field(default_factory=DistObsConfig)


def _shard_footprint(dgraph: DistributedGraph) -> tuple[int, int]:
    """(resident shard bytes, ghost-mapping bytes) summed over ranks."""
    shard_bytes = sum(s.storage_bytes for s in dgraph.shards)
    ghost_bytes = sum(s.ghost_bytes for s in dgraph.shards)
    return int(shard_bytes), int(ghost_bytes)


def _contract_distributed(
    dgraph: DistributedGraph,
    labels: np.ndarray,
    compressed: bool,
    tracer=NULL_CLUSTER_OBSERVER,
) -> tuple[DistributedGraph, np.ndarray]:
    """Contract a distributed clustering into a new distributed graph.

    Follows the dKaMinPar protocol: a coarse vertex is owned by the rank
    that owns its cluster leader; coarse IDs are assigned contiguously per
    owner (prefix offsets agreed via allgather); every rank aggregates its
    local coarse edges, buckets them by owner, and ships each bucket to its
    owner with one alltoallv; owners merge the received buckets into their
    shard of the coarse graph.
    """
    comm = dgraph.comm
    n = dgraph.n
    leaders = np.unique(labels)

    # ---- coarse numbering: contiguous per owner rank ---- #
    leader_owner = dgraph.owner_of(leaders)
    counts = np.bincount(leader_owner, minlength=comm.size).astype(np.int64)
    comm.allgather(list(counts))  # every rank learns all counts
    coarse_ranges = tracked_zeros(
        comm.size + 1, np.int64, name="coarse-rank-ranges"
    )
    np.cumsum(counts, out=coarse_ranges[1:])
    n_coarse = int(coarse_ranges[-1])
    # leaders are sorted, and owner is monotone in leader id (contiguous
    # fine ranges), so within-owner order is just the sorted order
    remap = tracked_full(n, -1, np.int64, name="dist-contract-remap")
    remap[leaders] = np.arange(n_coarse, dtype=np.int64)
    fine_to_coarse = remap[labels]

    # ---- per-rank aggregation + bucketing by owner ---- #
    buckets: list[list[np.ndarray]] = [
        [np.empty((0, 3), dtype=np.int64) for _ in range(comm.size)]
        for _ in range(comm.size)
    ]
    for shard in dgraph.shards:
        srcs, dsts, ws = [], [], []
        for lu in range(shard.n_local):
            nv, wv = shard.neighbors_and_weights(lu)
            if len(nv) == 0:
                continue
            cu = fine_to_coarse[shard.lo + lu]
            cvs = fine_to_coarse[np.asarray(nv)]
            keep = cvs != cu
            if not np.any(keep):
                continue
            srcs.append(
                tracked_full(int(keep.sum()), cu, np.int64, name="contract-srcs")
            )
            dsts.append(cvs[keep])
            ws.append(np.asarray(wv)[keep])
        if not srcs:
            continue
        cu = np.concatenate(srcs)
        cv = np.concatenate(dsts)
        w = np.concatenate(ws)
        # local pre-merge (reduces traffic, exactly like the real system)
        key = cu * np.int64(n_coarse) + cv
        order = np.argsort(key, kind="stable")
        key_s, w_s = key[order], w[order]
        b = tracked_empty(len(key_s), bool, name="contract-merge-bounds")
        b[0] = True
        b[1:] = key_s[1:] != key_s[:-1]
        starts = np.flatnonzero(b)
        w_m = np.add.reduceat(w_s, starts)
        key_u = key_s[starts]
        cu, cv, w = key_u // n_coarse, key_u % n_coarse, w_m
        owners = np.searchsorted(coarse_ranges, cu, side="right") - 1
        for dst_rank in range(comm.size):
            mask = owners == dst_rank
            if np.any(mask):
                buckets[shard.rank][dst_rank] = np.stack(
                    [cu[mask], cv[mask], w[mask]], axis=1
                )
    received = comm.alltoallv(buckets)
    if tracer.enabled:
        for dst_rank, per_rank in enumerate(received):
            rows = sum(len(r) for r in per_rank)
            if rows:
                tracer.rank_add(dst_rank, "contract.rows_received", rows)

    # ---- owners merge their buckets into the coarse graph ---- #
    all_rows = [
        row for per_rank in received for row in per_rank if len(row)
    ]
    if all_rows:
        rows = np.concatenate(all_rows, axis=0)
        cu, cv, w = rows[:, 0], rows[:, 1], rows[:, 2]
        key = cu * np.int64(n_coarse) + cv
        order = np.argsort(key, kind="stable")
        key_s, w_s = key[order], w[order]
        b = tracked_empty(len(key_s), bool, name="contract-merge-bounds")
        b[0] = True
        b[1:] = key_s[1:] != key_s[:-1]
        starts = np.flatnonzero(b)
        w = np.add.reduceat(w_s, starts)
        key_u = key_s[starts]
        cu, cv = key_u // n_coarse, key_u % n_coarse
    else:
        cu = cv = w = np.empty(0, dtype=np.int64)
    tracer.add("contract.coarse_edges", len(cv))

    vwgt = tracked_zeros(n_coarse, np.int64, name="coarse-vwgt")
    all_vwgt = tracked_zeros(n, np.int64, name="gathered-vwgt")
    for shard in dgraph.shards:
        all_vwgt[shard.lo : shard.hi] = shard.vwgt
    np.add.at(vwgt, fine_to_coarse, all_vwgt)

    degrees = np.bincount(cu, minlength=n_coarse).astype(np.int64)
    indptr = tracked_zeros(n_coarse + 1, np.int64, name="coarse-indptr")
    np.cumsum(degrees, out=indptr[1:])
    unit = bool(len(w) == 0 or np.all(w == 1))
    coarse = CSRGraph(
        indptr, cv, None if unit else w, vwgt, sorted_neighborhoods=True
    )
    dcoarse = distribute_graph(
        coarse, comm, compressed=compressed, ranges=coarse_ranges
    )
    return dcoarse, fine_to_coarse


def _graph_cut(dgraph: DistributedGraph, partition: np.ndarray) -> int:
    total = 0
    for shard in dgraph.shards:
        for lu in range(shard.n_local):
            nv, wv = shard.neighbors_and_weights(lu)
            if len(nv) == 0:
                continue
            cross = partition[shard.lo + lu] != partition[np.asarray(nv)]
            total += int(np.asarray(wv)[cross].sum())
    return total // 2


def dpartition(
    graph,
    k: int,
    comm_or_ranks: SimComm | int = 8,
    *,
    compressed: bool = False,
    config: DistConfig | None = None,
    sm_config: PartitionerConfig | None = None,
    observer=None,
) -> DistPartitionResult:
    """Partition ``graph`` on a simulated cluster of ranks.

    ``compressed=False`` is dKaMinPar; ``compressed=True`` is xTeraPart.
    A ``rank_memory_budget`` turns the run into a feasibility experiment:
    the result's ``oom`` flag reports whether any rank exceeded the budget
    (the per-node 256 GiB constraint of Fig. 8).

    With ``config.obs.enabled`` (or an explicit ``observer``), the run is
    traced by a :class:`~repro.obs.dist.cluster.ClusterObserver`: every
    driver phase is mirrored onto per-rank span trees coupled to the rank
    ledgers, every collective is attributed to its phase, and the result
    carries the observer (``trace``) plus the memory-ratio registry
    (``obs``).  Tracing never perturbs the partition (bit-identical,
    tested).
    """
    cfg = config or DistConfig()
    comm = (
        comm_or_ranks
        if isinstance(comm_or_ranks, SimComm)
        else SimComm(comm_or_ranks)
    )
    if observer is not None:
        tracer = observer
    elif cfg.obs.enabled:
        tracer = ClusterObserver(comm, round_spans=cfg.obs.round_spans)
    else:
        tracer = NULL_CLUSTER_OBSERVER
    rng = np.random.default_rng(cfg.seed)
    t0 = time.perf_counter()

    with tracer.phase("dist-partition"):
        with tracer.phase("dist-distribute"):
            dgraph = distribute_graph(graph, comm, compressed=compressed)
        shard_bytes, ghost_bytes = _shard_footprint(dgraph)
        tracer.note_level(
            0,
            n=dgraph.n,
            m=dgraph.m,
            shard_bytes=shard_bytes,
            ghost_bytes=ghost_bytes,
        )
        top = dgraph
        hierarchy: list[tuple[DistributedGraph, np.ndarray]] = []
        limit = max(2 * k, cfg.contraction_limit_factor * k)
        total_weight = dgraph.total_vertex_weight
        max_cluster_weight = max(1, total_weight // max(limit, 1))

        current = dgraph
        level = 0
        with tracer.phase("dist-coarsening"):
            for _ in range(cfg.max_levels):
                if current.n <= limit:
                    break
                with tracer.phase(f"dist-lp-level{level}", level=level):
                    labels = distributed_lp_clustering(
                        current,
                        max_cluster_weight,
                        cfg.lp_rounds,
                        cfg.batches,
                        rng,
                        tracer=tracer,
                        level=level,
                    )
                shrink = current.n / max(len(np.unique(labels)), 1)
                if shrink < cfg.min_shrink_factor:
                    break
                with tracer.phase(f"dist-contract-level{level}", level=level):
                    coarse, fine_to_coarse = _contract_distributed(
                        current, labels, compressed, tracer=tracer
                    )
                shard_bytes, ghost_bytes = _shard_footprint(coarse)
                tracer.note_level(
                    level + 1,
                    n=coarse.n,
                    m=coarse.m,
                    shard_bytes=shard_bytes,
                    ghost_bytes=ghost_bytes,
                )
                hierarchy.append((current, fine_to_coarse))
                current = coarse
                level += 1

        # ---- initial partitioning: full coarsest copy on every rank ---- #
        with tracer.phase("dist-initial", level=len(hierarchy)):
            coarsest_edges = []
            coarsest_w = []
            for shard in current.shards:
                for lu in range(shard.n_local):
                    nv, wv = shard.neighbors_and_weights(lu)
                    u = shard.lo + lu
                    mask = np.asarray(nv) > u
                    coarsest_edges.append(
                        np.stack(
                            [
                                np.full(int(mask.sum()), u, dtype=np.int64),
                                np.asarray(nv)[mask],
                            ],
                            axis=1,
                        )
                    )
                    coarsest_w.append(np.asarray(wv)[mask])
            vwgt = np.concatenate([s.vwgt for s in current.shards])
            if coarsest_edges:
                e = np.concatenate(coarsest_edges)
                w = np.concatenate(coarsest_w)
            else:
                e = np.zeros((0, 2), dtype=np.int64)
                w = None
            coarsest = from_edges(current.n, e, w, vwgt, symmetrize=True)
            copy_aids = [
                comm.trackers[r].alloc(
                    f"coarsest-copy-{r}", coarsest.nbytes, "initial"
                )
                for r in range(comm.size)
            ]
            comm.allgather([coarsest.nbytes for _ in range(comm.size)])
            sm_cfg = sm_config or terapart()
            best_part = None
            best_cut = None
            for r in range(comm.size):
                part = initial_partition(
                    coarsest,
                    k,
                    cfg.epsilon,
                    np.random.default_rng(cfg.seed * 1000 + r),
                    attempts=2,
                    fm_rounds=1,
                )
                from repro.core.partition import PartitionedGraph

                cut = PartitionedGraph(coarsest, k, part).cut_weight()
                if best_cut is None or cut < best_cut:
                    best_cut, best_part = cut, part
            comm.bcast(best_part)
            for r, aid in enumerate(copy_aids):
                comm.trackers[r].free(aid)

        # ---- uncoarsening ---- #
        partition = best_part.astype(np.int32)
        lmax = max_block_weight(total_weight, k, cfg.epsilon)
        stack = hierarchy[::-1]
        cur_graph = current
        rlevel = len(hierarchy)
        with tracer.phase("dist-refinement"):
            for dg, fine_to_coarse in stack:
                with tracer.phase(
                    f"dist-refinement-level{rlevel}", level=rlevel
                ):
                    bw = np.zeros(k, dtype=np.int64)
                    cvw = np.concatenate([s.vwgt for s in cur_graph.shards])
                    np.add.at(bw, partition, cvw)
                    distributed_lp_refine(
                        cur_graph,
                        partition,
                        bw,
                        k,
                        lmax,
                        cfg.refine_rounds,
                        cfg.batches,
                        tracer=tracer,
                        level=rlevel,
                    )
                    with tracer.span("dist-rebalance", level=rlevel):
                        _rebalance_distributed(
                            cur_graph, partition, bw, k, lmax
                        )
                cur_graph.free()
                partition = partition[fine_to_coarse]
                cur_graph = dg
                rlevel -= 1
            # top level refinement
            with tracer.phase("dist-refinement-level0", level=0):
                bw = np.zeros(k, dtype=np.int64)
                tvw = np.concatenate([s.vwgt for s in cur_graph.shards])
                np.add.at(bw, partition, tvw)
                distributed_lp_refine(
                    cur_graph,
                    partition,
                    bw,
                    k,
                    lmax,
                    cfg.refine_rounds,
                    cfg.batches,
                    tracer=tracer,
                    level=0,
                )
                with tracer.span("dist-rebalance", level=0):
                    _rebalance_distributed(cur_graph, partition, bw, k, lmax)

    cut = _graph_cut(cur_graph, partition)
    avg = total_weight / k
    imbalance = float(bw.max()) / avg - 1.0 if avg else 0.0
    wall = time.perf_counter() - t0
    peaks = comm.rank_peaks()
    oom = (
        cfg.rank_memory_budget is not None
        and max(peaks) > cfg.rank_memory_budget
    )
    modeled = _modeled_seconds(dgraph, comm, k)
    top.free()
    trace_obj = None
    obs_payload = None
    if tracer.enabled:
        tracer.finish()
        from repro.obs.dist.report import dist_obs_registry

        trace_obj = tracer
        obs_payload = dist_obs_registry(tracer)
    return DistPartitionResult(
        partition=partition,
        cut=cut,
        cut_fraction=cut / max(1, graph.total_edge_weight // 2),
        imbalance=imbalance,
        balanced=bool(bw.max() <= lmax),
        num_ranks=comm.size,
        max_rank_peak_bytes=max(peaks),
        rank_peak_bytes=peaks,
        comm=comm.stats,
        wall_seconds=wall,
        modeled_seconds=modeled,
        num_levels=len(hierarchy),
        oom=oom,
        trace=trace_obj,
        obs=obs_payload,
    )


def _rebalance_distributed(
    dgraph: DistributedGraph,
    partition: np.ndarray,
    block_weights: np.ndarray,
    k: int,
    lmax: int,
) -> int:
    """Greedy repair of balance violations (the paper's rebalancing step)."""
    vwgt = tracked_zeros(dgraph.n, np.int64, name="rebalance-vwgt")
    for shard in dgraph.shards:
        vwgt[shard.lo : shard.hi] = shard.vwgt
    moves = 0
    overloaded = [b for b in range(k) if block_weights[b] > lmax]
    dgraph.comm.allreduce(
        [block_weights.copy() for _ in range(dgraph.comm.size)], op="max"
    )
    for b in overloaded:
        members = np.flatnonzero(partition == b)
        order = np.argsort(vwgt[members], kind="stable")
        for u in members[order].tolist():
            if block_weights[b] <= lmax:
                break
            target = int(np.argmin(block_weights))
            if target == b:
                break
            w = int(vwgt[u])
            if block_weights[target] + w > lmax:
                continue
            block_weights[b] -= w
            block_weights[target] += w
            partition[u] = target
            moves += 1
    return moves


def _modeled_seconds(
    dgraph: DistributedGraph, comm: SimComm, k: int
) -> float:
    """Alpha-beta communication model + per-rank compute.

    64 cores per node (the paper's HoreKa setting), 25 GB/s network
    bandwidth per node, ~1 microsecond latency per superstep.
    """
    cores_per_node = 64
    work = 2 * dgraph.m * 8  # a few passes over the edges
    compute = work / (comm.size * cores_per_node * 50e6)
    bandwidth = comm.stats.bytes_sent / (comm.size * 25e9)
    latency = comm.stats.supersteps * 1e-6 * np.log2(max(2, comm.size))
    return compute + bandwidth + latency
