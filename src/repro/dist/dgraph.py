"""Distributed graph: contiguous vertex ranges + ghost vertices.

Following dKaMinPar (Section II-B): edges are assigned to the rank owning
the source vertex; a target vertex owned elsewhere is replicated as a
*ghost* (no outgoing edges), requiring extra memory for the ghost<->global
mappings.  With ``compressed=True`` each shard's neighborhoods are stored
with the Section III codec (gap + interval + VarInt), which is exactly what
turns dKaMinPar into xTeraPart.

The simulation keeps adjacency in global IDs; per-rank ledgers charge the
shard's storage (CSR or compressed) plus 16 bytes per ghost for the mapping,
reproducing the paper's 1.2-1.3x distributed overhead and the per-node OOM
behaviour of the uncompressed baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dist.comm import SimComm
from repro.graph.compressed import (
    CompressionConfig,
    CompressionStats,
    _decode_block,
    encode_neighborhood,
)
from repro.graph.varint import decode_varint
from repro.memory.scratch import tracked_full, tracked_ones, tracked_zeros


@dataclass
class Shard:
    """One rank's part of the graph.

    ``lo..hi`` is the owned global vertex range.  ``data``/``offsets`` hold
    the compressed neighborhoods when ``compressed``; otherwise
    ``adj``/``wgt`` hold raw arrays sliced by ``indptr``.
    """

    rank: int
    lo: int
    hi: int
    vwgt: np.ndarray
    ghosts: np.ndarray
    degrees: np.ndarray
    indptr: np.ndarray | None = None
    adj: np.ndarray | None = None
    wgt: np.ndarray | None = None
    data: bytes | None = None
    offsets: np.ndarray | None = None
    config: CompressionConfig | None = None
    weighted: bool = False
    stats: CompressionStats | None = None

    @property
    def n_local(self) -> int:
        return self.hi - self.lo

    @property
    def compressed(self) -> bool:
        return self.data is not None

    def neighbors_and_weights(self, lu: int) -> tuple[np.ndarray, np.ndarray]:
        """Adjacency of local vertex ``lu`` in *global* IDs."""
        if not self.compressed:
            a, b = self.indptr[lu], self.indptr[lu + 1]
            return self.adj[a:b], self.wgt[a:b]
        u_global = self.lo + lu
        deg = int(self.degrees[lu])
        if deg == 0:
            e = np.empty(0, dtype=np.int64)
            return e, e
        buf = self.data
        pos = int(self.offsets[lu])
        _, pos = decode_varint(buf, pos)  # skip first-edge-id header
        cfg = self.config
        if deg <= cfg.high_degree_threshold:
            nbrs, wgts, _ = _decode_block(u_global, buf, pos, deg, cfg, self.weighted)
        else:
            parts, wparts = [], []
            remaining = deg
            while remaining:
                cnt = min(cfg.chunk_length, remaining)
                blen, pos = decode_varint(buf, pos)
                nb, wb, end = _decode_block(u_global, buf, pos, cnt, cfg, self.weighted)
                pos = end
                parts.append(nb)
                if wb is not None:
                    wparts.append(wb)
                remaining -= cnt
            nbrs = np.concatenate(parts)
            wgts = np.concatenate(wparts) if wparts else None
        if wgts is None:
            wgts = tracked_ones(len(nbrs), np.int64, name="shard-unit-weights")
        return nbrs, wgts

    @property
    def storage_bytes(self) -> int:
        if self.compressed:
            return (
                len(self.data)
                + self.offsets.nbytes
                + self.degrees.nbytes
                + self.vwgt.nbytes
            )
        return (
            self.indptr.nbytes + self.adj.nbytes + self.wgt.nbytes + self.vwgt.nbytes
        )

    @property
    def ghost_bytes(self) -> int:
        # global<->local ghost mapping: ~16 bytes per ghost (hash map entry)
        return 16 * len(self.ghosts)


@dataclass
class DistributedGraph:
    """The full distributed graph: one shard per rank."""

    comm: SimComm
    ranges: np.ndarray  # size+1 global offsets
    shards: list[Shard]
    n: int
    m: int  # undirected edge count
    total_vertex_weight: int
    total_edge_weight: int
    shard_aids: list[int] = field(default_factory=list)

    def owner_of(self, v: int | np.ndarray):
        return np.searchsorted(self.ranges, v, side="right") - 1

    @property
    def num_ranks(self) -> int:
        return self.comm.size

    def free(self) -> None:
        for rank, aid in enumerate(self.shard_aids):
            self.comm.trackers[rank].free(aid)
        self.shard_aids.clear()


def _split_ranges(n: int, size: int) -> np.ndarray:
    base = n // size
    extra = n % size
    counts = tracked_full(size, base, np.int64, name="split-range-counts")
    counts[:extra] += 1
    ranges = tracked_zeros(size + 1, np.int64, name="split-ranges")
    np.cumsum(counts, out=ranges[1:])
    return ranges


def distribute_graph(
    graph,
    comm: SimComm,
    *,
    compressed: bool = False,
    ranges: np.ndarray | None = None,
) -> DistributedGraph:
    """Split a CSR graph into per-rank shards.

    Default ranges are contiguous and balanced by vertex count (KaGen
    style); distributed contraction passes explicit ranges so each coarse
    vertex lands on the rank that owns its cluster leader.
    """
    n = graph.n
    if ranges is None:
        ranges = _split_ranges(n, comm.size)
    else:
        ranges = np.ascontiguousarray(ranges, dtype=np.int64)
        if len(ranges) != comm.size + 1 or ranges[0] != 0 or ranges[-1] != n:
            raise ValueError("ranges must be a size+1 prefix array covering n")
    shards: list[Shard] = []
    aids: list[int] = []
    cfg = CompressionConfig()
    for rank in range(comm.size):
        lo, hi = int(ranges[rank]), int(ranges[rank + 1])
        a, b = int(graph.indptr[lo]), int(graph.indptr[hi])
        adj = graph.adjncy[a:b].copy()
        wgt = np.asarray(graph.adjwgt)[a:b].copy()
        indptr = (graph.indptr[lo : hi + 1] - a).copy()
        vwgt = np.asarray(graph.vwgt)[lo:hi].copy()
        ghosts = np.unique(adj[(adj < lo) | (adj >= hi)])
        degrees = np.diff(indptr)
        if compressed:
            stats = CompressionStats()
            out = bytearray()
            offsets = np.empty(hi - lo + 1, dtype=np.int64)
            for lu in range(hi - lo):
                offsets[lu] = len(out)
                s, e = indptr[lu], indptr[lu + 1]
                nbrs = adj[s:e]
                ws = wgt[s:e]
                order = np.argsort(nbrs, kind="stable")
                weighted = graph.has_edge_weights
                encode_neighborhood(
                    lo + lu,
                    nbrs[order],
                    ws[order] if weighted else None,
                    int(a + s),
                    out,
                    cfg,
                    stats,
                )
            offsets[hi - lo] = len(out)
            shard = Shard(
                rank,
                lo,
                hi,
                vwgt,
                ghosts,
                degrees,
                data=bytes(out),
                offsets=offsets,
                config=cfg,
                weighted=graph.has_edge_weights,
                stats=stats,
            )
        else:
            shard = Shard(
                rank, lo, hi, vwgt, ghosts, degrees, indptr=indptr, adj=adj, wgt=wgt
            )
        aid = comm.trackers[rank].alloc(
            f"shard-{rank}", shard.storage_bytes + shard.ghost_bytes, "graph"
        )
        shards.append(shard)
        aids.append(aid)
    return DistributedGraph(
        comm=comm,
        ranges=ranges,
        shards=shards,
        n=n,
        m=graph.m,
        total_vertex_weight=graph.total_vertex_weight,
        total_edge_weight=graph.total_edge_weight,
        shard_aids=aids,
    )
