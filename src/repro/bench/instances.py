"""Benchmark instance sets: scaled stand-ins for the paper's inputs.

* **Set A** (the paper: 72 graphs, 5.4M-1.8G edges, from SuiteSparse /
  Network Repository / Pizza&Chili / KaGen): one stand-in per structural
  family at sizes a pure-Python partitioner handles in seconds.  Families
  and their roles: FEM meshes (high compression, easy cuts), k-mer graphs
  (no ID locality, compression ratio ~1), social networks (skewed degrees),
  web crawls (runs of consecutive IDs), text-compression graphs (weighted),
  and KaGen rgg2D/rhg.
* **Set B** (the paper: gsh-2015, clueweb12, uk-2014, eu-2015, hyperlink):
  weblike stand-ins whose relative sizes and average degrees mirror
  Table I (d between 51 and 150; hyperlink largest with mid-range degree).
* **Table IV graphs** (arabic-2005, uk-2002, sk-2005, uk-2007): smaller
  weblike stand-ins.

Instances are generated on demand and cached per process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.graph import generators as gen


@dataclass(frozen=True)
class Instance:
    """A named graph recipe (generator family + parameters)."""

    name: str
    family: str
    params: tuple = field(default_factory=tuple)

    def make(self):
        maker = _MAKERS[self.family]
        return maker(*self.params)


_MAKERS = {
    "grid2d": lambda r, c: gen.grid2d(r, c),
    "grid3d": lambda a, b, c: gen.grid3d(a, b, c),
    "torus": lambda r, c: gen.grid2d(r, c, torus=True),
    "rgg2d": lambda n, d, s: gen.rgg2d(n, d, seed=s),
    "rhg": lambda n, d, g, s: gen.rhg(n, d, gamma=g, seed=s),
    "weblike": lambda n, d, s: gen.weblike(n, d, seed=s),
    "kmer": lambda n, d, s: gen.kmer(n, d, seed=s),
    "ba": lambda n, m, s: gen.ba(n, m, seed=s),
    "er": lambda n, d, s: gen.er(n, d, seed=s),
    "textlike": lambda n, s: gen.textlike(n, seed=s),
}


# Set A: one or two instances per family (scaled from the paper's 72)
SET_A: tuple[Instance, ...] = (
    Instance("fem-grid", "grid2d", (50, 50)),
    Instance("fem-cube", "grid3d", (14, 14, 14)),
    Instance("fem-torus", "torus", (45, 45)),
    Instance("rgg2d-small", "rgg2d", (2000, 8.0, 11)),
    Instance("rgg2d-large", "rgg2d", (4500, 12.0, 12)),
    Instance("rhg-small", "rhg", (2000, 8.0, 3.0, 13)),
    Instance("rhg-large", "rhg", (4500, 12.0, 2.6, 14)),
    Instance("web-small", "weblike", (2000, 14.0, 15)),
    Instance("web-large", "weblike", (4500, 18.0, 16)),
    Instance("kmer-A2a", "kmer", (3000, 4, 17)),
    Instance("kmer-V1r", "kmer", (5000, 4, 18)),
    Instance("social-ba", "ba", (2500, 5, 19)),
    Instance("er-mid", "er", (2500, 8.0, 20)),
    Instance("text-sources", "textlike", (2500, 21)),
    Instance("text-dna", "textlike", (4000, 22)),
)

# Set B: web-crawl stand-ins; relative n and average degree follow Table I
SET_B: tuple[Instance, ...] = (
    Instance("gsh-2015*", "weblike", (5000, 12.0, 31)),
    Instance("clueweb12*", "weblike", (5000, 17.0, 32)),
    Instance("uk-2014*", "weblike", (4200, 24.0, 33)),
    Instance("eu-2015*", "weblike", (5500, 32.0, 34)),
    Instance("hyperlink*", "weblike", (10000, 15.0, 35)),
)

# Table IV graphs (SEM comparison)
SEM_GRAPHS: tuple[Instance, ...] = (
    Instance("arabic-2005*", "weblike", (3500, 18.0, 41)),
    Instance("uk-2002*", "weblike", (3000, 14.0, 42)),
    Instance("sk-2005*", "weblike", (4500, 26.0, 43)),
    Instance("uk-2007*", "weblike", (5500, 20.0, 44)),
)

# webbase2001 stand-in for the Figure 2 phase breakdown
WEBBASE: Instance = Instance("webbase2001*", "weblike", (7000, 12.0, 51))

# smoke matrix for the CI perf gate (`repro bench record --suite smoke`):
# one mesh + one skewed-degree instance, small enough for seconds per run
SMOKE_SET: tuple[Instance, ...] = (
    Instance("fem-grid", "grid2d", (50, 50)),
    Instance("web-small", "weblike", (2000, 14.0, 15)),
)

SUITES: dict[str, tuple[Instance, ...]] = {
    "smoke": SMOKE_SET,
    "set-a": SET_A,
    "set-b": SET_B,
}


@lru_cache(maxsize=64)
def load_instance(name: str):
    """Build (and cache) the graph for a named instance."""
    for inst in (*SET_A, *SET_B, *SEM_GRAPHS, WEBBASE):
        if inst.name == name:
            return inst.make()
    raise KeyError(f"unknown instance {name!r}")


def set_a_instances() -> tuple[Instance, ...]:
    return SET_A


def set_b_instances() -> tuple[Instance, ...]:
    return SET_B
