"""Run-matrix execution and the paper's aggregation rules.

Methodology (Section VI): an *instance* is a (graph, k) pair; metrics are
averaged over seeds with the arithmetic mean per instance, then aggregated
across instances with the geometric mean (memory, time, cut) or harmonic
mean (relative speedups).
"""

from __future__ import annotations

import math
import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

import numpy as np

import repro
from repro.bench.instances import Instance, load_instance
from repro.core.config import PartitionerConfig


@dataclass
class RunRecord:
    """One (algorithm, instance, k, seed) measurement."""

    algorithm: str
    instance: str
    k: int
    seed: int
    cut: int
    balanced: bool
    imbalance: float
    wall_seconds: float
    modeled_seconds: float
    peak_bytes: int
    extra: dict = field(default_factory=dict)


def geometric_mean(values: Iterable[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def harmonic_mean(values: Iterable[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return len(vals) / sum(1.0 / v for v in vals)


def run_partitioner(
    config: PartitionerConfig,
    instance: Instance,
    k: int,
    seed: int,
) -> RunRecord:
    """Run the core partitioner once and record every reported metric.

    When the config enables observability (``config.obs.enabled``) the run's
    metrics-registry snapshot rides along in ``extra["obs"]`` -- figure
    scripts consume the per-phase memory waterfall and counters from there
    instead of re-measuring.
    """
    graph = load_instance(instance.name)
    result = repro.partition(graph, k, config.with_(seed=seed))
    extra: dict = {"num_levels": result.num_levels}
    if result.obs is not None:
        extra["obs"] = result.obs
    return RunRecord(
        algorithm=config.name,
        instance=instance.name,
        k=k,
        seed=seed,
        cut=result.cut,
        balanced=result.balanced,
        imbalance=result.imbalance,
        wall_seconds=result.wall_seconds,
        modeled_seconds=result.modeled_seconds,
        peak_bytes=result.peak_bytes,
        extra=extra,
    )


def run_matrix(
    configs: Iterable[PartitionerConfig],
    instances: Iterable[Instance],
    ks: Iterable[int],
    seeds: Iterable[int],
    *,
    runner: Callable[[PartitionerConfig, Instance, int, int], RunRecord] | None = None,
    progress: bool = False,
) -> list[RunRecord]:
    """The full cross product of configurations x instances x k x seeds."""
    runner = runner or run_partitioner
    records: list[RunRecord] = []
    configs = list(configs)
    instances = list(instances)
    ks = list(ks)
    seeds = list(seeds)
    total = len(configs) * len(instances) * len(ks) * len(seeds)
    done = 0
    t0 = time.perf_counter()
    for cfg in configs:
        for inst in instances:
            for k in ks:
                for seed in seeds:
                    records.append(runner(cfg, inst, k, seed))
                    done += 1
                    if progress and done % 10 == 0:
                        elapsed = time.perf_counter() - t0
                        print(
                            f"  [{done}/{total}] {elapsed:6.1f}s", flush=True
                        )
    return records


def aggregate(
    records: list[RunRecord], metric: str = "cut"
) -> dict[tuple[str, str, int], float]:
    """Arithmetic mean per (algorithm, instance, k) over seeds."""
    groups: dict[tuple[str, str, int], list[float]] = {}
    for r in records:
        key = (r.algorithm, r.instance, r.k)
        groups.setdefault(key, []).append(float(getattr(r, metric)))
    return {k: float(np.mean(v)) for k, v in groups.items()}


def relative_to(
    agg: dict[tuple[str, str, int], float], baseline: str
) -> dict[str, float]:
    """Geometric-mean ratio of each algorithm to the baseline, paired per
    instance (the paper's relative running time / memory plots)."""
    algorithms = sorted({k[0] for k in agg})
    out: dict[str, float] = {}
    for alg in algorithms:
        ratios = []
        for (a, inst, k), v in agg.items():
            if a != alg:
                continue
            base = agg.get((baseline, inst, k))
            if base and base > 0 and v > 0:
                ratios.append(v / base)
        out[alg] = geometric_mean(ratios) if ratios else float("nan")
    return out
