"""Run-matrix execution and the paper's aggregation rules.

Methodology (Section VI): an *instance* is a (graph, k) pair; metrics are
averaged over seeds with the arithmetic mean per instance, then aggregated
across instances with the geometric mean (memory, time, cut) or harmonic
mean (relative speedups).
"""

from __future__ import annotations

import math
import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

import numpy as np

import repro
from repro.bench.instances import Instance, load_instance
from repro.core.config import PartitionerConfig


@dataclass
class RunRecord:
    """One (algorithm, instance, k, seed) measurement."""

    algorithm: str
    instance: str
    k: int
    seed: int
    cut: int
    balanced: bool
    imbalance: float
    wall_seconds: float
    modeled_seconds: float
    peak_bytes: int
    extra: dict = field(default_factory=dict)


class AggregateStat(float):
    """A mean that remembers its provenance.

    Both aggregation rules below are undefined for non-positive values and
    must drop them — but a dropped value (say a legal ``cut == 0``) silently
    biasing the aggregate is exactly the kind of thing the regression
    observatory exists to catch.  The result therefore carries ``used`` and
    ``dropped`` counts; reports surface them next to the number.
    """

    used: int
    dropped: int

    def __new__(cls, value: float, used: int = 0, dropped: int = 0):
        self = super().__new__(cls, value)
        self.used = used
        self.dropped = dropped
        return self

    def annotate(self) -> str:
        """``"12.3 (2 non-positive dropped)"`` — for report footnotes."""
        base = f"{float(self):.6g}"
        if self.dropped:
            return f"{base} ({self.dropped} non-positive dropped)"
        return base


def geometric_mean(values: Iterable[float]) -> AggregateStat:
    vals = [v for v in values]
    pos = [v for v in vals if v > 0]
    dropped = len(vals) - len(pos)
    if not pos:
        return AggregateStat(0.0, 0, dropped)
    mean = math.exp(sum(math.log(v) for v in pos) / len(pos))
    return AggregateStat(mean, len(pos), dropped)


def harmonic_mean(values: Iterable[float]) -> AggregateStat:
    vals = [v for v in values]
    pos = [v for v in vals if v > 0]
    dropped = len(vals) - len(pos)
    if not pos:
        return AggregateStat(0.0, 0, dropped)
    mean = len(pos) / sum(1.0 / v for v in pos)
    return AggregateStat(mean, len(pos), dropped)


def run_partitioner(
    config: PartitionerConfig,
    instance: Instance,
    k: int,
    seed: int,
) -> RunRecord:
    """Run the core partitioner once and record every reported metric.

    When the config enables observability (``config.obs.enabled``) the run's
    metrics-registry snapshot rides along in ``extra["obs"]`` -- figure
    scripts consume the per-phase memory waterfall and counters from there
    instead of re-measuring.
    """
    graph = load_instance(instance.name)
    result = repro.partition(graph, k, config.with_(seed=seed))
    extra: dict = {"num_levels": result.num_levels}
    if result.obs is not None:
        extra["obs"] = result.obs
    return RunRecord(
        algorithm=config.name,
        instance=instance.name,
        k=k,
        seed=seed,
        cut=result.cut,
        balanced=result.balanced,
        imbalance=result.imbalance,
        wall_seconds=result.wall_seconds,
        modeled_seconds=result.modeled_seconds,
        peak_bytes=result.peak_bytes,
        extra=extra,
    )


def run_matrix(
    configs: Iterable[PartitionerConfig],
    instances: Iterable[Instance],
    ks: Iterable[int],
    seeds: Iterable[int],
    *,
    runner: Callable[[PartitionerConfig, Instance, int, int], RunRecord] | None = None,
    progress: bool = False,
    rundb=None,
    record_bench: str = "matrix",
    record_label: str | None = None,
) -> list[RunRecord]:
    """The full cross product of configurations x instances x k x seeds.

    Every record is appended to the regression observatory's run database:
    either the ``rundb`` passed explicitly (a
    :class:`~repro.obs.regress.rundb.RunDB`), or — when ``rundb`` is None —
    the ``$REPRO_RUNDB`` default the bench suite's conftest points at the
    repo-root ``BENCH_runs.jsonl``.  Pass ``rundb=False`` to disable
    persistence outright.
    """
    from repro.obs.regress.rundb import default_rundb, environment_stamp, make_record

    runner = runner or run_partitioner
    if rundb is None:
        rundb = default_rundb()
    elif rundb is False:
        rundb = None
    env = environment_stamp() if rundb is not None else None
    records: list[RunRecord] = []
    configs = list(configs)
    instances = list(instances)
    ks = list(ks)
    seeds = list(seeds)
    total = len(configs) * len(instances) * len(ks) * len(seeds)
    done = 0
    t0 = time.perf_counter()
    for cfg in configs:
        for inst in instances:
            for k in ks:
                for seed in seeds:
                    rec = runner(cfg, inst, k, seed)
                    records.append(rec)
                    if rundb is not None:
                        rundb.append(
                            make_record(
                                rec,
                                bench=record_bench,
                                label=record_label,
                                config=cfg,
                                env=env,
                            )
                        )
                    done += 1
                    if progress and done % 10 == 0 and done < total:
                        elapsed = time.perf_counter() - t0
                        print(
                            f"  [{done}/{total}] {elapsed:6.1f}s", flush=True
                        )
    if progress:
        elapsed = time.perf_counter() - t0
        rate = f", {elapsed / done:.2f}s/run" if done else ""
        print(f"  [{done}/{total}] done in {elapsed:.1f}s{rate}", flush=True)
    return records


def aggregate(
    records: list[RunRecord], metric: str = "cut"
) -> dict[tuple[str, str, int], float]:
    """Arithmetic mean per (algorithm, instance, k) over seeds."""
    groups: dict[tuple[str, str, int], list[float]] = {}
    for r in records:
        key = (r.algorithm, r.instance, r.k)
        groups.setdefault(key, []).append(float(getattr(r, metric)))
    return {k: float(np.mean(v)) for k, v in groups.items()}


def relative_to(
    agg: dict[tuple[str, str, int], float], baseline: str
) -> dict[str, float]:
    """Geometric-mean ratio of each algorithm to the baseline, paired per
    instance (the paper's relative running time / memory plots)."""
    algorithms = sorted({k[0] for k in agg})
    out: dict[str, float] = {}
    for alg in algorithms:
        ratios = []
        for (a, inst, k), v in agg.items():
            if a != alg:
                continue
            base = agg.get((baseline, inst, k))
            if base and base > 0 and v > 0:
                ratios.append(v / base)
        out[alg] = geometric_mean(ratios) if ratios else float("nan")
    return out
