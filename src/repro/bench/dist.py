"""Distributed partitioner benchmark: the cluster-observability gate input.

For every (instance, ranks, mode, k, seed) cell this module runs
:func:`~repro.dist.dpartitioner.dpartition` with the
:class:`~repro.obs.dist.cluster.ClusterObserver` enabled and folds the
result plus its memory-ratio report into a ``dist``-kind run-DB record.
The gated metrics (:data:`~repro.obs.regress.rundb.DIST_METRICS`) carry
the paper's distributed claims:

* ``max_rank_peak_bytes`` / ``memory_ratio`` — no rank's ledger peak may
  drift away from the fair share (Section V's per-node memory budget),
* ``comm_raw_bytes`` / ``comm_varint_bytes`` — communication volume, raw
  and under the Section III varint codec (xTeraPart mode must keep the
  compressed volume strictly below raw).

Both simulated systems run: ``dkaminpar-rN`` (uncompressed shards) and
``xterapart-rN`` (compressed), so compare reports show the memory/traffic
trade side by side.  With ``artifacts_dir`` set, each cell also writes its
merged Chrome trace and memory-ratio report JSON for offline inspection.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.bench.instances import SMOKE_SET, Instance
from repro.obs.regress.rundb import make_dist_record

#: default dist bench matrix: smoke instances, two rank counts, one k/seed
DEFAULT_RANKS = (2, 4)
DEFAULT_K = (8,)
DEFAULT_SEEDS = (0,)
#: (algorithm-name prefix, compressed flag) pairs benchmarked per cell
DEFAULT_MODES = (("dkaminpar", False), ("xterapart", True))


def bench_one(
    instance: Instance,
    ranks: int,
    k: int,
    *,
    compressed: bool,
    seed: int = 0,
    config=None,
    artifacts_dir: str | Path | None = None,
    artifact_stem: str | None = None,
) -> tuple[dict, dict]:
    """Run one dist cell; returns ``(run_metrics, obs_registry)``.

    ``run_metrics`` is the flat ``run``-section dict of a ``dist`` record;
    ``obs_registry`` is the compact registry snapshot (memory-ratio report
    + cluster roll-up) stored under the record's ``obs`` key.
    """
    import dataclasses

    from repro.core.config import DistObsConfig
    from repro.dist.dpartitioner import DistConfig, dpartition
    from repro.obs.dist import render_memory_ratio, write_cluster_trace

    cfg = config or DistConfig()
    cfg = dataclasses.replace(
        cfg, seed=seed, obs=DistObsConfig(enabled=True)
    )
    graph = instance.make()
    result = dpartition(graph, k, ranks, compressed=compressed, config=cfg)
    obs = result.obs or {}
    report = obs.get("report", {})
    comm = report.get("comm", {})
    run = {
        "cut": int(result.cut),
        "balanced": bool(result.balanced),
        "imbalance": float(result.imbalance),
        "wall_seconds": float(result.wall_seconds),
        "modeled_seconds": float(result.modeled_seconds),
        "ranks": int(result.num_ranks),
        "num_levels": int(result.num_levels),
        "compressed": bool(compressed),
        "max_rank_peak_bytes": int(result.max_rank_peak_bytes),
        "mean_rank_peak_bytes": float(
            report.get("mean_rank_peak_bytes", 0.0)
        ),
        "memory_ratio": float(report.get("memory_ratio", 0.0)),
        "ghost_fraction": float(report.get("ghost_fraction", 0.0)),
        "comm_raw_bytes": int(comm.get("raw_bytes", 0)),
        "comm_varint_bytes": int(comm.get("varint_bytes", 0)),
        "comm_messages": int(comm.get("messages", 0)),
        "supersteps": int(comm.get("supersteps", 0)),
        "compression_ratio": float(comm.get("compression_ratio", 1.0)),
    }
    if artifacts_dir is not None and result.trace is not None:
        out = Path(artifacts_dir)
        out.mkdir(parents=True, exist_ok=True)
        stem = artifact_stem or (
            f"{instance.name}-r{ranks}-"
            f"{'xterapart' if compressed else 'dkaminpar'}-k{k}-s{seed}"
        )
        write_cluster_trace(out / f"{stem}.trace.json", result.trace)
        with open(out / f"{stem}.memratio.json", "w") as f:
            json.dump(report, f, indent=1)
            f.write("\n")
        (out / f"{stem}.memratio.txt").write_text(
            render_memory_ratio(report) + "\n"
        )
    return run, obs


def run_dist_bench(
    instances: tuple[Instance, ...] = SMOKE_SET,
    rank_counts: tuple[int, ...] = DEFAULT_RANKS,
    k_values: tuple[int, ...] = DEFAULT_K,
    seeds: tuple[int, ...] = DEFAULT_SEEDS,
    *,
    modes: tuple[tuple[str, bool], ...] = DEFAULT_MODES,
    config=None,
    rundb=None,
    bench: str = "dist-smoke",
    label: str | None = None,
    artifacts_dir: str | Path | None = None,
    progress: bool = False,
) -> list[dict]:
    """Run the dist matrix; returns (and optionally appends) the
    ``dist``-kind run-DB records."""
    records = []
    for instance in instances:
        for ranks in rank_counts:
            for name, compressed in modes:
                for k in k_values:
                    for seed in seeds:
                        t0 = time.perf_counter()
                        run, obs = bench_one(
                            instance,
                            ranks,
                            k,
                            compressed=compressed,
                            seed=seed,
                            config=config,
                            artifacts_dir=artifacts_dir,
                        )
                        rec = make_dist_record(
                            bench,
                            algorithm=f"{name}-r{ranks}",
                            instance=instance.name,
                            k=k,
                            seed=seed,
                            metrics=run,
                            label=label,
                            obs=obs,
                        )
                        if rundb is not None:
                            rec = rundb.append(rec)
                        records.append(rec)
                        if progress:
                            print(
                                f"  dist {instance.name} r={ranks} "
                                f"{name} k={k} seed={seed}: "
                                f"cut={run['cut']} "
                                f"ratio={run['memory_ratio']:.3f} "
                                f"comm={run['comm_raw_bytes']}B"
                                f"->{run['comm_varint_bytes']}B "
                                f"in {time.perf_counter() - t0:.2f}s"
                            )
    return records
