"""ASCII table / series renderers for the benchmark harness."""

from __future__ import annotations

from collections.abc import Sequence


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.01:
            return f"{v:.3g}"
        return f"{v:.2f}"
    return str(v)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
) -> str:
    """Render rows as a fixed-width ASCII table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for r in cells:
        out.append(" | ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(out)


def fmt_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024 or unit == "TiB":
            return f"{n:.2f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024
    raise AssertionError


def render_series(name: str, xs: Sequence, ys: Sequence[float], unit: str = "") -> str:
    """One-line x->y series (for figure-shaped outputs)."""
    pairs = ", ".join(f"{x}: {_fmt(y)}{unit}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def render_waterfall(steps: Sequence[tuple[str, float]], unit="KiB") -> str:
    """Figure-1-style memory waterfall with bars scaled to the maximum."""
    if not steps:
        return "(empty)"
    peak = max(v for _, v in steps)
    lines = []
    for name, v in steps:
        bar = "#" * max(1, int(40 * v / peak))
        lines.append(f"{name:<28}{v:>12.1f} {unit}  {bar}")
    return "\n".join(lines)
