"""Benchmark harness: instance sets, run matrix, aggregation, reporting.

Every table and figure in the paper's evaluation section has a bench target
under ``benchmarks/`` built from these pieces (see DESIGN.md section 4 for
the full index and EXPERIMENTS.md for paper-vs-measured records).
"""

from repro.bench.instances import (
    SET_A,
    SET_B,
    Instance,
    load_instance,
    set_a_instances,
    set_b_instances,
)
from repro.bench.harness import (
    AggregateStat,
    RunRecord,
    aggregate,
    geometric_mean,
    harmonic_mean,
    run_matrix,
)
from repro.bench.instances import SMOKE_SET
from repro.bench.profiles import performance_profile
from repro.bench.reporting import render_table

__all__ = [
    "SET_A",
    "SET_B",
    "SMOKE_SET",
    "Instance",
    "load_instance",
    "set_a_instances",
    "set_b_instances",
    "AggregateStat",
    "RunRecord",
    "aggregate",
    "geometric_mean",
    "harmonic_mean",
    "run_matrix",
    "performance_profile",
    "render_table",
]
