"""Performance profiles (Dolan-Moré [31]) as used for the quality plots.

For each algorithm ``A`` and threshold ``tau``, the profile value is the
fraction of instances whose cut is within ``tau`` times the best cut any
algorithm achieved on that instance.  ``tau = 1`` gives the fraction of
instances where the algorithm is (tied-)best; the curve's approach to 1.0
measures robustness (Section VI, Methodology).
"""

from __future__ import annotations

import numpy as np


def performance_profile(
    cuts: dict[str, dict[str, float]],
    taus: np.ndarray | None = None,
) -> tuple[np.ndarray, dict[str, np.ndarray]]:
    """Compute profiles from ``cuts[algorithm][instance]``.

    Returns ``(taus, {algorithm: fraction_at_tau})``.  Instances missing
    for an algorithm (failed runs) count as never-within-tau, matching how
    the paper treats Mt-Metis' failures.
    """
    algorithms = sorted(cuts)
    instances = sorted({i for per in cuts.values() for i in per})
    if taus is None:
        taus = np.linspace(1.0, 2.0, 101)
    best: dict[str, float] = {}
    for inst in instances:
        vals = [
            cuts[a][inst]
            for a in algorithms
            if inst in cuts[a] and cuts[a][inst] >= 0
        ]
        best[inst] = min(vals) if vals else float("inf")
    profiles: dict[str, np.ndarray] = {}
    for a in algorithms:
        fracs = np.zeros(len(taus))
        for inst in instances:
            if inst not in cuts[a] or cuts[a][inst] < 0:
                continue
            b = best[inst]
            ratio = 1.0 if b == 0 else (
                float("inf") if b == float("inf") else cuts[a][inst] / b
            )
            if cuts[a][inst] == 0 and b == 0:
                ratio = 1.0
            fracs += (taus >= ratio - 1e-12).astype(float)
        profiles[a] = fracs / max(1, len(instances))
    return taus, profiles


def profile_summary(
    taus: np.ndarray, profiles: dict[str, np.ndarray]
) -> dict[str, dict[str, float]]:
    """Headline numbers per algorithm: fraction best (tau=1), fraction
    within 5% / 50%, and the area under the profile (higher = better)."""
    out = {}
    for a, fr in profiles.items():
        out[a] = {
            "best": float(fr[0]),
            "within_1.05": float(fr[np.searchsorted(taus, 1.05)]),
            "within_1.5": float(fr[np.searchsorted(taus, 1.5)]),
            "auc": float(np.trapezoid(fr, taus) / (taus[-1] - taus[0])),
        }
    return out


def render_profile(
    taus: np.ndarray,
    profiles: dict[str, np.ndarray],
    *,
    width: int = 60,
    points: tuple[float, ...] = (1.0, 1.01, 1.05, 1.1, 1.25, 1.5, 2.0),
) -> str:
    """ASCII rendering: one row per algorithm, profile values at key taus."""
    lines = ["tau:        " + "".join(f"{t:>8.2f}" for t in points)]
    for a in sorted(profiles):
        vals = [
            profiles[a][min(len(taus) - 1, int(np.searchsorted(taus, t)))]
            for t in points
        ]
        lines.append(f"{a:<12}" + "".join(f"{v:>8.2f}" for v in vals))
    return "\n".join(lines)
