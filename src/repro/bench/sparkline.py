"""ASCII chart rendering for figure-shaped benchmark outputs.

The paper's evaluation is figures; the bench harness reports ASCII tables.
This module closes the gap with terminal-friendly plots: unicode
sparklines for single series, block-character bar charts, and a multi-line
XY plot used for speedup curves and performance profiles.

Pure presentation code -- no benchmark imports this at run time; it is part
of the reporting toolkit (`repro.bench`) for interactive exploration of
the result files.
"""

from __future__ import annotations

from collections.abc import Sequence

_TICKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """Render a numeric series as a one-line unicode sparkline."""
    vals = [float(v) for v in values]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi == lo:
        return _TICKS[0] * len(vals)
    span = hi - lo
    out = []
    for v in vals:
        idx = int((v - lo) / span * (len(_TICKS) - 1))
        out.append(_TICKS[idx])
    return "".join(out)


def bar_chart(
    items: Sequence[tuple[str, float]],
    *,
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal bar chart with labels and values."""
    if not items:
        return "(empty)"
    peak = max(v for _, v in items)
    label_w = max(len(name) for name, _ in items)
    lines = []
    for name, v in items:
        bar = "█" * max(1 if v > 0 else 0, int(width * v / peak) if peak else 0)
        lines.append(f"{name:<{label_w}}  {v:>10.2f}{unit}  {bar}")
    return "\n".join(lines)


def xy_plot(
    series: dict[str, tuple[Sequence[float], Sequence[float]]],
    *,
    width: int = 60,
    height: int = 12,
) -> str:
    """Multi-series XY scatter/line plot in a character grid.

    Each series is ``name -> (xs, ys)``; the first letter of the name marks
    its points.  Axes are annotated with min/max.  Good enough to eyeball a
    speedup curve or a performance profile in a terminal.
    """
    pts = [
        (float(x), float(y), name[0] if name else "*")
        for name, (xs, ys) in series.items()
        for x, y in zip(xs, ys)
    ]
    if not pts:
        return "(empty)"
    xlo = min(p[0] for p in pts)
    xhi = max(p[0] for p in pts)
    ylo = min(p[1] for p in pts)
    yhi = max(p[1] for p in pts)
    xspan = (xhi - xlo) or 1.0
    yspan = (yhi - ylo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y, mark in pts:
        col = int((x - xlo) / xspan * (width - 1))
        row = height - 1 - int((y - ylo) / yspan * (height - 1))
        grid[row][col] = mark
    lines = []
    for i, row in enumerate(grid):
        label = f"{yhi:8.2f} |" if i == 0 else (
            f"{ylo:8.2f} |" if i == height - 1 else " " * 9 + "|"
        )
        lines.append(label + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(
        " " * 10 + f"{xlo:<10.2f}" + " " * max(0, width - 20) + f"{xhi:>10.2f}"
    )
    legend = "  ".join(f"{name[0]}={name}" for name in series)
    lines.append(" " * 10 + legend)
    return "\n".join(lines)
