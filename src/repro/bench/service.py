"""Replayed-trace service benchmark: the serving-layer perf gate input.

For every (instance, k, seed) cell this module spins up an in-process
:class:`~repro.serve.service.ServiceHandle`, replays the canonical
:func:`~repro.serve.trace.make_trace` workload (cold request, concurrent
burst, delta batches with warm-started re-requests), and folds the
replay's :class:`TraceReport` into a ``service``-kind run-DB record.

Two derived metrics carry the acceptance claims:

* ``warm_over_full``  — mean warm-run compute time / mean full-run
  compute time.  The ">= 3x faster warm starts" claim is this < 1/3.
* ``cut_overhead``    — warm cut / from-scratch cut on the *final*
  drifted graph (a fresh full multilevel run outside the service).
  The "within 5% quality" claim is this <= 1.05.

Both are lower-is-better and sit in
:data:`~repro.obs.regress.rundb.SERVICE_METRICS`, so
``repro bench compare --kinds service`` gates them exactly like cut and
wall for partition records.
"""

from __future__ import annotations

import time

from repro.bench.instances import SMOKE_SET, Instance
from repro.core import config as C
from repro.core.config import ServeConfig
from repro.memory.tracker import MemoryTracker
from repro.obs.regress.rundb import make_service_record

#: default service bench matrix: the smoke instances at one modest k
DEFAULT_K = (8,)
DEFAULT_SEEDS = (0,)


def _scratch_cut(graph, k: int, config, seed: int) -> int:
    """Full multilevel cut on a graph, outside the service (the quality
    reference the warm-start cut is compared against)."""
    from repro.core.partitioner import partition

    return int(partition(graph, k, config.with_(seed=seed)).cut)


def bench_one(
    instance: Instance,
    k: int,
    *,
    seed: int = 0,
    config=None,
    serve_config: ServeConfig | None = None,
    trace_kwargs: dict | None = None,
) -> dict:
    """Replay one trace cell; returns the flat ``run``-section metric dict
    plus the counter-only obs registry under ``"_obs"``."""
    from repro.serve import ServiceHandle, make_trace, replay

    config = (config or C.terapart()).with_(seed=seed)
    serve_config = serve_config or ServeConfig()
    graph = instance.make()
    tracker = MemoryTracker()
    kwargs = dict(trace_kwargs or {})
    with ServiceHandle(config, serve_config, tracker=tracker) as handle:
        handle.register_graph(instance.name, graph)
        trace = make_trace(instance.name, graph, k, seed=seed, **kwargs)
        report = replay(handle, trace)
        # quality reference: a fresh full run on the drifted final graph
        final_graph = handle.service._entries[instance.name].graph
        obs = handle.metrics_registry(
            meta={"instance": instance.name, "k": k, "seed": seed}
        ).to_dict()
    run = report.to_run_dict()
    scratch = _scratch_cut(final_graph, k, config, seed)
    warm_cut = report.cuts.get("warm", report.cuts.get("full", 0))
    run["warm_cut"] = int(warm_cut)
    run["scratch_cut"] = int(scratch)
    # lower-is-better gate metric; 1.0 = warm quality matches from-scratch
    run["cut_overhead"] = warm_cut / scratch if scratch > 0 else 1.0
    run["_obs"] = obs
    return run


def run_service_bench(
    instances: tuple[Instance, ...] = SMOKE_SET,
    k_values: tuple[int, ...] = DEFAULT_K,
    seeds: tuple[int, ...] = DEFAULT_SEEDS,
    *,
    config=None,
    serve_config: ServeConfig | None = None,
    trace_kwargs: dict | None = None,
    rundb=None,
    bench: str = "service-smoke",
    label: str | None = None,
    progress: bool = False,
) -> list[dict]:
    """Replay the trace matrix; returns (and optionally appends) the
    ``service``-kind run-DB records."""
    config = config or C.terapart()
    records = []
    for instance in instances:
        for k in k_values:
            for seed in seeds:
                t0 = time.perf_counter()
                run = bench_one(
                    instance,
                    k,
                    seed=seed,
                    config=config,
                    serve_config=serve_config,
                    trace_kwargs=trace_kwargs,
                )
                obs = run.pop("_obs", None)
                rec = make_service_record(
                    bench,
                    algorithm=f"serve-{config.name}",
                    instance=instance.name,
                    k=k,
                    seed=seed,
                    metrics=run,
                    label=label,
                    config=config,
                    obs=obs,
                )
                if rundb is not None:
                    rec = rundb.append(rec)
                records.append(rec)
                if progress:
                    print(
                        f"  service {instance.name} k={k} seed={seed}: "
                        f"{run['requests']} reqs in "
                        f"{time.perf_counter() - t0:.2f}s  "
                        f"warm/full={run['warm_over_full']:.3f}  "
                        f"cut_overhead={run['cut_overhead']:.3f}  "
                        f"hit_rate={run['cache_hit_rate']:.2f}"
                    )
    return records
