"""Verification subsystem: schedule fuzzing, conflict detection, invariants.

Three layers, built on the simulated runtime's pluggable schedule policies
(:data:`repro.parallel.runtime.SCHEDULE_POLICIES`):

* :mod:`repro.verify.conflicts` -- a ThreadSanitizer-style dynamic conflict
  detector over declared shared-array and atomic accesses;
* :mod:`repro.verify.invariants` -- phase-boundary structural checks wired
  into the multilevel driver behind ``config.debug.validation_level``;
* :mod:`repro.verify.fuzz` -- the CHESS-style schedule sweep that replays
  LP clustering and one-pass contraction under many interleavings.
"""

from repro.verify.conflicts import Conflict, ConflictDetector
from repro.verify.invariants import (
    InvariantViolation,
    check_clustering,
    check_coarse_mapping,
    check_compressed_roundtrip,
    check_csr,
    check_gain_table_vs_recompute,
    check_partition,
)
from repro.verify.fuzz import (
    FuzzCase,
    canonical_coarse_form,
    fuzz_clustering,
    fuzz_contraction,
    summarize,
)

__all__ = [
    "Conflict",
    "ConflictDetector",
    "InvariantViolation",
    "FuzzCase",
    "canonical_coarse_form",
    "check_clustering",
    "check_coarse_mapping",
    "check_compressed_roundtrip",
    "check_csr",
    "check_gain_table_vs_recompute",
    "check_partition",
    "fuzz_clustering",
    "fuzz_contraction",
    "summarize",
]
