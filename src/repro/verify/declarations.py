"""Shared-access declarations: the single source of truth for both the
dynamic :class:`~repro.verify.conflicts.ConflictDetector` and the static
``repro lint`` parallel-access pass.

Every kernel that dispatches work through
:meth:`~repro.parallel.runtime.ParallelRuntime.execute` must declare, up
front, every shared location it touches and the synchronization class of
each access:

* ``read``   -- relaxed load; the algorithm tolerates staleness (LP reads
  neighbor labels mid-round).
* ``write``  -- plain store that is *provably disjoint* across virtual
  threads (one-pass contraction's dual-counter slices, per-owner favorite
  slots).  The dynamic detector verifies the disjointness claim under
  fuzzed schedules.
* ``atomic`` -- fetch-add / CAS / atomic store (label commits, weight
  transfers, atomic-or active-set marking).

Kernels do not call ``detector.record_*`` directly; they bind a
:class:`SharedAccessRecorder` via :func:`recorder_for` and go through its
``read`` / ``write`` / ``atomic`` methods.  The recorder refuses any access
that is not declared here (:class:`UndeclaredAccessError`), so the registry
cannot silently drift from the kernels -- and the static analyzer
(:mod:`repro.analysis.parallel_access`) cross-references the same registry
against the kernel ASTs, so *all* paths are checked at rest, not only the
ones a fuzzed schedule happens to exercise.

``vars`` names the kernel-local Python variables backing each shared array;
the static pass uses them to catch raw subscript stores that bypass the
recorder entirely (an *undeclared write*).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Recognized synchronization classes, in detector terminology.
ACCESS_MODES = ("read", "write", "atomic")


class UndeclaredAccessError(RuntimeError):
    """A kernel recorded an access that its declarations do not cover."""

    def __init__(self, kernel: str, array: str, mode: str, declared) -> None:
        super().__init__(
            f"kernel {kernel!r} recorded undeclared access {mode} on "
            f"{array!r}; declared: {sorted(declared) or 'nothing'} -- add an "
            f"AccessDecl to repro.verify.declarations.KERNELS"
        )
        self.kernel = kernel
        self.array = array
        self.mode = mode


@dataclass(frozen=True)
class AccessDecl:
    """One declared access class on one shared location.

    ``array`` is the detector/ledger name of the location; ``vars`` lists
    the kernel-local variable names that alias it (used by the static pass
    to spot raw stores); ``note`` documents *why* the class is safe.
    """

    array: str
    mode: str  # "read" | "write" | "atomic"
    vars: tuple[str, ...] = ()
    note: str = ""

    def __post_init__(self) -> None:
        if self.mode not in ACCESS_MODES:
            raise ValueError(
                f"unknown access mode {self.mode!r} for {self.array!r}; "
                f"know {ACCESS_MODES}"
            )


#: kernel key -> declared accesses.  Keys are stable identifiers passed to
#: :func:`recorder_for` by the kernels and referenced by lint fixtures.
KERNELS: dict[str, tuple[AccessDecl, ...]] = {
    "lp-clustering": (
        AccessDecl(
            "clusters",
            "read",
            vars=("clusters",),
            note="neighbor labels mid-round; LP tolerates staleness",
        ),
        AccessDecl(
            "clusters",
            "atomic",
            vars=("clusters",),
            note="label commit (the paper's CAS store)",
        ),
        AccessDecl(
            "cluster-weights",
            "atomic",
            vars=("cluster_weights",),
            note="weight transfer via CAS loop on source and target",
        ),
        AccessDecl(
            "shared-sparse-array",
            "atomic",
            note="two-phase LP: bumped vertices flush ratings with fetch-add",
        ),
        AccessDecl(
            "favorites",
            "write",
            vars=("favorites",),
            note="per-owner favorite slot; owners are disjoint across chunks",
        ),
        AccessDecl(
            "active-set",
            "atomic",
            vars=("active",),
            note="active-set marking is an idempotent atomic-or on a bitset",
        ),
        AccessDecl(
            "vertex-weights",
            "read",
            vars=("vwgt",),
            note="immutable within a level; any store is a bug",
        ),
    ),
    "one-pass-contraction": (
        AccessDecl(
            "coarse-edges",
            "write",
            vars=("eprime_dst", "eprime_w"),
            note="dual-counter pre-increment makes chunk slices disjoint",
        ),
        AccessDecl(
            "coarse-indptr",
            "write",
            vars=("pprime",),
            note="slice [s_prev, s_prev+|chunk|) is owned by one chunk",
        ),
        AccessDecl(
            "new-id-of-leader",
            "write",
            vars=("new_id_of_leader",),
            note="each leader belongs to exactly one chunk",
        ),
        AccessDecl(
            "coarse-vwgt",
            "write",
            vars=("new_vwgt",),
            note="new coarse IDs are chunk-disjoint by construction",
        ),
        AccessDecl(
            "dual-counter",
            "atomic",
            note="the 128-bit (d, s) CMPXCHG16B transaction",
        ),
    ),
    "lp-refinement": (
        AccessDecl(
            "partition",
            "read",
            vars=("part",),
            note="neighbor block IDs mid-round; staleness tolerated",
        ),
        AccessDecl(
            "partition",
            "atomic",
            vars=("part",),
            note="block commit of a moved vertex",
        ),
        AccessDecl(
            "block-weights",
            "atomic",
            note="balance-constraint weight transfer via CAS",
        ),
        AccessDecl(
            "vertex-weights",
            "read",
            vars=("vwgt",),
            note="immutable within a level; any store is a bug",
        ),
    ),
}


def declared_modes(kernel: str) -> dict[str, frozenset[str]]:
    """``array -> {modes}`` for one kernel; raises ``KeyError`` if unknown."""
    out: dict[str, set[str]] = {}
    for decl in KERNELS[kernel]:
        out.setdefault(decl.array, set()).add(decl.mode)
    return {a: frozenset(m) for a, m in out.items()}


def shared_vars(kernel: str) -> dict[str, str]:
    """``local variable name -> array name`` for one kernel."""
    out: dict[str, str] = {}
    for decl in KERNELS[kernel]:
        for v in decl.vars:
            out[v] = decl.array
    return out


class SharedAccessRecorder:
    """Declaration-checked front end to a :class:`ConflictDetector`.

    Binding is cheap; with no detector attached every record method is a
    declaration check plus an early return, so kernels can keep one code
    path.  Hot loops may still guard bulk index collection on
    :attr:`active`, exactly as they previously guarded on ``det is None``.
    """

    __slots__ = ("detector", "kernel", "_modes")

    def __init__(self, detector, kernel: str) -> None:
        try:
            self._modes = declared_modes(kernel)
        except KeyError:
            raise UndeclaredAccessError(kernel, "*", "*", ()) from None
        self.detector = detector
        self.kernel = kernel

    @property
    def active(self) -> bool:
        """True when a detector is attached and accesses are recorded."""
        return self.detector is not None

    def _check(self, array: str, mode: str) -> None:
        modes = self._modes.get(array)
        if modes is None or mode not in modes:
            raise UndeclaredAccessError(
                self.kernel, array, mode, modes or ()
            )

    def read(self, array: str, indices) -> None:
        """Relaxed loads from ``array[indices]``."""
        self._check(array, "read")
        if self.detector is not None:
            self.detector.record_read(array, indices)

    def write(self, array: str, indices) -> None:
        """Plain stores claimed to be thread-disjoint."""
        self._check(array, "write")
        if self.detector is not None:
            self.detector.record_write(array, indices)

    def atomic(self, array: str, indices) -> None:
        """Synchronized RMW / atomic stores."""
        self._check(array, "atomic")
        if self.detector is not None:
            self.detector.record_atomic(array, indices)


def recorder_for(detector, kernel: str) -> SharedAccessRecorder:
    """Bind ``kernel``'s declarations to ``detector`` (which may be None)."""
    return SharedAccessRecorder(detector, kernel)
