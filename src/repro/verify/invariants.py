"""Phase-boundary invariant checks for the multilevel pipeline.

Each ``check_*`` function validates one structural contract the partitioner
relies on between phases and raises :class:`InvariantViolation` (with the
offending phase and ids in the message) when it fails:

* :func:`check_csr` -- graph well-formedness: symmetry, no self-loops,
  positive weights, consistent ``indptr``.
* :func:`check_partition` -- block assignment in range, incremental block
  weights consistent with a recount, optional balance ceiling.
* :func:`check_clustering` -- cluster leaders valid, incremental cluster
  weights equal to a recount over members.
* :func:`check_coarse_mapping` -- the fine->coarse projection is a dense
  surjection that conserves vertex weight and inter-cluster edge weight.
* :func:`check_gain_table_vs_recompute` -- cached affinities equal a
  from-scratch recomputation for (a sample of) vertices.
* :func:`check_compressed_roundtrip` -- compressed neighborhoods decode to
  exactly the CSR adjacency.

The multilevel driver wires these in behind ``config.debug.validation_level``
(0 = off, 1 = cheap phase-boundary checks, 2 = adds the O(m)-ish deep
checks); ``python -m repro partition --selfcheck`` turns everything on.
"""

from __future__ import annotations

import numpy as np


class InvariantViolation(AssertionError):
    """A phase-boundary invariant does not hold."""


def _fail(phase: str, message: str) -> None:
    prefix = f"[{phase}] " if phase else ""
    raise InvariantViolation(prefix + message)


# --------------------------------------------------------------------- #
# graph structure
# --------------------------------------------------------------------- #
def check_csr(graph, *, phase: str = "") -> None:
    """Structural well-formedness of a (CSR or protocol) graph."""
    validate = getattr(graph, "validate", None)
    if validate is not None:
        try:
            validate()
        except (ValueError, AssertionError) as exc:
            _fail(phase, f"graph invariant violated: {exc}")
        return
    # protocol fallback: symmetry via neighbor-set roundtrip
    for u in range(graph.n):
        for v in np.asarray(graph.neighbors(u)).tolist():
            if u == v:
                _fail(phase, f"self-loop at vertex {u}")
            if u not in np.asarray(graph.neighbors(v)).tolist():
                _fail(phase, f"edge ({u}, {v}) has no reverse")


def check_compressed_roundtrip(
    csr, compressed, *, sample: int | None = None, rng=None, phase: str = ""
) -> None:
    """Compressed neighborhoods must decode to exactly the CSR adjacency.

    ``sample`` limits the check to that many vertices (always including the
    maximum-degree vertex, where chunked encoding kicks in); ``None`` checks
    every vertex.
    """
    if csr.n != compressed.n:
        _fail(phase, f"n mismatch: csr {csr.n} vs compressed {compressed.n}")
    if csr.m != compressed.m:
        _fail(phase, f"m mismatch: csr {csr.m} vs compressed {compressed.m}")
    if sample is None or sample >= csr.n:
        vertices = np.arange(csr.n, dtype=np.int64)
    else:
        rng = rng or np.random.default_rng(0)
        vertices = rng.choice(csr.n, size=sample, replace=False).astype(np.int64)
        if csr.n:
            vertices = np.union1d(
                vertices, [int(np.argmax(np.asarray(csr.degrees)))]
            )
    for u in vertices.tolist():
        cn, cw = csr.neighbors_and_weights(u)
        zn, zw = compressed.neighbors_and_weights(u)
        ref = sorted(zip(np.asarray(cn).tolist(), np.asarray(cw).tolist()))
        got = sorted(zip(np.asarray(zn).tolist(), np.asarray(zw).tolist()))
        if ref != got:
            _fail(
                phase,
                f"compressed neighborhood of vertex {u} decodes to {got[:8]}..."
                f" but CSR holds {ref[:8]}...",
            )


# --------------------------------------------------------------------- #
# partitions and clusterings
# --------------------------------------------------------------------- #
def check_partition(pgraph, *, epsilon: float | None = None, phase: str = "") -> None:
    """Block assignment in range, block weights consistent, optional balance."""
    part = pgraph.partition
    if len(part) != pgraph.graph.n:
        _fail(phase, "partition does not assign every vertex")
    if pgraph.graph.n and (part.min() < 0 or part.max() >= pgraph.k):
        bad = int(np.flatnonzero((part < 0) | (part >= pgraph.k))[0])
        _fail(
            phase,
            f"vertex {bad} assigned to out-of-range block {int(part[bad])}",
        )
    recount = np.zeros(pgraph.k, dtype=np.int64)
    np.add.at(recount, part, np.asarray(pgraph.graph.vwgt))
    if not np.array_equal(recount, pgraph.block_weights):
        bad = int(np.flatnonzero(recount != pgraph.block_weights)[0])
        _fail(
            phase,
            f"block {bad} weight out of sync: incremental "
            f"{int(pgraph.block_weights[bad])} vs recount {int(recount[bad])}",
        )
    if epsilon is not None:
        from repro.core.partition import max_block_weight

        lmax = max_block_weight(pgraph.graph.total_vertex_weight, pgraph.k, epsilon)
        if recount.max() > lmax:
            bad = int(np.argmax(recount))
            _fail(
                phase,
                f"block {bad} weight {int(recount[bad])} exceeds "
                f"L_max {lmax} (eps={epsilon})",
            )


def check_clustering(graph, clusters, cluster_weights, *, phase: str = "") -> None:
    """Cluster labels valid and incremental cluster weights consistent."""
    n = graph.n
    clusters = np.asarray(clusters)
    if len(clusters) != n:
        _fail(phase, "clustering does not cover every vertex")
    if n and (clusters.min() < 0 or clusters.max() >= n):
        _fail(phase, "cluster leader ids out of range")
    recount = np.zeros(n, dtype=np.int64)
    np.add.at(recount, clusters, np.asarray(graph.vwgt))
    leaders = np.unique(clusters)
    got = np.asarray(cluster_weights)[leaders]
    want = recount[leaders]
    if not np.array_equal(got, want):
        bad = int(leaders[np.flatnonzero(got != want)[0]])
        _fail(
            phase,
            f"cluster {bad} weight out of sync: incremental "
            f"{int(cluster_weights[bad])} vs recount {int(recount[bad])}",
        )


def check_coarse_mapping(
    fine_graph, coarse_graph, fine_to_coarse, *, phase: str = ""
) -> None:
    """The fine->coarse projection conserves structure.

    Checks: dense surjection onto ``[0, n_coarse)``, coarse vertex weights
    equal the summed fine weights of their members, and the coarse graph's
    total edge weight equals the fine graph's total inter-cluster edge
    weight (contraction drops intra-cluster edges and merges parallels).
    """
    f2c = np.asarray(fine_to_coarse)
    nc = coarse_graph.n
    if len(f2c) != fine_graph.n:
        _fail(phase, "fine_to_coarse does not map every fine vertex")
    if fine_graph.n and (f2c.min() < 0 or f2c.max() >= nc):
        bad = int(np.flatnonzero((f2c < 0) | (f2c >= nc))[0])
        _fail(
            phase,
            f"fine vertex {bad} maps to out-of-range coarse id {int(f2c[bad])}",
        )
    hit = np.zeros(nc, dtype=bool)
    hit[f2c] = True
    if not hit.all():
        _fail(phase, f"coarse vertex {int(np.flatnonzero(~hit)[0])} has no fine member")
    # vertex weight conservation, per coarse vertex
    agg = np.zeros(nc, dtype=np.int64)
    np.add.at(agg, f2c, np.asarray(fine_graph.vwgt))
    cw = np.asarray(coarse_graph.vwgt)
    if not np.array_equal(agg, cw):
        bad = int(np.flatnonzero(agg != cw)[0])
        _fail(
            phase,
            f"coarse vertex {bad} weight {int(cw[bad])} != summed fine "
            f"weight {int(agg[bad])}",
        )
    # edge weight conservation, aggregate
    from repro.graph.access import full_adjacency

    src, dst, wgt = full_adjacency(fine_graph)
    inter = f2c[src] != f2c[dst]
    fine_cross = int(np.asarray(wgt)[inter].sum())
    coarse_total = int(coarse_graph.total_edge_weight)
    if fine_cross != coarse_total:
        _fail(
            phase,
            f"coarse edge weight {coarse_total} != fine inter-cluster "
            f"edge weight {fine_cross}",
        )


# --------------------------------------------------------------------- #
# gain tables
# --------------------------------------------------------------------- #
def check_gain_table_vs_recompute(
    table, pgraph, *, sample: int | None = None, rng=None, phase: str = ""
) -> None:
    """Cached affinities must equal a from-scratch recomputation.

    For every (sampled) vertex, recompute ``w(u, V_i)`` from the adjacency
    and compare against the table's ``affinity`` for each adjacent block as
    well as the table's reported adjacent-block set.
    """
    g = pgraph.graph
    part = pgraph.partition
    if sample is None or sample >= g.n:
        vertices = range(g.n)
    else:
        rng = rng or np.random.default_rng(0)
        vertices = rng.choice(g.n, size=sample, replace=False).tolist()
    for u in vertices:
        u = int(u)
        nbrs, wgts = g.neighbors_and_weights(u)
        ref: dict[int, int] = {}
        for b, w in zip(part[np.asarray(nbrs)].tolist(), np.asarray(wgts).tolist()):
            ref[int(b)] = ref.get(int(b), 0) + int(w)
        got_blocks = set(np.asarray(table.adjacent_blocks(u)).tolist())
        want_blocks = {b for b, a in ref.items() if a != 0}
        if got_blocks != want_blocks:
            _fail(
                phase,
                f"vertex {u}: table reports adjacent blocks "
                f"{sorted(got_blocks)} but recompute finds {sorted(want_blocks)}",
            )
        for b in want_blocks:
            got = int(table.affinity(u, b))
            if got != ref[b]:
                _fail(
                    phase,
                    f"vertex {u}, block {b}: cached affinity {got} != "
                    f"recomputed {ref[b]}",
                )
