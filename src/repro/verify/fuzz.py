"""Schedule-fuzzing harness: replay parallel kernels under many interleavings.

The simulated runtime executes one fixed chunk order by default, so the
paper's race-freedom arguments (Algorithm 2's first-writer rule, the
128-bit-CAS dual counter) would otherwise be exercised under exactly one
schedule.  The harness here sweeps a kernel across a matrix of

    schedule policy x schedule seed x virtual thread count p

with a :class:`~repro.verify.conflicts.ConflictDetector` attached, checks
the post-state invariants of every run, and (for contraction) verifies that
every schedule produces a coarse graph isomorphic to the buffered
reference.  This is the CHESS-style systematic exploration the verify layer
rests on: a declared race shows up as a detector conflict under at least
one schedule; a schedule-dependent *outcome* shows up as an isomorphism or
invariant failure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import CoarseningConfig, DebugConfig, PartitionerConfig
from repro.core.context import PartitionContext
from repro.parallel.runtime import SCHEDULE_POLICIES, ParallelRuntime
from repro.verify import invariants as inv
from repro.verify.conflicts import Conflict, ConflictDetector

DEFAULT_POLICIES = SCHEDULE_POLICIES
DEFAULT_SEEDS = range(8)
DEFAULT_PS = (2, 4, 8)


@dataclass
class FuzzCase:
    """Outcome of one kernel run under one (policy, seed, p) schedule."""

    kernel: str
    policy: str
    seed: int
    p: int
    conflicts: list[Conflict]
    payload: object = None  # kernel-specific result for downstream checks

    @property
    def clean(self) -> bool:
        return not self.conflicts

    def __str__(self) -> str:
        state = "ok" if self.clean else f"{len(self.conflicts)} conflict(s)"
        return f"{self.kernel}[{self.policy}/seed{self.seed}/p{self.p}]: {state}"


def _make_ctx(
    graph,
    *,
    p: int,
    policy: str,
    seed: int,
    chunk_size: int,
    two_phase: bool = True,
    one_pass: bool = True,
    inject_race: bool = False,
    config_seed: int = 0,
) -> tuple[PartitionContext, ConflictDetector]:
    cfg = PartitionerConfig(
        p=p,
        seed=config_seed,
        coarsening=CoarseningConfig(
            two_phase_lp=two_phase, one_pass_contraction=one_pass
        ),
        debug=DebugConfig(
            schedule_policy=policy,
            schedule_seed=seed,
            detect_conflicts=True,
            inject_lp_weight_race=inject_race,
        ),
    )
    runtime = ParallelRuntime(
        p, chunk_size=chunk_size, schedule_policy=policy, schedule_seed=seed
    )
    ctx = PartitionContext(
        config=cfg,
        k=2,
        total_vertex_weight=graph.total_vertex_weight,
        runtime=runtime,
    )
    detector = ConflictDetector()
    runtime.attach_detector(detector)
    return ctx, detector


def fuzz_clustering(
    graph,
    *,
    policies=DEFAULT_POLICIES,
    seeds=DEFAULT_SEEDS,
    ps=DEFAULT_PS,
    two_phase: bool = True,
    inject_race: bool = False,
    chunk_size: int = 32,
    check_invariants: bool = True,
) -> list[FuzzCase]:
    """Replay LP clustering under the schedule matrix.

    Every run's post-state is invariant-checked (cluster weights vs
    recount); the returned cases carry the detector conflicts.  With
    ``inject_race=True`` the kernel's cluster-weight CAS loop is disabled,
    so the cluster-weight updates are declared as plain writes -- the
    deliberate race the detector must catch.
    """
    from repro.core.coarsening.lp_clustering import label_propagation_clustering

    cap = max(1, graph.total_vertex_weight // 8)
    cases = []
    for p in ps:
        for policy in policies:
            for seed in seeds:
                ctx, det = _make_ctx(
                    graph,
                    p=p,
                    policy=policy,
                    seed=seed,
                    chunk_size=chunk_size,
                    two_phase=two_phase,
                    inject_race=inject_race,
                )
                result = label_propagation_clustering(graph, ctx, cap)
                if check_invariants:
                    inv.check_clustering(
                        graph,
                        result.clusters,
                        result.cluster_weights,
                        phase=f"fuzz-lp[{policy}/seed{seed}/p{p}]",
                    )
                cases.append(
                    FuzzCase("lp", policy, seed, p, det.conflicts, result)
                )
    return cases


def canonical_coarse_form(fine_n: int, coarse, fine_to_coarse):
    """Schedule-independent canonical form of a contracted graph.

    Coarse vertex ids depend on chunk completion order; keying every coarse
    vertex by its smallest fine member id removes that freedom, so two
    isomorphic coarse graphs compare equal.
    """
    from repro.graph.access import full_adjacency

    f2c = np.asarray(fine_to_coarse)
    key = np.full(coarse.n, fine_n, dtype=np.int64)
    np.minimum.at(key, f2c, np.arange(fine_n, dtype=np.int64))
    src, dst, wgt = full_adjacency(coarse)
    edges = sorted(
        zip(key[src].tolist(), key[dst].tolist(), np.asarray(wgt).tolist())
    )
    vertices = sorted(zip(key.tolist(), np.asarray(coarse.vwgt).tolist()))
    return edges, vertices


def fuzz_contraction(
    graph,
    *,
    policies=DEFAULT_POLICIES,
    seeds=DEFAULT_SEEDS,
    ps=DEFAULT_PS,
    chunk_size: int = 32,
    check_invariants: bool = True,
) -> list[FuzzCase]:
    """Replay one-pass contraction under the schedule matrix.

    The clustering is computed once (fixed); every schedule must then
    produce a coarse graph isomorphic to the buffered reference, pass the
    coarse-mapping invariant, and report zero conflicts.
    """
    from repro.core.coarsening.contraction import contract_buffered
    from repro.core.coarsening.lp_clustering import label_propagation_clustering
    from repro.core.coarsening.one_pass_contraction import contract_one_pass

    cap = max(1, graph.total_vertex_weight // 8)
    base_ctx, _ = _make_ctx(
        graph, p=4, policy="issue", seed=0, chunk_size=chunk_size
    )
    base_ctx.runtime.detach_detector()
    clustering = label_propagation_clustering(graph, base_ctx, cap)

    ref_ctx, _ = _make_ctx(
        graph, p=4, policy="issue", seed=0, chunk_size=chunk_size
    )
    ref_ctx.runtime.detach_detector()
    ref = contract_buffered(
        graph, clustering.clusters, clustering.cluster_weights, ref_ctx
    )
    ref_form = canonical_coarse_form(graph.n, ref.coarse, ref.fine_to_coarse)

    cases = []
    for p in ps:
        for policy in policies:
            for seed in seeds:
                ctx, det = _make_ctx(
                    graph, p=p, policy=policy, seed=seed, chunk_size=chunk_size
                )
                out = contract_one_pass(
                    graph, clustering.clusters, clustering.cluster_weights, ctx
                )
                tag = f"fuzz-contraction[{policy}/seed{seed}/p{p}]"
                if check_invariants:
                    inv.check_coarse_mapping(
                        graph, out.coarse, out.fine_to_coarse, phase=tag
                    )
                    form = canonical_coarse_form(
                        graph.n, out.coarse, out.fine_to_coarse
                    )
                    if form != ref_form:
                        inv._fail(
                            tag,
                            "one-pass coarse graph is not isomorphic to the "
                            "buffered reference under this schedule",
                        )
                cases.append(
                    FuzzCase("contraction", policy, seed, p, det.conflicts, out)
                )
    return cases


def summarize(cases: list[FuzzCase]) -> str:
    dirty = [c for c in cases if not c.clean]
    head = f"{len(cases)} schedules fuzzed, {len(dirty)} with conflicts"
    lines = [head] + [f"  {c}" for c in dirty[:10]]
    return "\n".join(lines)
