"""Dynamic conflict detection for the simulated parallel runtime.

The simulation executes virtual threads one at a time, so races can never
corrupt values -- which also means they can never be *observed* by testing
outcomes alone.  Instead, this detector checks the paper's synchronization
claims the way ThreadSanitizer would: kernels declare every access to a
registered shared location together with its synchronization class, and two
accesses to the same ``(array, index)`` by *different* virtual threads
within one parallel region conflict whenever at least one of them is an
unsynchronized (plain) write:

* ``write``  -- plain store, no synchronization claimed.  Conflicts with
  any access by another thread (write-write, read-write, atomic-write).
* ``read``   -- load that the algorithm tolerates being stale (LP reads
  neighbor labels mid-round with relaxed semantics).  Conflicts only with a
  plain write by another thread.
* ``atomic`` -- fetch-add / CAS / atomic store.  Conflicts only with a
  plain write by another thread.

A *region* is one parallel loop between barriers (one LP round, one
contraction chunk sweep); :meth:`ConflictDetector.begin_region` clears the
access maps because the barrier orders everything before it.  The current
virtual thread is announced by :meth:`ParallelRuntime.execute`; accesses
recorded with no current thread (sequential sections) are ignored.

Because the analysis is membership-based rather than timing-based, a
declared race is caught under *any* schedule in which two differently-owned
chunks touch the same location -- schedule fuzzing (replaying the loop under
many interleavings, which changes chunk contents, commit order, and hence
the access sets) widens the set of locations exercised.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Sentinel thread id meaning "accessed by more than one thread already".
_MANY = -2


@dataclass(frozen=True)
class Conflict:
    """One detected unsynchronized access pair."""

    array: str  # registered shared-array name
    index: int  # element index (vertex / cluster / edge slot id)
    kind: str  # "write-write" | "read-write" | "atomic-write"
    tids: tuple[int, int]  # (earlier accessor, current accessor)
    phase: str  # owning parallel region

    def __str__(self) -> str:
        return (
            f"{self.kind} conflict on {self.array}[{self.index}] "
            f"between virtual threads {self.tids[0]} and {self.tids[1]} "
            f"in phase {self.phase!r}"
        )


@dataclass
class _AccessMaps:
    """Per-array access state within the current region."""

    writes: dict = field(default_factory=dict)  # index -> tid
    reads: dict = field(default_factory=dict)  # index -> tid | _MANY
    atomics: dict = field(default_factory=dict)  # index -> tid | _MANY


class ConflictDetector:
    """Records per-virtual-thread access sets and flags conflicts.

    Attach to a runtime with :meth:`ParallelRuntime.attach_detector`; the
    runtime's :meth:`~ParallelRuntime.execute` loop sets
    :attr:`current_tid` before yielding each chunk.
    """

    def __init__(self, *, max_conflicts: int = 1000) -> None:
        self.current_tid: int | None = None
        self.phase: str = ""
        self.conflicts: list[Conflict] = []
        self.max_conflicts = max_conflicts
        self.regions_checked = 0
        self.accesses_recorded = 0
        self._arrays: dict[str, _AccessMaps] = {}

    # ------------------------------------------------------------------ #
    # region protocol
    # ------------------------------------------------------------------ #
    def begin_region(self, phase: str) -> None:
        """Enter a parallel region; the barrier clears all access maps."""
        self.phase = phase
        self._arrays.clear()
        self.regions_checked += 1

    def end_region(self) -> None:
        self._arrays.clear()
        self.current_tid = None

    # ------------------------------------------------------------------ #
    # access recording
    # ------------------------------------------------------------------ #
    def _maps(self, array: str) -> _AccessMaps:
        m = self._arrays.get(array)
        if m is None:
            m = self._arrays[array] = _AccessMaps()
        return m

    def _flag(self, array: str, index: int, kind: str, other: int, tid: int) -> None:
        if len(self.conflicts) < self.max_conflicts:
            self.conflicts.append(
                Conflict(array, int(index), kind, (int(other), int(tid)), self.phase)
            )

    def record_write(self, array: str, indices, tid: int | None = None) -> None:
        """Plain (unsynchronized) stores to ``array[indices]``."""
        tid = self.current_tid if tid is None else tid
        if tid is None:
            return
        m = self._maps(array)
        idxs = np.unique(np.asarray(indices, dtype=np.int64))
        self.accesses_recorded += len(idxs)
        for i in idxs.tolist():
            w = m.writes.get(i)
            if w is not None and w != tid:
                self._flag(array, i, "write-write", w, tid)
            r = m.reads.get(i)
            if r is not None and r != tid:
                self._flag(array, i, "read-write", r if r != _MANY else -1, tid)
            a = m.atomics.get(i)
            if a is not None and a != tid:
                self._flag(array, i, "atomic-write", a if a != _MANY else -1, tid)
            m.writes[i] = tid

    def record_read(self, array: str, indices, tid: int | None = None) -> None:
        """Relaxed loads from ``array[indices]`` (staleness tolerated)."""
        tid = self.current_tid if tid is None else tid
        if tid is None:
            return
        m = self._maps(array)
        idxs = np.unique(np.asarray(indices, dtype=np.int64))
        self.accesses_recorded += len(idxs)
        for i in idxs.tolist():
            w = m.writes.get(i)
            if w is not None and w != tid:
                self._flag(array, i, "read-write", w, tid)
            r = m.reads.get(i)
            if r is None:
                m.reads[i] = tid
            elif r != tid:
                m.reads[i] = _MANY

    def record_atomic(self, array: str, indices, tid: int | None = None) -> None:
        """Synchronized RMW / atomic stores on ``array[indices]``."""
        tid = self.current_tid if tid is None else tid
        if tid is None:
            return
        m = self._maps(array)
        idxs = np.unique(np.asarray(indices, dtype=np.int64))
        self.accesses_recorded += len(idxs)
        for i in idxs.tolist():
            w = m.writes.get(i)
            if w is not None and w != tid:
                self._flag(array, i, "atomic-write", w, tid)
            a = m.atomics.get(i)
            if a is None:
                m.atomics[i] = tid
            elif a != tid:
                m.atomics[i] = _MANY

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    @property
    def clean(self) -> bool:
        return not self.conflicts

    def summary(self) -> str:
        if self.clean:
            return (
                f"no conflicts ({self.regions_checked} regions, "
                f"{self.accesses_recorded} accesses checked)"
            )
        lines = [f"{len(self.conflicts)} conflict(s):"]
        lines += [f"  {c}" for c in self.conflicts[:10]]
        if len(self.conflicts) > 10:
            lines.append(f"  ... and {len(self.conflicts) - 10} more")
        return "\n".join(lines)
