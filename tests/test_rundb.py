"""Tests for the regression observatory's run database (obs/regress/rundb)."""

import json

import pytest

from repro.bench.harness import RunRecord
from repro.core import config as C
from repro.core.config import config_digest
from repro.obs.regress.rundb import (
    DIST_METRICS,
    RUNDB_SCHEMA,
    SERVICE_METRICS,
    RunDB,
    config_stamp,
    default_rundb,
    environment_stamp,
    latest_per_key,
    make_dist_record,
    make_microbench_record,
    make_record,
    make_service_record,
    migrate_record,
    run_key,
)


def _rr(seed=0, cut=100, wall=1.0, peak=1000, obs=None, **kw):
    extra = {"num_levels": 3}
    if obs is not None:
        extra["obs"] = obs
    defaults = dict(
        algorithm="terapart",
        instance="fem-grid",
        k=4,
        seed=seed,
        cut=cut,
        balanced=True,
        imbalance=0.01,
        wall_seconds=wall,
        modeled_seconds=wall * 0.9,
        peak_bytes=peak,
        extra=extra,
    )
    defaults.update(kw)
    return RunRecord(**defaults)


class TestRecordBuilders:
    def test_make_record_shape(self):
        rec = make_record(
            _rr(obs={"phases": []}),
            bench="smoke",
            label="base",
            config=C.terapart(),
            env={"python": "x"},
            timestamp=123.0,
        )
        assert rec["schema"] == RUNDB_SCHEMA
        assert rec["kind"] == "partition"
        assert rec["bench"] == "smoke"
        assert rec["label"] == "base"
        assert rec["recorded_unix"] == 123.0
        assert rec["run"]["cut"] == 100 and rec["run"]["seed"] == 0
        # obs moves out of extra into its own section
        assert rec["obs"] == {"phases": []}
        assert rec["run"]["extra"] == {"num_levels": 3}
        assert rec["config"]["name"] == "terapart"

    def test_microbench_record(self):
        rec = make_microbench_record(
            "decode_hotpath", {"bulk_ns_per_edge": 96.0}, env={}, timestamp=1.0
        )
        assert rec["kind"] == "microbench"
        assert rec["run"]["bulk_ns_per_edge"] == 96.0
        assert rec["obs"] is None


def _service_metrics(**overrides):
    m = {
        "requests": 16,
        "wall_seconds": 0.5,
        "p50_seconds": 0.001,
        "p99_seconds": 0.12,
        "cache_hit_rate": 0.69,
        "warm_over_full": 0.05,
        "cut_overhead": 0.98,
        "full_runs": 1,
        "warm_runs": 4,
    }
    m.update(overrides)
    return m


class TestServiceRecords:
    def test_make_service_record_shape(self):
        rec = make_service_record(
            "service-smoke",
            algorithm="serve-terapart",
            instance="fem-grid",
            k=8,
            seed=0,
            metrics=_service_metrics(),
            label="pr7",
            config=C.terapart(),
            obs={"counters": {"serve.requests": 16}},
            env={},
            timestamp=9.0,
        )
        assert rec["schema"] == RUNDB_SCHEMA
        assert rec["kind"] == "service"
        assert rec["bench"] == "service-smoke"
        # same comparable identity as a partition record...
        assert run_key(rec) == ("serve-terapart", "fem-grid", 8, 0)
        # ...with the flat service metrics in the run section
        assert rec["run"]["warm_over_full"] == 0.05
        assert rec["run"]["p99_seconds"] == 0.12
        assert rec["obs"]["counters"]["serve.requests"] == 16
        assert rec["config"]["name"] == "terapart"

    def test_gated_metrics_all_present(self):
        rec = make_service_record(
            "s", algorithm="a", instance="i", k=2, seed=0,
            metrics=_service_metrics(), env={},
        )
        for m in SERVICE_METRICS:
            assert m in rec["run"]

    def test_db_roundtrip_and_kind_query(self, tmp_path):
        db = RunDB(tmp_path / "runs.jsonl")
        db.append(make_record(_rr(), bench="smoke", env={}))
        db.append(
            make_service_record(
                "service-smoke",
                algorithm="serve-terapart",
                instance="fem-grid",
                k=8,
                seed=0,
                metrics=_service_metrics(),
                env={},
            )
        )
        loaded = db.load()
        assert [r["kind"] for r in loaded] == ["partition", "service"]
        svc = db.query(kind="service")
        assert len(svc) == 1
        assert svc[0]["run"]["cut_overhead"] == 0.98
        assert db.query(kind="service", algorithm="serve-terapart")
        assert not db.query(kind="service", k=4)


def _dist_metrics(**overrides):
    m = {
        "cut": 278,
        "balanced": True,
        "imbalance": 0.01,
        "wall_seconds": 0.3,
        "ranks": 4,
        "max_rank_peak_bytes": 76410,
        "memory_ratio": 1.014,
        "ghost_fraction": 0.058,
        "comm_raw_bytes": 16220,
        "comm_varint_bytes": 2890,
        "comm_messages": 402,
    }
    m.update(overrides)
    return m


class TestDistRecords:
    def test_make_dist_record_shape(self):
        rec = make_dist_record(
            "dist-smoke",
            algorithm="xterapart-r4",
            instance="fem-grid",
            k=8,
            seed=0,
            metrics=_dist_metrics(),
            label="pr9",
            obs={"schema": 1, "report": {"memory_ratio": 1.014}},
            env={},
            timestamp=9.0,
        )
        assert rec["schema"] == RUNDB_SCHEMA
        assert rec["kind"] == "dist"
        assert rec["bench"] == "dist-smoke"
        # same comparable identity as a partition record...
        assert run_key(rec) == ("xterapart-r4", "fem-grid", 8, 0)
        # ...with the flat cluster metrics in the run section
        assert rec["run"]["memory_ratio"] == 1.014
        assert rec["run"]["comm_varint_bytes"] == 2890
        assert rec["obs"]["report"]["memory_ratio"] == 1.014

    def test_gated_metrics_all_present(self):
        rec = make_dist_record(
            "d", algorithm="a", instance="i", k=2, seed=0,
            metrics=_dist_metrics(), env={},
        )
        for m in DIST_METRICS:
            assert m in rec["run"]

    def test_db_roundtrip_and_kind_query(self, tmp_path):
        db = RunDB(tmp_path / "runs.jsonl")
        db.append(make_record(_rr(), bench="smoke", env={}))
        db.append(
            make_dist_record(
                "dist-smoke",
                algorithm="xterapart-r4",
                instance="fem-grid",
                k=8,
                seed=0,
                metrics=_dist_metrics(),
                env={},
            )
        )
        loaded = db.load()
        assert [r["kind"] for r in loaded] == ["partition", "dist"]
        dist = db.query(kind="dist")
        assert len(dist) == 1
        assert dist[0]["run"]["max_rank_peak_bytes"] == 76410
        assert db.query(kind="dist", algorithm="xterapart-r4")
        assert not db.query(kind="dist", k=4)

    def test_v2_record_migrates_to_current(self):
        """Pre-service records restamp cleanly; kind defaults hold."""
        v2 = {
            "schema": 2,
            "kind": "partition",
            "bench": "smoke",
            "run": {"algorithm": "terapart", "cut": 5},
        }
        rec = migrate_record(v2)
        assert rec["schema"] == RUNDB_SCHEMA == 4
        assert rec["kind"] == "partition"
        assert rec["run"]["cut"] == 5
        assert rec["label"] is None and rec["obs"] is None

    def test_v3_record_migrates_to_v4(self):
        """Pre-dist (service-era) records restamp cleanly, payload intact."""
        v3 = {
            "schema": 3,
            "kind": "service",
            "bench": "service-smoke",
            "label": "pr7",
            "run": {"algorithm": "serve-terapart", "cut_overhead": 0.98},
            "obs": {"counters": {"serve.requests": 16}},
        }
        rec = migrate_record(v3)
        assert rec["schema"] == RUNDB_SCHEMA == 4
        assert rec["kind"] == "service"
        assert rec["run"]["cut_overhead"] == 0.98
        assert rec["obs"]["counters"]["serve.requests"] == 16

    def test_old_files_load_under_v4(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        lines = [
            json.dumps({"schema": 2, "kind": "partition", "run": {"cut": 1}}),
            json.dumps({"schema": 3, "kind": "service", "run": {"cut": 2}}),
            json.dumps({"csr_ns_per_edge": 9.8}),  # schema-0 legacy
        ]
        path.write_text("\n".join(lines) + "\n")
        recs = RunDB(path).load()
        assert [r["schema"] for r in recs] == [RUNDB_SCHEMA] * 3
        assert [r["kind"] for r in recs] == [
            "partition", "service", "microbench",
        ]


class TestConfigStamp:
    def test_digest_is_seed_independent(self):
        a = C.terapart(seed=0)
        b = C.terapart(seed=99)
        assert config_digest(a) == config_digest(b)

    def test_digest_changes_with_knobs(self):
        a = C.terapart()
        b = C.terapart().with_(compress_input=False)
        c = C.terapart_fm()
        assert config_digest(a) != config_digest(b)
        assert config_digest(a) != config_digest(c)

    def test_stamp_has_name_and_digest(self):
        st = config_stamp(C.terapart())
        assert st["name"] == "terapart"
        assert len(st["digest"]) == 16


class TestEnvironmentStamp:
    def test_stamp_fields(self):
        env = environment_stamp()
        assert set(env) >= {"git_sha", "python", "numpy", "platform"}
        assert env["python"].count(".") >= 1


class TestRunDB:
    def test_append_load_roundtrip(self, tmp_path):
        db = RunDB(tmp_path / "runs.jsonl")
        db.append(make_record(_rr(seed=0), bench="smoke", env={}))
        db.append(make_record(_rr(seed=1), bench="smoke", env={}))
        recs = db.load()
        assert [r["run"]["seed"] for r in recs] == [0, 1]

    def test_append_only_one_line_per_record(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        db = RunDB(path)
        db.append(make_record(_rr(), bench="smoke", env={}))
        first = path.read_text()
        db.append(make_record(_rr(seed=1), bench="smoke", env={}))
        # history is never rewritten: the first line is byte-identical
        assert path.read_text().startswith(first)
        assert path.read_text().count("\n") == 2

    def test_load_missing_file(self, tmp_path):
        assert RunDB(tmp_path / "nope.jsonl").load() == []

    def test_query_filters(self, tmp_path):
        db = RunDB(tmp_path / "runs.jsonl")
        db.append(make_record(_rr(), bench="smoke", label="a", env={}))
        db.append(
            make_record(
                _rr(instance="web-small"), bench="smoke", label="b", env={}
            )
        )
        db.append(make_microbench_record("decode_hotpath", {"x": 1}, env={}))
        assert len(db.query(kind="partition")) == 2
        assert len(db.query(kind="microbench")) == 1
        assert len(db.query(label="a")) == 1
        assert db.query(instance="web-small")[0]["label"] == "b"
        assert len(db.query(algorithm="terapart", k=4)) == 2
        assert len(db.query(k=8)) == 0

    def test_latest_per_key(self, tmp_path):
        db = RunDB(tmp_path / "runs.jsonl")
        db.append(make_record(_rr(cut=100), bench="s", env={}))
        db.append(make_record(_rr(cut=90), bench="s", env={}))
        latest = latest_per_key(db.load(), run_key)
        assert len(latest) == 1
        assert latest[0]["run"]["cut"] == 90


class TestMigration:
    def test_legacy_flat_record_migrates(self):
        legacy = {
            "instance": "weblike(n=10000, d=10, seed=42)",
            "csr_ns_per_edge": 9.8,
            "bulk_vs_scalar_speedup": 8.2,
        }
        rec = migrate_record(legacy)
        assert rec["schema"] == RUNDB_SCHEMA
        assert rec["kind"] == "microbench"
        assert rec["bench"] == "decode_hotpath"
        assert rec["run"]["bulk_vs_scalar_speedup"] == 8.2
        assert rec["env"]["git_sha"] is None

    def test_current_schema_fills_defaults(self):
        rec = migrate_record({"schema": RUNDB_SCHEMA, "run": {"cut": 5}})
        assert rec["kind"] == "partition"
        assert rec["label"] is None
        assert rec["obs"] is None

    def test_future_schema_rejected(self):
        with pytest.raises(ValueError, match="newer"):
            migrate_record({"schema": RUNDB_SCHEMA + 1})

    def test_load_migrates_legacy_lines(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text(json.dumps({"csr_ns_per_edge": 9.8}) + "\n")
        recs = RunDB(path).load()
        assert recs[0]["schema"] == RUNDB_SCHEMA
        assert recs[0]["kind"] == "microbench"

    def test_repo_bench_decode_converted(self):
        """The committed BENCH_decode.json is in the trajectory schema."""
        from pathlib import Path

        doc = json.loads(
            (Path(__file__).parent.parent / "BENCH_decode.json").read_text()
        )
        assert doc["schema"] == RUNDB_SCHEMA
        assert doc["kind"] == "trajectory"
        assert all(r["schema"] == RUNDB_SCHEMA for r in doc["records"])
        assert all(r["kind"] == "microbench" for r in doc["records"])


class TestDefaultRunDB:
    def test_unset_env_disables(self, monkeypatch):
        monkeypatch.delenv("REPRO_RUNDB", raising=False)
        assert default_rundb() is None

    def test_env_points_at_path(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RUNDB", str(tmp_path / "db.jsonl"))
        db = default_rundb()
        assert db is not None and db.path == tmp_path / "db.jsonl"
