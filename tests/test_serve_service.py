"""Service-layer tests: deltas, fingerprints, warm/full/cached request
modes, the drift fallback, metrics plumbing, and the HTTP front end."""

import asyncio
import json

import numpy as np
import pytest

from repro.core import config as C
from repro.core.config import ServeConfig
from repro.graph import generators as gen
from repro.graph.builder import from_edges
from repro.graph.compressed import compress_graph
from repro.graph.fingerprint import graph_fingerprint
from repro.memory.tracker import MemoryTracker
from repro.serve import (
    GraphDelta,
    PartitionService,
    ServiceError,
    ServiceHandle,
    apply_delta,
    random_delta,
)

CFG = C.terapart()
FAST_SERVE = ServeConfig(cache_budget_bytes=8 * 1024 * 1024)


@pytest.fixture
def small_web():
    return gen.weblike(300, avg_degree=8, seed=3)


# --------------------------------------------------------------------- #
# fingerprints
# --------------------------------------------------------------------- #
class TestFingerprint:
    def test_deterministic(self, small_web):
        assert graph_fingerprint(small_web) == graph_fingerprint(small_web)

    def test_structure_sensitivity(self, small_web):
        other = gen.weblike(300, avg_degree=8, seed=4)
        assert graph_fingerprint(small_web) != graph_fingerprint(other)

    def test_weights_change_fingerprint(self):
        edges = np.array([[0, 1], [1, 2]], dtype=np.int64)
        a = from_edges(3, edges)
        b = from_edges(3, edges, np.array([5, 1], dtype=np.int64))
        assert graph_fingerprint(a) != graph_fingerprint(b)

    def test_compressed_form_distinct(self, small_web):
        cg = compress_graph(small_web)
        assert graph_fingerprint(cg) != graph_fingerprint(small_web)


# --------------------------------------------------------------------- #
# deltas
# --------------------------------------------------------------------- #
class TestApplyDelta:
    def test_add_edge(self, tiny_graph):
        g, changed = apply_delta(
            tiny_graph, GraphDelta(add_edges=[[0, 5]])
        )
        assert changed == 1 and g.m == tiny_graph.m + 1
        g.validate()

    def test_remove_edge(self, tiny_graph):
        g, changed = apply_delta(
            tiny_graph, GraphDelta(remove_edges=[[2, 3]])
        )
        assert changed == 1 and g.m == tiny_graph.m - 1
        g.validate()

    def test_remove_absent_is_noop_without_drift(self, tiny_graph):
        g, changed = apply_delta(
            tiny_graph, GraphDelta(remove_edges=[[0, 4]])
        )
        assert changed == 0 and g.m == tiny_graph.m

    def test_add_existing_replaces_weight(self, weighted_graph):
        g, changed = apply_delta(
            weighted_graph,
            GraphDelta(add_edges=[[0, 1]], add_weights=[9]),
        )
        assert changed == 1 and g.m == weighted_graph.m
        nbrs, wgts = g.neighbors_and_weights(0)
        assert int(np.asarray(wgts)[np.asarray(nbrs) == 1][0]) == 9

    def test_add_existing_same_weight_no_drift(self, weighted_graph):
        g, changed = apply_delta(
            weighted_graph,
            GraphDelta(add_edges=[[0, 1]], add_weights=[5]),
        )
        assert changed == 0

    def test_unit_weights_stay_unit(self, tiny_graph):
        assert not tiny_graph.has_edge_weights
        g, _ = apply_delta(tiny_graph, GraphDelta(add_edges=[[0, 4]]))
        assert not g.has_edge_weights

    def test_add_vertices_isolated(self, tiny_graph):
        g, changed = apply_delta(tiny_graph, GraphDelta(add_vertices=3))
        assert g.n == tiny_graph.n + 3 and g.m == tiny_graph.m
        assert changed == 0

    def test_edge_to_new_vertex(self, tiny_graph):
        g, changed = apply_delta(
            tiny_graph,
            GraphDelta(add_edges=[[0, 6]], add_vertices=1),
        )
        assert g.n == 7 and changed == 1
        g.validate()

    def test_out_of_range_rejected(self, tiny_graph):
        with pytest.raises(ValueError, match="references vertex"):
            apply_delta(tiny_graph, GraphDelta(add_edges=[[0, 99]]))

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            GraphDelta(add_edges=[[1, 1]])

    def test_vertex_weight_update(self, tiny_graph):
        g, changed = apply_delta(
            tiny_graph, GraphDelta(vertex_weights=[[2, 7]])
        )
        assert changed == 1 and int(g.vwgt[2]) == 7

    def test_wire_roundtrip(self):
        d = GraphDelta(
            add_edges=[[0, 1], [2, 3]],
            add_weights=[4, 5],
            remove_edges=[[1, 2]],
            vertex_weights=[[0, 2]],
            add_vertices=1,
        )
        d2 = GraphDelta.from_dict(json.loads(json.dumps(d.to_dict())))
        assert np.array_equal(d.add_edges, d2.add_edges)
        assert np.array_equal(d.add_weights, d2.add_weights)
        assert np.array_equal(d.remove_edges, d2.remove_edges)
        assert np.array_equal(d.vertex_weights, d2.vertex_weights)
        assert d2.add_vertices == 1

    def test_random_delta_applies_cleanly(self, small_web):
        rng = np.random.default_rng(0)
        d = random_delta(small_web, rng, n_add=20, n_remove=20)
        g, changed = apply_delta(small_web, d)
        g.validate()
        assert changed > 0


# --------------------------------------------------------------------- #
# request modes
# --------------------------------------------------------------------- #
class TestRequestModes:
    def test_full_then_cached(self, small_web):
        with ServiceHandle(CFG, FAST_SERVE) as h:
            h.register_graph("g", small_web)
            r1 = h.partition("g", 4)
            r2 = h.partition("g", 4)
        assert r1.mode == "full" and r1.balanced
        assert r2.mode == "cached" and r2.cut == r1.cut
        assert np.array_equal(r1.partition, r2.partition)

    def test_delta_then_warm(self, small_web):
        with ServiceHandle(CFG, FAST_SERVE) as h:
            h.register_graph("g", small_web)
            r1 = h.partition("g", 4)
            info = h.apply_delta(
                "g",
                random_delta(
                    small_web, np.random.default_rng(1), n_add=6, n_remove=6
                ),
            )
            r2 = h.partition("g", 4)
            snap = h.metrics_snapshot()
        assert r1.mode == "full"
        assert info["changed_edges"] > 0
        assert r2.mode == "warm" and r2.drift > 0
        assert r2.balanced
        assert snap["serve.warm_runs"] == 1 and snap["serve.full_runs"] == 1
        # the warm result is a valid partition of the drifted graph
        assert len(r2.partition) == info["n"]

    def test_drift_fallback_forces_full(self, small_web):
        scfg = ServeConfig(
            cache_budget_bytes=FAST_SERVE.cache_budget_bytes,
            drift_threshold=1e-9,
        )
        with ServiceHandle(CFG, scfg) as h:
            h.register_graph("g", small_web)
            h.partition("g", 4)
            h.apply_delta(
                "g",
                random_delta(
                    small_web, np.random.default_rng(2), n_add=8, n_remove=8
                ),
            )
            r2 = h.partition("g", 4)
            snap = h.metrics_snapshot()
        assert r2.mode == "full"
        assert snap["serve.fallback_drift"] == 1

    def test_force_full_overrides_warm(self, small_web):
        with ServiceHandle(CFG, FAST_SERVE) as h:
            h.register_graph("g", small_web)
            h.partition("g", 4)
            h.apply_delta(
                "g",
                random_delta(
                    small_web, np.random.default_rng(3), n_add=4, n_remove=4
                ),
            )
            r2 = h.partition("g", 4, force_full=True)
        assert r2.mode == "full"

    def test_warm_start_disabled(self, small_web):
        scfg = ServeConfig(
            cache_budget_bytes=FAST_SERVE.cache_budget_bytes,
            warm_start=False,
        )
        with ServiceHandle(CFG, scfg) as h:
            h.register_graph("g", small_web)
            h.partition("g", 4)
            h.apply_delta(
                "g",
                random_delta(
                    small_web, np.random.default_rng(4), n_add=4, n_remove=4
                ),
            )
            r2 = h.partition("g", 4)
        assert r2.mode == "full"

    def test_warm_covers_added_vertices(self, small_web):
        with ServiceHandle(CFG, FAST_SERVE) as h:
            h.register_graph("g", small_web)
            h.partition("g", 4)
            h.apply_delta(
                "g",
                GraphDelta(
                    add_edges=[[0, small_web.n], [1, small_web.n + 1]],
                    add_vertices=2,
                ),
            )
            r2 = h.partition("g", 4)
        assert r2.mode == "warm"
        assert len(r2.partition) == small_web.n + 2
        assert r2.partition.min() >= 0 and r2.partition.max() < 4

    def test_unknown_graph_structured_error(self):
        with ServiceHandle(CFG, FAST_SERVE) as h:
            with pytest.raises(ServiceError) as ei:
                h.partition("nope", 4)
        assert ei.value.code == "unknown-graph"
        assert ei.value.to_dict()["detail"]["graph"] == "nope"

    def test_bad_k_rejected(self, small_web):
        with ServiceHandle(CFG, FAST_SERVE) as h:
            h.register_graph("g", small_web)
            with pytest.raises(ServiceError) as ei:
                h.partition("g", 0)
        assert ei.value.code == "bad-request"

    def test_compressed_registration_rejected(self, small_web):
        with ServiceHandle(CFG, FAST_SERVE) as h:
            with pytest.raises(ServiceError) as ei:
                h.register_graph("g", compress_graph(small_web))
        assert ei.value.code == "bad-request"

    def test_metrics_registry_schema(self, small_web):
        with ServiceHandle(CFG, FAST_SERVE) as h:
            h.register_graph("g", small_web)
            h.partition("g", 4)
            reg = h.metrics_registry()
        d = reg.to_dict()
        assert d["counters"]["serve.requests"] == 1
        assert d["counters"]["serve.full_runs"] == 1
        assert "g" in d["meta"]["graphs"]

    def test_epsilon_changes_cache_key(self, small_web):
        with ServiceHandle(CFG, FAST_SERVE) as h:
            h.register_graph("g", small_web)
            r1 = h.partition("g", 4, epsilon=0.03)
            r2 = h.partition("g", 4, epsilon=0.10)
            snap = h.metrics_snapshot()
        assert r1.mode == "full" and r2.mode == "full"
        assert snap["serve.full_runs"] == 2


# --------------------------------------------------------------------- #
# the HTTP front end
# --------------------------------------------------------------------- #
async def _http(port: int, method: str, path: str, body: dict | None = None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = b"" if body is None else json.dumps(body).encode()
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
        f"Content-Length: {len(payload)}\r\n\r\n"
    ).encode()
    writer.write(head + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    head_s, _, body_s = raw.partition(b"\r\n\r\n")
    status = int(head_s.split(b" ")[1])
    return status, json.loads(body_s)


class TestHttpFrontend:
    def _run(self, coro_fn):
        """Run a coroutine against a live service + frontend on port 0."""
        from repro.serve.http import HttpFrontend

        async def _main():
            service = await PartitionService.create(CFG, FAST_SERVE)
            service_graph = gen.weblike(200, avg_degree=8, seed=5)
            await service.register_graph("web", service_graph)
            frontend = HttpFrontend(service)
            await frontend.start("127.0.0.1", 0)
            try:
                return await coro_fn(frontend.port)
            finally:
                await frontend.aclose()
                await service.aclose()

        return asyncio.run(_main())

    def test_healthz_and_partition_and_metrics(self):
        async def flow(port):
            s1, health = await _http(port, "GET", "/healthz")
            s2, part = await _http(
                port, "POST", "/partition", {"graph": "web", "k": 4}
            )
            s3, again = await _http(
                port,
                "POST",
                "/partition",
                {"graph": "web", "k": 4, "include_partition": True},
            )
            s4, metrics = await _http(port, "GET", "/metrics")
            return s1, health, s2, part, s3, again, s4, metrics

        s1, health, s2, part, s3, again, s4, metrics = self._run(flow)
        assert s1 == 200 and health["ok"] and health["graphs"] == ["web"]
        assert s2 == 200 and part["mode"] == "full" and part["balanced"]
        assert "partition" not in part
        assert s3 == 200 and again["mode"] == "cached"
        assert len(again["partition"]) == 200
        assert s4 == 200 and metrics["serve.requests"] == 2

    def test_delta_then_warm_over_http(self):
        async def flow(port):
            await _http(port, "POST", "/partition", {"graph": "web", "k": 4})
            s1, dinfo = await _http(
                port,
                "POST",
                "/delta",
                {"graph": "web", "add": [[0, 7], [3, 11]], "remove": []},
            )
            s2, part = await _http(
                port, "POST", "/partition", {"graph": "web", "k": 4}
            )
            return s1, dinfo, s2, part

        s1, dinfo, s2, part = self._run(flow)
        assert s1 == 200 and dinfo["total_changed"] >= 1
        assert s2 == 200 and part["mode"] == "warm"

    def test_error_statuses(self):
        async def flow(port):
            s404, e404 = await _http(
                port, "POST", "/partition", {"graph": "nope", "k": 4}
            )
            s400, e400 = await _http(port, "POST", "/partition", {"k": 4})
            s405, _ = await _http(port, "GET", "/partition")
            sbad, _ = await _http(port, "GET", "/bogus")
            return s404, e404, s400, e400, s405, sbad

        s404, e404, s400, e400, s405, sbad = self._run(flow)
        assert s404 == 404 and e404["code"] == "unknown-graph"
        assert s400 == 400 and e400["code"] == "bad-request"
        assert s405 == 405
        assert sbad == 404
