"""Tests for LP refinement, k-way FM, and the rebalancer."""

import numpy as np
import pytest

from repro.core.config import FMConfig, GainTableKind, terapart
from repro.core.context import PartitionContext
from repro.core.partition import PartitionedGraph, max_block_weight
from repro.core.refinement.balancer import rebalance
from repro.core.refinement.fm_refine import fm_refine
from repro.core.refinement.lp_refine import lp_refine
from repro.graph import generators as gen
from repro.memory import MemoryTracker


def make_ctx(graph, k=4, seed=0, **overrides):
    return PartitionContext(
        config=terapart(seed=seed, **overrides),
        k=k,
        total_vertex_weight=graph.total_vertex_weight,
        tracker=MemoryTracker(),
    )


def random_partition(graph, k, seed=0):
    rng = np.random.default_rng(seed)
    return PartitionedGraph(
        graph, k, rng.integers(0, k, size=graph.n).astype(np.int32)
    )


class TestLPRefine:
    def test_improves_random_partition(self, grid_graph):
        pg = random_partition(grid_graph, 4, seed=1)
        before = pg.cut_weight()
        ctx = make_ctx(grid_graph)
        lmax = max_block_weight(grid_graph.total_vertex_weight, 4, 0.05)
        lp_refine(pg, ctx, lmax)
        assert pg.cut_weight() < before
        pg.validate()

    def test_respects_balance(self, family_graph):
        pg = random_partition(family_graph, 4, seed=2)
        ctx = make_ctx(family_graph)
        lmax = max_block_weight(family_graph.total_vertex_weight, 4, 0.03)
        lp_refine(pg, ctx, lmax)
        assert pg.block_weights.max() <= lmax

    def test_fixed_point_on_perfect_partition(self):
        """Two disconnected cliques, already optimally split: no moves."""
        from repro.graph.builder import from_edges

        edges = []
        for b in range(2):
            off = b * 4
            for i in range(4):
                for j in range(i + 1, 4):
                    edges.append([off + i, off + j])
        g = from_edges(8, np.array(edges))
        pg = PartitionedGraph(
            g, 2, np.array([0] * 4 + [1] * 4, dtype=np.int32)
        )
        ctx = make_ctx(g, k=2)
        moves = lp_refine(pg, ctx, max_block_weight=5)
        assert moves == 0
        assert pg.cut_weight() == 0

    def test_zero_rounds_is_noop(self, grid_graph):
        pg = random_partition(grid_graph, 4, seed=3)
        before = pg.partition.copy()
        ctx = make_ctx(grid_graph)
        lp_refine(pg, ctx, 1000, rounds=0)
        assert np.array_equal(pg.partition, before)


class TestFMRefine:
    @pytest.mark.parametrize("kind", list(GainTableKind))
    def test_improves_cut_all_gain_tables(self, grid_graph, kind):
        pg = random_partition(grid_graph, 4, seed=4)
        before = pg.cut_weight()
        ctx = make_ctx(grid_graph)
        lmax = max_block_weight(grid_graph.total_vertex_weight, 4, 0.05)
        improvement = fm_refine(pg, ctx, lmax, FMConfig(gain_table=kind))
        assert pg.cut_weight() < before
        assert improvement == before - pg.cut_weight()
        pg.validate()

    def test_gain_table_kinds_equivalent_results(self, grid_graph):
        """All three caches must drive FM through identical move sequences."""
        cuts = {}
        for kind in GainTableKind:
            pg = random_partition(grid_graph, 4, seed=5)
            ctx = make_ctx(grid_graph, seed=9)
            lmax = max_block_weight(grid_graph.total_vertex_weight, 4, 0.05)
            fm_refine(pg, ctx, lmax, FMConfig(gain_table=kind))
            cuts[kind] = pg.cut_weight()
        assert len(set(cuts.values())) == 1

    def test_respects_balance(self, family_graph):
        pg = random_partition(family_graph, 4, seed=6)
        ctx = make_ctx(family_graph)
        lmax = max_block_weight(family_graph.total_vertex_weight, 4, 0.03)
        # start from an LP-refined (balanced) partition as FM expects
        rebalance(pg, lmax)
        fm_refine(pg, ctx, lmax)
        assert pg.block_weights.max() <= lmax

    def test_no_leak_in_tracker(self, grid_graph):
        pg = random_partition(grid_graph, 4, seed=7)
        ctx = make_ctx(grid_graph)
        fm_refine(pg, ctx, 100)
        ctx.tracker.assert_empty()

    def test_fm_beats_lp_alone(self, rgg_graph):
        """The paper: FM reduces cuts over LP-only refinement (Fig. 7)."""
        lmax = max_block_weight(rgg_graph.total_vertex_weight, 4, 0.05)
        pg_lp = random_partition(rgg_graph, 4, seed=8)
        ctx = make_ctx(rgg_graph)
        rebalance(pg_lp, lmax)
        lp_refine(pg_lp, ctx, lmax)
        pg_fm = PartitionedGraph(rgg_graph, 4, pg_lp.partition.copy())
        fm_refine(pg_fm, make_ctx(rgg_graph), lmax)
        assert pg_fm.cut_weight() <= pg_lp.cut_weight()

    def test_rollback_keeps_best_prefix(self):
        """On a graph where every move is bad, FM must end where it began."""
        g = gen.complete(8)
        part = np.array([0, 0, 0, 0, 1, 1, 1, 1], dtype=np.int32)
        pg = PartitionedGraph(g, 2, part.copy())
        before = pg.cut_weight()
        ctx = make_ctx(g, k=2)
        fm_refine(pg, ctx, max_block_weight=5)
        assert pg.cut_weight() <= before


class TestRebalance:
    def test_fixes_overload(self, grid_graph):
        n = grid_graph.n
        part = np.zeros(n, dtype=np.int32)  # everything in block 0
        pg = PartitionedGraph(grid_graph, 4, part)
        lmax = max_block_weight(n, 4, 0.05)
        moves = rebalance(pg, lmax)
        assert moves > 0
        assert pg.block_weights.max() <= lmax
        pg.validate()

    def test_noop_when_balanced(self, grid_graph):
        pg = random_partition(grid_graph, 4, seed=9)
        lmax = max_block_weight(grid_graph.n, 4, 0.5)
        assert rebalance(pg, lmax) == 0

    def test_moves_cheapest_vertices_first(self):
        """Rebalancing a grid should cut less than moving random vertices."""
        g = gen.grid2d(10, 10)
        part = np.zeros(100, dtype=np.int32)
        part[:60] = 0
        part[60:] = 1
        pg = PartitionedGraph(g, 2, part)
        lmax = max_block_weight(100, 2, 0.03)  # 52 per block
        rebalance(pg, lmax)
        assert pg.block_weights.max() <= lmax

    def test_weighted_vertices(self):
        from repro.graph.builder import from_edges

        g = from_edges(
            4,
            np.array([[0, 1], [1, 2], [2, 3]]),
            vwgt=np.array([4, 1, 1, 1]),
        )
        part = np.array([0, 0, 0, 1], dtype=np.int32)
        pg = PartitionedGraph(g, 2, part)
        rebalance(pg, max_block_weight=5)
        assert pg.block_weights.max() <= 5
