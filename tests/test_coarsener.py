"""Tests for the coarsening level loop (repro.core.coarsening.coarsener)."""

import numpy as np
import pytest

from repro.core.config import CoarseningConfig, terapart
from repro.core.context import PartitionContext
from repro.core.coarsening.coarsener import coarsen_hierarchy
from repro.graph import generators as gen
from repro.graph.compressed import compress_graph
from repro.memory import MemoryTracker


def make_ctx(graph, k=4, **coarsening_overrides):
    cfg = terapart(seed=5)
    if coarsening_overrides:
        cfg = cfg.with_(coarsening=CoarseningConfig(**coarsening_overrides))
    return PartitionContext(
        config=cfg,
        k=k,
        total_vertex_weight=graph.total_vertex_weight,
        tracker=MemoryTracker(),
    )


class TestHierarchy:
    def test_shrinks_monotonically(self):
        g = gen.grid2d(40, 40)
        ctx = make_ctx(g)
        levels = coarsen_hierarchy(g, ctx)
        assert len(levels) >= 1
        ns = [g.n] + [l.graph.n for l in levels]
        assert all(b < a for a, b in zip(ns, ns[1:]))

    def test_stops_at_contraction_limit(self):
        g = gen.grid2d(40, 40)
        ctx = make_ctx(g, k=4)
        levels = coarsen_hierarchy(g, ctx)
        # it never coarsens a graph already below the limit
        limit = ctx.contraction_limit()
        for before, lvl in zip([g] + [l.graph for l in levels], levels):
            assert before.n > limit

    def test_total_weight_invariant(self):
        g = gen.weblike(1200, 12.0, seed=3)
        ctx = make_ctx(g)
        levels = coarsen_hierarchy(g, ctx)
        for lvl in levels:
            assert lvl.graph.total_vertex_weight == g.total_vertex_weight

    def test_fine_to_coarse_maps_compose(self):
        g = gen.rgg2d(1000, 8.0, seed=4)
        ctx = make_ctx(g)
        levels = coarsen_hierarchy(g, ctx)
        mapping = np.arange(g.n, dtype=np.int64)
        for lvl in levels:
            mapping = lvl.fine_to_coarse[mapping]
        assert mapping.min() >= 0
        assert mapping.max() < levels[-1].graph.n

    def test_coarse_cut_upper_bounds_projected_cut(self):
        """Any partition of a coarse level projects to the same cut on the
        finer level (contraction preserves inter-cluster edge weights)."""
        from repro.core.partition import PartitionedGraph

        g = gen.grid2d(30, 30)
        ctx = make_ctx(g)
        levels = coarsen_hierarchy(g, ctx)
        coarse = levels[0].graph
        rng = np.random.default_rng(0)
        cpart = rng.integers(0, 3, size=coarse.n).astype(np.int32)
        fpart = cpart[levels[0].fine_to_coarse]
        cut_c = PartitionedGraph(coarse, 3, cpart).cut_weight()
        cut_f = PartitionedGraph(g, 3, fpart).cut_weight()
        assert cut_c == cut_f

    def test_respects_max_levels(self):
        g = gen.grid2d(40, 40)
        ctx = make_ctx(g, max_levels=1)
        levels = coarsen_hierarchy(g, ctx)
        assert len(levels) <= 1

    def test_compressed_input_supported(self):
        g = gen.weblike(1000, 12.0, seed=6)
        cg = compress_graph(g)
        ctx_a = make_ctx(g)
        ctx_b = make_ctx(g)
        la = coarsen_hierarchy(g, ctx_a)
        lb = coarsen_hierarchy(cg, ctx_b)
        assert [l.graph.n for l in la] == [l.graph.n for l in lb]
        assert [l.graph.m for l in la] == [l.graph.m for l in lb]

    def test_small_graph_no_levels(self):
        g = gen.grid2d(5, 5)
        ctx = make_ctx(g, k=4)  # limit = 128 > 25
        assert coarsen_hierarchy(g, ctx) == []

    def test_memory_freed_with_hierarchy(self):
        g = gen.grid2d(30, 30)
        ctx = make_ctx(g)
        levels = coarsen_hierarchy(g, ctx)
        for lvl in levels:
            ctx.tracker.free(lvl.graph_aid)
        ctx.tracker.assert_empty()

    def test_stats_recorded(self):
        g = gen.grid2d(40, 40)
        ctx = make_ctx(g)
        levels = coarsen_hierarchy(g, ctx)
        for lvl in levels:
            assert lvl.stats["shrink"] > 1.0
            assert lvl.stats["n"] == lvl.graph.n
