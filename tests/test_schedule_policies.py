"""Unit tests for pluggable schedule policies (repro.parallel.runtime)."""

import numpy as np
import pytest

from repro.parallel.runtime import SCHEDULE_POLICIES, ParallelRuntime
from repro.verify.conflicts import ConflictDetector


def _chunk_lists(runtime, order):
    sched = runtime.schedule(order)
    return [c.tolist() for _, c in runtime.execute(sched)]


class TestExecutionOrder:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            ParallelRuntime(2, schedule_policy="zigzag")

    def test_default_is_issue_order(self):
        rt = ParallelRuntime(2, chunk_size=4)
        sched = rt.schedule(np.arange(20))
        order = rt.execution_order(sched)
        assert order.tolist() == list(range(sched.num_chunks))

    def test_issue_policy_matches_default(self):
        order = np.arange(30)
        base = _chunk_lists(ParallelRuntime(2, chunk_size=4), order)
        issue = _chunk_lists(
            ParallelRuntime(2, chunk_size=4, schedule_policy="issue"), order
        )
        assert base == issue

    def test_reversed(self):
        rt = ParallelRuntime(2, chunk_size=4, schedule_policy="reversed")
        chunks = _chunk_lists(rt, np.arange(12))
        assert chunks == [[8, 9, 10, 11], [4, 5, 6, 7], [0, 1, 2, 3]]

    def test_random_is_seeded_and_reproducible(self):
        a = _chunk_lists(
            ParallelRuntime(2, chunk_size=4, schedule_policy="random", schedule_seed=5),
            np.arange(40),
        )
        b = _chunk_lists(
            ParallelRuntime(2, chunk_size=4, schedule_policy="random", schedule_seed=5),
            np.arange(40),
        )
        c = _chunk_lists(
            ParallelRuntime(2, chunk_size=4, schedule_policy="random", schedule_seed=6),
            np.arange(40),
        )
        assert a == b
        assert a != c

    def test_random_varies_per_region(self):
        rt = ParallelRuntime(2, chunk_size=2, schedule_policy="random", schedule_seed=1)
        order = np.arange(32)
        first = _chunk_lists(rt, order)
        second = _chunk_lists(rt, order)
        assert first != second  # fresh permutation per parallel region

    def test_heavy_first_uses_weights(self):
        rt = ParallelRuntime(2, chunk_size=2, schedule_policy="heavy-first")
        sched = rt.schedule(np.arange(8))
        weights = np.array([1, 9, 3, 7])
        order = rt.execution_order(sched, weights=weights)
        assert order.tolist() == [1, 3, 2, 0]

    def test_heavy_first_falls_back_to_chunk_sizes(self):
        rt = ParallelRuntime(2, chunk_size=4, schedule_policy="heavy-first")
        sched = rt.schedule(np.arange(10))  # sizes 4, 4, 2
        order = rt.execution_order(sched)
        assert order.tolist()[-1] == 2  # the short tail chunk runs last

    def test_default_order_passthrough_without_policy(self):
        rt = ParallelRuntime(2, chunk_size=4)
        sched = rt.schedule(np.arange(12))
        custom = np.array([2, 0, 1])
        assert rt.execution_order(sched, default=custom).tolist() == [2, 0, 1]

    def test_policy_overrides_default_order(self):
        rt = ParallelRuntime(2, chunk_size=4, schedule_policy="reversed")
        sched = rt.schedule(np.arange(12))
        custom = np.array([2, 0, 1])
        assert rt.execution_order(sched, default=custom).tolist() == [2, 1, 0]


class TestExecute:
    @pytest.mark.parametrize("policy", [None, *SCHEDULE_POLICIES])
    def test_every_item_executed_exactly_once(self, policy):
        rt = ParallelRuntime(3, chunk_size=5, schedule_policy=policy)
        order = np.random.default_rng(0).permutation(47)
        sched = rt.schedule(order)
        seen = np.concatenate([c for _, c in rt.execute(sched)])
        assert sorted(seen.tolist()) == sorted(order.tolist())

    def test_owner_stays_attached_to_chunk(self):
        # reordering execution must not reassign chunks to other threads
        rt = ParallelRuntime(3, chunk_size=4, schedule_policy="reversed")
        sched = rt.schedule(np.arange(24))
        executed = list(rt.execute(sched))
        by_chunk = {tuple(c.tolist()): tid for tid, c in executed}
        for ci, chunk in enumerate(sched.chunks):
            assert by_chunk[tuple(chunk.tolist())] == ci % 3

    def test_announces_tid_to_detector(self):
        rt = ParallelRuntime(2, chunk_size=4)
        det = ConflictDetector()
        rt.attach_detector(det)
        det.begin_region("t")
        seen_tids = []
        sched = rt.schedule(np.arange(16))
        for tid, _chunk in rt.execute(sched):
            assert det.current_tid == tid
            seen_tids.append(tid)
        assert det.current_tid is None
        assert seen_tids == [0, 1, 0, 1]

    def test_detach_returns_detector(self):
        rt = ParallelRuntime(2)
        det = ConflictDetector()
        rt.attach_detector(det)
        assert rt.detach_detector() is det
        assert rt.detector is None
