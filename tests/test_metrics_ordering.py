"""Tests for partition metrics and vertex reordering."""

import numpy as np
import pytest

from repro.core.metrics import (
    block_connectivity,
    communication_volume,
    compute_metrics,
    read_partition,
    write_partition,
)
from repro.core.partition import PartitionedGraph
from repro.graph import generators as gen
from repro.graph.builder import from_edges
from repro.graph.compressed import compress_graph
from repro.graph.ordering import bfs_order, degree_order, random_order, relabel

from conftest import graphs_equal


class TestCommunicationVolume:
    def test_two_cliques_one_edge(self, tiny_graph):
        pg = PartitionedGraph(
            tiny_graph, 2, np.array([0, 0, 0, 1, 1, 1], dtype=np.int32)
        )
        # vertices 2 and 3 each need one foreign replica
        total, per_block_max = communication_volume(pg)
        assert total == 2
        assert per_block_max == 1

    def test_single_block_zero(self, grid_graph):
        pg = PartitionedGraph(grid_graph, 1, np.zeros(grid_graph.n, dtype=np.int32))
        assert communication_volume(pg) == (0, 0)

    def test_cv_at_most_cut(self, family_graph):
        """Each cut edge creates at most 2 replica pairs; cv <= 2*cut_edges."""
        rng = np.random.default_rng(0)
        pg = PartitionedGraph(
            family_graph, 4, rng.integers(0, 4, size=family_graph.n).astype(np.int32)
        )
        total, _ = communication_volume(pg)
        src, dst, _w = (
            np.repeat(np.arange(family_graph.n), family_graph.degrees),
            family_graph.adjncy,
            None,
        )
        cut_edges = int((pg.partition[src] != pg.partition[dst]).sum()) // 2
        assert total <= 2 * cut_edges


class TestBlockConnectivity:
    def test_connected_split(self):
        g = gen.grid2d(6, 6)
        part = np.zeros(36, dtype=np.int32)
        part[18:] = 1  # two horizontal halves: both connected
        pg = PartitionedGraph(g, 2, part)
        assert block_connectivity(pg) == 2

    def test_disconnected_block_detected(self):
        g = gen.path(6)
        # block 0 = {0, 5}: the two path endpoints, not connected
        part = np.array([0, 1, 1, 1, 1, 0], dtype=np.int32)
        pg = PartitionedGraph(g, 2, part)
        assert block_connectivity(pg) == 1

    def test_singleton_blocks_connected(self):
        g = gen.path(3)
        pg = PartitionedGraph(g, 3, np.array([0, 1, 2], dtype=np.int32))
        assert block_connectivity(pg) == 3


class TestComputeMetrics:
    def test_full_report(self, grid_graph):
        import repro
        from repro.core import config as C

        r = repro.partition(grid_graph, 4, C.terapart(seed=1))
        m = compute_metrics(r.pgraph)
        assert m.cut_weight == r.cut
        assert m.nonempty_blocks == 4
        assert m.boundary_vertices > 0
        assert m.communication_volume >= m.boundary_vertices
        assert "cut=" in m.row()


class TestPartitionIO:
    def test_roundtrip(self, tmp_path):
        part = np.array([0, 1, 2, 1, 0], dtype=np.int32)
        path = tmp_path / "g.part"
        write_partition(path, part)
        assert np.array_equal(read_partition(path), part)


class TestRelabel:
    def test_identity(self, family_graph):
        g2 = relabel(family_graph, np.arange(family_graph.n))
        assert graphs_equal(g2, family_graph)

    def test_preserves_structure(self, weighted_graph):
        perm = np.array([2, 0, 3, 1], dtype=np.int64)
        g2 = relabel(weighted_graph, perm)
        g2.validate()
        assert g2.m == weighted_graph.m
        assert g2.total_edge_weight == weighted_graph.total_edge_weight
        assert g2.total_vertex_weight == weighted_graph.total_vertex_weight
        # edge (0,1,w=5) became (2,0,w=5)
        assert 0 in g2.neighbors(2).tolist()

    def test_rejects_non_permutation(self, tiny_graph):
        with pytest.raises(ValueError):
            relabel(tiny_graph, np.zeros(6, dtype=np.int64))
        with pytest.raises(ValueError):
            relabel(tiny_graph, np.arange(3))

    def test_cut_invariant_under_relabel(self, grid_graph):
        rng = np.random.default_rng(1)
        perm = rng.permutation(grid_graph.n).astype(np.int64)
        g2 = relabel(grid_graph, perm)
        part = rng.integers(0, 4, size=grid_graph.n).astype(np.int32)
        part2 = np.empty_like(part)
        part2[perm] = part
        cut1 = PartitionedGraph(grid_graph, 4, part).cut_weight()
        cut2 = PartitionedGraph(g2, 4, part2).cut_weight()
        assert cut1 == cut2


class TestOrderings:
    def test_bfs_order_is_permutation(self, family_graph):
        order = bfs_order(family_graph, seed=1)
        assert len(np.unique(order)) == family_graph.n

    def test_bfs_handles_disconnected(self):
        g = from_edges(6, np.array([[0, 1], [3, 4]]))
        order = bfs_order(g, seed=2)
        assert len(np.unique(order)) == 6

    def test_degree_order_sorts(self, web_graph):
        order = degree_order(web_graph)
        g2 = relabel(web_graph, order)
        degs = g2.degrees
        assert np.all(np.diff(degs) >= 0) or degs[0] <= degs[-1]

    def test_bfs_improves_kmer_compression(self):
        """The locality story: kmer graphs compress badly until reordered."""
        g = gen.kmer(3000, degree=4, seed=3)
        base = compress_graph(g).stats.ratio
        g_bfs = relabel(g, bfs_order(g, seed=3))
        improved = compress_graph(g_bfs).stats.ratio
        assert improved > base

    def test_random_order_hurts_web_compression(self):
        g = gen.weblike(3000, 14.0, seed=4)
        base = compress_graph(g).stats.ratio
        g_rand = relabel(g, random_order(g, seed=4))
        destroyed = compress_graph(g_rand).stats.ratio
        assert destroyed < base
