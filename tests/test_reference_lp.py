"""Equivalence tests: pseudocode-faithful Algorithms 1/2 vs each other.

These pin the correctness of the two-phase scheme at the data-structure
level: the hash-table/bump/flush machinery of Algorithm 2 must compute the
same ratings -- and hence identical clustering decisions -- as Algorithm 1's
per-thread sparse arrays, on the same visit order.
"""

import numpy as np
import pytest

from repro.core.coarsening.reference import (
    lp_round_algorithm1,
    lp_round_algorithm2,
)
from repro.graph import generators as gen


def run_rounds(graph, algorithm, rounds=3, cap=9, seed=3, **kw):
    rng = np.random.default_rng(seed)
    clusters = np.arange(graph.n, dtype=np.int64)
    weights = np.asarray(graph.vwgt).astype(np.int64).copy()
    stats = []
    for _ in range(rounds):
        order = rng.permutation(graph.n).astype(np.int64)
        stats.append(algorithm(graph, clusters, weights, order, cap, **kw))
    return clusters, weights, stats


class TestAlgorithmEquivalence:
    @pytest.mark.parametrize("fam", ["grid", "web", "rgg", "kmer"])
    def test_algorithm2_matches_algorithm1(
        self, fam, grid_graph, web_graph, rgg_graph, kmer_graph
    ):
        g = {
            "grid": grid_graph,
            "web": web_graph,
            "rgg": rgg_graph,
            "kmer": kmer_graph,
        }[fam]
        c1, w1, _ = run_rounds(g, lp_round_algorithm1, rounds=2)
        c2, w2, _ = run_rounds(
            g,
            lambda *a, **k: lp_round_algorithm2(*a, t_bump=10_000, **k),
            rounds=2,
        )
        assert np.array_equal(c1, c2)
        assert np.array_equal(w1, w2)

    def test_small_t_bump_similar_outcome(self, web_graph):
        """Bumping defers a vertex to the second phase, where it sees newer
        labels -- decisions may differ from the unbumped run (exactly as in
        a real parallel execution), but the clustering outcome is
        statistically the same: similar cluster counts, caps respected."""
        c_hi, w_hi, _ = run_rounds(
            web_graph,
            lambda *a, **k: lp_round_algorithm2(*a, t_bump=10_000, **k),
            rounds=2,
        )
        c_lo, w_lo, s_lo = run_rounds(
            web_graph,
            lambda *a, **k: lp_round_algorithm2(*a, t_bump=8, **k),
            rounds=2,
        )
        # with T=8 on a web graph, plenty of vertices took the second phase
        assert sum(b for _, b in s_lo) > 0
        n_hi = len(np.unique(c_hi))
        n_lo = len(np.unique(c_lo))
        assert abs(n_hi - n_lo) < 0.25 * max(n_hi, n_lo)
        # weights stay consistent and capped in both runs
        for c, w in ((c_hi, w_hi), (c_lo, w_lo)):
            check = np.zeros(web_graph.n, dtype=np.int64)
            np.add.at(check, c, np.asarray(web_graph.vwgt))
            assert np.array_equal(check, w)
            assert check.max() <= 9

    def test_star_hub_is_bumped(self):
        g = gen.star(300)
        clusters = np.arange(g.n, dtype=np.int64)
        weights = np.asarray(g.vwgt).astype(np.int64).copy()
        order = np.arange(g.n, dtype=np.int64)
        _, bumped = lp_round_algorithm2(
            g, clusters, weights, order, max_cluster_weight=1000, t_bump=16
        )
        assert bumped >= 1

    def test_weight_cap_respected(self, grid_graph):
        cap = 5
        for algo in (
            lp_round_algorithm1,
            lambda *a, **k: lp_round_algorithm2(*a, t_bump=64, **k),
        ):
            clusters, weights, _ = run_rounds(grid_graph, algo, rounds=3, cap=cap)
            check = np.zeros(grid_graph.n, dtype=np.int64)
            np.add.at(check, clusters, np.asarray(grid_graph.vwgt))
            assert check.max() <= cap
            assert np.array_equal(check, weights)

    def test_weighted_graph_equivalence(self, text_graph):
        c1, _, _ = run_rounds(text_graph, lp_round_algorithm1, rounds=2)
        c2, _, _ = run_rounds(
            text_graph,
            lambda *a, **k: lp_round_algorithm2(*a, t_bump=10_000, **k),
            rounds=2,
        )
        assert np.array_equal(c1, c2)

    def test_thread_count_does_not_change_decisions(self, rgg_graph):
        outs = []
        for nt in (1, 2, 8):
            c, _, _ = run_rounds(
                rgg_graph,
                lambda *a, **k: lp_round_algorithm2(
                    *a, t_bump=64, num_threads=nt
                ),
                rounds=2,
            )
            outs.append(c)
        assert np.array_equal(outs[0], outs[1])
        assert np.array_equal(outs[1], outs[2])
