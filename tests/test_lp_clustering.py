"""Tests for label propagation clustering (classic + two-phase)."""

import numpy as np
import pytest

from repro.core.config import CoarseningConfig, terapart, kaminpar
from repro.core.context import PartitionContext
from repro.core.coarsening.lp_clustering import (
    cluster_sizes,
    label_propagation_clustering,
)
from repro.graph import generators as gen
from repro.graph.compressed import compress_graph
from repro.memory import MemoryTracker


def make_ctx(preset, k=8, total=None, graph=None, p=8, **overrides):
    cfg = preset(seed=5, p=p, **overrides)
    return PartitionContext(
        config=cfg,
        k=k,
        total_vertex_weight=graph.total_vertex_weight if graph else total,
        tracker=MemoryTracker(),
    )


class TestClusteringBasics:
    def test_clusters_are_valid_ids(self, grid_graph):
        ctx = make_ctx(terapart, graph=grid_graph)
        res = label_propagation_clustering(grid_graph, ctx, 10)
        assert res.clusters.min() >= 0
        assert res.clusters.max() < grid_graph.n

    def test_respects_max_cluster_weight(self, family_graph):
        cap = 7
        ctx = make_ctx(terapart, graph=family_graph)
        res = label_propagation_clustering(family_graph, ctx, cap)
        sizes = np.zeros(family_graph.n, dtype=np.int64)
        np.add.at(sizes, res.clusters, np.asarray(family_graph.vwgt))
        assert sizes.max() <= cap

    def test_weights_consistent(self, grid_graph):
        ctx = make_ctx(terapart, graph=grid_graph)
        res = label_propagation_clustering(grid_graph, ctx, 12)
        expected = np.zeros(grid_graph.n, dtype=np.int64)
        np.add.at(expected, res.clusters, np.asarray(grid_graph.vwgt))
        assert np.array_equal(expected, res.cluster_weights)

    def test_shrinks_mesh_graph(self, grid_graph):
        ctx = make_ctx(terapart, graph=grid_graph)
        res = label_propagation_clustering(grid_graph, ctx, 10)
        assert res.num_clusters < grid_graph.n / 2

    def test_clusters_connected_vertices_together(self):
        """Two far-apart cliques must never share a cluster."""
        from repro.graph.builder import from_edges

        edges = []
        for block in range(2):
            off = block * 5
            for i in range(5):
                for j in range(i + 1, 5):
                    edges.append([off + i, off + j])
        g = from_edges(10, np.array(edges))
        ctx = make_ctx(terapart, graph=g)
        res = label_propagation_clustering(g, ctx, 5)
        left = set(res.clusters[:5].tolist())
        right = set(res.clusters[5:].tolist())
        assert not left & right

    def test_singleton_cap_forces_no_merging(self, grid_graph):
        ctx = make_ctx(terapart, graph=grid_graph)
        res = label_propagation_clustering(grid_graph, ctx, 1)
        assert res.num_clusters == grid_graph.n


class TestVariantEquivalence:
    def test_two_phase_same_decisions_as_classic(self, family_graph):
        """The paper: two-phase LP does not change solution quality; with a
        fixed seed our kernel makes literally identical decisions."""
        ctx_c = make_ctx(kaminpar, graph=family_graph)
        ctx_t = make_ctx(
            terapart, graph=family_graph, compress_input=False
        )
        res_c = label_propagation_clustering(family_graph, ctx_c, 9)
        res_t = label_propagation_clustering(family_graph, ctx_t, 9)
        assert np.array_equal(res_c.clusters, res_t.clusters)

    def test_compressed_graph_same_clusters(self, web_graph):
        cg = compress_graph(web_graph)
        ctx_a = make_ctx(terapart, graph=web_graph)
        ctx_b = make_ctx(terapart, graph=web_graph)
        res_a = label_propagation_clustering(web_graph, ctx_a, 9)
        res_b = label_propagation_clustering(cg, ctx_b, 9)
        assert np.array_equal(res_a.clusters, res_b.clusters)


class TestMemoryAccounting:
    def test_classic_charges_per_thread_maps(self, grid_graph):
        """O(n*p): doubling p doubles the clustering working set."""
        peaks = {}
        for p in (8, 16):
            ctx = make_ctx(kaminpar, graph=grid_graph, p=p)
            with ctx.tracker.phase("clustering"):
                label_propagation_clustering(grid_graph, ctx, 9)
            peaks[p] = ctx.tracker.phase_peak("clustering")
        assert peaks[16] > 1.7 * peaks[8]

    def test_two_phase_nearly_independent_of_p(self):
        """O(n + p*T_bump): doubling p barely moves the working set."""
        g = gen.grid2d(50, 50)
        peaks = {}
        for p in (8, 16):
            ctx = make_ctx(terapart, graph=g, p=p)
            with ctx.tracker.phase("clustering"):
                label_propagation_clustering(g, ctx, 9)
            peaks[p] = ctx.tracker.phase_peak("clustering")
        assert peaks[16] < 1.5 * peaks[8]

    def test_two_phase_uses_less_memory(self, web_graph):
        ctx_c = make_ctx(kaminpar, graph=web_graph, p=32)
        ctx_t = make_ctx(terapart, graph=web_graph, p=32)
        with ctx_c.tracker.phase("c"):
            label_propagation_clustering(web_graph, ctx_c, 9)
        with ctx_t.tracker.phase("c"):
            label_propagation_clustering(web_graph, ctx_t, 9)
        assert ctx_t.tracker.phase_peak("c") < ctx_c.tracker.phase_peak("c") / 2

    def test_no_leaks(self, grid_graph):
        ctx = make_ctx(terapart, graph=grid_graph)
        label_propagation_clustering(grid_graph, ctx, 9)
        ctx.tracker.assert_empty()


class TestBumping:
    def test_high_degree_vertex_bumped(self):
        g = gen.star(2000)
        ctx = make_ctx(terapart, graph=g, p=2)
        # force a small T_bump so the hub exceeds it in round 1
        ctx.config = ctx.config.with_(
            coarsening=CoarseningConfig(t_bump=64)
        )
        res = label_propagation_clustering(g, ctx, g.n)
        assert sum(res.bumped_per_round) >= 1

    def test_low_degree_graphs_never_bump(self, grid_graph):
        ctx = make_ctx(terapart, graph=grid_graph)
        res = label_propagation_clustering(grid_graph, ctx, 9)
        assert sum(res.bumped_per_round) == 0


class TestClusterSizes:
    def test_counts_members(self):
        clusters = np.array([0, 0, 2, 2, 2], dtype=np.int64)
        sizes = cluster_sizes(clusters)
        assert sizes[0] == 2 and sizes[2] == 3 and sizes[1] == 0


class TestActiveSet:
    def test_active_set_quality_close_to_full(self):
        """KaMinPar's active-set work-saver must not change quality much."""
        from repro.core.config import CoarseningConfig
        import repro
        from repro.core import config as C

        g = gen.rgg2d(2500, 8.0, seed=44)
        full = repro.partition(g, 8, C.terapart(seed=3))
        act = repro.partition(
            g,
            8,
            C.terapart(seed=3).with_(
                coarsening=CoarseningConfig(active_set=True)
            ),
        )
        assert act.balanced
        assert act.cut < 1.3 * full.cut

    def test_active_set_churn_declines(self):
        """Later rounds process only changed neighborhoods, so the move
        count falls steeply after round one."""
        from repro.core.config import CoarseningConfig

        g = gen.grid2d(30, 30)
        ctx = make_ctx(terapart, graph=g)
        ctx.config = ctx.config.with_(
            coarsening=CoarseningConfig(active_set=True, lp_rounds=20)
        )
        res = label_propagation_clustering(g, ctx, 9)
        mpr = res.moves_per_round
        assert mpr[-1] < mpr[0] / 2

    def test_active_set_clustering_valid(self, web_graph):
        from repro.core.config import CoarseningConfig

        ctx = make_ctx(terapart, graph=web_graph)
        ctx.config = ctx.config.with_(
            coarsening=CoarseningConfig(active_set=True)
        )
        cap = 9
        res = label_propagation_clustering(web_graph, ctx, cap)
        sizes = np.zeros(web_graph.n, dtype=np.int64)
        np.add.at(sizes, res.clusters, np.asarray(web_graph.vwgt))
        assert sizes.max() <= cap
