"""Differential test: tracing must not perturb the computation.

Runs the full partitioner with observability enabled and disabled across
4 seeds x p in {1, 4} and asserts bit-identical partitions plus identical
cost-model op counts (work / span / bytes moved / atomic ops per phase) --
the tracer only ever *reads* the clock and the ledger, so enabling it can
change nothing the algorithms observe.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core import config as C
from repro.graph import generators as gen

SEEDS = (0, 1, 2, 3)
THREADS = (1, 4)


def _stats_signature(result) -> dict:
    """The op-count fingerprint of a run, independent of wall time."""
    return {
        name: (
            s.work,
            s.span,
            s.bytes_moved,
            s.atomic_ops,
            s.sequential_work,
            s.max_parallelism,
        )
        for name, s in sorted(result.phase_stats.items())
    }


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("p", THREADS)
def test_traced_run_is_bit_identical(seed, p):
    graph = gen.weblike(500, avg_degree=8, seed=41)
    base_cfg = C.preset("terapart", seed=seed, p=p)
    traced_cfg = base_cfg.with_(obs=C.ObsConfig(enabled=True))

    plain = repro.partition(graph, 6, base_cfg)
    traced = repro.partition(graph, 6, traced_cfg)

    assert np.array_equal(plain.partition, traced.partition)
    assert plain.cut == traced.cut
    assert plain.imbalance == traced.imbalance
    assert plain.peak_bytes == traced.peak_bytes
    assert plain.num_levels == traced.num_levels
    assert _stats_signature(plain) == _stats_signature(traced)

    # the artifacts exist exactly when requested
    assert plain.trace is None and plain.obs is None
    assert traced.trace is not None and traced.obs is not None
    assert traced.trace.spans, "traced run must record spans"


def test_traced_run_is_identical_under_fm_and_schedule_policy():
    """Heavier config: FM refinement + an adversarial schedule policy."""
    graph = gen.rgg2d(400, avg_degree=8, seed=9)
    base_cfg = C.preset("terapart", seed=5, p=4).with_(
        use_fm=True,
        debug=C.DebugConfig(schedule_policy="heavy-first"),
    )
    traced_cfg = base_cfg.with_(obs=C.ObsConfig(enabled=True))

    plain = repro.partition(graph, 4, base_cfg)
    traced = repro.partition(graph, 4, traced_cfg)

    assert np.array_equal(plain.partition, traced.partition)
    assert _stats_signature(plain) == _stats_signature(traced)


def test_tracing_is_repeatable():
    """Two traced runs with the same seed produce the same span tree and
    the same counters (the trace itself is deterministic modulo time)."""
    graph = gen.weblike(400, avg_degree=8, seed=13)
    cfg = C.preset("terapart", seed=2, p=4).with_(obs=C.ObsConfig(enabled=True))
    a = repro.partition(graph, 4, cfg)
    b = repro.partition(graph, 4, cfg)
    assert a.trace.span_tree() == b.trace.span_tree()
    assert a.obs["counters"] == b.obs["counters"]
    assert a.obs["waterfall"] == b.obs["waterfall"]
