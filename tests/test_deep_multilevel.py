"""Tests for the deep multilevel scheme (KaMinPar [3])."""

import numpy as np
import pytest

import repro
from repro.core import config as C
from repro.core.initial.deep import (
    DeepState,
    deep_initial_partition,
    extend_partition,
    supported_block_count,
)
from repro.core.partition import PartitionedGraph
from repro.graph import generators as gen


class TestSupportedBlockCount:
    def test_scales_with_n(self):
        assert supported_block_count(64, 1000, 32) == 2
        assert supported_block_count(640, 1000, 32) == 20

    def test_clamped_to_k(self):
        assert supported_block_count(10**6, 8, 32) == 8

    def test_at_least_one(self):
        assert supported_block_count(1, 8, 32) == 1


class TestDeepInitial:
    def test_block_count_matches_support(self, grid_graph):
        part, state = deep_initial_partition(
            grid_graph, 16, 0.03, np.random.default_rng(0), factor=32
        )
        expected = supported_block_count(grid_graph.n, 16, 32)
        assert len(np.unique(part)) == expected
        assert state.k_current == expected
        assert state.budgets.sum() == 16

    def test_budgets_partition_k(self):
        g = gen.rgg2d(800, 8.0, seed=1)
        for k in (3, 7, 13):
            _, state = deep_initial_partition(
                g, k, 0.03, np.random.default_rng(1), factor=32
            )
            assert state.budgets.sum() == k
            assert np.all(state.budgets >= 1)

    def test_small_k_done_immediately(self):
        g = gen.grid2d(30, 30)
        part, state = deep_initial_partition(
            g, 2, 0.03, np.random.default_rng(2), factor=32
        )
        assert state.done()
        assert len(np.unique(part)) == 2


class TestExtendPartition:
    def test_splits_until_supported(self):
        g = gen.grid2d(40, 40)  # n=1600
        k = 32
        part, state = deep_initial_partition(
            g, k, 0.03, np.random.default_rng(3), factor=32
        )
        pg = PartitionedGraph(g, k, part)
        extend_partition(pg, state, np.random.default_rng(4), factor=32)
        assert state.k_current == supported_block_count(g.n, k, 32)
        assert state.budgets.sum() == k
        pg.validate()

    def test_noop_when_done(self):
        g = gen.grid2d(30, 30)
        part, state = deep_initial_partition(
            g, 2, 0.03, np.random.default_rng(5), factor=32
        )
        pg = PartitionedGraph(g, 2, part)
        assert extend_partition(pg, state, np.random.default_rng(6)) == 0


class TestEndToEnd:
    @pytest.mark.parametrize("k", [2, 5, 16, 33])
    def test_balanced_all_blocks(self, k):
        g = gen.rgg2d(2000, 8.0, seed=7)
        r = repro.partition(g, k, C.preset("terapart-deep", seed=1))
        assert r.balanced, (k, r.imbalance)
        assert r.pgraph.nonempty_blocks() == k
        r.pgraph.validate()

    def test_quality_close_to_recursive(self):
        g = gen.rgg2d(2000, 8.0, seed=8)
        deep = repro.partition(g, 16, C.preset("terapart-deep", seed=2))
        rec = repro.partition(g, 16, C.terapart(seed=2))
        assert deep.cut < 1.5 * rec.cut

    def test_deep_hierarchy_is_deeper(self):
        """Deep multilevel coarsens to constant size, so it builds more
        levels than classic (which stops at 32k vertices)."""
        g = gen.rgg2d(3000, 8.0, seed=9)
        deep = repro.partition(g, 64, C.preset("terapart-deep", seed=3))
        rec = repro.partition(g, 64, C.terapart(seed=3))
        assert deep.num_levels >= rec.num_levels

    def test_weighted_vertices(self, text_graph):
        r = repro.partition(text_graph, 8, C.preset("terapart-deep", seed=4))
        assert r.balanced
