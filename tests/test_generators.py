"""Tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graph import generators as gen


class TestValidity:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda: gen.rgg2d(500, 8.0, seed=1),
            lambda: gen.rhg(500, 8.0, seed=1),
            lambda: gen.weblike(500, 10.0, seed=1),
            lambda: gen.kmer(500, 4, seed=1),
            lambda: gen.ba(300, 3, seed=1),
            lambda: gen.er(400, 6.0, seed=1),
            lambda: gen.textlike(300, seed=1),
            lambda: gen.grid2d(15, 15),
            lambda: gen.grid2d(10, 10, torus=True),
            lambda: gen.grid3d(6, 6, 6),
            lambda: gen.star(50),
            lambda: gen.path(50),
            lambda: gen.complete(12),
        ],
    )
    def test_generated_graphs_are_valid(self, maker):
        g = maker()
        g.validate()
        assert g.sorted_neighborhoods


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(gen.GENERATORS))
    def test_same_seed_same_graph(self, name):
        kwargs = {"n": 300, "seed": 42}
        a = gen.generate(name, **kwargs)
        b = gen.generate(name, **kwargs)
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.adjncy, b.adjncy)

    def test_different_seeds_differ(self):
        a = gen.er(300, 6.0, seed=1)
        b = gen.er(300, 6.0, seed=2)
        assert not (
            np.array_equal(a.indptr, b.indptr)
            and np.array_equal(a.adjncy, b.adjncy)
        )


class TestStructure:
    def test_grid_degrees(self):
        g = gen.grid2d(5, 5)
        degs = g.degrees
        assert degs.max() == 4
        assert degs.min() == 2  # corners
        assert g.m == 2 * 5 * 4  # horizontal + vertical edges

    def test_torus_is_regular(self):
        g = gen.grid2d(6, 6, torus=True)
        assert np.all(g.degrees == 4)

    def test_rgg_no_high_degree_hubs(self):
        """The paper: rgg2D resembles meshes, no high-degree vertices."""
        g = gen.rgg2d(2000, avg_degree=8, seed=3)
        assert g.max_degree < 40

    def test_rhg_has_skewed_degrees(self):
        """The paper: rhg has a power-law degree distribution."""
        g = gen.rhg(3000, avg_degree=8, gamma=3.0, seed=3)
        assert g.max_degree > 5 * g.degrees.mean()

    def test_rhg_avg_degree_roughly_calibrated(self):
        g = gen.rhg(3000, avg_degree=16, gamma=3.0, seed=5)
        avg = g.degrees.mean()
        assert 4 < avg < 64  # order of magnitude

    def test_rhg_rejects_bad_gamma(self):
        with pytest.raises(ValueError):
            gen.rhg(100, 8.0, gamma=1.5)

    def test_weblike_has_hubs_and_runs(self):
        g = gen.weblike(3000, avg_degree=20, seed=4)
        assert g.max_degree > 20 * g.degrees.mean() / 4
        # consecutive-ID runs exist
        from repro.graph.compressed import split_intervals

        run_edges = 0
        for u in range(0, g.n, 29):
            intervals, _ = split_intervals(np.sort(g.neighbors(u)))
            run_edges += sum(l for _, l in intervals)
        assert run_edges > 0

    def test_kmer_nearly_regular(self):
        g = gen.kmer(2000, degree=4, seed=5)
        assert g.degrees.std() < 2.0

    def test_ba_powerlaw_ish(self):
        g = gen.ba(1500, 4, seed=6)
        assert g.max_degree > 10 * g.degrees.mean() / 4

    def test_textlike_weighted(self):
        g = gen.textlike(500, seed=7)
        assert g.has_edge_weights
        assert np.asarray(g.adjwgt).max() > 1

    def test_star_structure(self):
        g = gen.star(10)
        assert g.degree(0) == 9
        assert all(g.degree(u) == 1 for u in range(1, 10))

    def test_complete_graph(self):
        g = gen.complete(6)
        assert g.m == 15
        assert np.all(g.degrees == 5)


class TestRegistry:
    def test_unknown_generator(self):
        with pytest.raises(KeyError):
            gen.generate("nope", n=10)

    def test_all_registered_generators_run(self):
        for name in gen.GENERATORS:
            g = gen.generate(name, n=200, seed=0)
            assert g.n == 200


class TestRmat:
    def test_valid_and_powerlaw(self):
        g = gen.rmat(2000, 8.0, seed=1)
        g.validate()
        assert g.max_degree > 10 * g.degrees.mean() / 4

    def test_deterministic(self):
        a = gen.rmat(500, 8.0, seed=9)
        b = gen.rmat(500, 8.0, seed=9)
        assert np.array_equal(a.adjncy, b.adjncy)

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            gen.rmat(100, 8.0, a=0.5, b=0.3, c=0.3)


class TestConnectedComponents:
    def test_single_component(self):
        cc = gen.connected_components(gen.grid2d(8, 8))
        assert len(np.unique(cc)) == 1

    def test_multiple_components(self):
        from repro.graph.builder import from_edges

        g = from_edges(6, np.array([[0, 1], [2, 3], [4, 5]]))
        cc = gen.connected_components(g)
        assert len(np.unique(cc)) == 3
        assert cc[0] == cc[1] and cc[2] == cc[3] and cc[4] == cc[5]

    def test_isolated_vertices_are_components(self):
        from repro.graph.builder import from_edges

        g = from_edges(4, np.array([[0, 1]]))
        cc = gen.connected_components(g)
        assert len(np.unique(cc)) == 3

    def test_empty_graph(self):
        from repro.graph.builder import from_edges

        g = from_edges(0, np.zeros((0, 2), dtype=np.int64))
        assert len(gen.connected_components(g)) == 0

    def test_labels_constant_within_component(self):
        g = gen.rgg2d(400, 6.0, seed=2)
        cc = gen.connected_components(g)
        for u in range(0, g.n, 13):
            for v in g.neighbors(u).tolist():
                assert cc[u] == cc[v]
