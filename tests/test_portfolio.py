"""Tests for multi-seed portfolio runs."""

import numpy as np
import pytest

from repro.core import config as C
from repro.core.portfolio import partition_portfolio
from repro.graph import generators as gen


@pytest.fixture(scope="module")
def graph():
    return gen.rgg2d(1200, 8.0, seed=51)


class TestPortfolio:
    def test_best_is_minimum_balanced_cut(self, graph):
        pr = partition_portfolio(graph, 8, C.terapart(), seeds=(0, 1, 2))
        assert len(pr.results) == 3
        balanced_cuts = [r.cut for r in pr.results if r.balanced]
        assert pr.best.cut == min(balanced_cuts)
        assert pr.best.balanced

    def test_best_at_most_mean(self, graph):
        pr = partition_portfolio(graph, 8, C.terapart(), seeds=range(4))
        assert pr.best_cut <= pr.mean_cut

    def test_statistics(self, graph):
        pr = partition_portfolio(graph, 4, C.terapart(), seeds=(0, 1))
        assert pr.cut_std >= 0
        assert pr.mean_peak_bytes > 0
        assert 0 <= pr.seed_of_best() < 2

    def test_single_seed(self, graph):
        pr = partition_portfolio(graph, 4, C.terapart(), seeds=(7,))
        assert len(pr.results) == 1
        assert pr.best is pr.results[0]

    def test_empty_seeds_rejected(self, graph):
        with pytest.raises(ValueError):
            partition_portfolio(graph, 4, seeds=())

    def test_balanced_preferred_over_better_cut(self, graph):
        """Selection treats balance as primary (Mt-Metis lesson)."""
        pr = partition_portfolio(graph, 8, C.terapart(), seeds=(0, 1, 2))
        for r in pr.results:
            if not r.balanced:
                assert pr.best.balanced
