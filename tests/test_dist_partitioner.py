"""End-to-end tests of the distributed driver (dKaMinPar / xTeraPart)."""

import numpy as np
import pytest

from repro.dist import SimComm, dpartition
from repro.dist.dlp import distributed_lp_clustering
from repro.dist.dgraph import distribute_graph
from repro.dist.dpartitioner import DistConfig
from repro.graph import generators as gen


@pytest.fixture(scope="module")
def medium_graph():
    return gen.rgg2d(2000, avg_degree=8, seed=31)


class TestDistributedLP:
    def test_clustering_is_valid(self, medium_graph):
        comm = SimComm(4)
        dg = distribute_graph(medium_graph, comm)
        labels = distributed_lp_clustering(
            dg, 16, rounds=3, batches=4, rng=np.random.default_rng(0)
        )
        assert len(labels) == medium_graph.n
        assert labels.min() >= 0 and labels.max() < medium_graph.n
        # it actually clusters
        assert len(np.unique(labels)) < medium_graph.n / 1.5

    def test_respects_weight_cap(self, medium_graph):
        comm = SimComm(2)
        dg = distribute_graph(medium_graph, comm)
        cap = 5
        labels = distributed_lp_clustering(
            dg, cap, rounds=3, batches=2, rng=np.random.default_rng(1)
        )
        sizes = np.zeros(medium_graph.n, dtype=np.int64)
        np.add.at(sizes, labels, 1)
        assert sizes.max() <= cap


class TestDPartition:
    @pytest.mark.parametrize("compressed", [False, True])
    def test_produces_balanced_partition(self, medium_graph, compressed):
        r = dpartition(medium_graph, 8, 4, compressed=compressed)
        assert r.balanced, r.imbalance
        assert len(np.unique(r.partition)) == 8
        assert r.cut > 0

    def test_quality_similar_compressed_or_not(self, medium_graph):
        a = dpartition(medium_graph, 8, 4, compressed=False)
        b = dpartition(medium_graph, 8, 4, compressed=True)
        assert abs(a.cut - b.cut) <= 0.35 * max(a.cut, b.cut)

    def test_compression_reduces_rank_peak(self, medium_graph):
        a = dpartition(medium_graph, 8, 4, compressed=False)
        b = dpartition(medium_graph, 8, 4, compressed=True)
        assert b.max_rank_peak_bytes < a.max_rank_peak_bytes

    def test_multilevel_beats_flat_random(self, medium_graph):
        from repro.core.partition import PartitionedGraph

        r = dpartition(medium_graph, 8, 4)
        rng = np.random.default_rng(2)
        rand_cut = PartitionedGraph(
            medium_graph,
            8,
            rng.integers(0, 8, size=medium_graph.n).astype(np.int32),
        ).cut_weight()
        assert r.cut < rand_cut / 2

    def test_rank_count_flexibility(self, medium_graph):
        for ranks in (1, 2, 8):
            r = dpartition(medium_graph, 4, ranks)
            assert r.num_ranks == ranks
            assert r.balanced

    def test_oom_flag(self, medium_graph):
        cfg = DistConfig(seed=0, rank_memory_budget=1)
        r = dpartition(medium_graph, 4, 2, config=cfg)
        assert r.oom
        cfg = DistConfig(seed=0, rank_memory_budget=10**12)
        r = dpartition(medium_graph, 4, 2, config=cfg)
        assert not r.oom

    def test_comm_traffic_recorded(self, medium_graph):
        r = dpartition(medium_graph, 8, 4)
        assert r.comm.bytes_sent > 0
        assert r.comm.supersteps > 0

    def test_cut_matches_recount(self, medium_graph):
        from repro.core.partition import PartitionedGraph

        r = dpartition(medium_graph, 8, 4)
        pg = PartitionedGraph(medium_graph, 8, r.partition)
        assert pg.cut_weight() == r.cut
