"""Tests for the ASCII chart rendering toolkit."""

import pytest

from repro.bench.sparkline import bar_chart, sparkline, xy_plot


class TestSparkline:
    def test_monotone_series_monotone_ticks(self):
        s = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert len(s) == 8
        assert s[0] == "▁" and s[-1] == "█"
        # monotone input -> non-decreasing tick levels
        levels = ["▁▂▃▄▅▆▇█".index(c) for c in s]
        assert levels == sorted(levels)

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_peak_position(self):
        s = sparkline([0, 10, 0])
        assert s[1] == "█"


class TestBarChart:
    def test_proportional_bars(self):
        out = bar_chart([("a", 100.0), ("b", 50.0)], width=20)
        lines = out.splitlines()
        assert lines[0].count("█") == 20
        assert lines[1].count("█") == 10

    def test_labels_aligned(self):
        out = bar_chart([("short", 4.0), ("a-longer-label", 2.0)])
        lines = out.splitlines()
        # bars start in the same column regardless of label length
        assert lines[0].index("█") == lines[1].index("█")

    def test_empty(self):
        assert bar_chart([]) == "(empty)"

    def test_unit_suffix(self):
        out = bar_chart([("x", 3.5)], unit="ms")
        assert "ms" in out


class TestXYPlot:
    def test_marks_and_legend(self):
        out = xy_plot({"speedup": ([1, 2, 4], [1.0, 1.9, 3.5])})
        assert "s" in out  # series mark
        assert "s=speedup" in out

    def test_extremes_on_grid_edges(self):
        out = xy_plot({"a": ([0, 10], [0, 10])}, width=20, height=5)
        lines = out.splitlines()
        assert "a" in lines[0]  # max y on the top row
        assert "a" in lines[4]  # min y on the bottom row

    def test_multiple_series(self):
        out = xy_plot(
            {"up": ([1, 2], [1, 2]), "down": ([1, 2], [2, 1])}
        )
        assert "u" in out and "d" in out

    def test_empty(self):
        assert xy_plot({}) == "(empty)"

    def test_axis_annotations(self):
        out = xy_plot({"a": ([3, 7], [10, 20])})
        assert "3.00" in out and "7.00" in out
        assert "10.00" in out and "20.00" in out
