"""Concurrency tests for the partitioning service.

The contracts under test:

* N concurrent clients asking for the same (graph, k, ε, config) key
  trigger exactly ONE partitioner run (admission batching),
* requests under distinct config digests never share cache entries,
* a client cancelled mid-run leaves the cache and the in-flight table
  consistent — the shielded run completes and later clients hit it.

A counting fake partitioner (injectable ``partition_fn``) makes "how
many runs actually happened" observable without timing heuristics.
"""

import asyncio
import threading
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core import config as C
from repro.core.config import ServeConfig, config_digest
from repro.graph import generators as gen
from repro.serve import PartitionService, ServiceHandle

#: compression off so the fake partitioner sees the raw CSR graph
CFG = C.terapart().with_(compress_input=False)
SCFG = ServeConfig(cache_budget_bytes=4 * 1024 * 1024)

GRAPH = gen.weblike(120, avg_degree=6, seed=21)
GRAPH_B = gen.grid2d(10, 12)


class CountingPartitioner:
    """Fake partition_fn: counts calls, sleeps to hold the run window open."""

    def __init__(self, delay: float = 0.05):
        self.calls = 0
        self.delay = delay
        self._lock = threading.Lock()

    def __call__(self, graph, k, config, tracker=None):
        with self._lock:
            self.calls += 1
        time.sleep(self.delay)
        n = graph.n
        part = (np.arange(n, dtype=np.int64) * k // max(n, 1)).astype(
            np.int32
        )
        return SimpleNamespace(
            partition=part,
            cut=1000 + self.calls,  # distinguishable per run
            imbalance=0.0,
            balanced=True,
            wall_seconds=self.delay,
            num_levels=1,
        )


class TestAdmissionBatching:
    def test_concurrent_same_key_runs_once(self):
        counter = CountingPartitioner()
        with ServiceHandle(CFG, SCFG, partition_fn=counter) as h:
            h.register_graph("g", GRAPH)
            results = h.partition_many([("g", 4)] * 8)
            snap = h.metrics_snapshot()
        assert counter.calls == 1
        assert len(results) == 8
        # every client got the SAME run's result
        assert len({r.cut for r in results}) == 1
        assert all(np.array_equal(r.partition, results[0].partition)
                   for r in results)
        # 1 enqueued + 7 batched onto the in-flight future
        assert snap["serve.batched"] == 7
        assert snap["serve.full_runs"] == 1

    def test_distinct_keys_run_separately(self):
        counter = CountingPartitioner()
        with ServiceHandle(CFG, SCFG, partition_fn=counter) as h:
            h.register_graph("a", GRAPH)
            h.register_graph("b", GRAPH_B)
            results = h.partition_many(
                [("a", 4), ("b", 4), ("a", 4), ("b", 4), ("a", 2)]
            )
        # three distinct keys: (a,4), (b,4), (a,2)
        assert counter.calls == 3
        assert len(results) == 5

    def test_sequential_after_completion_hits_cache(self):
        counter = CountingPartitioner(delay=0.0)
        with ServiceHandle(CFG, SCFG, partition_fn=counter) as h:
            h.register_graph("g", GRAPH)
            r1 = h.partition("g", 4)
            r2 = h.partition("g", 4)
        assert counter.calls == 1
        assert r1.mode == "full" and r2.mode == "cached"


class TestConfigIsolation:
    def test_distinct_digests_never_share_entries(self):
        counter = CountingPartitioner()
        cfg_a = CFG
        cfg_b = CFG.with_(lp_refinement_rounds=CFG.lp_refinement_rounds + 1)
        assert config_digest(cfg_a) != config_digest(cfg_b)
        with ServiceHandle(cfg_a, SCFG, partition_fn=counter) as h:
            h.register_graph("g", GRAPH)
            ra = h.partition("g", 4)
            rb = h.partition("g", 4, config=cfg_b)
            ra2 = h.partition("g", 4)
            rb2 = h.partition("g", 4, config=cfg_b)
            part_keys = [
                k for k in h.service.cache.keys() if k[0] == "part"
            ]
        assert counter.calls == 2  # one run per digest, then cache hits
        assert ra.config_digest != rb.config_digest
        assert ra2.mode == "cached" and rb2.mode == "cached"
        assert ra2.cut == ra.cut and rb2.cut == rb.cut
        assert len(part_keys) == 2
        assert len({k[1].config_digest for k in part_keys}) == 2

    def test_epsilon_is_part_of_the_key(self):
        counter = CountingPartitioner(delay=0.0)
        with ServiceHandle(CFG, SCFG, partition_fn=counter) as h:
            h.register_graph("g", GRAPH)
            h.partition("g", 4, epsilon=0.03)
            h.partition("g", 4, epsilon=0.3)
        assert counter.calls == 2


class TestCancellation:
    def _consistent(self, service) -> None:
        cache = service.cache
        assert not service._inflight
        assert cache.stats.resident_bytes == sum(
            cache._entries[k].nbytes for k in cache.keys()
        )
        assert (
            service.tracker.breakdown().get("serve-cache", 0)
            == cache.stats.resident_bytes
        )

    def test_cancel_mid_run_keeps_cache_consistent(self):
        counter = CountingPartitioner(delay=0.1)

        async def main():
            svc = await PartitionService.create(
                CFG, SCFG, partition_fn=counter
            )
            await svc.register_graph("g", GRAPH)
            task = asyncio.create_task(svc.partition("g", 4))
            await asyncio.sleep(0.03)  # run is in the executor now
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            # the shielded run completes; wait for the worker to finish it
            await svc._queue.join()
            self._consistent(svc)
            r = await svc.partition("g", 4)
            snap = svc.metrics_snapshot()
            await svc.aclose()
            return r, snap

        r, snap = asyncio.run(main())
        assert counter.calls == 1
        assert r.mode == "cached"  # the cancelled run's result was kept
        assert snap["serve.cancelled"] == 1

    def test_cancel_one_of_many_batched_clients(self):
        counter = CountingPartitioner(delay=0.1)

        async def main():
            svc = await PartitionService.create(
                CFG, SCFG, partition_fn=counter
            )
            await svc.register_graph("g", GRAPH)
            tasks = [
                asyncio.create_task(svc.partition("g", 4)) for _ in range(3)
            ]
            await asyncio.sleep(0.03)
            tasks[1].cancel()
            survivors = await asyncio.gather(*tasks, return_exceptions=True)
            self._consistent(svc)
            await svc.aclose()
            return survivors

        survivors = asyncio.run(main())
        assert counter.calls == 1
        assert isinstance(survivors[1], asyncio.CancelledError)
        assert survivors[0].cut == survivors[2].cut
        assert survivors[0].mode == "full"

    def test_cancel_before_run_starts(self):
        """Cancelling while the job is still queued must not wedge the
        worker or leave the in-flight table dirty."""
        counter = CountingPartitioner(delay=0.05)

        async def main():
            svc = await PartitionService.create(
                CFG, SCFG, partition_fn=counter
            )
            await svc.register_graph("g", GRAPH)
            t1 = asyncio.create_task(svc.partition("g", 4))
            t2 = asyncio.create_task(svc.partition("g", 2))
            await asyncio.sleep(0)  # enqueue both; neither finished
            t2.cancel()
            r1 = await t1
            with pytest.raises(asyncio.CancelledError):
                await t2
            await svc._queue.join()
            self._consistent(svc)
            await svc.aclose()
            return r1

        r1 = asyncio.run(main())
        assert r1.balanced
        # both jobs were queued before the cancel, so both ran; the
        # cancelled key's result is still cached for the next client
        assert counter.calls == 2
