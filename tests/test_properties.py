"""Cross-cutting property-based tests (hypothesis) on system invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.core import config as C
from repro.core.partition import PartitionedGraph, max_block_weight
from repro.graph.builder import from_edges
from repro.graph.compressed import compress_graph, decompress_graph

from conftest import graphs_equal


def random_graph(n, e, seed, weighted=False):
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, n, size=(max(1, e), 2))
    weights = rng.integers(1, 100, size=max(1, e)) if weighted else None
    return from_edges(n, edges, weights)


class TestBuilderProperties:
    @given(
        n=st.integers(2, 60),
        e=st.integers(0, 300),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=50, deadline=None)
    def test_built_graphs_always_valid(self, n, e, seed):
        g = random_graph(n, e, seed)
        g.validate()  # symmetric, loop-free, positive weights

    @given(
        n=st.integers(2, 40),
        e=st.integers(1, 150),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_degree_sum_is_twice_edges(self, n, e, seed):
        g = random_graph(n, e, seed)
        assert int(g.degrees.sum()) == 2 * g.m


class TestCompressionProperties:
    @given(
        n=st.integers(2, 50),
        e=st.integers(0, 200),
        seed=st.integers(0, 2**31),
        weighted=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_and_monotone_offsets(self, n, e, seed, weighted):
        g = random_graph(n, e, seed, weighted)
        cg = compress_graph(g)
        assert graphs_equal(decompress_graph(cg), g)
        assert np.all(np.diff(cg.offsets) >= 0)
        # first-edge headers reproduce indptr
        for u in range(n):
            assert cg.first_edge_id(u) == int(g.indptr[u])


class TestPartitionInvariants:
    @given(
        seed=st.integers(0, 2**20),
        k=st.integers(2, 8),
    )
    @settings(max_examples=10, deadline=None)
    def test_partition_always_valid_and_balanced(self, seed, k):
        g = random_graph(150, 600, seed)
        result = repro.partition(g, k, C.terapart(seed=seed % 97))
        pg = result.pgraph
        pg.validate()
        assert pg.is_balanced(0.03 + 1e-9) or g.total_vertex_weight < k
        # cut is consistent with an independent recount
        assert result.cut == PartitionedGraph(g, k, result.partition).cut_weight()

    @given(seed=st.integers(0, 2**20))
    @settings(max_examples=10, deadline=None)
    def test_moves_preserve_weight_conservation(self, seed):
        g = random_graph(80, 300, seed)
        rng = np.random.default_rng(seed)
        pg = PartitionedGraph(
            g, 4, rng.integers(0, 4, size=g.n).astype(np.int32)
        )
        total = pg.block_weights.sum()
        for _ in range(50):
            pg.move(int(rng.integers(0, g.n)), int(rng.integers(0, 4)))
        assert pg.block_weights.sum() == total
        pg.validate()


class TestMaxBlockWeight:
    @given(
        total=st.integers(1, 10**9),
        k=st.integers(1, 1000),
        eps=st.floats(0.0, 0.5),
    )
    @settings(max_examples=100)
    def test_lmax_times_k_covers_total(self, total, k, eps):
        """k blocks at the ceiling can always hold the whole graph."""
        assert k * max_block_weight(total, k, eps) >= total
