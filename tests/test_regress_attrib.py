"""Tests for per-phase regression attribution (obs/regress/attrib)."""

from repro.obs.regress.attrib import (
    PhaseDelta,
    aggregate_profiles,
    attribute,
    diff_profiles,
    format_attribution,
    normalize_phase,
    phase_profile,
)


def _obs(scale_clustering=1.0, scale_coarsen_bytes=1.0):
    """A miniature obs registry shaped like MetricsRegistry.to_dict()."""
    cl = 0.40 * scale_clustering
    phases = [
        {"name": "partition", "tracker_path": "partition", "wall_seconds": 1.0},
        {
            "name": "compression",
            "tracker_path": "partition/compression",
            "wall_seconds": 0.10,
        },
        {
            "name": "coarsening",
            "tracker_path": "partition/coarsening",
            "wall_seconds": 0.20 + cl,
        },
        {
            "name": "clustering",
            "tracker_path": "partition/coarsening/coarsening-level0/clustering",
            "wall_seconds": cl / 2,
        },
        {
            "name": "clustering",
            "tracker_path": "partition/coarsening/coarsening-level1/clustering",
            "wall_seconds": cl / 2,
        },
        {
            "name": "refinement-level1",
            "tracker_path": "partition/refinement-level1",
            "wall_seconds": 0.05,
        },
        {
            "name": "refinement-level0",
            "tracker_path": "partition/refinement-level0",
            "wall_seconds": 0.05,
        },
        {"name": "untracked-span", "wall_seconds": 9.9},  # no tracker_path
    ]
    waterfall = [
        {"phase": "partition", "name": "partition", "peak_bytes": 1000},
        {
            "phase": "partition/compression",
            "name": "compression",
            "peak_bytes": 200,
        },
        {
            "phase": "partition/coarsening",
            "name": "coarsening",
            "peak_bytes": int(1000 * scale_coarsen_bytes),
        },
        {
            "phase": "partition/coarsening/coarsening-level0/contraction",
            "name": "contraction",
            "peak_bytes": int(900 * scale_coarsen_bytes),
        },
        {
            "phase": "partition/refinement-level0",
            "name": "refinement-level0",
            "peak_bytes": 300,
        },
    ]
    return {"phases": phases, "waterfall": waterfall}


def _db_rec(obs):
    return {"kind": "partition", "run": {}, "obs": obs}


class TestProfileExtraction:
    def test_normalize_strips_level_suffix(self):
        assert normalize_phase("refinement-level12") == "refinement"
        assert normalize_phase("clustering") == "clustering"

    def test_top_level_vs_kernel_split(self):
        p = phase_profile(_obs())
        assert set(p["wall"]) == {"compression", "coarsening", "refinement"}
        assert set(p["kernel_wall"]) == {"clustering"}
        # the root span and spans without a tracker_path never appear
        assert "partition" not in p["wall"]
        assert "untracked-span" not in p["kernel_wall"]

    def test_levels_aggregate(self):
        p = phase_profile(_obs())
        # two refinement levels sum; two clustering levels sum
        assert p["wall"]["refinement"] == 0.10
        assert p["kernel_wall"]["clustering"] == 0.40

    def test_bytes_keep_max_peak(self):
        p = phase_profile(_obs())
        assert p["bytes"]["coarsening"] == 1000
        assert p["kernel_bytes"]["contraction"] == 900


class TestAggregation:
    def test_wall_means_bytes_max(self):
        a = phase_profile(_obs())
        b = phase_profile(_obs(scale_clustering=3.0, scale_coarsen_bytes=2.0))
        agg = aggregate_profiles([a, b])
        assert agg["kernel_wall"]["clustering"] == (0.40 + 1.20) / 2
        assert agg["bytes"]["coarsening"] == 2000  # max, not mean

    def test_empty(self):
        agg = aggregate_profiles([])
        assert agg == {
            "wall": {},
            "bytes": {},
            "kernel_wall": {},
            "kernel_bytes": {},
        }


class TestDiff:
    def test_names_the_offending_phase(self):
        base = phase_profile(_obs())
        cand = phase_profile(_obs(scale_clustering=3.0))
        deltas = diff_profiles(base, cand, section="wall")
        assert deltas and deltas[0].phase == "coarsening"
        kdeltas = diff_profiles(base, cand, section="kernel_wall")
        assert kdeltas[0].phase == "clustering"
        assert kdeltas[0].pct > 100

    def test_small_phases_filtered_by_share(self):
        base = {"wall": {"big": 10.0, "tiny": 0.001}}
        cand = {"wall": {"big": 10.0, "tiny": 0.01}}  # tiny grew 10x
        deltas = diff_profiles(base, cand, section="wall", min_share=0.02)
        assert deltas == []  # below the share floor: noise, not a finding

    def test_new_phase_reported_as_infinite(self):
        base = {"wall": {"a": 1.0}}
        cand = {"wall": {"a": 1.0, "cache": 0.5}}
        deltas = diff_profiles(base, cand, section="wall")
        assert deltas[0].phase == "cache"
        assert deltas[0].pct == float("inf")
        assert "(new)" in deltas[0].describe()


class TestAttribute:
    def test_time_regression_names_clustering(self):
        base = [_db_rec(_obs()) for _ in range(3)]
        cand = [_db_rec(_obs(scale_clustering=3.0)) for _ in range(3)]
        deltas = attribute(
            base, cand, regressed_metrics=("wall_seconds",)
        )
        names = {d.phase for d in deltas}
        assert "coarsening" in names and "clustering" in names
        assert all(d.metric == "time" for d in deltas)

    def test_bytes_regression_names_contraction(self):
        base = [_db_rec(_obs())]
        cand = [_db_rec(_obs(scale_coarsen_bytes=2.0))]
        deltas = attribute(base, cand, regressed_metrics=("peak_bytes",))
        names = {d.phase for d in deltas}
        assert {"coarsening", "contraction"} <= names
        assert all(d.metric == "bytes" for d in deltas)

    def test_condensed_baseline_profile(self):
        """Baselines store condensed profiles, not raw obs."""
        base_profile = aggregate_profiles([phase_profile(_obs())])
        cand = [_db_rec(_obs(scale_clustering=2.0))]
        deltas = attribute(
            [],
            cand,
            regressed_metrics=("wall_seconds",),
            base_profile=base_profile,
        )
        assert any(d.phase == "clustering" for d in deltas)

    def test_records_without_obs_are_skipped(self):
        deltas = attribute(
            [{"kind": "partition", "run": {}, "obs": None}],
            [{"kind": "partition", "run": {}, "obs": None}],
            regressed_metrics=("wall_seconds",),
        )
        assert deltas == []


class TestFormatting:
    def test_headline_orders_time_before_bytes(self):
        deltas = [
            PhaseDelta("gain-tables", "bytes", 100.0, 121.0),
            PhaseDelta("contraction", "time", 1.0, 1.38),
        ]
        line = format_attribution(deltas)
        assert line.index("contraction") < line.index("gain-tables")
        assert "+38% time" in line
        assert "+21% bytes" in line

    def test_no_mover_message(self):
        assert "noise floor" in format_attribution([])
