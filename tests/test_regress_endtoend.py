"""End-to-end acceptance: record -> baseline -> compare round-trip.

The observatory's contract (ISSUE 4): an identical re-run of the baseline
config classifies neutral across 3 seeds, and a deliberately degraded
config (compression disabled -> bigger working set; tripled LP rounds ->
slower clustering) is flagged as regressed with the offending phase named
by the attribution layer.
"""

import pytest

from repro.bench.harness import run_matrix
from repro.bench.instances import Instance
from repro.core import config as C
from repro.obs.regress.compare import CompareThresholds, capture_baseline, compare
from repro.obs.regress.rundb import RunDB, latest_per_key, run_key

INSTANCES = [Instance("fem-grid", "grid2d", (50, 50))]
SEEDS = [0, 1, 2]
THR = CompareThresholds(bootstrap_samples=300)


def _traced(cfg):
    return cfg.with_(obs=C.ObsConfig(enabled=True))


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    db = RunDB(tmp_path_factory.mktemp("rundb") / "runs.jsonl")
    run_matrix(
        [_traced(C.terapart())],
        INSTANCES,
        [4],
        SEEDS,
        rundb=db,
        record_bench="smoke",
        record_label="base",
    )
    return capture_baseline(db.query(label="base"), "e2e")


def _run_candidate(cfg, tmp_path, label):
    db = RunDB(tmp_path / "cand.jsonl")
    run_matrix(
        [_traced(cfg)], INSTANCES, [4], SEEDS,
        rundb=db, record_bench="smoke", record_label=label,
    )
    return latest_per_key(db.query(label=label), run_key)


def test_identical_rerun_is_neutral(baseline, tmp_path):
    cand = _run_candidate(C.terapart(), tmp_path, "rerun")
    report = compare(baseline, cand, thresholds=THR)
    assert not report.regressed, report.regressed_metrics
    assert report.gate.passed
    for metric in ("cut", "peak_bytes"):
        v = report.verdict_for(metric)
        # seeded partitioner + ledger-tracked memory: bit-identical metrics
        assert v.ratio == pytest.approx(1.0), (metric, v)
        assert v.classification == "neutral"
    assert report.verdict_for("wall_seconds").classification == "neutral"


def test_slowed_config_flagged_with_phase_named(baseline, tmp_path):
    # same algorithm *name* (the pairing identity), deliberately slowed:
    # a 16x initial-partitioning portfolio multiplies that phase's work
    slowed = C.terapart().with_(
        initial=C.InitialPartitioningConfig(attempts=128)
    )
    cand = _run_candidate(slowed, tmp_path, "slow")
    report = compare(baseline, cand, thresholds=THR)

    assert report.regressed
    wall = report.verdict_for("wall_seconds")
    assert wall.classification == "regressed", (wall.ratio, wall.ci_low)

    # attribution names the phase, not just the total
    assert report.attribution
    time_phases = {d.phase for d in report.attribution if d.metric == "time"}
    assert "initial-partitioning" in time_phases
    offenders = [
        d for d in report.attribution if d.phase == "initial-partitioning"
    ]
    assert offenders and offenders[0].pct > 100


def test_memory_regression_flagged_with_phase_named(baseline, tmp_path):
    # raw CSR instead of the compressed graph: a strictly larger working
    # set (the paper's whole point) — memory regresses even though the
    # decode-free traversal is *faster*
    fat = C.terapart().with_(compress_input=False)
    cand = _run_candidate(fat, tmp_path, "fat")
    report = compare(baseline, cand, thresholds=THR)

    assert report.regressed
    peak = report.verdict_for("peak_bytes")
    assert peak.classification == "regressed"
    assert peak.ratio > 1.1
    assert report.verdict_for("wall_seconds").classification != "regressed"

    byte_phases = {d.phase for d in report.attribution if d.metric == "bytes"}
    assert byte_phases  # the bigger uncompressed working set is named


def test_trajectory_roundtrip(baseline, tmp_path):
    """The machine-readable artifact carries the verdicts and slim records."""
    import json

    from repro.obs.regress.report import (
        render_markdown,
        trajectory_dict,
        write_trajectory,
    )

    cand = _run_candidate(C.terapart(), tmp_path, "traj")
    report = compare(baseline, cand, thresholds=THR)
    traj = trajectory_dict(report, candidate_records=cand, timestamp=1.0)
    path = tmp_path / "BENCH_trajectory.json"
    write_trajectory(path, traj)
    loaded = json.loads(path.read_text())
    assert loaded["kind"] == "trajectory"
    assert loaded["regressed"] is False
    assert {v["metric"] for v in loaded["verdicts"]} == {
        "cut",
        "peak_bytes",
        "wall_seconds",
    }
    # obs payloads are stripped from the artifact
    assert all("obs" not in r for r in loaded["records"])

    md = render_markdown(report, candidate_label="traj")
    assert "| cut |" in md and "neutral" in md
    assert "hard gate passed" in md
