"""Tests for cluster-wide observability (repro.obs.dist).

The acceptance claims pinned here:

* every rank track's phase ``mem_peak`` in the merged trace equals that
  rank's :class:`~repro.memory.tracker.MemoryTracker` phase peak
  byte-for-byte (the PR 3 invariant, per rank),
* the memory ratio stays <= 2.0 at 4 ranks on the smoke matrix,
* compressed (varint) ghost-exchange bytes are strictly below raw,
* tracing never perturbs the computation: traced and untraced runs are
  bit-identical,
* the distributed driver at ranks {1, 2, 4} produces valid, balanced
  partitions whose cut is within tolerance of the shared-memory run.
"""

import json

import numpy as np
import pytest

from repro.bench.instances import Instance, load_instance
from repro.core import config as C
from repro.core.config import DistObsConfig
from repro.core.partitioner import partition as sm_partition
from repro.dist.comm import SimComm
from repro.dist.dpartitioner import DistConfig, dpartition
from repro.obs.dist import (
    ClusterObserver,
    cluster_chrome_trace,
    cluster_rollup,
    cluster_waterfall,
    memory_ratio_report,
    render_memory_ratio,
    varint_payload_nbytes,
    write_cluster_trace,
)
from repro.obs.dist.rollup import CLUSTER_PID

K = 8
OBS_CFG = DistConfig(obs=DistObsConfig(enabled=True))


@pytest.fixture(scope="module")
def smoke_graphs():
    return {
        name: load_instance(name) for name in ("fem-grid", "web-small")
    }


@pytest.fixture(scope="module")
def traced_runs(smoke_graphs):
    """One traced xTeraPart run per smoke instance at 4 ranks."""
    return {
        name: dpartition(g, K, 4, compressed=True, config=OBS_CFG)
        for name, g in smoke_graphs.items()
    }


# --------------------------------------------------------------------- #
# varint payload pricing
# --------------------------------------------------------------------- #
class TestVarintPricing:
    def test_sorted_ids_compress_far_below_raw(self):
        ids = np.arange(10_000, dtype=np.int64)  # deltas of 1 -> 1 byte each
        priced = varint_payload_nbytes(ids)
        assert priced < ids.nbytes / 4
        assert priced >= 10_000  # at least one byte per value

    def test_floats_are_incompressible(self):
        f = np.ones(100, dtype=np.float64)
        assert varint_payload_nbytes(f) == f.nbytes

    def test_2d_priced_column_wise(self):
        cols = np.stack(
            [np.arange(100, dtype=np.int64), np.arange(100, dtype=np.int64)],
            axis=1,
        )
        per_col = varint_payload_nbytes(
            np.ascontiguousarray(cols[:, 0])
        )
        assert varint_payload_nbytes(cols) == 2 * per_col

    def test_empty_and_containers(self):
        assert varint_payload_nbytes(np.empty(0, dtype=np.int64)) == 0
        assert varint_payload_nbytes(None) == 0
        a = np.arange(10, dtype=np.int64)
        assert varint_payload_nbytes([a, a]) == 2 * varint_payload_nbytes(a)
        assert varint_payload_nbytes(b"xyz") == 3


# --------------------------------------------------------------------- #
# the observer itself
# --------------------------------------------------------------------- #
class TestClusterObserver:
    def test_phases_mirrored_on_every_rank(self):
        comm = SimComm(3)
        obs = ClusterObserver(comm)
        with obs.phase("dist-partition"):
            with obs.phase("dist-coarsening"):
                pass
        obs.finish()
        for tracer in obs.rank_tracers:
            names = [s.name for s in tracer.spans]
            assert names == ["dist-partition", "dist-coarsening"]

    def test_collectives_tagged_with_open_phase_and_level(self):
        comm = SimComm(2)
        obs = ClusterObserver(comm)
        with obs.phase("dist-partition"):
            with obs.phase("dist-lp-level1", level=1):
                with obs.span("ghost-exchange", level=1):
                    comm.alltoallv(
                        [
                            [None, np.arange(4, dtype=np.int64)],
                            [np.arange(4, dtype=np.int64), None],
                        ]
                    )
            comm.bcast(7)
        obs.finish()
        ghost, bare = obs.comm_events
        assert ghost.kind == "alltoallv"
        assert ghost.name == "ghost-exchange"
        assert ghost.level == 1
        assert ghost.phase == "dist-partition/dist-lp-level1/ghost-exchange"
        assert ghost.raw_bytes == 2 * 32
        assert 0 < ghost.varint_bytes < ghost.raw_bytes
        assert bare.kind == "bcast" and bare.name == "dist-partition"
        assert bare.level is None

    def test_events_outside_spans_untagged(self):
        comm = SimComm(2)
        obs = ClusterObserver(comm)
        comm.barrier()
        obs.finish()
        (ev,) = obs.comm_events
        assert ev.name == "" and ev.phase == "" and ev.level is None
        assert obs.comm_by_phase() == {
            "(untagged)": {"raw_bytes": 0, "varint_bytes": 0, "messages": 2}
        }

    def test_totals_split_by_kind(self):
        comm = SimComm(2)
        obs = ClusterObserver(comm)
        comm.bcast(np.arange(8, dtype=np.int64))
        comm.bcast(np.arange(8, dtype=np.int64))
        comm.barrier()
        totals = obs.comm_totals()
        assert totals["bcast"]["calls"] == 2
        assert totals["bcast"]["raw_bytes"] == 2 * 64
        assert totals["barrier"]["raw_bytes"] == 0

    def test_counters_cluster_and_per_rank(self):
        comm = SimComm(2)
        obs = ClusterObserver(comm)
        with obs.phase("dist-partition"):
            obs.add("dlp.moves", 5)
            obs.add("dlp.moves", 2)
            obs.rank_add(1, "dlp.ghost_updates_sent", 3)
        obs.finish()
        assert obs.counters["dlp.moves"] == 7
        assert obs.rank_tracers[0].spans[0].counters["dlp.moves"] == 7
        assert (
            obs.rank_tracers[1].spans[0].counters["dlp.ghost_updates_sent"]
            == 3
        )


# --------------------------------------------------------------------- #
# acceptance: the byte-for-byte rank-peak invariant
# --------------------------------------------------------------------- #
class TestMemPeakInvariant:
    def test_rank_spans_match_ledgers_byte_for_byte(self, traced_runs):
        for result in traced_runs.values():
            obs = result.trace
            checked = 0
            for rank, tracer in enumerate(obs.rank_tracers):
                tracker = obs.comm.trackers[rank]
                for span in tracer.spans:
                    if span.category != "phase":
                        continue
                    assert span.mem_peak == tracker.phase_peak(
                        span.tracker_path
                    )
                    checked += 1
            assert checked > 0

    def test_merged_trace_peaks_match_ledgers(self, traced_runs):
        """The invariant as seen through the exported artifact: every rank
        track's phase-span E event carries exactly the ledger peak."""
        for result in traced_runs.values():
            obs = result.trace
            doc = cluster_chrome_trace(obs)
            # phase spans per rank, keyed by (pid, begin ts, name)
            ledger = {}
            for rank, tracer in enumerate(obs.rank_tracers):
                tracker = obs.comm.trackers[rank]
                for span in tracer.spans:
                    if span.category != "phase":
                        continue
                    key = (rank + 1, round(span.t_end * 1e6, 3), span.name)
                    ledger[key] = tracker.phase_peak(span.tracker_path)
            matched = 0
            for ev in doc["traceEvents"]:
                if ev["ph"] != "E":
                    continue
                key = (ev["pid"], round(ev["ts"], 3), ev["name"])
                if key in ledger:
                    assert ev["args"]["mem_peak_bytes"] == ledger[key]
                    matched += 1
            assert matched >= len(ledger)

    def test_waterfall_reads_ledgers(self, traced_runs):
        for result in traced_runs.values():
            obs = result.trace
            rows = cluster_waterfall(obs)
            assert rows
            for row in rows:
                tracker = obs.comm.trackers[row["rank"]]
                assert row["peak_bytes"] == tracker.phase_peak(row["phase"])

    def test_rollup_max_is_max_over_ranks(self, traced_runs):
        for result in traced_runs.values():
            for entry in cluster_rollup(result.trace):
                assert entry["max_rank_peak_bytes"] == max(
                    entry["rank_peak_bytes"]
                )


# --------------------------------------------------------------------- #
# the merged chrome trace
# --------------------------------------------------------------------- #
class TestMergedTrace:
    def test_one_process_track_per_rank_plus_comm(self, traced_runs):
        result = traced_runs["fem-grid"]
        doc = cluster_chrome_trace(result.trace)
        names = {
            ev["pid"]: ev["args"]["name"]
            for ev in doc["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "process_name"
        }
        assert names[CLUSTER_PID] == "cluster-comm"
        for rank in range(4):
            assert names[rank + 1] == f"rank{rank}"

    def test_mandatory_keys_on_every_event(self, traced_runs):
        doc = cluster_chrome_trace(traced_runs["fem-grid"].trace)
        for ev in doc["traceEvents"]:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(ev)

    def test_comm_counter_track_is_cumulative(self, traced_runs):
        result = traced_runs["fem-grid"]
        doc = cluster_chrome_trace(result.trace)
        raws = [
            ev["args"]["raw"]
            for ev in doc["traceEvents"]
            if ev["ph"] == "C" and ev["name"] == "comm-bytes"
        ]
        assert raws == sorted(raws)
        report = memory_ratio_report(result.trace)
        assert raws[-1] == report["comm"]["raw_bytes"]

    def test_write_cluster_trace_round_trips(self, traced_runs, tmp_path):
        path = tmp_path / "merged.trace.json"
        write_cluster_trace(path, traced_runs["fem-grid"].trace)
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]


# --------------------------------------------------------------------- #
# acceptance: the memory-ratio report
# --------------------------------------------------------------------- #
class TestMemoryRatioReport:
    def test_memory_ratio_bounded_at_4_ranks(self, traced_runs):
        for name, result in traced_runs.items():
            report = memory_ratio_report(result.trace)
            assert report["size"] == 4
            assert 1.0 <= report["memory_ratio"] <= 2.0, name

    def test_peaks_agree_with_result(self, traced_runs):
        for result in traced_runs.values():
            report = memory_ratio_report(result.trace)
            assert report["rank_peak_bytes"] == result.rank_peak_bytes
            assert (
                report["max_rank_peak_bytes"] == result.max_rank_peak_bytes
            )

    def test_varint_strictly_below_raw(self, traced_runs):
        for name, result in traced_runs.items():
            comm = memory_ratio_report(result.trace)["comm"]
            assert 0 < comm["varint_bytes"] < comm["raw_bytes"], name
            assert comm["compression_ratio"] < 1.0
            # ghost exchange specifically (the dominant traffic) compresses
            per_phase = memory_ratio_report(result.trace)["per_phase"]
            ghost = per_phase["ghost-exchange"]
            assert 0 < ghost["varint_bytes"] < ghost["raw_bytes"]

    def test_ghost_fraction_and_levels(self, traced_runs):
        for result in traced_runs.values():
            report = memory_ratio_report(result.trace)
            assert 0.0 < report["ghost_fraction"] < 1.0
            levels = report["per_level"]
            assert levels[0]["level"] == 0
            assert len(levels) == result.num_levels + 1
            for lv in levels:
                assert lv["comm_compute_ratio"] >= 0.0
            # coarsening shrinks the resident footprint level over level
            assert levels[-1]["shard_bytes"] < levels[0]["shard_bytes"]

    def test_counters_surface_in_report(self, traced_runs):
        report = memory_ratio_report(traced_runs["fem-grid"].trace)
        assert report["counters"]["dlp.moves"] > 0
        assert report["counters"]["dlp.ghost_updates"] > 0
        assert "dlp.contention" in report["counters"]

    def test_render_is_readable(self, traced_runs):
        text = render_memory_ratio(
            memory_ratio_report(traced_runs["fem-grid"].trace)
        )
        assert "memory ratio=" in text
        assert "ghost" in text
        assert "level" in text


# --------------------------------------------------------------------- #
# acceptance: tracing never perturbs the run
# --------------------------------------------------------------------- #
class TestBitIdentity:
    def test_traced_equals_untraced(self, smoke_graphs):
        g = smoke_graphs["fem-grid"]
        traced = dpartition(g, K, 4, compressed=True, config=OBS_CFG)
        plain = dpartition(g, K, 4, compressed=True, config=DistConfig())
        assert traced.cut == plain.cut
        assert np.array_equal(traced.partition, plain.partition)
        assert traced.rank_peak_bytes == plain.rank_peak_bytes
        assert plain.trace is None and plain.obs is None

    def test_observer_kwarg_equals_config_path(self, smoke_graphs):
        g = smoke_graphs["fem-grid"]
        comm = SimComm(2)
        obs = ClusterObserver(comm)
        via_kwarg = dpartition(g, K, comm, compressed=True, observer=obs)
        via_config = dpartition(g, K, 2, compressed=True, config=OBS_CFG)
        assert via_kwarg.cut == via_config.cut
        assert np.array_equal(via_kwarg.partition, via_config.partition)


# --------------------------------------------------------------------- #
# acceptance: dist == shared-memory equivalence on smoke instances
# --------------------------------------------------------------------- #
class TestSharedMemoryEquivalence:
    #: dist LP is batch-synchronous with stale reads; measured cut ratios
    #: on the smoke set peak at ~1.52 (web-small), so 1.8 leaves margin
    #: without letting a real quality regression through
    CUT_TOLERANCE = 1.8

    @pytest.mark.parametrize("ranks", [1, 2, 4])
    def test_valid_balanced_and_near_sm_cut(self, smoke_graphs, ranks):
        for name, g in smoke_graphs.items():
            sm_cut = int(sm_partition(g, K, C.terapart(seed=0)).cut)
            res = dpartition(g, K, ranks, compressed=True, config=OBS_CFG)
            part = res.partition
            assert part.shape == (g.n,)
            assert part.min() >= 0 and part.max() < K
            assert res.balanced, name
            assert res.cut <= self.CUT_TOLERANCE * sm_cut, (
                f"{name} r={ranks}: {res.cut} vs sm {sm_cut}"
            )

    def test_compressed_matches_uncompressed(self, smoke_graphs):
        g = smoke_graphs["fem-grid"]
        a = dpartition(g, K, 4, compressed=True, config=DistConfig())
        b = dpartition(g, K, 4, compressed=False, config=DistConfig())
        assert a.cut == b.cut
        assert np.array_equal(a.partition, b.partition)


# --------------------------------------------------------------------- #
# the dist bench + run-DB round trip
# --------------------------------------------------------------------- #
class TestDistBenchRoundTrip:
    def test_records_baseline_and_compare(self, tmp_path):
        from repro.bench.dist import run_dist_bench
        from repro.obs.regress.compare import capture_baseline, compare
        from repro.obs.regress.rundb import DIST_METRICS, RunDB

        db = RunDB(tmp_path / "runs.jsonl")
        instances = (Instance("fem-grid", "grid2d", (50, 50)),)
        records = run_dist_bench(
            instances,
            rank_counts=(2,),
            k_values=(4,),
            modes=(("xterapart", True),),
            rundb=db,
            bench="dist-smoke",
            label="pr9",
            artifacts_dir=tmp_path / "artifacts",
        )
        assert len(records) == 1
        rec = records[0]
        assert rec["kind"] == "dist" and rec["schema"] == 4
        assert rec["run"]["algorithm"] == "xterapart-r2"
        for m in DIST_METRICS:
            assert m in rec["run"], m
        assert rec["obs"]["report"]["memory_ratio"] >= 1.0
        # artifacts written per cell
        stem = "fem-grid-r2-xterapart-k4-s0"
        assert (tmp_path / "artifacts" / f"{stem}.trace.json").exists()
        assert (tmp_path / "artifacts" / f"{stem}.memratio.json").exists()

        loaded = db.query(kind="dist")
        assert len(loaded) == 1
        base = capture_baseline(
            loaded, "dist-smoke", metrics=DIST_METRICS, kinds=("dist",)
        )
        report = compare(
            base, loaded, metrics=DIST_METRICS, kinds=("dist",)
        )
        assert not report.regressed
        assert {v.metric for v in report.verdicts} == set(DIST_METRICS)
        assert all(v.ratio == 1.0 for v in report.verdicts)
