"""Failure-path coverage for graph/partition validation.

The happy paths of ``CSRGraph.validate`` and ``PartitionedGraph.validate``
run in nearly every test; these tests pin down that each *corruption* is
actually rejected with a diagnosable error, and that the verify layer's
``check_*`` wrappers surface them as :class:`InvariantViolation`.
"""

import numpy as np
import pytest

from repro.core.partition import PartitionedGraph
from repro.graph import generators as gen
from repro.graph.csr import CSRGraph
from repro.verify import InvariantViolation, check_csr, check_partition


@pytest.fixture
def graph():
    return gen.grid2d(8, 8)


@pytest.fixture
def pgraph(graph):
    part = (np.arange(graph.n) % 2).astype(np.int32)
    return PartitionedGraph(graph, 2, part)


class TestCSRGraphConstruction:
    def test_dangling_edge_target_rejected(self):
        # adjncy references vertex 5 in a 3-vertex graph
        with pytest.raises(ValueError, match="out-of-range vertex IDs"):
            CSRGraph(np.array([0, 1, 2, 2]), np.array([1, 5]))

    def test_negative_edge_target_rejected(self):
        with pytest.raises(ValueError, match="out-of-range vertex IDs"):
            CSRGraph(np.array([0, 1, 2]), np.array([1, -1]))

    def test_bad_indptr_bounds_rejected(self):
        with pytest.raises(ValueError, match="indptr must start at 0"):
            CSRGraph(np.array([0, 1, 3]), np.array([1, 0]))

    def test_decreasing_indptr_rejected(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            CSRGraph(np.array([0, 2, 1, 2]), np.array([1, 0]))

    def test_misaligned_weights_rejected(self):
        with pytest.raises(ValueError, match="adjwgt must align"):
            CSRGraph(np.array([0, 1, 2]), np.array([1, 0]), np.array([1]))


class TestCSRGraphValidate:
    def test_valid_graph_passes(self, graph):
        graph.validate()

    def test_non_symmetric_rejected(self):
        # edge 0->1 with no reverse
        g = CSRGraph(np.array([0, 1, 1]), np.array([1]))
        with pytest.raises(ValueError, match="not symmetric"):
            g.validate()

    def test_asymmetric_weights_rejected(self):
        # both directions exist but with different weights
        g = CSRGraph(
            np.array([0, 1, 2]), np.array([1, 0]), adjwgt=np.array([2, 3])
        )
        with pytest.raises(ValueError, match="not symmetric"):
            g.validate()

    def test_self_loop_rejected(self):
        g = CSRGraph(np.array([0, 1, 1]), np.array([0]))
        with pytest.raises(ValueError, match="self-loop at vertex 0"):
            g.validate()

    def test_non_positive_edge_weight_rejected(self):
        g = CSRGraph(
            np.array([0, 1, 2]), np.array([1, 0]), adjwgt=np.array([0, 0])
        )
        with pytest.raises(ValueError, match="edge weights must be positive"):
            g.validate()

    def test_non_positive_vertex_weight_rejected(self):
        g = CSRGraph(
            np.array([0, 1, 2]),
            np.array([1, 0]),
            vwgt=np.array([1, 0]),
        )
        with pytest.raises(ValueError):
            g.validate()


class TestPartitionedGraphValidate:
    def test_out_of_range_blocks_rejected_at_construction(self, graph):
        part = np.zeros(graph.n, dtype=np.int32)
        part[3] = 2  # k == 2
        with pytest.raises(ValueError, match="out-of-range block IDs"):
            PartitionedGraph(graph, 2, part)

    def test_short_partition_rejected(self, graph):
        with pytest.raises(ValueError, match="every vertex"):
            PartitionedGraph(graph, 2, np.zeros(graph.n - 1, dtype=np.int32))

    def test_valid_partition_passes(self, pgraph):
        pgraph.validate()

    def test_corrupted_block_weights_rejected(self, pgraph):
        pgraph.block_weights[0] += 3
        with pytest.raises(AssertionError, match="out of sync"):
            pgraph.validate()

    def test_weights_desync_after_raw_mutation(self, pgraph):
        # mutating the partition array behind move()'s back desyncs the
        # incremental block weights -- validate() must notice
        pgraph.partition[0] = 1 - pgraph.partition[0]
        with pytest.raises(AssertionError):
            pgraph.validate()

    def test_move_keeps_weights_in_sync(self, pgraph):
        u = 5
        pgraph.move(u, 1 - int(pgraph.partition[u]))
        pgraph.validate()


class TestVerifyWrappers:
    def test_check_csr_wraps_value_error(self):
        g = CSRGraph(np.array([0, 1, 1]), np.array([1]))
        with pytest.raises(InvariantViolation, match="graph invariant violated"):
            check_csr(g, phase="unit")

    def test_check_partition_flags_corruption(self, pgraph):
        pgraph.block_weights[1] -= 1
        with pytest.raises(InvariantViolation, match=r"\[unit\] block 1"):
            check_partition(pgraph, phase="unit")
