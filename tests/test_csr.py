"""Unit tests for the CSR graph representation."""

import numpy as np
import pytest

from repro.graph.builder import from_edges
from repro.graph.csr import CSRGraph


class TestConstruction:
    def test_basic_properties(self, tiny_graph):
        g = tiny_graph
        assert g.n == 6
        assert g.m == 7
        assert g.num_directed_edges == 14
        assert g.degree(2) == 3
        assert sorted(g.neighbors(2).tolist()) == [0, 1, 3]

    def test_rejects_bad_indptr(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([1, 2]), np.array([0]))
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 2, 1]), np.array([0, 1]))

    def test_rejects_out_of_range_neighbors(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 1]), np.array([5]))

    def test_rejects_misaligned_weights(self):
        with pytest.raises(ValueError):
            CSRGraph(
                np.array([0, 1, 2]),
                np.array([1, 0]),
                adjwgt=np.array([1]),
            )

    def test_empty_graph(self):
        g = CSRGraph(np.array([0]), np.empty(0, dtype=np.int64))
        assert g.n == 0
        assert g.m == 0
        assert g.max_degree == 0

    def test_isolated_vertices(self):
        g = from_edges(4, np.array([[0, 1]]))
        assert g.degree(2) == 0
        assert g.degree(3) == 0
        assert len(g.neighbors(3)) == 0


class TestWeights:
    def test_unit_weights_cost_nothing(self, tiny_graph):
        g = tiny_graph
        assert not g.has_edge_weights
        assert not g.has_vertex_weights
        # weight views cost 8 bytes each in the ledger
        assert g.nbytes == g.indptr.nbytes + g.adjncy.nbytes + 16

    def test_unit_weight_views_read_as_ones(self, tiny_graph):
        g = tiny_graph
        assert np.all(np.asarray(g.edge_weights(0)) == 1)
        assert np.all(np.asarray(g.vwgt) == 1)

    def test_total_weights(self, weighted_graph):
        g = weighted_graph
        assert g.has_edge_weights
        assert g.total_vertex_weight == 4
        assert g.total_edge_weight == 2 * (5 + 1 + 5 + 1 + 10)

    def test_incident_weight(self, weighted_graph):
        g = weighted_graph
        # vertex 0: edges to 1 (5), 3 (1), 2 (10)
        assert g.incident_weight(0) == 16


class TestValidation:
    def test_valid_graph_passes(self, tiny_graph):
        tiny_graph.validate()

    def test_detects_asymmetry(self):
        g = CSRGraph(np.array([0, 1, 1]), np.array([1]))
        with pytest.raises(ValueError, match="symmetric"):
            g.validate()

    def test_detects_self_loop(self):
        g = CSRGraph(np.array([0, 1]), np.array([0]))
        with pytest.raises(ValueError, match="self-loop"):
            g.validate()

    def test_detects_weight_mismatch(self):
        g = CSRGraph(
            np.array([0, 1, 2]),
            np.array([1, 0]),
            adjwgt=np.array([2, 3]),
        )
        with pytest.raises(ValueError, match="symmetric"):
            g.validate()


class TestSorting:
    def test_with_sorted_neighborhoods(self):
        indptr = np.array([0, 2, 4])
        adjncy = np.array([1, 1, 0, 0])  # parallel edges, unsorted ok
        g = CSRGraph(indptr, adjncy, adjwgt=np.array([3, 1, 1, 3]))
        gs = g.with_sorted_neighborhoods()
        assert gs.sorted_neighborhoods
        for u in range(gs.n):
            nbrs = gs.neighbors(u)
            assert np.all(np.diff(nbrs) >= 0)

    def test_sorting_preserves_weight_alignment(self, family_graph):
        g = family_graph
        gs = g.with_sorted_neighborhoods()
        for u in range(0, g.n, max(1, g.n // 50)):
            na, wa = g.neighbors_and_weights(u)
            ns, ws = gs.neighbors_and_weights(u)
            order = np.argsort(np.asarray(na), kind="stable")
            assert np.array_equal(np.asarray(na)[order], np.asarray(ns))
            assert np.array_equal(np.asarray(wa)[order], np.asarray(ws))

    def test_idempotent_when_sorted(self, tiny_graph):
        gs = tiny_graph.with_sorted_neighborhoods()
        assert gs.with_sorted_neighborhoods() is gs


class TestAccessors:
    def test_incident_edge_ids(self, tiny_graph):
        g = tiny_graph
        ids = g.incident_edge_ids(2)
        assert ids.tolist() == list(range(int(g.indptr[2]), int(g.indptr[3])))

    def test_degrees_vector(self, tiny_graph):
        g = tiny_graph
        assert np.array_equal(
            g.degrees, np.array([g.degree(u) for u in range(g.n)])
        )

    def test_repr(self, tiny_graph):
        assert "CSRGraph" in repr(tiny_graph)
