"""Unit tests for the edge-list -> CSR builder."""

import numpy as np
import pytest

from repro.graph.builder import GraphBuilder, from_edges


class TestFromEdges:
    def test_symmetrizes(self):
        g = from_edges(3, np.array([[0, 1], [1, 2]]))
        g.validate()
        assert g.m == 2
        assert 0 in g.neighbors(1).tolist()
        assert 2 in g.neighbors(1).tolist()

    def test_drops_self_loops(self):
        g = from_edges(3, np.array([[0, 0], [0, 1], [2, 2]]))
        assert g.m == 1

    def test_deduplicates_parallel_edges(self):
        g = from_edges(2, np.array([[0, 1], [0, 1], [1, 0]]))
        assert g.m == 1

    def test_symmetric_input_not_double_counted(self):
        """An input listing both directions is one undirected edge."""
        g = from_edges(2, np.array([[0, 1], [1, 0]]), np.array([7, 7]))
        assert g.m == 1
        assert int(np.asarray(g.edge_weights(0))[0]) == 7

    def test_union_semantics_takes_max_weight(self):
        g = from_edges(2, np.array([[0, 1], [1, 0]]), np.array([3, 9]))
        assert int(np.asarray(g.edge_weights(0))[0]) == 9

    def test_neighborhoods_sorted(self):
        rng = np.random.default_rng(5)
        edges = rng.integers(0, 40, size=(300, 2))
        g = from_edges(40, edges)
        assert g.sorted_neighborhoods
        for u in range(g.n):
            assert np.all(np.diff(g.neighbors(u)) > 0)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            from_edges(2, np.array([[0, 2]]))
        with pytest.raises(ValueError):
            from_edges(2, np.array([[-1, 0]]))

    def test_rejects_nonpositive_weights(self):
        with pytest.raises(ValueError):
            from_edges(2, np.array([[0, 1]]), np.array([0]))

    def test_empty_edge_list(self):
        g = from_edges(5, np.zeros((0, 2), dtype=np.int64))
        assert g.n == 5
        assert g.m == 0

    def test_vertex_weights_pass_through(self):
        vw = np.array([2, 3, 4], dtype=np.int64)
        g = from_edges(3, np.array([[0, 1]]), vwgt=vw)
        assert g.total_vertex_weight == 9

    def test_no_symmetrize_keeps_directed_list(self):
        # caller-provided symmetric list with per-direction dedup (sums)
        edges = np.array([[0, 1], [1, 0], [0, 1], [1, 0]])
        w = np.array([2, 2, 3, 3])
        g = from_edges(2, edges, w, symmetrize=False)
        g.validate()
        assert g.m == 1
        assert int(np.asarray(g.edge_weights(0))[0]) == 5

    def test_unweighted_result_uses_unit_view(self):
        g = from_edges(3, np.array([[0, 1], [1, 2]]))
        assert not g.has_edge_weights


class TestGraphBuilder:
    def test_incremental_build(self):
        b = GraphBuilder(4)
        b.add_edge(0, 1)
        b.add_edge(1, 2, w=5)
        b.add_edges(np.array([[2, 3]]))
        g = b.build()
        g.validate()
        assert g.m == 3
        assert b.num_pending_edges == 3

    def test_rejects_out_of_range(self):
        b = GraphBuilder(2)
        with pytest.raises(ValueError):
            b.add_edge(0, 5)

    def test_vertex_weights(self):
        b = GraphBuilder(3)
        b.add_edge(0, 1)
        b.set_vertex_weights(np.array([1, 2, 3]))
        g = b.build()
        assert g.total_vertex_weight == 6

    def test_vertex_weight_length_checked(self):
        b = GraphBuilder(3)
        with pytest.raises(ValueError):
            b.set_vertex_weights(np.array([1, 2]))

    def test_empty_builder(self):
        g = GraphBuilder(3).build()
        assert g.n == 3 and g.m == 0

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            GraphBuilder(-1)
