"""Unit tests for the dynamic conflict detector (repro.verify.conflicts)."""

import numpy as np
import pytest

from repro.parallel.atomics import AtomicArray, AtomicCounter, DualCounter
from repro.verify.conflicts import ConflictDetector


@pytest.fixture
def det():
    d = ConflictDetector()
    d.begin_region("test-phase")
    return d


class TestWriteWrite:
    def test_different_threads_conflict(self, det):
        det.record_write("a", [3], tid=0)
        det.record_write("a", [3], tid=1)
        assert len(det.conflicts) == 1
        c = det.conflicts[0]
        assert (c.array, c.index, c.kind) == ("a", 3, "write-write")
        assert c.tids == (0, 1)
        assert c.phase == "test-phase"

    def test_same_thread_clean(self, det):
        det.record_write("a", [3, 4], tid=0)
        det.record_write("a", [3], tid=0)
        assert det.clean

    def test_disjoint_indices_clean(self, det):
        det.record_write("a", np.arange(0, 10), tid=0)
        det.record_write("a", np.arange(10, 20), tid=1)
        assert det.clean

    def test_different_arrays_clean(self, det):
        det.record_write("a", [3], tid=0)
        det.record_write("b", [3], tid=1)
        assert det.clean


class TestReadWrite:
    def test_read_then_write_conflicts(self, det):
        det.record_read("a", [7], tid=0)
        det.record_write("a", [7], tid=1)
        assert [c.kind for c in det.conflicts] == ["read-write"]

    def test_write_then_read_conflicts(self, det):
        det.record_write("a", [7], tid=0)
        det.record_read("a", [7], tid=1)
        assert [c.kind for c in det.conflicts] == ["read-write"]

    def test_read_read_clean(self, det):
        det.record_read("a", [7], tid=0)
        det.record_read("a", [7], tid=1)
        det.record_read("a", [7], tid=2)
        assert det.clean


class TestAtomic:
    def test_atomic_atomic_clean(self, det):
        det.record_atomic("w", [5], tid=0)
        det.record_atomic("w", [5], tid=1)
        assert det.clean

    def test_atomic_vs_plain_write_conflicts(self, det):
        det.record_atomic("w", [5], tid=0)
        det.record_write("w", [5], tid=1)
        assert [c.kind for c in det.conflicts] == ["atomic-write"]

    def test_plain_write_then_atomic_conflicts(self, det):
        det.record_write("w", [5], tid=0)
        det.record_atomic("w", [5], tid=1)
        assert [c.kind for c in det.conflicts] == ["atomic-write"]

    def test_atomic_vs_relaxed_read_clean(self, det):
        det.record_read("w", [5], tid=0)
        det.record_atomic("w", [5], tid=1)
        assert det.clean


class TestRegions:
    def test_region_boundary_clears_state(self, det):
        det.record_write("a", [1], tid=0)
        det.begin_region("next-round")
        det.record_write("a", [1], tid=1)  # barrier orders the two writes
        assert det.clean
        assert det.regions_checked == 2

    def test_no_current_tid_is_ignored(self):
        d = ConflictDetector()
        d.begin_region("seq")
        d.record_write("a", [1])  # sequential section: no tid announced
        d.record_write("a", [1])
        assert d.clean

    def test_current_tid_used_when_set(self):
        d = ConflictDetector()
        d.begin_region("r")
        d.current_tid = 0
        d.record_write("a", [1])
        d.current_tid = 1
        d.record_write("a", [1])
        assert len(d.conflicts) == 1

    def test_max_conflicts_cap(self):
        d = ConflictDetector(max_conflicts=3)
        d.begin_region("r")
        d.record_write("a", np.arange(10), tid=0)
        d.record_write("a", np.arange(10), tid=1)
        assert len(d.conflicts) == 3

    def test_summary_mentions_counts(self, det):
        det.record_write("a", [1, 2], tid=0)
        assert "no conflicts" in det.summary()
        det.record_write("a", [1], tid=1)
        assert "1 conflict" in det.summary()
        assert "a[1]" in det.summary()


class TestAtomicsIntegration:
    def test_atomic_counter_reports_all_ops(self):
        d = ConflictDetector()
        d.begin_region("r")
        d.current_tid = 0
        c = AtomicCounter(detector=d, name="ctr")
        c.fetch_add(1)
        c.store(5)
        c.compare_exchange(5, 6)
        d.current_tid = 1
        c.fetch_add(1)
        assert d.clean  # atomics never conflict with atomics
        assert d.accesses_recorded == 4

    def test_dual_counter_reports_cas(self):
        d = ConflictDetector()
        d.begin_region("r")
        d.current_tid = 2
        dc = DualCounter(detector=d, name="dual")
        dc.fetch_add(3, 1)
        assert d.accesses_recorded == 1
        assert d.clean

    def test_atomic_array_conflicts_with_plain_write(self):
        d = ConflictDetector()
        d.begin_region("r")
        arr = AtomicArray(np.zeros(8, dtype=np.int64), detector=d, name="A")
        d.current_tid = 0
        arr.fetch_add(3, 1)
        arr.bulk_fetch_add(np.array([4, 5]), np.array([1, 1]))
        d.current_tid = 1
        d.record_write("A", [3])
        assert [c.kind for c in d.conflicts] == ["atomic-write"]
