"""Unit tests for the service's byte-budgeted LRU cache (serve/cache)."""

import pytest

from repro.memory.tracker import MemoryTracker
from repro.serve.cache import ByteLRUCache


class TestBasics:
    def test_put_get_roundtrip(self):
        c = ByteLRUCache(100)
        assert c.put("a", 1, 10)
        assert c.get("a") == 1
        assert "a" in c and len(c) == 1

    def test_miss_returns_none_and_counts(self):
        c = ByteLRUCache(100)
        assert c.get("nope") is None
        assert c.stats.misses == 1 and c.stats.hits == 0

    def test_peek_touches_nothing(self):
        c = ByteLRUCache(100)
        c.put("a", 1, 10)
        c.put("b", 2, 10)
        hits = c.stats.hits
        assert c.peek("a") == 1
        assert c.stats.hits == hits
        # recency unchanged: "a" is still the LRU entry
        c.put("c", 3, 90)
        assert "a" not in c and "b" in c

    def test_replace_same_key_adjusts_bytes(self):
        c = ByteLRUCache(100)
        c.put("a", 1, 40)
        c.put("a", 2, 60)
        assert c.get("a") == 2
        assert c.stats.resident_bytes == 60 and len(c) == 1


class TestEviction:
    def test_strict_lru_order(self):
        c = ByteLRUCache(30)
        c.put("a", 1, 10)
        c.put("b", 2, 10)
        c.put("c", 3, 10)
        c.get("a")  # refresh: "b" is now oldest
        c.put("d", 4, 10)
        assert "b" not in c
        assert all(k in c for k in ("a", "c", "d"))
        assert c.stats.evictions == 1

    def test_one_big_entry_evicts_many_small(self):
        c = ByteLRUCache(100)
        for i in range(10):
            c.put(i, i, 10)
        c.put("big", "x", 95)
        assert c.get("big") == "x"
        assert c.stats.resident_bytes <= 100

    def test_oversize_entry_rejected_not_flushing(self):
        c = ByteLRUCache(100)
        c.put("a", 1, 50)
        assert not c.put("huge", 2, 101)
        assert c.stats.rejected == 1
        assert "a" in c  # resident entries untouched

    def test_budget_never_exceeded(self):
        c = ByteLRUCache(64)
        for i in range(50):
            c.put(i, i, 7 + (i % 13))
            assert c.stats.resident_bytes <= 64

    def test_zero_budget_accepts_nothing(self):
        c = ByteLRUCache(0)
        assert c.put("a", 1, 1) is False
        assert c.put("b", 2, 0) is True  # zero-byte entries do fit

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            ByteLRUCache(-1)


class TestInvalidation:
    def test_invalidate_one(self):
        c = ByteLRUCache(100)
        c.put("a", 1, 10)
        assert c.invalidate("a") and not c.invalidate("a")
        assert c.stats.resident_bytes == 0
        assert c.stats.evictions == 0  # invalidation is not eviction

    def test_invalidate_where(self):
        c = ByteLRUCache(100)
        c.put(("part", 1), "p", 10)
        c.put(("part", 2), "q", 10)
        c.put(("graph", 1), "g", 10)
        n = c.invalidate_where(lambda k: k[0] == "part")
        assert n == 2 and len(c) == 1
        assert c.peek(("graph", 1)) == "g"


class TestTrackerLedger:
    def test_bytes_registered_and_freed(self):
        t = MemoryTracker()
        c = ByteLRUCache(100, tracker=t)
        c.put("a", 1, 40)
        c.put("b", 2, 40)
        assert t.current_bytes == 80
        assert t.breakdown().get("serve-cache") == 80
        c.put("c", 3, 40)  # evicts "a"
        assert t.current_bytes == 80
        c.clear()
        assert t.current_bytes == 0
        t.assert_empty()

    def test_stats_mirror_ledger(self):
        t = MemoryTracker()
        c = ByteLRUCache(1000, tracker=t)
        for i in range(20):
            c.put(i, i, 17)
        assert c.stats.resident_bytes == t.current_bytes
        assert c.stats.entries == len(c)
